"""Compute-mapping exploration: hot spots under different hashing schemes.

Reproduces the Figure 12 / 13 analysis: for several sparsity patterns, the
accumulation tasks of the SpGEMM workload are distributed over the NeuraMem
units with ring hashing, prime-modular hashing, an ideal random lookup table
and NeuraChip's Dynamically Reseeding Hash-based Mapping (DRHM), and the
resulting NeuraCore x NeuraMem heat maps are rendered as ASCII shading.

Run with:  python examples/mapping_exploration.py
"""

from repro.datasets import load_dataset
from repro.hashing.balance import mapping_heatmap, summarize_counts
from repro.viz.export import format_table, heatmap_to_text

MATRICES = ("cora", "facebook", "mario002", "dense")
SCHEMES = ("ring", "modular", "random", "drhm")
N_CORES = 16
N_MEMS = 16


def main() -> None:
    summary_rows = []
    for name in MATRICES:
        dataset = load_dataset(name, max_nodes=128)
        a_csc = dataset.adjacency_csc()
        a_csr = dataset.adjacency_csr()
        print(f"\n=== {name}: {dataset.n_nodes} nodes, "
              f"{dataset.n_edges} non-zeros ===")
        for scheme in SCHEMES:
            heatmap = mapping_heatmap(scheme, a_csc, a_csr, N_CORES, N_MEMS)
            report = summarize_counts(scheme, heatmap.sum(axis=0))
            summary_rows.append({
                "matrix": name,
                "scheme": scheme,
                "max/mean": round(report.max_over_mean, 2),
                "gini": round(report.gini, 3),
            })
            if scheme in ("ring", "drhm"):
                print(f"\n[{scheme}] accumulation heat map "
                      f"(rows = NeuraCores, cols = NeuraMems):")
                print(heatmap_to_text(heatmap))

    print("\n=== load balance summary (lower is better) ===")
    print(format_table(summary_rows))
    print("\nDRHM tracks the ideal random mapping on every pattern, while "
          "ring/modular hashing concentrate work on a few NeuraMems for "
          "strided and dense patterns (the paper's hot spots).")


if __name__ == "__main__":
    main()
