"""Multi-chip scale-out: one SpGEMM fanned across N chip instances.

Three demonstrations of the ``multichip`` execution backend:

1. **Scaling curve** — the same workload on 1, 2, and 4 chips: each chip
   owns one balanced row shard (its own compiled program, execution
   context, and stats); aggregate cycles are the slowest chip plus a host
   reduce term, and the reduced product is byte-identical to the
   single-chip run.
2. **Analytic fast path** — ``predict_scaleout`` estimates the scale-out
   efficiency from the per-shard partial-product histogram alone, before
   compiling or simulating anything.
3. **Per-chip detail** — the aggregate report carries per-chip cycles and
   shard-skew counters for fleet-level debugging.

Run with:  python examples/multichip_scaleout.py
"""

import numpy as np

from repro import Session, SpGEMMSpec, load_dataset, predict_scaleout
from repro.viz.export import format_table


def main() -> None:
    dataset = load_dataset("facebook", max_nodes=256)
    adjacency = dataset.adjacency_csr()

    # --- 1. Scaling curve: 1 / 2 / 4 chips ------------------------------
    with Session("Tile-16", backend="analytic") as session:
        baseline = session.run(SpGEMMSpec(a=adjacency, label="1-chip",
                                          verify=False))
    rows = []
    results = {1: baseline}
    for chips in (2, 4):
        with Session("Tile-16", backend="multichip", chips=chips) as session:
            results[chips] = session.run(SpGEMMSpec(
                a=adjacency, label=f"{chips}-chip", verify=False))
    for chips, result in results.items():
        speedup = baseline.metrics["cycles"] / result.metrics["cycles"]
        rows.append({
            "chips": chips,
            "cycles": result.metrics["cycles"],
            "speedup": round(speedup, 2),
            "efficiency": round(speedup / chips, 3),
            "power_w": round(result.power_w, 1),
            "output_nnz": result.metrics["output_nnz"],
        })
    print("--- multi-chip scaling curve ---")
    print(format_table(rows))
    quad = results[4]
    identical = (
        np.array_equal(quad.output.indptr, baseline.output.indptr)
        and np.array_equal(quad.output.indices, baseline.output.indices)
        and np.array_equal(quad.output.data, baseline.output.data))
    print(f"4-chip product byte-identical to single-chip: {identical}\n")

    # --- 2. Analytic fast path: no compile, no simulation ---------------
    print("--- predicted scale-out (partial-product histogram only) ---")
    predictions = [{"chips": chips,
                    **{key: value
                       for key, value in predict_scaleout(adjacency,
                                                          chips).items()
                       if key in ("predicted_speedup", "efficiency",
                                  "skew")}}
                   for chips in (2, 4, 8)]
    print(format_table(predictions))
    print()

    # --- 3. Per-chip detail from the aggregate report -------------------
    counters = quad.report.counters
    print("--- per-chip detail (4 chips) ---")
    detail = [{"chip": i,
               "rows": counters[f"multichip.chip{i}.rows"],
               "cycles": counters[f"multichip.chip{i}.cycles"],
               "partial_products":
                   counters[f"multichip.chip{i}.partial_products"]}
              for i in range(4)]
    print(format_table(detail))
    print(f"shard skew {counters['multichip.shard_skew']}, host reduce "
          f"{counters['multichip.reduce_cycles']} cycles")


if __name__ == "__main__":
    main()
