"""Sharded and parallel execution through the session's executor layer.

Three demonstrations of the scale-out substrate:

1. **Sharding** — one large SpGEMM is split by the planner into balanced
   row-group jobs (rows of A partition the partial products of A @ B
   exactly), fanned out over the executor, and reduced into one result
   identical to the unsharded product.
2. **Executor fan-out** — the same 12-job batch served serially and over a
   thread pool, with identical per-job results.
3. **Persistent program cache** — a second session pointed at the same
   cache directory skips compilation entirely (``cache_hit=True``).

Run with:  python examples/sharded_execution.py
"""

import tempfile

import numpy as np

from repro import BatchSpec, Session, SpGEMMSpec, load_dataset
from repro.viz.export import format_table, results_to_rows


def main() -> None:
    dataset = load_dataset("facebook", max_nodes=256)
    adjacency = dataset.adjacency_csr()

    # --- 1. Sharded SpGEMM: identical output, per-shard provenance -----
    with Session("Tile-16", backend="analytic") as session:
        whole = session.run(SpGEMMSpec(a=adjacency, label="unsharded"))
        sharded = session.run(SpGEMMSpec(a=adjacency, shards=4,
                                         label="sharded"))
    match = np.allclose(whole.output.to_dense(), sharded.output.to_dense())
    print("--- sharded vs unsharded SpGEMM ---")
    print(format_table(results_to_rows([whole, sharded])))
    print(f"outputs identical: {match}  "
          f"(partial products {whole.metrics['partial_products']} == "
          f"{sharded.metrics['partial_products']})\n")

    # --- 2. Executor fan-out over a 12-job batch -----------------------
    specs = [SpGEMMSpec(a=adjacency, label=f"req{i}", verify=False)
             for i in range(12)]
    with Session("Tile-16", backend="analytic", executor="serial") as serial:
        serial_report = serial.run(BatchSpec(specs=specs)).legacy
    with Session("Tile-16", backend="analytic", executor="thread",
                 workers=4) as threaded:
        thread_report = threaded.run(BatchSpec(specs=specs)).legacy
    print("--- 12-job batch: serial vs thread executor ---")
    print(format_table([serial_report.summary(), thread_report.summary()]))
    same = (serial_report.total_partial_products
            == thread_report.total_partial_products)
    print(f"identical totals across executors: {same}\n")

    # --- 3. Persistent program cache across sessions -------------------
    with tempfile.TemporaryDirectory() as cache_dir:
        with Session("Tile-16", backend="analytic",
                     cache_dir=cache_dir) as cold:
            first = cold.run(SpGEMMSpec(a=adjacency, label="cold"))
        with Session("Tile-16", backend="analytic",
                     cache_dir=cache_dir) as warm:
            second = warm.run(SpGEMMSpec(a=adjacency, label="warm"))
            stats = warm.cache_stats()
    print("--- persistent program cache ---")
    print(format_table(results_to_rows([first, second])))
    print(f"second session: cache_hit={second.cache_hit} "
          f"(disk hits: {stats['disk_hits']}) — compilation skipped")


if __name__ == "__main__":
    main()
