"""GCN inference on NeuraChip: a two-layer graph convolutional network.

Runs both layers of a GCN (Equation 2 of the paper) on a synthetic Cora
stand-in through one session.  Each layer's aggregation phase (A_hat @ X)
executes on the simulated accelerator as an :class:`SpGEMMSpec`; the
combination phase (dense GEMM with W plus ReLU) runs in numpy, mirroring
how the paper splits the two stages.  Because both layers share the same
session, the second forward pass would hit the program cache.  The
accelerator output is checked against a pure-numpy reference network.

Run with:  python examples/gcn_inference.py
"""

import numpy as np

from repro import Session, SpGEMMSpec, load_dataset
from repro.datasets.features import gcn_weight_matrix
from repro.gnn.gcn import gcn_forward_reference, normalize_adjacency, relu
from repro.sparse.convert import coo_to_csr, dense_to_coo


def run_layer(session: Session, a_hat_csr, features_csr, weight, apply_relu):
    """Aggregation on the accelerator, combination in numpy."""
    result = session.run(SpGEMMSpec(a=a_hat_csr, b=features_csr,
                                    source="gcn-layer", label="gcn-layer"))
    aggregated = result.output.to_dense()
    combined = aggregated @ weight
    if apply_relu:
        combined = relu(combined)
    return combined, result.report


def main() -> None:
    dataset = load_dataset("cora", max_nodes=256)
    feature_dim, hidden_dim, n_classes = 32, 16, 7
    rng = np.random.default_rng(0)
    features = (rng.random((dataset.n_nodes, feature_dim)) < 0.3) * 1.0
    weights = [gcn_weight_matrix(feature_dim, hidden_dim, seed=1),
               gcn_weight_matrix(hidden_dim, n_classes, seed=2)]

    a_hat = normalize_adjacency(dataset.adjacency)

    print(f"GCN on {dataset.name}: {dataset.n_nodes} nodes, "
          f"{feature_dim} -> {hidden_dim} -> {n_classes}")

    x = features
    total_cycles = 0.0
    with Session("Tile-16") as session:
        for layer_index, weight in enumerate(weights):
            features_csr = coo_to_csr(dense_to_coo(x))
            x, report = run_layer(session, a_hat, features_csr, weight,
                                  apply_relu=layer_index < len(weights) - 1)
            total_cycles += report.cycles
            print(f"  layer {layer_index}: cycles={report.cycles:,.0f}  "
                  f"GOP/s={report.gops:.2f}  aggregation verified={report.correct}")

    reference = gcn_forward_reference(dataset.adjacency, features, weights)
    max_err = float(np.max(np.abs(x - reference)))
    print(f"\ntotal aggregation cycles : {total_cycles:,.0f}")
    print(f"max |accelerator - numpy|: {max_err:.2e}")
    print(f"prediction agreement     : "
          f"{np.mean(np.argmax(x, 1) == np.argmax(reference, 1)) * 100:.1f}%")


if __name__ == "__main__":
    main()
