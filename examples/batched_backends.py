"""Batched execution through one session: specs in, RunResults out.

Builds a batch of SpGEMM requests against two graphs, serves it through a
session on the analytic backend (roofline prediction + vectorized numpy
kernels), and cross-checks one job on the cycle-level simulator.  Repeated
requests on the same graph share one compiled program via the session's
LRU cache — the shape a serving deployment takes: compile once, answer
many.

Run with:  python examples/batched_backends.py
"""

from repro import BatchSpec, Session, SpGEMMSpec, load_dataset
from repro.viz.export import format_table


def main() -> None:
    # 1. Describe twelve requests over two graphs (six each) declaratively.
    specs = []
    for name in ("wiki-Vote", "facebook"):
        dataset = load_dataset(name, max_nodes=192)
        for request in range(6):
            specs.append(SpGEMMSpec(a=dataset.adjacency_csr(),
                                    label=f"{name}/req{request}",
                                    source=name, verify=False))

    # 2. Serve the whole batch through the analytic backend.
    with Session("Tile-16", backend="analytic", impl="numpy") as session:
        batch = session.run(BatchSpec(specs=specs)).legacy
        print(format_table(batch.as_rows()))
        print(format_table([batch.summary()]))
        print(f"compile cache: {batch.cache_hits}/{batch.n_jobs} jobs reused "
              "a cached program\n")

        # 3. Spot-check the prediction against the cycle-level model.
        dataset = load_dataset("wiki-Vote", max_nodes=96)
        spec = SpGEMMSpec(a=dataset.adjacency_csr(), verify=False)
        predicted = session.run(spec)
    with Session("Tile-16", backend="cycle") as cycle_session:
        measured = cycle_session.run(spec)
    ratio = predicted.metrics["cycles"] / measured.metrics["cycles"]
    print(f"analytic {predicted.metrics['cycles']:,.0f} cycles vs "
          f"cycle {measured.metrics['cycles']:,.0f} cycles "
          f"(prediction ratio {ratio:.2f})")


if __name__ == "__main__":
    main()
