"""Batched execution across the three backends.

Builds a small queue of SpGEMM requests against two graphs, runs it through
the analytic backend (roofline prediction + vectorized numpy kernels), and
cross-checks one job on the cycle-level simulator.  Repeated requests on
the same graph share one compiled program via the batch runner's cache —
the shape a serving deployment takes: compile once, answer many.

Run with:  python examples/batched_backends.py
"""

from repro import NeuraChip, WorkloadQueue, load_dataset
from repro.viz.export import format_table


def main() -> None:
    chip = NeuraChip("Tile-16")

    # 1. Queue twelve requests over two graphs (six each).
    queue = WorkloadQueue()
    for name in ("wiki-Vote", "facebook"):
        dataset = load_dataset(name, max_nodes=192)
        for request in range(6):
            queue.add_spgemm(dataset.adjacency_csr(),
                             label=f"{name}/req{request}")

    # 2. Serve the whole queue through the analytic backend.
    batch = chip.run_batch(queue, backend="analytic", impl="numpy")
    print(format_table(batch.as_rows()))
    print(format_table([batch.summary()]))
    print(f"compile cache: {batch.cache_hits}/{batch.n_jobs} jobs reused "
          "a cached program\n")

    # 3. Spot-check the prediction against the cycle-level model.
    dataset = load_dataset("wiki-Vote", max_nodes=96)
    adjacency = dataset.adjacency_csr()
    predicted = chip.run_spgemm(adjacency, backend="analytic")
    measured = chip.run_spgemm(adjacency, backend="cycle", verify=False)
    ratio = predicted.report.cycles / measured.report.cycles
    print(f"analytic {predicted.report.cycles:,.0f} cycles vs "
          f"cycle {measured.report.cycles:,.0f} cycles "
          f"(prediction ratio {ratio:.2f})")


if __name__ == "__main__":
    main()
