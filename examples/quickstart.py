"""Quickstart: run one SpGEMM workload on a simulated NeuraChip.

Loads a synthetic stand-in for the `wiki-Vote` SNAP graph, compiles the
A @ A SpGEMM workload onto the Tile-16 configuration, runs the cycle-level
NeuraSim model, and prints the headline performance counters.

Run with:  python examples/quickstart.py
"""

from repro import NeuraChip, load_dataset
from repro.viz.export import format_table, histogram_to_rows


def main() -> None:
    # 1. Load a dataset (scaled down so the pure-Python simulator is quick).
    dataset = load_dataset("wiki-Vote", max_nodes=256)
    print(f"dataset: {dataset.name}  nodes={dataset.n_nodes}  "
          f"edges={dataset.n_edges}  sparsity={dataset.adjacency.sparsity:.4f}")

    # 2. Build an accelerator and run C = A @ A on it.
    chip = NeuraChip("Tile-16")          # Tile-4 / Tile-16 / Tile-64
    result = chip.run_spgemm(dataset.adjacency_csr(), source=dataset.name)

    # 3. Inspect the simulation report.
    report = result.report
    print(f"\ncycles            : {report.cycles:,.0f}")
    print(f"MMH instructions  : {report.mmh_instructions:,}")
    print(f"HACC instructions : {report.hacc_instructions:,}")
    print(f"sustained GOP/s   : {report.gops:.2f}")
    print(f"avg MMH CPI       : {report.mmh_cpi_mean:.1f}")
    print(f"avg HACC CPI      : {report.hacc_cpi_mean:.1f}")
    print(f"memory traffic    : {report.memory_traffic_bytes / 1024:.1f} KiB")
    print(f"HashPad peak occ. : {report.peak_hashpad_occupancy} lines")
    print(f"output verified   : {report.correct}")
    print(f"average power     : {result.power_w:.2f} W "
          f"(energy {result.energy_j * 1e6:.2f} uJ)")

    # 4. The MMH CPI distribution (the data behind the paper's Figure 14).
    print("\nMMH CPI histogram:")
    print(format_table(histogram_to_rows(report.mmh_cpi_histogram, label="mmh")))

    # 5. The product itself is available as a CSR matrix.
    print(f"\noutput matrix: shape={result.output.shape}, nnz={result.output.nnz}")


if __name__ == "__main__":
    main()
