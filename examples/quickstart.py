"""Quickstart: run one SpGEMM workload on a simulated NeuraChip.

Opens a :class:`~repro.core.session.Session` on the Tile-16 configuration,
loads a synthetic stand-in for the `wiki-Vote` SNAP graph, submits the
A @ A SpGEMM workload as a declarative :class:`SpGEMMSpec`, and prints the
headline performance counters from the unified :class:`RunResult` envelope.

Run with:  python examples/quickstart.py
"""

from repro import Session, SpGEMMSpec, load_dataset
from repro.viz.export import format_table, histogram_to_rows


def main() -> None:
    # 1. Load a dataset (scaled down so the pure-Python simulator is quick).
    dataset = load_dataset("wiki-Vote", max_nodes=256)
    print(f"dataset: {dataset.name}  nodes={dataset.n_nodes}  "
          f"edges={dataset.n_edges}  sparsity={dataset.adjacency.sparsity:.4f}")

    # 2. Open a session and run C = A @ A on it.  The session owns backend
    #    resolution, the executor, and the program cache.
    with Session("Tile-16") as session:     # Tile-4 / Tile-16 / Tile-64
        result = session.run(SpGEMMSpec(a=dataset.adjacency_csr(),
                                        source=dataset.name,
                                        label=dataset.name))

    # 3. Inspect the simulation report.
    report = result.report
    print(f"\ncycles            : {report.cycles:,.0f}")
    print(f"MMH instructions  : {report.mmh_instructions:,}")
    print(f"HACC instructions : {report.hacc_instructions:,}")
    print(f"sustained GOP/s   : {report.gops:.2f}")
    print(f"avg MMH CPI       : {report.mmh_cpi_mean:.1f}")
    print(f"avg HACC CPI      : {report.hacc_cpi_mean:.1f}")
    print(f"memory traffic    : {report.memory_traffic_bytes / 1024:.1f} KiB")
    print(f"HashPad peak occ. : {report.peak_hashpad_occupancy} lines")
    print(f"output verified   : {report.correct}")
    print(f"average power     : {result.power_w:.2f} W "
          f"(energy {result.energy_j * 1e6:.2f} uJ)")

    # 4. Provenance: where the result came from and what it cost to make.
    prov = result.provenance
    print(f"provenance        : backend={prov.backend} executor={prov.executor} "
          f"cache_hit={prov.cache_hit} wall={prov.wall_time_s:.2f}s")

    # 5. The MMH CPI distribution (the data behind the paper's Figure 14).
    print("\nMMH CPI histogram:")
    print(format_table(histogram_to_rows(report.mmh_cpi_histogram, label="mmh")))

    # 6. The product itself is available as a CSR matrix.
    print(f"\noutput matrix: shape={result.output.shape}, nnz={result.output.nnz}")


if __name__ == "__main__":
    main()
