"""Drive the serving subsystem over HTTP: the `repro serve` client.

Two modes:

* ``--port N`` (optionally ``--host``): talk to an already-running
  ``repro serve`` instance — this is what the CI smoke job does.
* no ``--port``: self-hosted — boot a :class:`ReproServer` on an
  ephemeral port inside this process, drive it, and shut it down.  This
  keeps the example runnable headless (the examples CI job executes every
  script with no arguments).

The client fires a burst of concurrent SpGEMM requests against the same
graph (so the micro-batcher coalesces them and the program cache is hit
after the first), one GCN-layer request, and then reads ``/stats`` to
show queue depth, batch sizes, coalescing, and latency percentiles.

Run with:  PYTHONPATH=src python examples/serving_client.py
           PYTHONPATH=src python examples/serving_client.py --port 8077
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
from concurrent.futures import ThreadPoolExecutor


def post(host: str, port: int, path: str, payload: dict) -> tuple[int, dict]:
    connection = http.client.HTTPConnection(host, port, timeout=60)
    try:
        connection.request("POST", path, body=json.dumps(payload),
                           headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def get(host: str, port: int, path: str) -> tuple[int, dict]:
    connection = http.client.HTTPConnection(host, port, timeout=60)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def drive(host: str, port: int, requests: int = 8) -> int:
    status, health = get(host, port, "/healthz")
    print(f"GET /healthz -> {status}  {health}")
    if status != 200:
        return 1

    # A burst of concurrent requests against the same graph: the server
    # coalesces operand-identical specs into one execution per batch.
    def spgemm(index: int) -> tuple[int, dict]:
        return post(host, port, "/v1/spgemm",
                    {"dataset": "wiki-Vote", "max_nodes": 256,
                     "verify": False, "label": f"req-{index}"})

    with ThreadPoolExecutor(max_workers=requests) as pool:
        outcomes = list(pool.map(spgemm, range(requests)))
    for index, (status, row) in enumerate(outcomes):
        print(f"POST /v1/spgemm req-{index} -> {status}  "
              f"cycles={row.get('cycles')}  "
              f"output_nnz={row.get('output_nnz')}  "
              f"cache_hit={row.get('cache_hit')}")
        if status != 200:
            return 1
    cycles = {row["cycles"] for _, row in outcomes}
    if len(cycles) != 1:
        print(f"ERROR: identical requests disagreed on cycles: {cycles}")
        return 1

    status, row = post(host, port, "/v1/gcn",
                       {"dataset": "cora", "max_nodes": 96,
                        "feature_dim": 8, "hidden_dim": 4})
    print(f"POST /v1/gcn -> {status}  total_cycles={row.get('total_cycles')}")
    if status != 200:
        return 1

    status, stats = get(host, port, "/stats")
    print(f"GET /stats -> {status}")
    for key in ("requests", "responses", "batches", "mean_batch_size",
                "coalesced", "cache_hit_rate", "latency_p50_ms",
                "latency_p95_ms"):
        print(f"  {key:>16}: {stats.get(key)}")
    return 0 if status == 200 else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None,
                        help="port of a running `repro serve`; omit to "
                             "self-host an in-process server")
    parser.add_argument("--requests", type=int, default=8,
                        help="size of the concurrent SpGEMM burst")
    args = parser.parse_args()

    if args.port is not None:
        return drive(args.host, args.port, requests=args.requests)

    # Self-hosted mode: boot the whole serving stack in this process.
    from repro.core import Session
    from repro.serve import BackgroundServer, ReproServer

    print("[no --port given: self-hosting a server on an ephemeral port]")
    with Session("Tile-16", backend="analytic") as session:
        server = ReproServer(session, port=0, max_batch=8, max_delay_ms=10)
        with BackgroundServer(server) as background:
            return drive("127.0.0.1", background.port,
                         requests=args.requests)


if __name__ == "__main__":
    sys.exit(main())
