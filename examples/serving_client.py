"""Drive the serving subsystem over HTTP: the `repro serve` client.

Two modes:

* ``--port N`` (optionally ``--host``): talk to an already-running
  ``repro serve`` instance — this is what the CI smoke job does.
* no ``--port``: self-hosted — boot a :class:`ReproServer` on an
  ephemeral port inside this process, drive it, and shut it down.  This
  keeps the example runnable headless (the examples CI job executes every
  script with no arguments).

The client fires a burst of concurrent SpGEMM requests against the same
graph (so the micro-batcher coalesces them and the program cache is hit
after the first), one GCN-layer request, then exercises the operand
registry + binary wire path — register the graph once (a server-side
dataset registration, so this works against a remote server with no
repro import), fire ~100-byte ref requests against the digest, download
the product as a binary ``application/x-repro-csr`` frame — and finally
reads ``/stats`` to show batching, coalescing, latency percentiles, and
the registry / byte counters.

Run with:  PYTHONPATH=src python examples/serving_client.py
           PYTHONPATH=src python examples/serving_client.py --port 8077
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
from concurrent.futures import ThreadPoolExecutor

WIRE_CONTENT_TYPE = "application/x-repro-csr"


def post(host: str, port: int, path: str, payload: dict,
         accept: str | None = None) -> tuple[int, dict]:
    connection = http.client.HTTPConnection(host, port, timeout=60)
    try:
        headers = {"Content-Type": "application/json"}
        if accept:
            headers["Accept"] = accept
        connection.request("POST", path, body=json.dumps(payload),
                           headers=headers)
        response = connection.getresponse()
        body = response.read()
        if response.getheader("Content-Type") == WIRE_CONTENT_TYPE:
            return response.status, {"_binary": body}
        return response.status, json.loads(body)
    finally:
        connection.close()


def put(host: str, port: int, path: str, payload: dict) -> tuple[int, dict]:
    connection = http.client.HTTPConnection(host, port, timeout=60)
    try:
        connection.request("PUT", path, body=json.dumps(payload),
                           headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def get(host: str, port: int, path: str) -> tuple[int, dict]:
    connection = http.client.HTTPConnection(host, port, timeout=60)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def drive(host: str, port: int, requests: int = 8) -> int:
    status, health = get(host, port, "/healthz")
    print(f"GET /healthz -> {status}  {health}")
    if status != 200:
        return 1

    # A burst of concurrent requests against the same graph: the server
    # coalesces operand-identical specs into one execution per batch.
    def spgemm(index: int) -> tuple[int, dict]:
        return post(host, port, "/v1/spgemm",
                    {"dataset": "wiki-Vote", "max_nodes": 256,
                     "verify": False, "label": f"req-{index}"})

    with ThreadPoolExecutor(max_workers=requests) as pool:
        outcomes = list(pool.map(spgemm, range(requests)))
    for index, (status, row) in enumerate(outcomes):
        print(f"POST /v1/spgemm req-{index} -> {status}  "
              f"cycles={row.get('cycles')}  "
              f"output_nnz={row.get('output_nnz')}  "
              f"cache_hit={row.get('cache_hit')}")
        if status != 200:
            return 1
    cycles = {row["cycles"] for _, row in outcomes}
    if len(cycles) != 1:
        print(f"ERROR: identical requests disagreed on cycles: {cycles}")
        return 1

    status, row = post(host, port, "/v1/gcn",
                       {"dataset": "cora", "max_nodes": 96,
                        "feature_dim": 8, "hidden_dim": 4})
    print(f"POST /v1/gcn -> {status}  total_cycles={row.get('total_cycles')}")
    if status != 200:
        return 1

    # --- Operand registry: upload once, reference forever -------------
    # A server-side dataset registration needs no repro import, so this
    # works against a remote `repro serve` too.  The returned ref is the
    # operand's content digest; later requests carry ~100 bytes.
    status, operand = put(host, port, "/v1/operands",
                          {"dataset": "wiki-Vote", "max_nodes": 256})
    print(f"PUT /v1/operands -> {status}  ref={operand.get('ref', '?')[:12]}"
          f"...  bytes={operand.get('bytes')}")
    if status != 200:
        return 1
    ref_body = {"a": {"ref": operand["ref"]}, "verify": False,
                "label": "by-ref"}
    status, row = post(host, port, "/v1/spgemm", ref_body)
    print(f"POST /v1/spgemm (ref, {len(json.dumps(ref_body))} B body) -> "
          f"{status}  cycles={row.get('cycles')}")
    if status != 200 or row.get("cycles") not in cycles:
        print("ERROR: ref request disagreed with the inline burst")
        return 1

    # Same product as a binary frame: the metrics row rides in the frame
    # metadata, the CSR segments as raw little-endian buffers.
    status, row = post(host, port, "/v1/spgemm", ref_body,
                       accept=WIRE_CONTENT_TYPE)
    frame = row.get("_binary", b"")
    print(f"POST /v1/spgemm (Accept: x-repro-csr) -> {status}  "
          f"frame={len(frame)} B")
    if status != 200:
        return 1
    try:  # decode when the repro package is importable (self-hosted / CI)
        from repro.serve.wire import decode_csr

        product, meta = decode_csr(frame)
        print(f"  decoded product: shape={product.shape} nnz={product.nnz} "
              f"meta_cycles={meta.get('cycles')}")
    except ImportError:
        print("  (repro not importable here; skipping frame decode)")

    status, stats = get(host, port, "/stats")
    print(f"GET /stats -> {status}")
    for key in ("requests", "responses", "batches", "mean_batch_size",
                "coalesced", "cache_hit_rate", "latency_p50_ms",
                "latency_p95_ms", "bytes_in", "bytes_out",
                "registry_entries", "registry_hits"):
        print(f"  {key:>16}: {stats.get(key)}")
    return 0 if status == 200 else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None,
                        help="port of a running `repro serve`; omit to "
                             "self-host an in-process server")
    parser.add_argument("--requests", type=int, default=8,
                        help="size of the concurrent SpGEMM burst")
    args = parser.parse_args()

    if args.port is not None:
        return drive(args.host, args.port, requests=args.requests)

    # Self-hosted mode: boot the whole serving stack in this process.
    from repro.core import Session
    from repro.serve import BackgroundServer, ReproServer

    print("[no --port given: self-hosting a server on an ephemeral port]")
    with Session("Tile-16", backend="analytic") as session:
        server = ReproServer(session, port=0, max_batch=8, max_delay_ms=10)
        with BackgroundServer(server) as background:
            return drive("127.0.0.1", background.port,
                         requests=args.requests)


if __name__ == "__main__":
    sys.exit(main())
