"""Design-space exploration: tile sizes, MMH variants and eviction policies.

Reproduces the Section 4 exploration of the paper on a small workload:

* the Tile-4 / Tile-16 / Tile-64 sweep of Figure 11 (six metrics normalised
  to Tile-4);
* the MMH1/2/4/8 instruction-variant comparison of Figure 14;
* the barrier vs rolling eviction comparison of Figure 15.

Run with:  python examples/design_space_exploration.py
"""

from repro import NeuraChip, Session, SweepSpec, load_dataset
from repro.compiler import compile_spgemm
from repro.sim.accelerator import NeuraChipAccelerator
from repro.viz.export import format_table


def tile_size_sweep(dataset) -> None:
    print("\n--- Figure 11: tile configuration sweep (normalised to Tile-4) ---")
    with Session("Tile-4") as session:
        sweep = session.run(SweepSpec(
            a=dataset.adjacency_csr(),
            configs=("Tile-4", "Tile-16", "Tile-64"))).legacy
    rows = [{"config": name, **{metric: round(value, 3)
                                for metric, value in metrics.items()}}
            for name, metrics in sweep.items()]
    print(format_table(rows))


def mmh_variant_sweep(dataset) -> None:
    print("\n--- Figure 14: MMH instruction variants ---")
    a_csc = dataset.adjacency_csc()
    features = dataset.features(dim=16, density=0.4)
    rows = []
    for tile_size in (1, 2, 4, 8):
        program = compile_spgemm(a_csc, features, tile_size=tile_size)
        report = NeuraChipAccelerator(NeuraChip("Tile-16").config).run(
            program, verify=False)
        rows.append({"variant": f"MMH{tile_size}",
                     "instructions": report.mmh_instructions,
                     "avg_cpi": round(report.mmh_cpi_mean, 1),
                     "cycles": report.cycles,
                     "gops": round(report.gops, 2)})
    print(format_table(rows))


def eviction_policy_sweep(dataset) -> None:
    print("\n--- Figure 15: rolling vs barrier eviction ---")
    a_csc = dataset.adjacency_csc()
    features = dataset.features(dim=16, density=0.4)
    program = compile_spgemm(a_csc, features, tile_size=4)
    rows = []
    for mode, label in (("rolling", "HACC-RE"), ("barrier", "HACC-BE")):
        report = NeuraChipAccelerator(NeuraChip("Tile-16").config,
                                      eviction_mode=mode).run(program, verify=False)
        rows.append({"policy": label,
                     "avg_hacc_cpi": round(report.hacc_cpi_mean, 1),
                     "peak_hashpad_lines": report.peak_hashpad_occupancy,
                     "cycles": report.cycles})
    print(format_table(rows))


def main() -> None:
    dataset = load_dataset("cora", max_nodes=192)
    print(f"workload: {dataset.name} ({dataset.n_nodes} nodes, "
          f"{dataset.n_edges} edges)")
    tile_size_sweep(dataset)
    mmh_variant_sweep(dataset)
    eviction_policy_sweep(dataset)


if __name__ == "__main__":
    main()
