"""Cross-platform SpGEMM comparison (a miniature Figure 16 / Table 5).

For a handful of Table-1 datasets, this example measures the workload
structure, evaluates the analytic baseline models (MKL, cuSPARSE, CUSP,
hipSPARSE, OuterSPACE, SpArch, Gamma), runs the NeuraChip cycle simulator on
the same workloads, and prints the speedup of NeuraChip Tile-16 over every
baseline together with the energy/area efficiency rows of Table 5.

Run with:  python examples/spgemm_baseline_comparison.py
"""

from repro import Session, SpGEMMSpec, load_dataset
from repro.arch.config import TILE16
from repro.baselines.accelerators import speedup_table
from repro.baselines.workload import SpGEMMWorkloadStats
from repro.power.model import (
    area_breakdown,
    area_efficiency_gops_per_mm2,
    energy_efficiency_gops_per_watt,
    power_breakdown,
)
from repro.viz.export import format_table

DATASETS = ("facebook", "wiki-Vote", "email-Enron", "p2p-Gnutella31", "scircuit")


def main() -> None:
    datasets = [load_dataset(name, max_nodes=192) for name in DATASETS]
    workloads = [SpGEMMWorkloadStats.from_matrices(ds.name, ds.adjacency_csr())
                 for ds in datasets]

    print("=== workload structure ===")
    print(format_table([{
        "dataset": w.name, "nnz": w.nnz_a, "partial_products": w.partial_products,
        "output_nnz": w.output_nnz, "bloat_pct": round(w.bloat_percent, 1),
    } for w in workloads]))

    print("\n=== NeuraChip Tile-16 speedup over each platform (Figure 16) ===")
    table = speedup_table(workloads)
    rows = []
    for platform, per_dataset in table.items():
        row = {"platform": platform}
        row.update({k: round(v, 1) for k, v in per_dataset.items()})
        rows.append(row)
    print(format_table(rows))

    print("\n=== cycle-simulated NeuraChip on the same workloads ===")
    with Session("Tile-16") as session:
        results = session.map([SpGEMMSpec(a=dataset.adjacency_csr(),
                                          verify=False, source=dataset.name,
                                          label=dataset.name)
                               for dataset in datasets])
    sim_rows = [{"dataset": result.label,
                 "cycles": result.metrics["cycles"],
                 "sim_gops": round(result.report.gops, 2),
                 "power_w": round(result.power_w, 2)}
                for result in results]
    print(format_table(sim_rows))

    print("\n=== Table 5 efficiency rows for NeuraChip Tile-16 ===")
    sustained = 24.75  # paper-calibrated sustained GOP/s of the Tile-16 model
    area = area_breakdown(TILE16).total_area_mm2
    power = power_breakdown(TILE16).total_power_w
    print(format_table([{
        "area_mm2": round(area, 2),
        "power_w": round(power, 2),
        "energy_efficiency_gops_per_w": round(
            energy_efficiency_gops_per_watt(sustained, power), 3),
        "area_efficiency_gops_per_mm2": round(
            area_efficiency_gops_per_mm2(sustained, area), 3),
    }]))


if __name__ == "__main__":
    main()
