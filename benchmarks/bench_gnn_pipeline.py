"""GNN stack amortization benchmark: compile-once vs layer-at-a-time.

Runs :class:`~repro.core.specs.GNNModelSpec` stacks of depth 1/2/4/8 over
the 2000-node Barabasi-Albert acceptance graph (attach=8, the same graph
``bench_partition`` uses) at a uniform feature width of 32, so every layer
of a stack shares one compiled aggregation program.  Per depth it records:

* wall time per layer — the amortization headline: depth-1 pays the full
  normalise + compile cost for a single layer, depth-8 pays it once for
  eight, so per-layer cost falls as the stack deepens;
* ``amortization_x`` — depth-1 per-layer wall time over this depth's;
* ``compiles`` — must be exactly 1 at every depth (one program per
  resident graph, re-bound to each layer's values);
* modelled ``cycles_per_layer`` and the pipelined-batches speedup.

Each depth gets a fresh :class:`Session` and a cleared adjacency memo so
no warmth leaks between points.  The depth-1 and depth-8 outputs are
byte-checked against the chained layer-at-a-time ``GCNLayerSpec``
reference — divergence is a hard failure, amortizing must not change a
single bit.

``--smoke`` runs the same configuration for CI and *asserts* the
regression guards: depth-8 per-layer wall time must be at least
``SMOKE_AMORTIZATION_FLOOR``x (2x) better than depth-1, every depth must
compile exactly once, and the stacked outputs must equal the chained
reference, else exit nonzero.

Run with:  PYTHONPATH=src python benchmarks/bench_gnn_pipeline.py
           PYTHONPATH=src python benchmarks/bench_gnn_pipeline.py --smoke
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from _harness import emit
from repro.core import Session
from repro.core.specs import GCNLayerSpec, GNNModelSpec
from repro.datasets import barabasi_albert_graph
from repro.gnn import clear_adjacency_cache

NODES = 2000
ATTACH = 8
GRAPH_SEED = 3
WIDTH = 32
DEPTHS = (1, 2, 4, 8)
CONFIG = "Tile-16"
SEED = 7

#: CI regression guard: depth-8 per-layer wall time must beat depth-1 by
#: at least this factor (the ISSUE acceptance threshold).
SMOKE_AMORTIZATION_FLOOR = 2.0


def chained_reference(session: Session, adjacency, depth: int) -> np.ndarray:
    """Layer-at-a-time ground truth with the stack's exact weight seeds."""
    x = None
    for index in range(depth):
        result = session.run(GCNLayerSpec(
            dataset=adjacency, feature_dim=WIDTH, hidden_dim=WIDTH,
            seed=SEED, features=x, weight_seed=SEED + 1 + index,
            verify=False, label=f"chain[{index}]"))
        x = result.output
    return x


def run() -> tuple[list[dict], list[str]]:
    adjacency = barabasi_albert_graph(NODES, ATTACH, seed=GRAPH_SEED)
    rows: list[dict] = []
    failures: list[str] = []
    base_per_layer = None
    for depth in DEPTHS:
        clear_adjacency_cache()
        with Session(CONFIG, backend="analytic") as session:
            start = time.perf_counter()
            result = session.run(GNNModelSpec(
                dataset=adjacency, layer_dims=(WIDTH,) * depth,
                feature_dim=WIDTH, seed=SEED, verify=False,
                label=f"ba{NODES}-d{depth}"))
            wall = time.perf_counter() - start
            metrics = result.metrics
            per_layer_ms = wall * 1e3 / depth
            if base_per_layer is None:
                base_per_layer = per_layer_ms
            if metrics["compiles"] != 1:
                failures.append(f"depth {depth}: expected exactly 1 compile "
                                f"per resident graph, got "
                                f"{metrics['compiles']}")
            if depth in (DEPTHS[0], DEPTHS[-1]):
                reference = chained_reference(session, adjacency, depth)
                if not np.array_equal(result.output, reference):
                    failures.append(f"depth {depth}: stacked output diverges "
                                    f"from the chained reference")
            rows.append({
                "depth": depth,
                "wall_ms": round(wall * 1e3, 2),
                "wall_ms_per_layer": round(per_layer_ms, 2),
                "amortization_x": round(base_per_layer / per_layer_ms, 2),
                "compiles": metrics["compiles"],
                "cycles_per_layer": metrics["cycles_per_layer"],
                "pipeline_speedup": metrics["pipeline_speedup"],
                "output_shape": metrics["output_shape"],
            })
    return rows, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: fail on the amortization / identity "
                             "guards instead of just reporting")
    args = parser.parse_args(argv)

    rows, failures = run()
    emit("bench_gnn_pipeline", rows, extra_json={
        "nodes": NODES, "attach": ATTACH, "width": WIDTH,
        "config": CONFIG, "depths": list(DEPTHS), "rows": rows,
        "amortization_floor": SMOKE_AMORTIZATION_FLOOR,
    })

    deepest = rows[-1]
    if deepest["amortization_x"] < SMOKE_AMORTIZATION_FLOOR:
        failures.append(
            f"depth-{deepest['depth']} amortization "
            f"{deepest['amortization_x']}x is below the "
            f"{SMOKE_AMORTIZATION_FLOOR}x floor")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if args.smoke and failures:
        return 1
    if failures:
        print("(non-smoke run: guards reported but not enforced)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
