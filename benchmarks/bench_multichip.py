"""Multi-chip scale-out benchmark: the 1/2/4/8-chip scaling curve.

Runs one SpGEMM (A @ A) on a synthetic power-law graph through the
``multichip`` backend at increasing chip counts and records, per point:

* aggregate cycle-model cycles (max over chips + host reduce term + the
  cold-run B-broadcast term) and the speedup over the single-chip
  unsharded analytic run;
* scale-out efficiency (speedup / chips) and shard skew;
* the analytic fast path's *predicted* speedup / efficiency (from the
  per-shard partial-product histogram alone, no compile / no simulation)
  next to the measured value, so the fast path's trust region is tracked
  across PRs;
* a byte-identity check of the reduced output against the single-chip
  product.

Results land in ``benchmarks/results/bench_multichip.json`` — the same
record-don't-assert contract ``bench_kernels.py`` and ``bench_compiler.py``
keep.  The acceptance bar for the scale-out story is a >= 1.5x cycle-model
speedup at 4 chips on the 2000-node graph.

Run with:  PYTHONPATH=src python benchmarks/bench_multichip.py [--nodes 2000]
           PYTHONPATH=src python benchmarks/bench_multichip.py --smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.backends import predict_scaleout
from repro.core import Session, SpGEMMSpec
from repro.datasets import load_dataset

RESULTS_PATH = Path(__file__).parent / "results" / "bench_multichip.json"


def run(nodes: int, chip_counts: list[int], dataset: str = "wiki-Vote",
        config: str = "Tile-16", seed: int = 0) -> dict:
    """Benchmark the scaling curve on one synthetic graph."""
    graph = load_dataset(dataset, max_nodes=nodes, seed=seed)
    a = graph.adjacency_csr()

    with Session(config, backend="analytic") as session:
        start = time.perf_counter()
        baseline = session.run(SpGEMMSpec(a=a, verify=False,
                                          label="single-chip"))
        baseline_wall = time.perf_counter() - start

    record = {
        "dataset": dataset,
        "nodes": graph.n_nodes,
        "edges": graph.n_edges,
        "config": config,
        "python_version": platform.python_version(),
        "baseline_cycles": baseline.metrics["cycles"],
        "baseline_wall_s": round(baseline_wall, 4),
        "partial_products": baseline.metrics["partial_products"],
        "output_nnz": baseline.metrics["output_nnz"],
        "scaling": [],
    }
    for chips in chip_counts:
        prediction = predict_scaleout(a, chips)
        with Session(config, backend="multichip", chips=chips) as session:
            start = time.perf_counter()
            result = session.run(SpGEMMSpec(a=a, verify=False,
                                            label=f"{chips}-chip"))
            wall = time.perf_counter() - start
        identical = (
            np.array_equal(result.output.indptr, baseline.output.indptr)
            and np.array_equal(result.output.indices,
                               baseline.output.indices)
            and np.array_equal(result.output.data, baseline.output.data))
        speedup = record["baseline_cycles"] / result.metrics["cycles"]
        counters = result.report.counters
        record["scaling"].append({
            "chips": chips,
            "cycles": result.metrics["cycles"],
            "speedup": round(speedup, 3),
            "efficiency": round(speedup / chips, 4),
            "shard_skew": counters["multichip.shard_skew"],
            "reduce_cycles": counters["multichip.reduce_cycles"],
            "broadcast_cycles": counters["multichip.broadcast_cycles"],
            "predicted_speedup": prediction["predicted_speedup"],
            "predicted_efficiency": prediction["efficiency"],
            "power_w": round(result.power_w, 2),
            "wall_s": round(wall, 4),
            "byte_identical": bool(identical),
        })
    by_chips = {point["chips"]: point for point in record["scaling"]}
    if 4 in by_chips:
        record["speedup_at_4_chips"] = by_chips[4]["speedup"]
    return record


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=2000,
                        help="synthetic graph size (default: 2000)")
    parser.add_argument("--dataset", default="wiki-Vote")
    parser.add_argument("--config", default="Tile-16")
    parser.add_argument("--chips", type=int, nargs="*",
                        default=[1, 2, 4, 8],
                        help="chip counts to sweep (default: 1 2 4 8)")
    parser.add_argument("--smoke", action="store_true",
                        help="small fast configuration for CI "
                             "(300 nodes, 1/2/4 chips, no result file)")
    parser.add_argument("--output", default=str(RESULTS_PATH))
    args = parser.parse_args()

    if args.smoke:
        args.nodes = 300
        args.chips = [1, 2, 4]

    record = run(args.nodes, args.chips, dataset=args.dataset,
                 config=args.config)

    print(f"{record['dataset']}  nodes={record['nodes']}  "
          f"edges={record['edges']}  config={record['config']}  "
          f"baseline cycles={record['baseline_cycles']}")
    for point in record["scaling"]:
        print(f"chips={point['chips']:2d}  cycles={point['cycles']:12.1f}  "
              f"speedup={point['speedup']:6.2f}x  "
              f"eff={point['efficiency']:6.3f}  "
              f"predicted={point['predicted_speedup']:6.2f}x  "
              f"skew={point['shard_skew']:6.3f}  "
              f"identical={point['byte_identical']}")
    if not all(point["byte_identical"] for point in record["scaling"]):
        print("ERROR: multichip output diverged from the single-chip product")
        return 1

    if args.smoke:
        print("[smoke mode: results not saved]")
        return 0
    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"[saved {output}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
