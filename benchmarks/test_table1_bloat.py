"""Table 1: SpGEMM memory-bloat analysis across the hyper-sparse dataset suite.

Regenerates, for every Table-1 dataset (synthetic stand-in at reduced scale),
the node count, edge count, sparsity and bloat percentage of the A @ A
workload, and compares the measured bloat against the paper's value for the
real matrix.
"""

import numpy as np
import pytest

from repro.datasets.suite import TABLE1_SUITE, degree_statistics
from repro.sparse.bloat import analytic_bloat_estimate, bloat_report

from _harness import emit


@pytest.fixture(scope="module")
def bloat_rows(table1_datasets):
    rows = []
    for dataset in table1_datasets:
        report = bloat_report(dataset.name, dataset.adjacency_csr())
        spec = TABLE1_SUITE[dataset.name]
        degree_cv = degree_statistics(dataset.adjacency)["degree_cv"]
        rows.append({
            "dataset": dataset.name,
            "nodes": report.node_count,
            "edges": report.edge_count,
            "sparsity_pct": round(report.sparsity_percent, 4),
            "bloat_pct": round(report.bloat_percent, 2),
            "analytic_estimate_pct": round(
                analytic_bloat_estimate(report.node_count, report.edge_count,
                                        degree_cv), 2),
            "paper_bloat_pct": spec.paper_bloat_percent,
            "paper_nodes": spec.paper_nodes,
            "paper_scale_estimate_pct": round(
                analytic_bloat_estimate(spec.paper_nodes, spec.paper_edges,
                                        degree_cv), 2),
        })
    return rows


def test_table1_memory_bloat(benchmark, bloat_rows, table1_datasets):
    """Time one bloat analysis and regenerate the full Table 1."""
    sample = table1_datasets[0]
    benchmark.pedantic(bloat_report, args=(sample.name, sample.adjacency_csr()),
                       rounds=3, iterations=1)
    emit("table1_bloat", bloat_rows)

    bloats = {row["dataset"]: row["bloat_pct"] for row in bloat_rows}
    assert len(bloats) == 20
    # Memory bloat is prevalent: every A @ A workload produces more partial
    # products than output non-zeros (the premise of the rolling-eviction
    # mechanism).
    assert all(value > 0.0 for value in bloats.values())

    # Extremes of the paper's ordering survive the scale reduction: facebook
    # (2872% in the paper) bloats far more than the paper's two least-bloated
    # datasets (p2p-Gnutella31 at 10.2% and patents_main at 14.2%).
    assert bloats["facebook"] > bloats["p2p-Gnutella31"]
    assert bloats["facebook"] > bloats["patents_main"]
    assert bloats["facebook"] > bloats["cit-Patents"]

    # At paper scale the closed-form density/skew estimate singles out
    # facebook as by far the most bloat-prone workload, matching the paper's
    # outlier; full structural rank agreement is not expected at reduced scale
    # (see EXPERIMENTS.md).
    estimates = {row["dataset"]: row["paper_scale_estimate_pct"]
                 for row in bloat_rows}
    assert estimates["facebook"] == max(estimates.values())
