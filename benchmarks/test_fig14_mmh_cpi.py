"""Figure 14: CPI histograms of the MMH1 / MMH2 / MMH4 / MMH8 instruction
variants on the Cora workload (Tile-16).

The paper reports rising average CPI with tile size (91, 123, 295, 877 cycles)
because a wider MMH waits on more operands and dispatches more HACCs, while
fewer instructions are needed overall; MMH4 is chosen as the sweet spot.
"""

import pytest

from repro.arch.config import TILE16
from repro.compiler import compile_spgemm
from repro.sim.accelerator import NeuraChipAccelerator

from _harness import emit

_TILE_SIZES = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def mmh_cpi_results(cora_sim):
    a_csc = cora_sim.adjacency_csc()
    features = cora_sim.features(dim=16, density=0.4)
    results = {}
    for tile_size in _TILE_SIZES:
        program = compile_spgemm(a_csc, features, tile_size=tile_size,
                                 source=f"cora-MMH{tile_size}")
        report = NeuraChipAccelerator(TILE16).run(program, verify=False)
        results[tile_size] = report
    return results


def test_fig14_mmh_variant_cpi_histograms(benchmark, cora_sim, mmh_cpi_results):
    """Time the MMH4 run and regenerate the CPI histogram series."""
    a_csc = cora_sim.adjacency_csc()
    features = cora_sim.features(dim=16, density=0.4)
    program = compile_spgemm(a_csc, features, tile_size=4)
    benchmark.pedantic(NeuraChipAccelerator(TILE16).run, args=(program,),
                       kwargs={"verify": False}, rounds=1, iterations=1)

    rows = []
    histogram_json = {}
    for tile_size, report in mmh_cpi_results.items():
        rows.append({
            "variant": f"MMH{tile_size}",
            "avg_cpi": round(report.mmh_cpi_mean, 1),
            "instructions": report.mmh_instructions,
            "cycles": report.cycles,
            "gops": round(report.gops, 3),
        })
        histogram_json[f"MMH{tile_size}"] = report.mmh_cpi_histogram.as_dict()
    emit("fig14_mmh_cpi", rows, extra_json=histogram_json)

    # Shape checks: average CPI rises monotonically with the MMH tile size
    # (paper: 91 -> 123 -> 295 -> 877) while the instruction count falls.
    cpis = [mmh_cpi_results[t].mmh_cpi_mean for t in _TILE_SIZES]
    counts = [mmh_cpi_results[t].mmh_instructions for t in _TILE_SIZES]
    assert cpis == sorted(cpis)
    assert counts == sorted(counts, reverse=True)
    # Histograms cover every retired instruction.
    for tile_size, report in mmh_cpi_results.items():
        assert report.mmh_cpi_histogram.total_observations == report.mmh_instructions
