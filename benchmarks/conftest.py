"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Results are
printed as text tables and also written to ``benchmarks/results/`` as CSV/JSON
so they can be inspected after the run (the NeuraViz replacement).

The dataset scale is deliberately small (hundreds of nodes) so the pure-Python
cycle simulator finishes each figure in seconds; EXPERIMENTS.md records how
the scaled results compare to the paper's.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from _harness import SIM_MAX_NODES, STATS_MAX_NODES  # noqa: E402

from repro.datasets import load_dataset  # noqa: E402


@pytest.fixture(scope="session")
def cora_sim():
    """The Cora workload used by the DSE figures (11, 14, 15)."""
    return load_dataset("cora", max_nodes=SIM_MAX_NODES, seed=11)


@pytest.fixture(scope="session")
def table1_datasets():
    """All 20 Table-1 datasets at statistics scale."""
    from repro.datasets.suite import TABLE1_SUITE

    return [load_dataset(name, max_nodes=STATS_MAX_NODES, seed=1)
            for name in sorted(TABLE1_SUITE)]
