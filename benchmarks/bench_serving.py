"""Serving benchmark: micro-batched throughput / latency vs batch size.

Boots the full serving stack (bounded queue -> micro-batcher ->
``Session`` -> asyncio HTTP front-end) in-process and drives it with a
closed-loop HTTP client at increasing micro-batch sizes.  ``max_batch=1``
is the baseline the ISSUE acceptance bar names: single-request
round-trips, one in flight at a time.  Larger points allow ``max_batch``
concurrent in-flight requests which the server coalesces into
micro-batches, so the measured speedup is exactly what micro-batching
buys (request coalescing + program-cache amortisation + one dispatch per
batch instead of per request).

Per point the record keeps: wall time, requests/s, speedup over the
single-request baseline, mean served batch size, coalesced-request count,
and p50/p95 server-side latency.  A byte-identity probe asserts that a
served product equals the direct ``Session.run`` product array for array.

Results land in ``benchmarks/results/bench_serving.json`` — the same
record-don't-assert contract the other benches keep.  The acceptance bar
for the serving story is >= 2x throughput at ``max_batch=8`` over
single-request round-trips on the 2000-node graph.

Run with:  PYTHONPATH=src python benchmarks/bench_serving.py [--nodes 2000]
           PYTHONPATH=src python benchmarks/bench_serving.py --smoke
"""

from __future__ import annotations

import argparse
import http.client
import json
import platform
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.core import Session, SpGEMMSpec
from repro.datasets import load_dataset
from repro.serve import BackgroundServer, ReproServer

RESULTS_PATH = Path(__file__).parent / "results" / "bench_serving.json"


def _post(host: str, port: int, connection: http.client.HTTPConnection,
          payload: dict) -> dict:
    connection.request("POST", "/v1/spgemm", body=json.dumps(payload),
                       headers={"Content-Type": "application/json"})
    response = connection.getresponse()
    body = json.loads(response.read())
    if response.status != 200:
        raise RuntimeError(f"serving request failed: {response.status} "
                           f"{body}")
    return body


def _get(host: str, port: int, path: str) -> dict:
    connection = http.client.HTTPConnection(host, port, timeout=120)
    try:
        connection.request("GET", path)
        return json.loads(connection.getresponse().read())
    finally:
        connection.close()


def bench_point(session: Session, dataset: str, nodes: int, seed: int,
                max_batch: int, n_requests: int,
                max_delay_ms: float) -> dict:
    """One serving configuration: fresh server + stats, warm session."""
    server = ReproServer(session, port=0, max_batch=max_batch,
                         max_delay_ms=max_delay_ms)
    with BackgroundServer(server) as background:
        host, port = "127.0.0.1", background.port
        payload = {"dataset": dataset, "max_nodes": nodes, "seed": seed,
                   "verify": False}

        # Untimed warm-up: server-side dataset synthesis + program compile
        # happen here, so every timed point measures a warm cache (the
        # steady state a long-lived server runs in).
        warm = http.client.HTTPConnection(host, port, timeout=120)
        _post(host, port, warm, {**payload, "label": "warmup"})
        warm.close()

        concurrency = max_batch  # closed loop: max_batch in flight

        def worker(worker_id: int) -> int:
            connection = http.client.HTTPConnection(host, port, timeout=120)
            served = 0
            try:
                for index in range(worker_id, n_requests, concurrency):
                    _post(host, port, connection,
                          {**payload, "label": f"b{max_batch}-r{index}"})
                    served += 1
            finally:
                connection.close()
            return served

        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=concurrency) as pool:
            served = sum(pool.map(worker, range(concurrency)))
        wall = time.perf_counter() - start
        assert served == n_requests
        stats = _get(host, port, "/stats")
    return {
        "max_batch": max_batch,
        "requests": n_requests,
        "wall_s": round(wall, 4),
        "throughput_rps": round(n_requests / wall, 2),
        "mean_batch_size": stats["mean_batch_size"],
        "coalesced": stats["coalesced"],
        "latency_p50_ms": stats["latency_p50_ms"],
        "latency_p95_ms": stats["latency_p95_ms"],
    }


def byte_identity_probe(session: Session, dataset: str, nodes: int,
                        seed: int) -> bool:
    """A served product must equal the direct Session.run product,
    array for array."""
    adjacency = load_dataset(dataset, max_nodes=nodes,
                             seed=seed).adjacency_csr()
    direct = session.run(SpGEMMSpec(a=adjacency, verify=False,
                                    label="direct"))
    server = ReproServer(session, port=0, max_batch=1)
    with BackgroundServer(server) as background:
        connection = http.client.HTTPConnection("127.0.0.1",
                                                background.port, timeout=120)
        row = _post("127.0.0.1", background.port, connection,
                    {"dataset": dataset, "max_nodes": nodes, "seed": seed,
                     "verify": False, "include_output": True})
        connection.close()
    served = row["output"]
    return (np.array_equal(np.asarray(served["indptr"]),
                           direct.output.indptr)
            and np.array_equal(np.asarray(served["indices"]),
                               direct.output.indices)
            and np.array_equal(np.asarray(served["data"]),
                               direct.output.data))


def run(nodes: int, batch_sizes: list[int], n_requests: int,
        dataset: str = "wiki-Vote", config: str = "Tile-16",
        seed: int = 0, max_delay_ms: float = 5.0) -> dict:
    record = {
        "dataset": dataset,
        "nodes": nodes,
        "config": config,
        "requests_per_point": n_requests,
        "max_delay_ms": max_delay_ms,
        "python_version": platform.python_version(),
        "workload": "operand-identical requests with distinct labels "
                    "(the coalescing + cache-amortisation case)",
        "points": [],
    }
    with Session(config, backend="analytic") as session:
        record["byte_identical"] = byte_identity_probe(session, dataset,
                                                       nodes, seed)
        for max_batch in batch_sizes:
            point = bench_point(session, dataset, nodes, seed, max_batch,
                                n_requests, max_delay_ms)
            record["points"].append(point)
    baseline = next((p for p in record["points"] if p["max_batch"] == 1),
                    None)
    for point in record["points"]:
        point["speedup"] = (round(point["throughput_rps"]
                                  / baseline["throughput_rps"], 3)
                            if baseline else None)
    by_batch = {point["max_batch"]: point for point in record["points"]}
    if 8 in by_batch and baseline:
        record["speedup_at_batch_8"] = by_batch[8]["speedup"]
    return record


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=2000,
                        help="synthetic graph size (default: 2000)")
    parser.add_argument("--dataset", default="wiki-Vote")
    parser.add_argument("--config", default="Tile-16")
    parser.add_argument("--requests", type=int, default=48,
                        help="requests per measured point (default: 48)")
    parser.add_argument("--batches", type=int, nargs="*",
                        default=[1, 2, 4, 8, 16],
                        help="max_batch sizes to sweep (default: 1 2 4 8 16)")
    parser.add_argument("--smoke", action="store_true",
                        help="small fast configuration for CI "
                             "(300 nodes, 12 requests, batches 1 and 4, "
                             "no result file)")
    parser.add_argument("--output", default=str(RESULTS_PATH))
    args = parser.parse_args()

    if args.smoke:
        args.nodes = 300
        args.requests = 12
        args.batches = [1, 4]

    record = run(args.nodes, args.batches, args.requests,
                 dataset=args.dataset, config=args.config)

    print(f"{record['dataset']}  nodes={record['nodes']}  "
          f"config={record['config']}  requests={record['requests_per_point']}"
          f"  byte_identical={record['byte_identical']}")
    for point in record["points"]:
        speedup = ("   n/a " if point["speedup"] is None
                   else f"{point['speedup']:6.2f}x")
        print(f"max_batch={point['max_batch']:3d}  "
              f"throughput={point['throughput_rps']:8.1f} req/s  "
              f"speedup={speedup}  "
              f"mean_batch={point['mean_batch_size']:5.2f}  "
              f"coalesced={point['coalesced']:4d}  "
              f"p50={point['latency_p50_ms']:7.2f}ms  "
              f"p95={point['latency_p95_ms']:7.2f}ms")
    if not record["byte_identical"]:
        print("ERROR: served output diverged from direct Session.run")
        return 1

    if args.smoke:
        print("[smoke mode: results not saved]")
        return 0
    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"[saved {output}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
