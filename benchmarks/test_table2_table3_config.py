"""Tables 2 and 3: per-component and chip-level configuration of the three
NeuraChip tile sizes.

These tables are configuration transcriptions rather than measurements; the
benchmark regenerates them from the :mod:`repro.arch.config` dataclasses and
checks every derived total against the values printed in the paper.
"""

import pytest

from repro.arch.config import all_spgemm_configs

from _harness import emit

_PAPER_TABLE3 = {
    "Tile-4": {"Total NeuraCores": 8, "Total NeuraMems": 8, "Total Routers": 32,
               "Total Pipelines": 32, "Total Hash-Engines": 16,
               "Total TAG comparators": 32, "Total HashPad Size (MB)": 0.75,
               "Pipeline Register File (bits)": 512},
    "Tile-16": {"Total NeuraCores": 32, "Total NeuraMems": 32, "Total Routers": 64,
                "Total Pipelines": 128, "Total Hash-Engines": 128,
                "Total TAG comparators": 512, "Total HashPad Size (MB)": 3.0,
                "Pipeline Register File (bits)": 1024},
    "Tile-64": {"Total NeuraCores": 128, "Total NeuraMems": 128,
                "Total Routers": 256, "Total Pipelines": 512,
                "Total Hash-Engines": 1024, "Total TAG comparators": 8192,
                "Total HashPad Size (MB)": 12.0,
                "Pipeline Register File (bits)": 2048},
}


def test_table2_and_table3_configuration(benchmark):
    """Regenerate both configuration tables and compare against the paper."""
    configs = all_spgemm_configs()
    benchmark.pedantic(lambda: [c.table3_rows() for c in configs],
                       rounds=10, iterations=1)

    table2_rows = []
    table3_rows = []
    for config in configs:
        for key, value in config.table2_rows().items():
            table2_rows.append({"config": config.name, "parameter": key,
                                "value": value})
        for key, value in config.table3_rows().items():
            table3_rows.append({"config": config.name, "parameter": key,
                                "value": value})
    emit("table2_component_config", table2_rows)
    emit("table3_chip_config", table3_rows)

    for config in configs:
        rows = config.table3_rows()
        for key, expected in _PAPER_TABLE3[config.name].items():
            assert rows[key] == pytest.approx(expected), (config.name, key)
        assert rows["Tile Count"] == 8
        assert rows["Memory Controller Count"] == 8
        assert rows["Max frequency (GHz)"] == 1.0
