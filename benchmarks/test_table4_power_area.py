"""Table 4: NeuraChip power and area breakdown for SpGEMM workloads.

Regenerates the per-unit area and power of the three tile configurations from
the calibrated model, and additionally reports the activity-scaled power of a
real simulated SpGEMM run (the measurement conditions the paper's averages
represent).
"""

import pytest

from repro.arch.config import all_spgemm_configs
from repro.core.api import NeuraChip
from repro.power.model import TABLE4_REFERENCE, area_breakdown, power_breakdown

from _harness import emit


@pytest.fixture(scope="module")
def activity_power(cora_sim):
    """Power of each configuration while running the Cora SpGEMM workload."""
    results = {}
    for config in all_spgemm_configs():
        chip = NeuraChip(config)
        run = chip.run_spgemm(cora_sim.adjacency_csr(), verify=False,
                              source="cora")
        results[config.name] = {
            "workload_power_w": run.power_w,
            "energy_j": run.energy_j,
            "cycles": run.report.cycles,
        }
    return results


def test_table4_power_and_area_breakdown(benchmark, activity_power):
    """Regenerate Table 4 and compare every entry against the paper."""
    configs = all_spgemm_configs()
    benchmark.pedantic(lambda: [area_breakdown(c) for c in configs],
                       rounds=10, iterations=1)

    rows = []
    for config in configs:
        area = area_breakdown(config)
        power = power_breakdown(config)
        for unit in area.area_mm2:
            rows.append({
                "config": config.name,
                "unit": unit,
                "area_mm2": round(area.area_mm2[unit], 2),
                "power_w": round(power.power_w[unit], 2),
                "paper_area_mm2": TABLE4_REFERENCE[unit][config.name][0],
                "paper_power_w": TABLE4_REFERENCE[unit][config.name][1],
            })
        rows.append({
            "config": config.name, "unit": "Total",
            "area_mm2": round(area.total_area_mm2, 2),
            "power_w": round(power.total_power_w, 2),
            "paper_area_mm2": TABLE4_REFERENCE["Total"][config.name][0],
            "paper_power_w": TABLE4_REFERENCE["Total"][config.name][1],
        })
    emit("table4_power_area", rows, extra_json=activity_power)

    # Every modelled entry must land on the paper's synthesis value.
    for row in rows:
        assert row["area_mm2"] == pytest.approx(row["paper_area_mm2"], abs=0.05)
        assert row["power_w"] == pytest.approx(row["paper_power_w"], abs=0.05)

    # Activity-scaled power during a real run stays at or below the Table 4
    # average (the simulator's utilisation is below 100%), and grows with the
    # tile size.
    totals = {c.name: TABLE4_REFERENCE["Total"][c.name][1] for c in configs}
    for name, measured in activity_power.items():
        assert measured["workload_power_w"] <= totals[name] + 1e-6
    assert activity_power["Tile-64"]["workload_power_w"] > \
        activity_power["Tile-4"]["workload_power_w"]
