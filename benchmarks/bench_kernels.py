"""Micro-benchmark: python vs numpy SpGEMM kernel throughput.

Times every (dataflow, impl) pair on a synthetic power-law graph and writes
the results — wall time, partial-product throughput, and the numpy speedup
per dataflow — to ``benchmarks/results/bench_kernels.json`` so the
performance trajectory of the kernel layer is tracked across PRs.

The acceptance bar for the kernel layer is a >= 10x numpy speedup on a
2000-node graph; the script asserts nothing, it just records, but the
summary prints the per-dataflow speedups for quick inspection.

Run with:  PYTHONPATH=src python benchmarks/bench_kernels.py [--nodes 2000]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.datasets import load_dataset
from repro.sparse import kernels

RESULTS_PATH = Path(__file__).parent / "results" / "bench_kernels.json"


def _time_kernel(a, flow: str, impl: str, max_repeats: int = 7,
                 budget_seconds: float = 3.0) -> tuple[float, object]:
    """Best-of-N wall time; stops repeating once the time budget is spent."""
    best = float("inf")
    spent = 0.0
    result = None
    for _ in range(max_repeats):
        start = time.perf_counter()
        result = kernels.spgemm(a, a, flow, impl)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        spent += elapsed
        if spent >= budget_seconds:
            break
    return best, result


def run(nodes: int, dataset: str = "wiki-Vote", seed: int = 0) -> dict:
    """Benchmark every registered kernel on one synthetic graph."""
    graph = load_dataset(dataset, max_nodes=nodes, seed=seed)
    a = graph.adjacency_csr()
    kernels.spgemm(a, a, "row_wise", "numpy")  # warm caches / allocators
    record = {
        "dataset": dataset,
        "nodes": graph.n_nodes,
        "edges": graph.n_edges,
        "python_version": platform.python_version(),
        "kernels": {},
        "speedup": {},
    }
    for flow in kernels.DATAFLOWS:
        timings = {}
        for impl in kernels.IMPLS:
            seconds, result = _time_kernel(a, flow, impl)
            timings[impl] = {
                "seconds": round(seconds, 6),
                "partial_products": result.partial_products,
                "partial_products_per_second": round(
                    result.partial_products / seconds) if seconds > 0 else 0,
            }
        record["kernels"][flow] = timings
        record["speedup"][flow] = round(
            timings["python"]["seconds"] / timings["numpy"]["seconds"], 1)
    speedups = list(record["speedup"].values())
    product = 1.0
    for value in speedups:
        product *= value
    record["speedup_geomean"] = round(product ** (1.0 / len(speedups)), 1)
    total_python = sum(t["python"]["seconds"]
                       for t in record["kernels"].values())
    total_numpy = sum(t["numpy"]["seconds"]
                      for t in record["kernels"].values())
    record["speedup_overall"] = round(total_python / total_numpy, 1)
    record["speedup_neurachip_dataflow"] = record["speedup"]["tiled_gustavson"]
    return record


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=2000,
                        help="synthetic graph size (default: 2000)")
    parser.add_argument("--dataset", default="wiki-Vote")
    parser.add_argument("--output", default=str(RESULTS_PATH))
    args = parser.parse_args()

    record = run(args.nodes, dataset=args.dataset)
    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(record, indent=2) + "\n")

    print(f"{record['dataset']}  nodes={record['nodes']}  "
          f"edges={record['edges']}")
    for flow, timings in record["kernels"].items():
        print(f"{flow:16s}  python {timings['python']['seconds']:9.4f}s  "
              f"numpy {timings['numpy']['seconds']:9.4f}s  "
              f"speedup {record['speedup'][flow]:7.1f}x")
    print(f"geomean {record['speedup_geomean']}x  "
          f"overall {record['speedup_overall']}x  "
          f"neurachip dataflow {record['speedup_neurachip_dataflow']}x")
    print(f"[saved {output}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
