"""Figure 11: architectural impact of the tile configuration on the Cora GCN.

Runs the GCN aggregation phase of Cora on Tile-4, Tile-16 and Tile-64 and
reports the six metrics of the figure — stall cycles, CPI, IPC, in-flight
memory instructions, power and busy cycles — normalised to Tile-4, exactly as
the paper plots them.
"""

import pytest

from repro.core.api import NeuraChip
from repro.gnn.gcn import GCNWorkload

from _harness import emit

_CONFIG_NAMES = ("Tile-4", "Tile-16", "Tile-64")
_METRICS = ("stall_cycles", "cpi", "ipc", "in_flight_instx", "power", "busy_cycles")


@pytest.fixture(scope="module")
def tile_sweep_results(cora_sim):
    workload = GCNWorkload.build(cora_sim, feature_dim=16, hidden_dim=8)
    raw = {}
    for name in _CONFIG_NAMES:
        chip = NeuraChip(name)
        result = chip.run_gcn_layer(cora_sim, feature_dim=16, hidden_dim=8,
                                    verify=False)
        report = result.aggregation.report
        raw[name] = {
            "stall_cycles": report.stall_cycles,
            "cpi": report.cpi,
            "ipc": report.ipc,
            "in_flight_instx": report.avg_inflight_mem,
            "power": result.aggregation.power_w,
            "busy_cycles": report.busy_cycles,
            "cycles": report.cycles,
        }
    del workload
    return raw


def test_fig11_tile_configuration_sweep(benchmark, cora_sim, tile_sweep_results):
    """Time one Tile-4 aggregation run and regenerate the Figure 11 series."""
    chip = NeuraChip("Tile-4")
    benchmark.pedantic(chip.run_gcn_layer, args=(cora_sim,),
                       kwargs={"feature_dim": 16, "hidden_dim": 8, "verify": False},
                       rounds=1, iterations=1)

    base = tile_sweep_results["Tile-4"]
    rows = []
    for name in _CONFIG_NAMES:
        row = {"config": name}
        for metric in _METRICS:
            value = tile_sweep_results[name][metric]
            row[metric] = round(value, 3)
            row[f"{metric}_norm"] = round(value / base[metric], 3) if base[metric] else 0.0
        rows.append(row)
    emit("fig11_tile_sweep", rows, extra_json=tile_sweep_results)

    # Shape checks from the paper's observations: larger tiles finish sooner,
    # sustain more in-flight memory instructions, and draw more power.
    assert tile_sweep_results["Tile-64"]["cycles"] < tile_sweep_results["Tile-4"]["cycles"]
    assert tile_sweep_results["Tile-64"]["in_flight_instx"] >= \
        tile_sweep_results["Tile-4"]["in_flight_instx"]
    assert tile_sweep_results["Tile-64"]["power"] > tile_sweep_results["Tile-4"]["power"]
    assert tile_sweep_results["Tile-16"]["ipc"] > tile_sweep_results["Tile-4"]["ipc"]
