"""Wire-format benchmark: registry + binary frames vs JSON-inline bytes.

Boots the serving stack in-process and measures the *bytes on the wire*
per request under the two client strategies the serving layer supports:

* **json-inline** — the original protocol: every request carries the full
  CSR operand as inline JSON arrays and reads back the JSON metrics row.
  This is the steady state of a client that never registers operands.
* **binary+registry** — upload the operand once as a binary
  ``application/x-repro-csr`` frame (``PUT /v1/operands``), then issue
  ~100-byte ``{"a": {"ref": ...}}`` requests against the digest.

The steady-state workload is metrics-only traffic against one hot graph
(`include_output` off) — the regime a long-lived server actually runs in,
where the JSON-inline client re-ships a multi-kilobyte operand with every
request and learns nothing new from it.  The headline number is
``bytes_per_request_ratio`` (json-inline / binary+registry), and the
acceptance bar is **>= 5x**: ``--smoke`` exits non-zero below it, which
is the CI guard.

Product *download* sizes (JSON ``include_output`` vs a chunked binary
frame) are recorded alongside but not guarded — JSON of small float
values can undercut 16-byte binary entries, so the honest claim there is
"comparable size, no double buffering", not a ratio.  A byte-identity
probe asserts the binary product decodes bit-equal to the JSON one.

Results land in ``benchmarks/results/bench_wire.json`` — the same
record-don't-assert contract the other benches keep (only ``--smoke``
asserts, because CI runs it).

Run with:  PYTHONPATH=src python benchmarks/bench_wire.py [--nodes 2000]
           PYTHONPATH=src python benchmarks/bench_wire.py --smoke
"""

from __future__ import annotations

import argparse
import http.client
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.core import Session
from repro.datasets import load_dataset
from repro.serve import BackgroundServer, ReproServer
from repro.serve.wire import WIRE_CONTENT_TYPE, decode_csr, encode_csr

RESULTS_PATH = Path(__file__).parent / "results" / "bench_wire.json"

#: Acceptance bar: steady-state bytes/request must shrink at least this
#: much when clients switch from JSON-inline operands to registry refs.
MIN_BYTES_RATIO = 5.0


class _Client:
    """One keep-alive connection that counts request/response body bytes."""

    def __init__(self, host: str, port: int) -> None:
        self.connection = http.client.HTTPConnection(host, port, timeout=120)
        self.bytes_sent = 0
        self.bytes_received = 0

    def request(self, method: str, path: str, body: bytes,
                headers: dict | None = None) -> tuple[int, str, bytes]:
        self.connection.request(method, path, body=body,
                                headers=headers or
                                {"Content-Type": "application/json"})
        response = self.connection.getresponse()
        payload = response.read()
        self.bytes_sent += len(body)
        self.bytes_received += len(payload)
        return (response.status,
                response.getheader("Content-Type") or "", payload)

    @property
    def total(self) -> int:
        return self.bytes_sent + self.bytes_received

    def close(self) -> None:
        self.connection.close()


def _json_request(client: _Client, path: str, payload: dict) -> dict:
    status, _ctype, body = client.request("POST", path,
                                          json.dumps(payload).encode())
    row = json.loads(body)
    if status != 200:
        raise RuntimeError(f"request failed: {status} {row}")
    return row


def _inline_operand(csr) -> dict:
    return {"indptr": csr.indptr.tolist(), "indices": csr.indices.tolist(),
            "data": csr.data.tolist(), "shape": list(csr.shape)}


def measure_steady_state(host: str, port: int, csr,
                         n_requests: int) -> dict:
    """Per-request wire bytes for both client strategies, warm server."""
    inline_body = {"a": _inline_operand(csr), "verify": False}

    client = _Client(host, port)
    try:
        _json_request(client, "/v1/spgemm",
                      {**inline_body, "label": "warmup"})  # compile once
        client.bytes_sent = client.bytes_received = 0
        start = time.perf_counter()
        for index in range(n_requests):
            _json_request(client, "/v1/spgemm",
                          {**inline_body, "label": f"inline-{index}"})
        inline_wall = time.perf_counter() - start
        inline_total = client.total
    finally:
        client.close()

    client = _Client(host, port)
    try:
        status, _ctype, body = client.request(
            "PUT", "/v1/operands", encode_csr(csr),
            headers={"Content-Type": WIRE_CONTENT_TYPE})
        operand = json.loads(body)
        if status != 200:
            raise RuntimeError(f"operand upload failed: {status} {operand}")
        upload_bytes = client.total
        client.bytes_sent = client.bytes_received = 0
        ref_body = {"a": {"ref": operand["ref"]}, "verify": False}
        start = time.perf_counter()
        for index in range(n_requests):
            _json_request(client, "/v1/spgemm",
                          {**ref_body, "label": f"ref-{index}"})
        ref_wall = time.perf_counter() - start
        ref_total = client.total
    finally:
        client.close()

    inline_per_request = inline_total / n_requests
    ref_per_request = ref_total / n_requests
    return {
        "requests": n_requests,
        "json_inline_bytes_per_request": round(inline_per_request, 1),
        "binary_registry_bytes_per_request": round(ref_per_request, 1),
        "bytes_per_request_ratio": round(inline_per_request
                                         / ref_per_request, 2),
        "one_time_upload_bytes": upload_bytes,
        "upload_amortized_after_requests": int(np.ceil(
            upload_bytes / max(inline_per_request - ref_per_request, 1.0))),
        "json_inline_wall_s": round(inline_wall, 4),
        "binary_registry_wall_s": round(ref_wall, 4),
        "operand_ref": operand["ref"],
    }


def measure_product_fetch(host: str, port: int, ref: str) -> dict:
    """Full-product download: JSON include_output vs a binary frame.

    Recorded, not guarded — and doubles as the byte-identity probe: the
    decoded binary product must equal the JSON arrays bit for bit.
    """
    client = _Client(host, port)
    try:
        row = _json_request(client, "/v1/spgemm",
                            {"a": {"ref": ref}, "verify": False,
                             "include_output": True})
        json_bytes = client.total
        served = row["output"]

        client.bytes_sent = client.bytes_received = 0
        status, ctype, frame = client.request(
            "POST", "/v1/spgemm",
            json.dumps({"a": {"ref": ref}, "verify": False}).encode(),
            headers={"Content-Type": "application/json",
                     "Accept": WIRE_CONTENT_TYPE})
        if status != 200 or ctype != WIRE_CONTENT_TYPE:
            raise RuntimeError(f"binary fetch failed: {status} {ctype}")
        binary_bytes = client.total
    finally:
        client.close()
    product, meta = decode_csr(frame)
    byte_identical = (
        np.array_equal(product.indptr, np.asarray(served["indptr"]))
        and np.array_equal(product.indices, np.asarray(served["indices"]))
        and np.array_equal(product.data, np.asarray(served["data"])))
    return {
        "json_bytes": json_bytes,
        "binary_bytes": binary_bytes,
        "json_over_binary": round(json_bytes / binary_bytes, 2),
        "binary_meta_carries_metrics": "cycles" in (meta or {}),
        "byte_identical": bool(byte_identical),
        "product_nnz": product.nnz,
    }


def run(nodes: int, n_requests: int, dataset: str = "wiki-Vote",
        config: str = "Tile-16", seed: int = 0) -> dict:
    csr = load_dataset(dataset, max_nodes=nodes, seed=seed).adjacency_csr()
    record = {
        "dataset": dataset,
        "nodes": nodes,
        "config": config,
        "operand_nnz": csr.nnz,
        "python_version": platform.python_version(),
        "workload": "steady-state metrics-only requests on one hot graph; "
                    "json-inline re-ships the operand per request, "
                    "binary+registry ships a ~100-byte ref",
        "min_bytes_ratio": MIN_BYTES_RATIO,
    }
    with Session(config, backend="analytic") as session:
        server = ReproServer(session, port=0, max_batch=4)
        with BackgroundServer(server) as background:
            host, port = "127.0.0.1", background.port
            record["steady_state"] = measure_steady_state(
                host, port, csr, n_requests)
            record["product_fetch"] = measure_product_fetch(
                host, port, record["steady_state"]["operand_ref"])
            stats_client = _Client(host, port)
            try:
                _status, _ctype, body = stats_client.request(
                    "GET", "/stats", b"")
                stats = json.loads(body)
            finally:
                stats_client.close()
            record["server_counters"] = {
                key: stats.get(key)
                for key in ("bytes_in", "bytes_out", "registry_hits",
                            "registry_entries", "registry_evictions",
                            "coalesced")}
    return record


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=2000,
                        help="synthetic graph size (default: 2000)")
    parser.add_argument("--dataset", default="wiki-Vote")
    parser.add_argument("--config", default="Tile-16")
    parser.add_argument("--requests", type=int, default=32,
                        help="steady-state requests per strategy "
                             "(default: 32)")
    parser.add_argument("--smoke", action="store_true",
                        help="small fast configuration for CI (300 nodes, "
                             "8 requests, no result file) that FAILS "
                             f"unless the ratio is >= {MIN_BYTES_RATIO}x")
    parser.add_argument("--output", default=str(RESULTS_PATH))
    args = parser.parse_args()

    if args.smoke:
        args.nodes = 300
        args.requests = 8

    record = run(args.nodes, args.requests, dataset=args.dataset,
                 config=args.config)
    steady = record["steady_state"]
    fetch = record["product_fetch"]

    print(f"{record['dataset']}  nodes={record['nodes']}  "
          f"config={record['config']}  operand_nnz={record['operand_nnz']}")
    print(f"steady state   json-inline      "
          f"{steady['json_inline_bytes_per_request']:12.1f} B/request")
    print(f"steady state   binary+registry  "
          f"{steady['binary_registry_bytes_per_request']:12.1f} B/request  "
          f"(one-time upload {steady['one_time_upload_bytes']} B, "
          f"amortized after "
          f"{steady['upload_amortized_after_requests']} request(s))")
    print(f"steady state   ratio            "
          f"{steady['bytes_per_request_ratio']:12.2f}x  "
          f"(bar: >= {MIN_BYTES_RATIO}x)")
    print(f"product fetch  json={fetch['json_bytes']} B  "
          f"binary={fetch['binary_bytes']} B  "
          f"({fetch['json_over_binary']}x)  "
          f"byte_identical={fetch['byte_identical']}")

    if not fetch["byte_identical"]:
        print("ERROR: binary product diverged from the JSON product")
        return 1
    ratio_ok = steady["bytes_per_request_ratio"] >= MIN_BYTES_RATIO
    if args.smoke:
        if not ratio_ok:
            print(f"ERROR: bytes/request ratio "
                  f"{steady['bytes_per_request_ratio']}x is below the "
                  f"{MIN_BYTES_RATIO}x acceptance bar")
            return 1
        print("[smoke mode: results not saved]")
        return 0
    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"[saved {output}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
