"""Figure 15: HACC CPI histograms for barrier-based (HACC-BE) versus rolling
(HACC-RE) evictions on the Cora workload (Tile-16).

The paper reports that rolling evictions cut the average HACC completion
latency from 872 to 347 cycles because a hash line is written back the moment
its counter reaches zero instead of waiting for a computation barrier.
"""

import pytest

from repro.arch.config import TILE16
from repro.compiler import compile_spgemm
from repro.sim.accelerator import NeuraChipAccelerator

from _harness import emit


@pytest.fixture(scope="module")
def eviction_results(cora_sim):
    a_csc = cora_sim.adjacency_csc()
    features = cora_sim.features(dim=16, density=0.4)
    program = compile_spgemm(a_csc, features, tile_size=4, source="cora-evictions")
    return {
        "HACC-RE": NeuraChipAccelerator(TILE16, eviction_mode="rolling").run(
            program, verify=False),
        "HACC-BE": NeuraChipAccelerator(TILE16, eviction_mode="barrier").run(
            program, verify=False),
    }


def test_fig15_hacc_eviction_policies(benchmark, cora_sim, eviction_results):
    """Time the rolling-eviction run and regenerate the Figure 15 series."""
    a_csc = cora_sim.adjacency_csc()
    features = cora_sim.features(dim=16, density=0.4)
    program = compile_spgemm(a_csc, features, tile_size=4)
    benchmark.pedantic(
        NeuraChipAccelerator(TILE16, eviction_mode="rolling").run,
        args=(program,), kwargs={"verify": False}, rounds=1, iterations=1)

    rows = []
    histogram_json = {}
    for policy, report in eviction_results.items():
        rows.append({
            "policy": policy,
            "avg_hacc_cpi": round(report.hacc_cpi_mean, 1),
            "peak_hashpad_occupancy": report.peak_hashpad_occupancy,
            "cycles": report.cycles,
        })
        histogram_json[policy] = report.hacc_cpi_histogram.as_dict()
    emit("fig15_hacc_eviction", rows, extra_json=histogram_json)

    rolling = eviction_results["HACC-RE"]
    barrier = eviction_results["HACC-BE"]
    # Shape checks (paper: 347 vs 872 cycles): rolling eviction must cut the
    # average HACC latency and the HashPad residency substantially.
    assert rolling.hacc_cpi_mean < barrier.hacc_cpi_mean
    assert rolling.hacc_cpi_mean < 0.75 * barrier.hacc_cpi_mean
    assert rolling.peak_hashpad_occupancy < barrier.peak_hashpad_occupancy
    # Both policies process every partial product.
    assert rolling.hacc_instructions == barrier.hacc_instructions
