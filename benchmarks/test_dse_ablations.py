"""Section 4 design-space-exploration ablations.

The paper's DSE commentary (register-file size, HashPad size, mapping scheme)
is backed by observations rather than a dedicated figure; this benchmark
regenerates those observations as explicit ablations:

* register-file size: more in-flight MMH instructions per pipeline increase
  the number of outstanding HBM requests until the channels saturate;
* HashPad size: smaller HashPads spill once they cannot hold a row group's
  working set, while the default sizes never spill on these workloads;
* mapping scheme: DRHM keeps the NeuraMem load imbalance close to the ideal
  random mapping, unlike ring/modular hashing.
"""

from dataclasses import replace

import pytest

from repro.arch.config import TILE16
from repro.compiler import compile_spgemm
from repro.sim.accelerator import NeuraChipAccelerator
from repro.sim.functional import FunctionalAccelerator
from repro.sim.params import SimulationParams

from _harness import emit


@pytest.fixture(scope="module")
def cora_program(cora_sim):
    return compile_spgemm(cora_sim.adjacency_csc(),
                          cora_sim.features(dim=16, density=0.4),
                          tile_size=4, source="cora-dse")


def test_dse_register_file_size(benchmark, cora_program):
    """Register-file ablation: in-flight memory requests grow with registers."""
    def run(registers):
        core = replace(TILE16.core, pipeline_registers=registers,
                       register_file_bits=registers * 128)
        config = replace(TILE16, core=core, name=f"Tile-16-r{registers}")
        return NeuraChipAccelerator(config).run(cora_program, verify=False)

    reports = {registers: run(registers) for registers in (2, 8, 32)}
    benchmark.pedantic(run, args=(8,), rounds=1, iterations=1)

    rows = [{"pipeline_registers": registers,
             "avg_inflight_mem": round(report.avg_inflight_mem, 2),
             "cycles": report.cycles,
             "cpi": round(report.cpi, 2)}
            for registers, report in reports.items()]
    emit("dse_register_file", rows)

    assert reports[8].avg_inflight_mem >= reports[2].avg_inflight_mem
    assert reports[8].cycles <= reports[2].cycles
    # Diminishing returns: quadrupling the registers again buys less than the
    # first expansion did (the DRAM channels become the limit).
    first_gain = reports[2].cycles - reports[8].cycles
    second_gain = reports[8].cycles - reports[32].cycles
    assert second_gain <= first_gain


def test_dse_hashpad_size(benchmark, cora_program):
    """HashPad ablation: shrinking the HashPad induces spills, the default
    configuration absorbs the whole row-group working set."""
    def run(hashlines):
        mem = replace(TILE16.mem, hashlines=hashlines)
        config = replace(TILE16, mem=mem, name=f"Tile-16-h{hashlines}")
        return FunctionalAccelerator(config).run(cora_program)

    reports = {hashlines: run(hashlines) for hashlines in (2, 16, 2048)}
    benchmark.pedantic(run, args=(2048,), rounds=1, iterations=1)

    rows = [{"hashlines": hashlines,
             "spills": report.spills,
             "peak_occupancy": report.peak_occupancy}
            for hashlines, report in reports.items()]
    emit("dse_hashpad_size", rows)

    assert reports[2].spills > 0
    assert reports[2048].spills == 0
    assert reports[2048].peak_occupancy <= TILE16.mem.hashlines


def test_dse_mapping_scheme(benchmark, cora_program):
    """Mapping ablation: DRHM's NeuraMem load imbalance tracks random mapping
    and beats ring/modular hashing."""
    def run(scheme):
        return FunctionalAccelerator(TILE16, mapping_scheme=scheme).run(cora_program)

    reports = {scheme: run(scheme) for scheme in ("ring", "modular", "random", "drhm")}
    benchmark.pedantic(run, args=("drhm",), rounds=1, iterations=1)

    rows = [{"scheme": scheme, "load_imbalance": round(report.load_imbalance, 3)}
            for scheme, report in reports.items()]
    emit("dse_mapping_scheme", rows)

    assert reports["drhm"].load_imbalance <= reports["ring"].load_imbalance + 0.05
    assert reports["drhm"].load_imbalance <= reports["modular"].load_imbalance + 0.05
    assert reports["drhm"].load_imbalance == pytest.approx(
        reports["random"].load_imbalance, rel=0.25)


def test_dse_noc_and_memory_sensitivity(benchmark, cora_program):
    """Bandwidth sensitivity: halving the per-channel HBM data rate slows the
    workload down, confirming the simulator is memory-bandwidth sensitive in
    the regime the paper describes (Tile-64 being bandwidth bound)."""
    def run(bytes_per_cycle):
        params = SimulationParams().scaled(
            hbm_bytes_per_cycle_per_channel=bytes_per_cycle)
        return NeuraChipAccelerator(TILE16, params=params).run(cora_program,
                                                               verify=False)

    full = benchmark.pedantic(run, args=(16.0,), rounds=1, iterations=1)
    half = run(8.0)
    emit("dse_bandwidth_sensitivity", [
        {"bytes_per_cycle_per_channel": 16.0, "cycles": full.cycles},
        {"bytes_per_cycle_per_channel": 8.0, "cycles": half.cycles},
    ])
    assert half.cycles > full.cycles
