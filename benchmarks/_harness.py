"""Helpers shared by the benchmark modules (result printing / persistence)."""

from __future__ import annotations

from pathlib import Path

from repro.viz.export import format_table, save_csv, save_json

RESULTS_DIR = Path(__file__).parent / "results"

#: Node-count caps used by the benchmarks (kept small for simulation speed).
SIM_MAX_NODES = 192          # workloads that go through the cycle simulator
STATS_MAX_NODES = 256        # workloads only used for structural statistics


def emit(name: str, rows: list[dict], extra_json=None) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print(f"\n=== {name} ===")
    print(format_table(rows))
    save_csv(rows, RESULTS_DIR / f"{name}.csv")
    if extra_json is not None:
        save_json(extra_json, RESULTS_DIR / f"{name}.json")
