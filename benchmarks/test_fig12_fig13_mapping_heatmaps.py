"""Figures 12 and 13: compute-mapping heat maps and hot-spot analysis.

Figure 12 contrasts ring hashing with DRHM on one workload (hot spots vs
uniform shading); Figure 13 extends the comparison to four mapping schemes
across five sparse matrices plus a dense one.  The benchmark reports, for
every (scheme, matrix) pair, the load-imbalance metrics that the heat maps
visualise, and writes the heat maps themselves to the results directory.
"""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.hashing.balance import mapping_heatmap, summarize_counts

from _harness import emit

_FIG13_MATRICES = ("cora", "2cubes_sphere", "mario002", "facebook", "filter3D",
                   "dense")
_SCHEMES = ("ring", "modular", "random", "drhm")
_N_CORES = 16
_N_MEMS = 16
_HEATMAP_NODES = 128


@pytest.fixture(scope="module")
def heatmaps():
    """heatmaps[matrix][scheme] -> (n_cores x n_mems) count matrix."""
    result = {}
    for name in _FIG13_MATRICES:
        dataset = load_dataset(name, max_nodes=_HEATMAP_NODES, seed=2)
        a_csc = dataset.adjacency_csc()
        a_csr = dataset.adjacency_csr()
        result[name] = {
            scheme: mapping_heatmap(scheme, a_csc, a_csr, _N_CORES, _N_MEMS)
            for scheme in _SCHEMES
        }
    return result


def _imbalance_rows(heatmaps):
    rows = []
    for matrix, per_scheme in heatmaps.items():
        for scheme, heatmap in per_scheme.items():
            mem_counts = heatmap.sum(axis=0)
            report = summarize_counts(scheme, mem_counts)
            rows.append({
                "matrix": matrix,
                "scheme": scheme,
                "max_over_mean": round(report.max_over_mean, 3),
                "gini": round(report.gini, 3),
                "cv": round(report.coefficient_of_variation, 3),
            })
    return rows


def test_fig12_fig13_mapping_hot_spots(benchmark, heatmaps):
    """Time one heat-map extraction and regenerate both figures' data."""
    dataset = load_dataset("cora", max_nodes=_HEATMAP_NODES, seed=2)
    benchmark.pedantic(mapping_heatmap,
                       args=("drhm", dataset.adjacency_csc(),
                             dataset.adjacency_csr(), _N_CORES, _N_MEMS),
                       rounds=1, iterations=1)

    rows = _imbalance_rows(heatmaps)
    emit("fig13_mapping_imbalance", rows,
         extra_json={matrix: {scheme: hm for scheme, hm in per.items()}
                     for matrix, per in heatmaps.items()})

    table = {(r["matrix"], r["scheme"]): r for r in rows}

    # Figure 12's headline: DRHM removes the hot spots ring hashing exhibits.
    for matrix in _FIG13_MATRICES:
        assert table[(matrix, "drhm")].get("gini") <= \
            table[(matrix, "ring")].get("gini") + 0.05, matrix

    # Figure 13's headline: DRHM is insensitive to the sparsity pattern and
    # behaves like the (impractical) random mapping, including on the dense
    # matrix where ring/modular hashing concentrate work.
    dense_drhm = table[("dense", "drhm")]["max_over_mean"]
    dense_random = table[("dense", "random")]["max_over_mean"]
    assert dense_drhm == pytest.approx(dense_random, abs=0.25)
    drhm_worst = max(table[(m, "drhm")]["gini"] for m in _FIG13_MATRICES)
    assert drhm_worst < 0.25

    # Every heat map accounts for every partial product exactly once.
    for matrix, per_scheme in heatmaps.items():
        totals = {scheme: int(hm.sum()) for scheme, hm in per_scheme.items()}
        assert len(set(totals.values())) == 1, matrix
        assert np.all(next(iter(per_scheme.values())) >= 0)
