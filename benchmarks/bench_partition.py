"""Shard-partition benchmark: contiguous vs degree-aware planning.

Sweeps the two partition strategies over 1/2/4/8 chips on two synthetic
power-law graphs — ``barabasi_albert_graph`` (the ISSUE acceptance graph)
and ``kronecker_power_law_graph`` (heavier-tailed, R-MAT style) — and
records, per (graph, chips, strategy) point:

* planner-level shard skew (max/mean partial-product load) and scale-out
  efficiency (total / (chips * max));
* the analytic fast path's predicted speedup next to the measured
  cycle-model speedup through the ``multichip`` backend;
* how many monster rows the degree planner merge-path-split into
  column-range fragments;
* a byte-identity check of the stitched output against the single-chip
  unsharded product (hard failure on divergence — exact reduce is the
  whole point of the plan format).

The contiguous baseline is always recorded alongside the degree plan so
regressions in either strategy are visible in one file.  Targets from the
ISSUE: degree shard_skew <= 1.1 and efficiency >= 0.9 at 4 chips on the
2000-node BA graph (recorded under ``targets``).

``--smoke`` runs a 300-node configuration for CI and *asserts* the skew
regression guard: the BA smoke graph's degree plan must keep
shard_skew <= 1.25 at 4 chips, else exit nonzero.

Run with:  PYTHONPATH=src python benchmarks/bench_partition.py
           PYTHONPATH=src python benchmarks/bench_partition.py --smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.backends import predict_scaleout
from repro.core import Session, SpGEMMSpec
from repro.datasets import barabasi_albert_graph, kronecker_power_law_graph
from repro.sparse import coo_to_csr
from repro.sparse.partition import plan_shards

RESULTS_PATH = Path(__file__).parent / "results" / "bench_partition.json"

#: CI regression guard on the smoke graph (see --smoke).
SMOKE_SKEW_LIMIT = 1.25

STRATEGIES = ("contiguous", "degree")


def _graphs(nodes: int, seed: int) -> dict[str, "CSRMatrix"]:
    return {
        "barabasi_albert": coo_to_csr(
            barabasi_albert_graph(nodes, 8, seed=seed)),
        "kronecker_power_law": coo_to_csr(
            kronecker_power_law_graph(nodes, 8 * nodes, seed=seed)),
    }


def _identical(got, want) -> bool:
    return (np.array_equal(got.indptr, want.indptr)
            and np.array_equal(got.indices, want.indices)
            and np.array_equal(got.data, want.data))


def run(nodes: int, chip_counts: list[int], config: str = "Tile-16",
        seed: int = 0) -> dict:
    """Benchmark both strategies across ``chip_counts`` on both graphs."""
    record = {
        "nodes": nodes,
        "config": config,
        "python_version": platform.python_version(),
        "targets": {"degree_skew_at_4_chips": 1.1,
                    "degree_efficiency_at_4_chips": 0.9},
        "graphs": [],
    }
    for name, a_csr in _graphs(nodes, seed).items():
        with Session(config, backend="analytic") as session:
            baseline = session.run(SpGEMMSpec(a=a_csr, verify=False,
                                              label=f"{name}-single"))
        graph_record = {
            "graph": name,
            "rows": a_csr.shape[0],
            "nnz": a_csr.nnz,
            "baseline_cycles": baseline.metrics["cycles"],
            "output_nnz": baseline.metrics["output_nnz"],
            "points": [],
        }
        for chips in chip_counts:
            for strategy in STRATEGIES:
                plan = plan_shards(a_csr, chips, a_csr, strategy=strategy)
                prediction = predict_scaleout(a_csr, chips,
                                              partition=strategy)
                with Session(config, backend="multichip", chips=chips,
                             partition=strategy) as session:
                    start = time.perf_counter()
                    result = session.run(SpGEMMSpec(
                        a=a_csr, verify=False,
                        label=f"{name}-{chips}chip-{strategy}"))
                    wall = time.perf_counter() - start
                speedup = (graph_record["baseline_cycles"]
                           / result.metrics["cycles"])
                graph_record["points"].append({
                    "chips": chips,
                    "strategy": strategy,
                    "shard_skew": round(plan.skew, 4),
                    "plan_efficiency": round(plan.efficiency, 4),
                    "split_rows": len(plan.split_rows),
                    "speedup": round(speedup, 3),
                    "efficiency": round(speedup / chips, 4),
                    "predicted_speedup": prediction["predicted_speedup"],
                    "wall_s": round(wall, 4),
                    "byte_identical": _identical(result.output,
                                                 baseline.output),
                })
        record["graphs"].append(graph_record)
    return record


def _point(record: dict, graph: str, chips: int, strategy: str) -> dict | None:
    for graph_record in record["graphs"]:
        if graph_record["graph"] != graph:
            continue
        for point in graph_record["points"]:
            if point["chips"] == chips and point["strategy"] == strategy:
                return point
    return None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=2000,
                        help="synthetic graph size (default: 2000)")
    parser.add_argument("--config", default="Tile-16")
    parser.add_argument("--chips", type=int, nargs="*",
                        default=[1, 2, 4, 8],
                        help="chip counts to sweep (default: 1 2 4 8)")
    parser.add_argument("--smoke", action="store_true",
                        help="small fast configuration for CI (300 nodes, "
                             "1/2/4 chips, no result file) with a hard "
                             f"skew guard of {SMOKE_SKEW_LIMIT}")
    parser.add_argument("--output", default=str(RESULTS_PATH))
    args = parser.parse_args()

    if args.smoke:
        args.nodes = 300
        args.chips = [1, 2, 4]

    record = run(args.nodes, args.chips, config=args.config)

    failures = []
    for graph_record in record["graphs"]:
        print(f"{graph_record['graph']}  rows={graph_record['rows']}  "
              f"nnz={graph_record['nnz']}  "
              f"baseline cycles={graph_record['baseline_cycles']}")
        for point in graph_record["points"]:
            print(f"  chips={point['chips']:2d}  "
                  f"{point['strategy']:10s}  "
                  f"skew={point['shard_skew']:6.3f}  "
                  f"eff={point['efficiency']:6.3f}  "
                  f"speedup={point['speedup']:6.2f}x "
                  f"(pred {point['predicted_speedup']:5.2f}x)  "
                  f"split={point['split_rows']}  "
                  f"identical={point['byte_identical']}")
            if not point["byte_identical"]:
                failures.append(
                    f"{graph_record['graph']} chips={point['chips']} "
                    f"{point['strategy']}: output diverged from the "
                    f"single-chip product")

    if args.smoke:
        guard = _point(record, "barabasi_albert", 4, "degree")
        if guard is None:
            failures.append("smoke guard point (BA, 4 chips, degree) "
                            "missing from the sweep")
        elif guard["shard_skew"] > SMOKE_SKEW_LIMIT:
            failures.append(
                f"skew regression: BA smoke graph degree shard_skew "
                f"{guard['shard_skew']} > {SMOKE_SKEW_LIMIT} at 4 chips")

    for failure in failures:
        print(f"ERROR: {failure}")
    if failures:
        return 1

    if args.smoke:
        print("[smoke mode: skew guard passed; results not saved]")
        return 0
    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"[saved {output}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
