"""Figure 17: GCN-layer speedup of the GNN-mode Tile-16 NeuraChip over prior
GNN accelerators (EnGN, GROW, HyGCN, FlowGNN) across graph datasets.

The baselines are the analytic models of ``repro.baselines.gnn_accelerators``,
calibrated so the suite-average speedups match the paper's reported averages
(29%, 58%, 69%, 30%); the per-dataset spread follows each architecture's
penalty structure (ring-reducer imbalance, partitioning overhead, pipeline
stalls, queueing).
"""

import pytest

from repro.baselines.gnn_accelerators import gnn_speedup_table
from repro.baselines.workload import GCNWorkloadStats
from repro.datasets import load_dataset
from repro.datasets.suite import GNN_SUITE
from repro.gnn.gcn import GCNWorkload

from _harness import STATS_MAX_NODES, emit

_PAPER_GMEANS = {"EnGN": 1.29, "GROW": 1.58, "HyGCN": 1.69, "FlowGNN": 1.30}


@pytest.fixture(scope="module")
def gcn_workload_stats():
    stats = []
    for name in sorted(GNN_SUITE):
        dataset = load_dataset(name, max_nodes=STATS_MAX_NODES, seed=4)
        workload = GCNWorkload.build(dataset, feature_dim=64, hidden_dim=16)
        stats.append(GCNWorkloadStats.from_workload(name, workload.a_hat,
                                                    workload.features, 16))
    return stats


def test_fig17_gnn_accelerator_speedups(benchmark, gcn_workload_stats):
    """Regenerate the Figure 17 speedup series and check their shape."""
    table = benchmark.pedantic(gnn_speedup_table, args=(gcn_workload_stats,),
                               rounds=1, iterations=1)

    rows = [{"accelerator": name, "gmean": round(per["gmean"], 3),
             "paper_gmean": _PAPER_GMEANS[name]}
            for name, per in table.items()]
    emit("fig17_gnn_speedup_gmeans", rows, extra_json=table)
    per_dataset_rows = [
        {"accelerator": name, "dataset": dataset, "speedup": round(value, 3)}
        for name, per in table.items()
        for dataset, value in per.items() if dataset != "gmean"
    ]
    emit("fig17_gnn_speedup_per_dataset", per_dataset_rows)

    # Shape checks: calibrated averages land on the paper's factors; HyGCN and
    # GROW (the weakest priors in the paper) trail EnGN and FlowGNN; NeuraChip
    # is at least competitive on every dataset.
    for name, target in _PAPER_GMEANS.items():
        assert table[name]["gmean"] == pytest.approx(target, rel=0.10), name
    assert table["HyGCN"]["gmean"] > table["EnGN"]["gmean"]
    assert table["GROW"]["gmean"] > table["FlowGNN"]["gmean"]
    for name, per in table.items():
        values = [v for k, v in per.items() if k != "gmean"]
        assert min(values) > 0.9, name
