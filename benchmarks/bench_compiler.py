"""Micro-benchmark: loop vs columnar compile throughput.

Times the reference loop compiler (``compile_spgemm_loop``) against the
vectorized columnar compiler (``compile_spgemm``) on a synthetic power-law
graph and writes wall times, MMH-instruction throughput, and the speedup to
``benchmarks/results/bench_compiler.json`` so the compile-path trajectory is
tracked across PRs — the same contract ``bench_kernels.py`` keeps for the
execution kernels.

Equivalence is checked, not assumed: the record includes whether the two
compilers produced identical op counts at the benchmark size, and whether
their instruction encodings and functional-simulation outputs are identical
at a verification size small enough to replay the HACC stream.

Run with:  PYTHONPATH=src python benchmarks/bench_compiler.py [--nodes 2000]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.arch.config import TILE4
from repro.compiler.lowering import compile_spgemm, compile_spgemm_loop
from repro.datasets import load_dataset
from repro.sim.functional import FunctionalAccelerator
from repro.sparse.convert import csr_to_csc

RESULTS_PATH = Path(__file__).parent / "results" / "bench_compiler.json"


def _time_compile(compiler, a_csc, b_csr, tile_size: int,
                  max_repeats: int = 7,
                  budget_seconds: float = 10.0) -> tuple[float, object]:
    """Best-of-N wall time; stops repeating once the time budget is spent."""
    best = float("inf")
    spent = 0.0
    program = None
    for _ in range(max_repeats):
        start = time.perf_counter()
        program = compiler(a_csc, b_csr, tile_size=tile_size)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        spent += elapsed
        if spent >= budget_seconds:
            break
    return best, program


def run(nodes: int, dataset: str = "wiki-Vote", tile_size: int = 4,
        verify_nodes: int = 400, seed: int = 0) -> dict:
    """Benchmark both compilers on one synthetic graph and cross-check."""
    graph = load_dataset(dataset, max_nodes=nodes, seed=seed)
    a_csr = graph.adjacency_csr()
    a_csc = csr_to_csc(a_csr)
    compile_spgemm(a_csc, a_csr, tile_size=tile_size)  # warm caches

    columnar_s, columnar = _time_compile(compile_spgemm, a_csc, a_csr,
                                         tile_size)
    loop_s, loop = _time_compile(compile_spgemm_loop, a_csc, a_csr,
                                 tile_size, max_repeats=3)

    identical_op_counts = (
        columnar.n_instructions == loop.n_instructions
        and columnar.total_partial_products == loop.total_partial_products
        and columnar.output_nnz == loop.output_nnz
        and columnar.metadata["n_row_groups"] == loop.metadata["n_row_groups"])

    # Encoding / functional equivalence at a size where replaying every
    # HACC through the functional model stays cheap.
    v_nodes = min(nodes, verify_nodes)
    v_graph = load_dataset(dataset, max_nodes=v_nodes, seed=seed)
    v_csr = v_graph.adjacency_csr()
    v_csc = csr_to_csc(v_csr)
    v_columnar = compile_spgemm(v_csc, v_csr, tile_size=tile_size)
    v_loop = compile_spgemm_loop(v_csc, v_csr, tile_size=tile_size)
    identical_encodings = v_columnar.encode_binary() == v_loop.encode_binary()
    accelerator = FunctionalAccelerator(TILE4)
    identical_functional_output = bool(np.array_equal(
        accelerator.run(v_columnar).output, accelerator.run(v_loop).output))

    record = {
        "dataset": dataset,
        "nodes": graph.n_nodes,
        "edges": graph.n_edges,
        "tile_size": tile_size,
        "python_version": platform.python_version(),
        "mmh_instructions": columnar.n_instructions,
        "partial_products": columnar.total_partial_products,
        "output_nnz": columnar.output_nnz,
        "compilers": {
            "loop": {
                "seconds": round(loop_s, 6),
                "mmh_per_second": round(loop.n_instructions / loop_s)
                if loop_s > 0 else 0,
            },
            "columnar": {
                "seconds": round(columnar_s, 6),
                "mmh_per_second": round(columnar.n_instructions / columnar_s)
                if columnar_s > 0 else 0,
            },
        },
        "speedup": round(loop_s / columnar_s, 1) if columnar_s > 0 else 0.0,
        "identical_op_counts": identical_op_counts,
        "verify_nodes": v_graph.n_nodes,
        "identical_encodings": identical_encodings,
        "identical_functional_output": identical_functional_output,
    }
    return record


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=2000,
                        help="synthetic graph size (default: 2000)")
    parser.add_argument("--dataset", default="wiki-Vote")
    parser.add_argument("--tile-size", type=int, default=4)
    parser.add_argument("--verify-nodes", type=int, default=400,
                        help="graph size for the functional-equivalence "
                             "cross-check (default: 400)")
    parser.add_argument("--output", default=str(RESULTS_PATH))
    args = parser.parse_args()

    record = run(args.nodes, dataset=args.dataset, tile_size=args.tile_size,
                 verify_nodes=args.verify_nodes)
    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(record, indent=2) + "\n")

    compilers = record["compilers"]
    print(f"{record['dataset']}  nodes={record['nodes']}  "
          f"edges={record['edges']}  mmh={record['mmh_instructions']}")
    print(f"loop     {compilers['loop']['seconds']:9.4f}s  "
          f"({compilers['loop']['mmh_per_second']:>12,} MMH/s)")
    print(f"columnar {compilers['columnar']['seconds']:9.4f}s  "
          f"({compilers['columnar']['mmh_per_second']:>12,} MMH/s)")
    print(f"speedup {record['speedup']}x  "
          f"op_counts_identical={record['identical_op_counts']}  "
          f"encodings_identical={record['identical_encodings']}  "
          f"functional_identical={record['identical_functional_output']}")
    print(f"[saved {output}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
