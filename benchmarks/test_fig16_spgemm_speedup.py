"""Figure 16: SpGEMM speedup of NeuraChip Tile-16 over CPUs, GPUs and prior
SpGEMM accelerators, per dataset and as the geometric mean.

The baselines (and the NeuraChip reference for this cross-platform figure) are
the analytic roofline/dataflow models of ``repro.baselines``; per-platform
efficiency constants are calibrated to the paper's Table 5 sustained GOP/s on
this suite, so the geometric means land on the paper's factors while the
per-dataset spread comes from each dataflow's sensitivity to the workload
structure (bloat, row lengths, degree skew).  The cycle simulator
cross-validates the NeuraChip model's per-dataset trend on a sampled subset.
"""

import numpy as np
import pytest

from repro.arch.config import TILE16
from repro.baselines.accelerators import speedup_table
from repro.baselines.workload import SpGEMMWorkloadStats
from repro.compiler import compile_spgemm
from repro.sim.accelerator import NeuraChipAccelerator

from _harness import emit

_PAPER_GMEANS = {"MKL": 22.1, "cuSPARSE": 17.1, "CUSP": 13.3, "hipSPARSE": 16.7,
                 "OuterSPACE": 6.6, "SpArch": 2.4, "Gamma": 1.5}
#: Subset of datasets re-run on the cycle simulator for cross-validation.
_SIM_SAMPLE = ("facebook", "wiki-Vote", "p2p-Gnutella31")


@pytest.fixture(scope="module")
def workload_stats(table1_datasets):
    return [SpGEMMWorkloadStats.from_matrices(ds.name, ds.adjacency_csr())
            for ds in table1_datasets]


@pytest.fixture(scope="module")
def figure16_table(workload_stats):
    return speedup_table(workload_stats)


def test_fig16_spgemm_speedups(benchmark, workload_stats, figure16_table,
                               table1_datasets):
    """Regenerate the Figure 16 speedup series and check their shape."""
    benchmark.pedantic(speedup_table, args=(workload_stats,), rounds=1, iterations=1)

    rows = []
    for platform, per_dataset in figure16_table.items():
        row = {"platform": platform, "gmean": round(per_dataset["gmean"], 2),
               "paper_gmean": _PAPER_GMEANS.get(platform)}
        rows.append(row)
    emit("fig16_spgemm_speedup_gmeans", rows, extra_json=figure16_table)

    per_dataset_rows = [
        {"platform": platform, "dataset": dataset, "speedup": round(value, 2)}
        for platform, per in figure16_table.items()
        for dataset, value in per.items() if dataset != "gmean"
    ]
    emit("fig16_spgemm_speedup_per_dataset", per_dataset_rows)

    # Shape checks: NeuraChip wins everywhere; the platform ordering of the
    # paper's geometric means is preserved; calibrated platforms land within
    # 10% of the paper's factor.
    for platform, per in figure16_table.items():
        values = [v for k, v in per.items() if k != "gmean"]
        assert min(values) > 1.0, platform
    for platform in ("MKL", "cuSPARSE", "CUSP", "hipSPARSE", "SpArch", "Gamma"):
        assert figure16_table[platform]["gmean"] == pytest.approx(
            _PAPER_GMEANS[platform], rel=0.10), platform
    assert figure16_table["MKL"]["gmean"] > figure16_table["Gamma"]["gmean"]
    assert figure16_table["OuterSPACE"]["gmean"] > figure16_table["SpArch"]["gmean"]


def test_fig16_cycle_simulator_cross_validation(benchmark, table1_datasets):
    """The cycle simulator's per-dataset throughput ordering should broadly
    agree with the analytic NeuraChip model used in Figure 16."""
    datasets = {ds.name: ds for ds in table1_datasets}
    sample = [datasets[name] for name in _SIM_SAMPLE]

    def run_all():
        reports = {}
        for ds in sample:
            program = compile_spgemm(ds.adjacency_csc(), ds.adjacency_csr(),
                                     tile_size=4, source=ds.name)
            reports[ds.name] = NeuraChipAccelerator(TILE16).run(program, verify=False)
        return reports

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)

    from repro.baselines.accelerators import NEURACHIP_ANALYTIC_TILE16

    rows = []
    for ds in sample:
        stats = SpGEMMWorkloadStats.from_matrices(ds.name, ds.adjacency_csr())
        rows.append({
            "dataset": ds.name,
            "simulated_gops": round(reports[ds.name].gops, 3),
            "analytic_gops": round(NEURACHIP_ANALYTIC_TILE16.sustained_gops(stats), 3),
        })
    emit("fig16_sim_vs_analytic", rows)

    simulated = np.array([r["simulated_gops"] for r in rows])
    analytic = np.array([r["analytic_gops"] for r in rows])
    assert np.all(simulated > 0) and np.all(analytic > 0)
    # Rank agreement on the sampled subset (Spearman-style check).
    assert np.array_equal(np.argsort(simulated), np.argsort(analytic)) or len(rows) < 3
