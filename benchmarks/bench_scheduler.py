"""Scheduler benchmark: latency-tenant p95 under a saturating bulk tenant.

Boots the full serving stack twice — once with the legacy single-lane
``fifo`` queue, once with the multi-tenant ``fair`` scheduler (EDF
within tenants, weighted fair queueing across them) — and drives both
with the same mixed workload:

* a **bulk** tenant (weight 1, no deadlines) saturating the server from
  several closed-loop worker threads, cycling a pool of distinct graphs
  so its requests do not all coalesce away;
* a **latency** tenant (weight 4, per-request deadlines) sending paced,
  sequential requests — the interactive client whose p95 the scheduler
  exists to protect.

Under FIFO every latency request waits behind the entire standing bulk
backlog; under EDF+WFQ it jumps to the head of its lane and the lane's
weight wins the cross-tenant tie.  The figure of merit is the
latency-tenant's server-side p95 ratio (fifo / fair) at equal bulk
throughput (+/- 10%), each mode's p95 taken as the median of
``--repeats`` interleaved runs — the acceptance bar is >= 3x in the
full configuration.  An admission probe also exercises the 429 path: a
rate-limited tenant must be refused with a computed Retry-After rather
than enqueued behind the backlog.

Results land in ``benchmarks/results/bench_scheduler.json`` (the same
record-don't-assert contract the other benches keep).  ``--smoke``
asserts a relaxed >= 1.5x guard for CI and saves nothing; with only a
dozen latency samples per mode the p95 is effectively the max sample,
so the smoke run retries once before failing to absorb timing noise.

Run with:  PYTHONPATH=src python benchmarks/bench_scheduler.py
           PYTHONPATH=src python benchmarks/bench_scheduler.py --smoke
"""

from __future__ import annotations

import argparse
import http.client
import json
import platform
import threading
import time
from pathlib import Path

from repro.core import Session
from repro.serve import (
    BackgroundServer,
    ReproServer,
    TenantConfig,
    TenantTable,
)

RESULTS_PATH = Path(__file__).parent / "results" / "bench_scheduler.json"

#: Distinct bulk graphs (seeds) cycled by the bulk workers: enough that
#: concurrent in-flight bulk requests rarely coalesce, small enough that
#: the server's dataset cache holds them all after warm-up.
BULK_SEED_POOL = 12

#: The latency tenant's dedicated graph seed (warmed up separately).
LATENCY_SEED = 999

#: CI smoke guard: minimum latency-tenant p95 improvement (fifo/fair).
#: Relaxed well below the full-run >= 3x target because the smoke
#: configuration's p95 rides on ~12 samples (one straggler batch moves
#: it); the smoke run also retries once before failing.
SMOKE_MIN_IMPROVEMENT = 1.5


def _post(connection: http.client.HTTPConnection, payload: dict,
          tenant: str) -> tuple[int, dict]:
    connection.request("POST", "/v1/spgemm", body=json.dumps(payload),
                       headers={"Content-Type": "application/json",
                                "X-Repro-Tenant": tenant})
    response = connection.getresponse()
    return response.status, json.loads(response.read())


def _get(port: int, path: str) -> dict:
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        connection.request("GET", path)
        return json.loads(connection.getresponse().read())
    finally:
        connection.close()


def make_tenants() -> TenantTable:
    return TenantTable([
        TenantConfig(name="latency", weight=4.0),
        TenantConfig(name="bulk", weight=1.0),
        TenantConfig(name="limited", weight=1.0, rate_rps=0.5, burst=1.0),
    ])


def bench_mode(session: Session, scheduling: str, *, dataset: str,
               nodes: int, n_bulk: int, bulk_workers: int,
               n_latency: int, latency_pace_s: float,
               max_batch: int) -> dict:
    """One scheduling mode: fresh server, same mixed workload."""
    server = ReproServer(session, port=0, max_batch=max_batch,
                         max_delay_ms=2.0, queue_depth=512,
                         tenants=make_tenants(), scheduling=scheduling)
    with BackgroundServer(server) as background:
        port = background.port

        def payload(seed: int, label: str, **extra) -> dict:
            return {"dataset": dataset, "max_nodes": nodes, "seed": seed,
                    "verify": False, "label": label, **extra}

        # Untimed warm-up: synthesize every graph in the pool and compile
        # the program once, so the timed window measures scheduling, not
        # cold caches.
        warm = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
        for seed in range(BULK_SEED_POOL):
            _post(warm, payload(seed, f"warm-{seed}"), "bulk")
        _post(warm, payload(LATENCY_SEED, "warm-lat"), "latency")
        warm.close()

        errors: list = []

        def bulk_client(worker: int) -> None:
            connection = http.client.HTTPConnection("127.0.0.1", port,
                                                    timeout=120)
            try:
                for index in range(worker, n_bulk, bulk_workers):
                    status, _ = _post(
                        connection,
                        payload(index % BULK_SEED_POOL,
                                f"bulk-{index}"), "bulk")
                    if status != 200:
                        errors.append(("bulk", status))
            finally:
                connection.close()

        start = time.perf_counter()
        threads = [threading.Thread(target=bulk_client, args=(worker,))
                   for worker in range(bulk_workers)]
        for thread in threads:
            thread.start()
        latency_connection = http.client.HTTPConnection("127.0.0.1", port,
                                                        timeout=120)
        try:
            for index in range(n_latency):
                status, _ = _post(
                    latency_connection,
                    payload(LATENCY_SEED, f"lat-{index}", timeout_s=30.0),
                    "latency")
                if status != 200:
                    errors.append(("latency", status))
                time.sleep(latency_pace_s)
        finally:
            latency_connection.close()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - start

        tenants = _get(port, "/v1/tenants")["tenants"]
        latency_row = tenants["latency"]["serving"]
        bulk_row = tenants["bulk"]["serving"]

        # Admission probe: the rate-limited tenant must get a computed
        # 429, not a queue slot (0.5 req/s, burst 1: the second request
        # inside the window is always refused).
        probe = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
        _post(probe, payload(0, "probe-0"), "limited")
        probe_status, probe_body = _post(probe, payload(0, "probe-1"),
                                         "limited")
        probe.close()

    if errors:
        raise RuntimeError(f"serving errors in {scheduling} run: "
                           f"{errors[:5]} ({len(errors)} total)")
    return {
        "scheduling": scheduling,
        "wall_s": round(wall, 4),
        "bulk_requests": n_bulk,
        "bulk_throughput_rps": round(n_bulk / wall, 2),
        "bulk_responses": bulk_row["responses"],
        "latency_requests": n_latency,
        "latency_p50_ms": latency_row["latency_p50_ms"],
        "latency_p95_ms": latency_row["latency_p95_ms"],
        "latency_deadline_misses": latency_row["deadline_misses"],
        "admission_probe": {
            "status": probe_status,
            "retry_after_s": probe_body.get("retry_after_s"),
            "ok": (probe_status == 429
                   and (probe_body.get("retry_after_s") or 0) > 0),
        },
    }


def _median_by_p95(runs: list[dict]) -> dict:
    """The run whose latency p95 is the per-mode median — the noise
    shield for single-core containers where client threads contend with
    the server loop and any one run's p95 can double on a bad draw."""
    ordered = sorted(runs, key=lambda mode: mode["latency_p95_ms"])
    return ordered[len(ordered) // 2]


def run(*, dataset: str, nodes: int, n_bulk: int, bulk_workers: int,
        n_latency: int, latency_pace_s: float, max_batch: int,
        config: str, repeats: int = 1) -> dict:
    record = {
        "dataset": dataset,
        "nodes": nodes,
        "config": config,
        "bulk_requests": n_bulk,
        "bulk_workers": bulk_workers,
        "latency_requests": n_latency,
        "latency_pace_s": latency_pace_s,
        "max_batch": max_batch,
        "repeats": repeats,
        "python_version": platform.python_version(),
        "workload": "saturating bulk tenant (weight 1) vs paced latency "
                    "tenant (weight 4, deadlines); FIFO baseline vs "
                    "EDF+WFQ fair scheduling; per-mode median of "
                    f"{repeats} interleaved run(s)",
        "modes": [],
    }
    runs: dict[str, list[dict]] = {"fifo": [], "fair": []}
    with Session(config, backend="analytic") as session:
        # Interleave the modes across repeats so slow-machine drift
        # (cache growth, CPU throttling) hits both modes evenly.
        for _ in range(max(1, repeats)):
            for scheduling in ("fifo", "fair"):
                runs[scheduling].append(bench_mode(
                    session, scheduling, dataset=dataset, nodes=nodes,
                    n_bulk=n_bulk, bulk_workers=bulk_workers,
                    n_latency=n_latency, latency_pace_s=latency_pace_s,
                    max_batch=max_batch))
    record["modes"] = [_median_by_p95(runs["fifo"]),
                       _median_by_p95(runs["fair"])]
    record["p95_ms_runs"] = {
        scheduling: [mode["latency_p95_ms"] for mode in mode_runs]
        for scheduling, mode_runs in runs.items()}
    fifo, fair = record["modes"]
    if fair["latency_p95_ms"] > 0:
        record["p95_improvement"] = round(
            fifo["latency_p95_ms"] / fair["latency_p95_ms"], 2)
    else:
        record["p95_improvement"] = None
    if fifo["bulk_throughput_rps"] > 0:
        record["bulk_throughput_ratio"] = round(
            fair["bulk_throughput_rps"] / fifo["bulk_throughput_rps"], 3)
    else:
        record["bulk_throughput_ratio"] = None
    record["meets_target"] = (
        record["p95_improvement"] is not None
        and record["p95_improvement"] >= 3.0
        and record["bulk_throughput_ratio"] is not None
        and abs(record["bulk_throughput_ratio"] - 1.0) <= 0.10)
    return record


def report(record: dict) -> None:
    print(f"{record['dataset']}  nodes={record['nodes']}  "
          f"config={record['config']}  bulk={record['bulk_requests']}req/"
          f"{record['bulk_workers']}w  latency="
          f"{record['latency_requests']}req")
    for mode in record["modes"]:
        probe = mode["admission_probe"]
        print(f"{mode['scheduling']:>5}: latency p50="
              f"{mode['latency_p50_ms']:8.2f}ms  "
              f"p95={mode['latency_p95_ms']:8.2f}ms  "
              f"misses={mode['latency_deadline_misses']}  "
              f"bulk={mode['bulk_throughput_rps']:7.1f} req/s  "
              f"429-probe={'ok' if probe['ok'] else 'FAIL'}"
              f" (retry_after_s={probe['retry_after_s']})")
    if record.get("repeats", 1) > 1:
        spread = {scheduling: [round(p95, 1) for p95 in p95s]
                  for scheduling, p95s in record["p95_ms_runs"].items()}
        print(f"p95 spread across {record['repeats']} runs (ms): {spread}")
    print(f"p95 improvement (fifo/fair): {record['p95_improvement']}x  "
          f"bulk throughput ratio (fair/fifo): "
          f"{record['bulk_throughput_ratio']}  "
          f"meets >=3x target: {record['meets_target']}")


def failed_probes(record: dict) -> list[str]:
    return [mode["scheduling"] for mode in record["modes"]
            if not mode["admission_probe"]["ok"]]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=800,
                        help="graph size per request (default: 800)")
    parser.add_argument("--dataset", default="wiki-Vote")
    parser.add_argument("--config", default="Tile-16")
    parser.add_argument("--bulk-requests", type=int, default=600)
    parser.add_argument("--bulk-workers", type=int, default=32,
                        help="concurrent bulk connections — the standing "
                             "backlog depth FIFO makes the latency tenant "
                             "wait behind (default: 32)")
    parser.add_argument("--latency-requests", type=int, default=16)
    parser.add_argument("--latency-pace-ms", type=float, default=10.0,
                        help="gap between latency-tenant requests")
    parser.add_argument("--max-batch", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=3,
                        help="interleaved runs per mode; the recorded "
                             "figure is the per-mode median p95 "
                             "(default: 3; --smoke forces 1)")
    parser.add_argument("--smoke", action="store_true",
                        help="small fast configuration for CI (asserts a "
                             "relaxed >= 1.5x p95 guard with one retry, "
                             "saves nothing)")
    parser.add_argument("--output", default=str(RESULTS_PATH))
    args = parser.parse_args()

    if args.smoke:
        args.nodes = 500
        args.bulk_requests = 400
        args.bulk_workers = 24
        args.latency_requests = 12
        args.latency_pace_ms = 10.0
        args.repeats = 1

    kwargs = dict(dataset=args.dataset, nodes=args.nodes,
                  n_bulk=args.bulk_requests, bulk_workers=args.bulk_workers,
                  n_latency=args.latency_requests,
                  latency_pace_s=args.latency_pace_ms / 1e3,
                  max_batch=args.max_batch, config=args.config,
                  repeats=max(1, args.repeats))
    record = run(**kwargs)
    report(record)

    if args.smoke:
        improvement = record["p95_improvement"] or 0.0
        if (improvement < SMOKE_MIN_IMPROVEMENT
                and not failed_probes(record)):
            print(f"[smoke: {improvement}x below the "
                  f"{SMOKE_MIN_IMPROVEMENT}x guard — retrying once "
                  f"(p95 over ~{record['latency_requests']} samples is "
                  f"noisy)]")
            record = run(**kwargs)
            report(record)
            improvement = record["p95_improvement"] or 0.0

    bad_modes = failed_probes(record)
    if bad_modes:
        print(f"ERROR: admission probe failed in mode(s): {bad_modes}")
        return 1
    if args.smoke:
        improvement = record["p95_improvement"] or 0.0
        if improvement < SMOKE_MIN_IMPROVEMENT:
            print(f"ERROR: smoke guard wants >= {SMOKE_MIN_IMPROVEMENT}x "
                  f"p95 improvement, got {improvement}x")
            return 1
        print("[smoke mode: results not saved]")
        return 0
    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"[saved {output}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
