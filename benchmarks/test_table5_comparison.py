"""Table 5: cross-platform comparison of SpGEMM accelerators and the three
NeuraChip configurations.

Regenerates every derived row of the table — sustained SpGEMM GOP/s on the
common matrix suite, energy efficiency (GOPS/W), area efficiency (GOPS/mm^2)
and the Tile-16 speedup column — from the analytic platform models, the
power/area model and the paper's physical parameters.
"""

import numpy as np
import pytest

from repro.arch.config import TILE16, TILE4, TILE64
from repro.baselines.accelerators import (
    NEURACHIP_ANALYTIC_TILE16,
    NEURACHIP_ANALYTIC_TILE4,
    NEURACHIP_ANALYTIC_TILE64,
    spgemm_accelerators,
)
from repro.baselines.platforms import calibrate_platforms, spgemm_platforms
from repro.baselines.workload import SpGEMMWorkloadStats
from repro.power.model import (
    area_breakdown,
    area_efficiency_gops_per_mm2,
    energy_efficiency_gops_per_watt,
    power_breakdown,
)

from _harness import emit

_PAPER_TILE16_SPEEDUPS = {"MKL": 22.1, "cuSPARSE": 17.1, "CUSP": 13.3,
                          "hipSPARSE": 16.7, "OuterSPACE": 6.6, "SpArch": 2.4,
                          "Gamma": 1.5, "NeuraChip Tile-4": 4.8,
                          "NeuraChip Tile-16": 1.0, "NeuraChip Tile-64": 0.807}


@pytest.fixture(scope="module")
def calibrated_platforms(table1_datasets):
    stats = [SpGEMMWorkloadStats.from_matrices(ds.name, ds.adjacency_csr())
             for ds in table1_datasets]
    platforms = [*spgemm_platforms(), *spgemm_accelerators(),
                 NEURACHIP_ANALYTIC_TILE4, NEURACHIP_ANALYTIC_TILE16,
                 NEURACHIP_ANALYTIC_TILE64]
    return stats, calibrate_platforms(platforms, stats)


def test_table5_cross_platform_comparison(benchmark, calibrated_platforms):
    """Regenerate Table 5's derived rows and check them against the paper."""
    stats, platforms = calibrated_platforms
    benchmark.pedantic(calibrate_platforms, args=(platforms, stats),
                       rounds=1, iterations=1)

    neurachip_configs = {"NeuraChip Tile-4": TILE4, "NeuraChip Tile-16": TILE16,
                         "NeuraChip Tile-64": TILE64}
    tile16 = next(p for p in platforms if p.name == "NeuraChip Tile-16")
    tile16_gmean_time = np.exp(np.mean(np.log(
        [tile16.execution_time_s(s) for s in stats])))

    rows = []
    for platform in platforms:
        gops = [platform.sustained_gops(s) for s in stats]
        sustained = float(np.exp(np.mean(np.log(gops))))
        times = [platform.execution_time_s(s) for s in stats]
        gmean_time = float(np.exp(np.mean(np.log(times))))
        if platform.name in neurachip_configs:
            config = neurachip_configs[platform.name]
            area = area_breakdown(config).total_area_mm2
            power = power_breakdown(config).total_power_w
        else:
            area = platform.area_mm2
            power = platform.power_w
        rows.append({
            "platform": platform.name,
            "peak_gflops": platform.peak_gflops,
            "sustained_gops": round(sustained, 2),
            "paper_gops": platform.reference_gops,
            "bandwidth_gb_s": platform.bandwidth_gb_s,
            "area_mm2": round(area, 2) if area else None,
            "power_w": round(power, 2) if power else None,
            "energy_eff_gops_w": round(energy_efficiency_gops_per_watt(
                sustained, power), 3) if power else None,
            "area_eff_gops_mm2": round(area_efficiency_gops_per_mm2(
                sustained, area), 3) if area else None,
            "tile16_speedup": round(gmean_time / tile16_gmean_time, 3),
            "paper_tile16_speedup": _PAPER_TILE16_SPEEDUPS.get(platform.name),
        })
    emit("table5_comparison", rows)

    by_name = {row["platform"]: row for row in rows}
    # Sustained throughput is pinned to the paper by calibration.
    for row in rows:
        assert row["sustained_gops"] == pytest.approx(row["paper_gops"], rel=0.05)
    # Derived efficiency rows reproduce the paper's Table 5 values.
    assert by_name["NeuraChip Tile-16"]["energy_eff_gops_w"] == pytest.approx(1.541,
                                                                              abs=0.06)
    assert by_name["NeuraChip Tile-16"]["area_eff_gops_mm2"] == pytest.approx(2.426,
                                                                              abs=0.1)
    assert by_name["SpArch"]["energy_eff_gops_w"] == pytest.approx(1.123, rel=0.1)
    assert by_name["OuterSPACE"]["energy_eff_gops_w"] == pytest.approx(0.120, rel=0.1)
    # Tile-16 speedup column: ordering and magnitude of the paper's last row.
    for name in ("MKL", "cuSPARSE", "CUSP", "hipSPARSE", "SpArch", "Gamma"):
        assert by_name[name]["tile16_speedup"] == pytest.approx(
            _PAPER_TILE16_SPEEDUPS[name], rel=0.10), name
    assert by_name["NeuraChip Tile-16"]["tile16_speedup"] == pytest.approx(1.0)
    assert by_name["NeuraChip Tile-64"]["tile16_speedup"] < 1.0
    assert by_name["NeuraChip Tile-4"]["tile16_speedup"] > 1.0
