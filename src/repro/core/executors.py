"""Pluggable executor layer: how a session fans work out on the host.

Executors are registered by name exactly like execution backends
(:mod:`repro.backends.registry`): :func:`register_executor` installs a
class, :func:`get_executor` resolves a name (listing the alternatives on a
miss), and :func:`available_executors` reports what is installed.  Three
executors ship built in:

========= ============================================== ==================
name      what runs                                      use when
========= ============================================== ==================
serial    in the calling thread, in submission order     default; debugging
thread    a ``ThreadPoolExecutor``                       I/O-bound or
                                                         numpy-heavy jobs
process   a ``ProcessPoolExecutor``                      CPU-bound compile +
                                                         simulate jobs
========= ============================================== ==================

The process executor requires the mapped function and every item to be
picklable; :class:`~repro.core.session.Session` ships a module-level worker
with a snapshot of its constructor state for exactly this purpose.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable

_EXECUTORS: dict[str, type["Executor"]] = {}


def register_executor(name: str):
    """Class decorator installing an :class:`Executor` under ``name``."""

    def decorator(cls: type["Executor"]) -> type["Executor"]:
        cls.name = name
        _EXECUTORS[name] = cls
        return cls

    return decorator


def available_executors() -> list[str]:
    """Registered executor names, sorted."""
    return sorted(_EXECUTORS)


def get_executor(name: str, workers: int | None = None) -> "Executor":
    """Instantiate the executor registered under ``name``.

    Raises:
        ValueError: when no executor has that name; the message lists every
            registered executor.
    """
    if name not in _EXECUTORS:
        raise ValueError(f"unknown executor {name!r}; "
                         f"registered executors: {available_executors()}")
    return _EXECUTORS[name](workers=workers)


def default_workers() -> int:
    """Default worker count for the pooled executors."""
    return max(1, min(8, os.cpu_count() or 1))


class Executor(ABC):
    """One strategy for running many independent job callables."""

    #: Registry name; set by the @register_executor decorator.
    name: str = ""

    def __init__(self, workers: int | None = None) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers or default_workers()

    @abstractmethod
    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list:
        """Apply ``fn`` to every item; results come back in submission
        order.  Exceptions propagate to the caller."""

    @abstractmethod
    def submit(self, fn: Callable[[Any], Any], item: Any) -> Future:
        """Schedule one call and return a ``concurrent.futures.Future``."""

    def shutdown(self) -> None:
        """Release pooled resources; the executor may not be reused."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


@register_executor("serial")
class SerialExecutor(Executor):
    """Run every job inline in the calling thread (the legacy behaviour)."""

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list:
        return [fn(item) for item in items]

    def submit(self, fn: Callable[[Any], Any], item: Any) -> Future:
        future: Future = Future()
        try:
            future.set_result(fn(item))
        except BaseException as exc:  # noqa: BLE001 - mirrored into the future
            future.set_exception(exc)
        return future


class _PooledExecutor(Executor):
    """Shared plumbing for the thread / process pool executors."""

    _pool_cls: type = ThreadPoolExecutor

    def __init__(self, workers: int | None = None) -> None:
        super().__init__(workers)
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = self._pool_cls(max_workers=self.workers)
        return self._pool

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list:
        pool = self._ensure_pool()
        futures = [pool.submit(fn, item) for item in items]
        return [future.result() for future in futures]

    def submit(self, fn: Callable[[Any], Any], item: Any) -> Future:
        return self._ensure_pool().submit(fn, item)

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


@register_executor("thread")
class ThreadExecutor(_PooledExecutor):
    """Fan jobs out over a thread pool (shares the in-process cache)."""

    _pool_cls = ThreadPoolExecutor


@register_executor("process")
class ProcessExecutor(_PooledExecutor):
    """Fan jobs out over worker processes (true CPU parallelism).

    The mapped function and every item must be picklable; in-memory caches
    are per-worker, but a session's *disk* program cache is shared through
    the filesystem.
    """

    _pool_cls = ProcessPoolExecutor
