"""Batched workload execution: many SpGEMM / GCN jobs over one chip.

Serving traffic means running *queues* of jobs, not single matrices.  The
:class:`WorkloadQueue` collects :class:`WorkloadJob` descriptions, executes
them through any registered backend, and returns a :class:`BatchReport`
with per-job rows and aggregate totals.  Compilation — the symbolic pass
plus MMH lowering, the expensive front half of every run — is cached by
operand fingerprint, so repeated jobs on the same matrices (the common case
for request traffic against a fixed graph) compile once.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.compiler.program import Program
from repro.sparse.csr import CSRMatrix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.api import NeuraChip, SpGEMMRunResult

#: Default bound on cached compiled programs (FIFO eviction).
DEFAULT_CACHE_CAPACITY = 128


def matrix_fingerprint(matrix: CSRMatrix) -> str:
    """Stable content hash of a CSR matrix (structure + values)."""
    digest = hashlib.sha1()
    digest.update(str(matrix.shape).encode())
    digest.update(matrix.indptr.tobytes())
    digest.update(matrix.indices.tobytes())
    digest.update(matrix.data.tobytes())
    return digest.hexdigest()


@dataclass
class WorkloadJob:
    """One unit of batched work.

    Attributes:
        a: left operand in CSR (adjacency matrix).
        b: right operand in CSR; ``None`` means the A @ A workload.
        label: human-readable name used in the batch report.
        tile_size: MMH tile-size override for this job.
        source: workload label recorded in the compiled program.
    """

    a: CSRMatrix
    b: CSRMatrix | None = None
    label: str = "job"
    tile_size: int | None = None
    source: str = "batch"

    @classmethod
    def spgemm(cls, a: CSRMatrix, b: CSRMatrix | None = None,
               label: str = "spgemm", tile_size: int | None = None
               ) -> "WorkloadJob":
        """An SpGEMM job C = A @ B (B defaults to A)."""
        return cls(a=a, b=b, label=label, tile_size=tile_size, source=label)


@dataclass
class JobOutcome:
    """Result of one job within a batch."""

    label: str
    result: "SpGEMMRunResult"
    cache_hit: bool

    def as_row(self) -> dict:
        """Flat row for table / CSV export."""
        report = self.result.report
        program = self.result.program
        return {
            "job": self.label,
            "backend": self.result.backend,
            "cycles": report.cycles if report is not None else 0.0,
            "gops": round(report.gops, 3) if report is not None else 0.0,
            "mmh": program.n_instructions,
            "partial_products": program.total_partial_products,
            "output_nnz": self.result.output.nnz,
            "power_w": round(self.result.power_w, 2),
            "compile_cached": self.cache_hit,
        }


@dataclass
class BatchReport:
    """Aggregate outcome of a :meth:`WorkloadQueue.run` execution.

    Attributes:
        outcomes: per-job outcomes, in submission order.
        backend: backend name the batch ran on.
        cache_hits: jobs whose compiled program came from the cache.
    """

    outcomes: list[JobOutcome] = field(default_factory=list)
    backend: str = ""
    cache_hits: int = 0

    @property
    def n_jobs(self) -> int:
        return len(self.outcomes)

    @property
    def total_cycles(self) -> float:
        """Summed cycles across jobs (sequential-execution estimate)."""
        return sum(o.result.report.cycles for o in self.outcomes
                   if o.result.report is not None)

    @property
    def total_partial_products(self) -> int:
        return sum(o.result.program.total_partial_products
                   for o in self.outcomes)

    @property
    def total_energy_j(self) -> float:
        return sum(o.result.energy_j for o in self.outcomes)

    def as_rows(self) -> list[dict]:
        """Per-job rows for table / CSV export."""
        return [o.as_row() for o in self.outcomes]

    def summary(self) -> dict:
        """One aggregate row."""
        return {
            "jobs": self.n_jobs,
            "backend": self.backend,
            "total_cycles": self.total_cycles,
            "total_partial_products": self.total_partial_products,
            "total_energy_j": round(self.total_energy_j, 9),
            "compile_cache_hits": self.cache_hits,
        }


class ProgramCache:
    """Bounded FIFO cache of compiled programs keyed by operand content."""

    def __init__(self, capacity: int = DEFAULT_CACHE_CAPACITY) -> None:
        self.capacity = max(0, capacity)
        self._entries: OrderedDict[tuple, Program] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def key(self, a: CSRMatrix, b: CSRMatrix | None, tile_size: int) -> tuple:
        # b=None means the A @ A workload, so it keys identically to b=a.
        fingerprint_a = matrix_fingerprint(a)
        fingerprint_b = matrix_fingerprint(b) if b is not None else fingerprint_a
        return (fingerprint_a, fingerprint_b, tile_size)

    def get(self, key: tuple) -> Program | None:
        program = self._entries.get(key)
        if program is not None:
            self.hits += 1
        else:
            self.misses += 1
        return program

    def put(self, key: tuple, program: Program) -> None:
        if self.capacity <= 0:
            return
        self._entries[key] = program
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)


class WorkloadQueue:
    """An ordered queue of jobs executed over one chip with program caching."""

    def __init__(self, jobs: Iterable[WorkloadJob] | None = None,
                 cache_capacity: int = DEFAULT_CACHE_CAPACITY) -> None:
        self.jobs: list[WorkloadJob] = list(jobs or [])
        self.cache = ProgramCache(cache_capacity)

    def add(self, job: WorkloadJob) -> "WorkloadQueue":
        """Append a job; returns self for chaining."""
        self.jobs.append(job)
        return self

    def add_spgemm(self, a: CSRMatrix, b: CSRMatrix | None = None,
                   label: str = "spgemm",
                   tile_size: int | None = None) -> "WorkloadQueue":
        """Append an SpGEMM job; returns self for chaining."""
        return self.add(WorkloadJob.spgemm(a, b, label=label,
                                           tile_size=tile_size))

    # ------------------------------------------------------------------
    def run(self, chip: "NeuraChip", backend: str = "analytic",
            impl: str = "numpy", verify: bool = False) -> BatchReport:
        """Execute every queued job on ``chip`` through ``backend``.

        Compiled programs are reused across jobs with identical operands and
        tile size, so a queue that replays the same graph many times (e.g.
        repeated inference requests) pays the symbolic pass once.
        """
        report = BatchReport(backend=backend)
        for job in self.jobs:
            tile = job.tile_size or chip.config.mmh_tile_size
            key = self.cache.key(job.a, job.b, tile)
            program = self.cache.get(key)
            cache_hit = program is not None
            if program is None:
                program = chip.compile(job.a, job.b, tile_size=tile,
                                       source=job.source)
                self.cache.put(key, program)
            result = chip.run_program(program, a=job.a, b=job.b,
                                      backend=backend, impl=impl,
                                      verify=verify)
            report.outcomes.append(JobOutcome(label=job.label, result=result,
                                              cache_hit=cache_hit))
            if cache_hit:
                report.cache_hits += 1
        return report
