"""Batched workload execution: many SpGEMM / GCN jobs over one chip.

Serving traffic means running *queues* of jobs, not single matrices.  The
:class:`WorkloadQueue` collects :class:`WorkloadJob` descriptions, executes
them through any registered backend, and returns a :class:`BatchReport`
with per-job rows and aggregate totals.  Compilation — the symbolic pass
plus MMH lowering, the expensive front half of every run — is cached by
operand fingerprint in a :class:`ProgramCache`: an LRU bound in memory that
can also spill fingerprinted programs to disk, so repeated CLI / batch
invocations against the same graphs skip compilation entirely.

Queues now execute through a :class:`~repro.core.session.Session`; the
``run`` method here is a thin forwarding layer kept for compatibility.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.analysis.verifier import verify_program
from repro.compiler.program import Program
from repro.sparse.csr import CSRMatrix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.api import NeuraChip, SpGEMMRunResult

#: Default bound on cached compiled programs (LRU eviction).
DEFAULT_CACHE_CAPACITY = 128

#: Default bound on the on-disk cache tier, in bytes.  Long-lived serving
#: hosts spill every compiled program; without a cap the tier grows without
#: bound, so spills sweep the directory by mtime (oldest first) down to
#: this size.  ``max_disk_bytes=None`` disables the sweep.
DEFAULT_DISK_CAPACITY_BYTES = 256 * 1024 * 1024

#: On-disk cache schema version.  Part of every fingerprint and cache key:
#: bump it whenever the fingerprint inputs, the Program layout, or the
#: pickle payload change shape, so stale entries from an older release can
#: never silently collide with (or be served as) current ones.
#: v3: programs pickle as the columnar ``ProgramArrays`` payload (numpy
#: buffers) instead of a materialized macro-op list — far smaller spills,
#: and incompatible with the v2 object graph.
CACHE_SCHEMA_VERSION = 3


def matrix_fingerprint(matrix) -> str:
    """Stable content hash of a sparse matrix (structure + values + dtype).

    Accepts any CSR/CSC-shaped object exposing ``indptr`` / ``indices`` /
    ``data`` / ``shape``.  The digest covers the array dtypes and the cache
    schema version in addition to the raw bytes, so two matrices whose
    buffers happen to share a byte representation under different dtypes —
    or fingerprints minted by an older release — can never collide.
    """
    digest = hashlib.sha1()
    digest.update(f"schema={CACHE_SCHEMA_VERSION}".encode())
    digest.update(str(matrix.shape).encode())
    for array in (matrix.indptr, matrix.indices, matrix.data):
        digest.update(str(array.dtype).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


def matrix_structure_fingerprint(matrix) -> str:
    """Stable hash of a sparse matrix's *structure* (shape + index arrays,
    values excluded).

    Two matrices with identical sparsity patterns but different values map
    to the same digest.  This is the cache key ingredient for resident-graph
    GNN stacks: the compiled aggregation program's instruction stream
    depends only on the operand structure, so layer ``i``'s program can be
    re-bound to layer ``i+1``'s values when the structure digest matches.
    """
    digest = hashlib.sha1()
    digest.update(f"schema={CACHE_SCHEMA_VERSION}:structure".encode())
    digest.update(str(matrix.shape).encode())
    for array in (matrix.indptr, matrix.indices):
        digest.update(str(array.dtype).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


def default_cache_dir() -> Path:
    """Default location for the persistent program cache
    (``$XDG_CACHE_HOME`` or ``~/.cache``)."""
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base) if base else Path.home() / ".cache"
    return root / "neurachip-repro" / f"programs-v{CACHE_SCHEMA_VERSION}"


@dataclass
class WorkloadJob:
    """One unit of batched work.

    Attributes:
        a: left operand in CSR (adjacency matrix).
        b: right operand in CSR; ``None`` means the A @ A workload.
        label: human-readable name used in the batch report.
        tile_size: MMH tile-size override for this job.
        source: workload label recorded in the compiled program.
    """

    a: CSRMatrix
    b: CSRMatrix | None = None
    label: str = "job"
    tile_size: int | None = None
    source: str = "batch"

    @classmethod
    def spgemm(cls, a: CSRMatrix, b: CSRMatrix | None = None,
               label: str = "spgemm", tile_size: int | None = None
               ) -> "WorkloadJob":
        """An SpGEMM job C = A @ B (B defaults to A)."""
        return cls(a=a, b=b, label=label, tile_size=tile_size, source=label)


@dataclass
class JobOutcome:
    """Result of one job within a batch."""

    label: str
    result: "SpGEMMRunResult"
    cache_hit: bool
    wall_time_s: float = 0.0

    def as_row(self) -> dict:
        """Flat row for table / CSV export; ``None``-valued fields dropped
        so multi-row CSV exports stay rectangular."""
        report = self.result.report
        program = self.result.program
        row = {
            "job": self.label,
            "backend": self.result.backend,
            "cycles": report.cycles if report is not None else 0.0,
            "gops": round(report.gops, 3) if report is not None else 0.0,
            "mmh": program.n_instructions,
            "partial_products": program.total_partial_products,
            "output_nnz": self.result.output.nnz,
            "power_w": round(self.result.power_w, 2),
            "cache_hit": self.cache_hit,
            "wall_time_s": round(self.wall_time_s, 6),
            "compile_cached": self.cache_hit,  # legacy column name
        }
        return {key: value for key, value in row.items() if value is not None}


@dataclass
class BatchReport:
    """Aggregate outcome of a batch execution.

    Attributes:
        outcomes: per-job outcomes, in submission order.
        backend: backend name the batch ran on.
        executor: executor name the batch fanned out on.
        cache_hits: jobs whose compiled program came from the cache.
        wall_time_s: host wall-clock seconds for the whole batch.
    """

    outcomes: list[JobOutcome] = field(default_factory=list)
    backend: str = ""
    executor: str = "serial"
    cache_hits: int = 0
    wall_time_s: float = 0.0

    @property
    def n_jobs(self) -> int:
        return len(self.outcomes)

    @property
    def total_cycles(self) -> float:
        """Summed cycles across jobs (sequential-execution estimate)."""
        return sum(o.result.report.cycles for o in self.outcomes
                   if o.result.report is not None)

    @property
    def total_partial_products(self) -> int:
        return sum(o.result.program.total_partial_products
                   for o in self.outcomes)

    @property
    def total_energy_j(self) -> float:
        return sum(o.result.energy_j for o in self.outcomes)

    def as_rows(self) -> list[dict]:
        """Per-job rows for table / CSV export."""
        return [o.as_row() for o in self.outcomes]

    def summary(self) -> dict:
        """One aggregate row; ``None``-valued fields dropped."""
        row = {
            "jobs": self.n_jobs,
            "backend": self.backend,
            "executor": self.executor,
            "total_cycles": self.total_cycles,
            "total_partial_products": self.total_partial_products,
            "total_energy_j": round(self.total_energy_j, 9),
            "cache_hits": self.cache_hits,
            "wall_time_s": round(self.wall_time_s, 6),
            "compile_cache_hits": self.cache_hits,  # legacy column name
        }
        return {key: value for key, value in row.items() if value is not None}


class ProgramCache:
    """Bounded LRU cache of compiled programs keyed by operand content.

    Entries are touched on :meth:`get`, so hot programs survive pressure
    that would have evicted them under the old FIFO policy.  When
    ``cache_dir`` is given, every stored program is also pickled to disk
    under its key digest; later processes (or later CLI invocations) that
    miss in memory transparently load from disk, skipping compilation.
    The disk tier is itself bounded: every spill sweeps the directory down
    to ``max_disk_bytes`` by eviction of the oldest-mtime entries (disk
    hits touch the file's mtime, so the sweep is an LRU over entries any
    process sharing the directory actually uses).  The cache is
    thread-safe, so a thread executor can share it.
    """

    def __init__(self, capacity: int = DEFAULT_CACHE_CAPACITY,
                 cache_dir: str | Path | None = None,
                 max_disk_bytes: int | None = DEFAULT_DISK_CAPACITY_BYTES
                 ) -> None:
        self.capacity = max(0, capacity)
        self.max_disk_bytes = max_disk_bytes
        self._entries: OrderedDict[tuple, Program] = OrderedDict()  # guarded-by: _lock
        self._lock = threading.Lock()
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self.disk_hits = 0  # guarded-by: _lock
        self.disk_evictions = 0  # guarded-by: _lock
        self.verify_failed = 0  # guarded-by: _lock
        self.cache_dir: Path | None = None
        if cache_dir is not None:
            path = Path(cache_dir).expanduser()
            if path.exists() and not path.is_dir():
                raise ValueError(f"cache dir {str(path)!r} exists and is not "
                                 "a directory")
            path.mkdir(parents=True, exist_ok=True)
            self.cache_dir = path

    # ------------------------------------------------------------------
    def key(self, a, b, tile_size: int, kind: str = "spgemm") -> tuple:
        """Cache key for operands ``(a, b)`` at ``tile_size``.

        ``b=None`` means the A @ A workload, so it keys identically to
        ``b=a``.  ``kind`` separates program families (spgemm vs gcn
        aggregation) that would otherwise share operand fingerprints.
        """
        fingerprint_a = matrix_fingerprint(a)
        fingerprint_b = matrix_fingerprint(b) if b is not None else fingerprint_a
        return (CACHE_SCHEMA_VERSION, kind, fingerprint_a, fingerprint_b,
                tile_size)

    def _disk_path(self, key: tuple) -> Path:
        digest = hashlib.sha1(repr(key).encode()).hexdigest()
        return self.cache_dir / f"{digest}.pkl"

    # ------------------------------------------------------------------
    def get(self, key: tuple) -> Program | None:
        with self._lock:
            program = self._entries.get(key)
            if program is not None:
                self._entries.move_to_end(key)  # LRU touch
                self.hits += 1
                return program
        program = self._load_from_disk(key)
        with self._lock:
            if program is not None:
                self.hits += 1
                self.disk_hits += 1
                self._store(key, program)
            else:
                self.misses += 1
        return program

    def put(self, key: tuple, program: Program) -> None:
        with self._lock:
            self._store(key, program)
        self._spill_to_disk(key, program)

    def _store(self, key: tuple, program: Program) -> None:  # lockcheck: holds _lock
        if self.capacity <= 0:
            return
        self._entries[key] = program
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    # ------------------------------------------------------------------
    def _load_from_disk(self, key: tuple) -> Program | None:
        if self.cache_dir is None:
            return None
        path = self._disk_path(key)
        if not path.exists():
            return None
        try:
            with path.open("rb") as handle:
                schema, stored_key, program = pickle.load(handle)
            if schema != CACHE_SCHEMA_VERSION or stored_key != key:
                raise ValueError("stale or colliding cache entry")
            # The cache tier is payload-agnostic (tests and callers may
            # store non-Program values); only compiled programs carry IR
            # invariants to verify.
            findings = (verify_program(program, level="quick")
                        if isinstance(program, Program) else [])
            if findings:
                # A pickle that unpickles into an ill-formed program is
                # treated exactly like a corrupt entry (drop + recompile),
                # but counted separately: corruption that survives
                # pickle.load is worth alarming on.
                with self._lock:
                    self.verify_failed += 1
                raise ValueError("disk cache entry failed IR verification: "
                                 + findings[0].format())
            try:
                os.utime(path)  # LRU touch: hot entries survive the sweep
            except OSError:
                pass
            return program
        except Exception:  # corrupt/stale entries are misses, not errors
            path.unlink(missing_ok=True)
            return None

    def _spill_to_disk(self, key: tuple, program: Program) -> None:
        if self.cache_dir is None or self.capacity <= 0:
            return
        path = self._disk_path(key)
        # Unique temp name per writer so concurrent spills of the same
        # entry (thread pool, or processes sharing one cache dir) never
        # interleave partial writes; last replace wins atomically.
        tmp = path.with_suffix(f".{os.getpid()}.{threading.get_ident()}.tmp")
        try:
            with tmp.open("wb") as handle:
                pickle.dump((CACHE_SCHEMA_VERSION, key, program), handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            tmp.replace(path)  # atomic publish for concurrent writers
        except Exception:
            # Disk spill is best-effort: I/O errors and unpicklable
            # payloads (e.g. caller-extended metadata) must not abort the
            # run, and the partial temp file must not linger.
            tmp.unlink(missing_ok=True)
            return
        self._sweep_disk()

    def _sweep_disk(self) -> None:
        """Evict oldest-mtime disk entries until the tier fits
        ``max_disk_bytes`` (best-effort: concurrent writers may race the
        stat/unlink, which only makes the sweep conservative)."""
        if self.cache_dir is None or self.max_disk_bytes is None:
            return
        entries = []
        total = 0
        for path in self.cache_dir.glob("*.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        if total <= self.max_disk_bytes:
            return
        # Never evict the newest entry: a single program larger than the
        # cap must stay cached (deleting it would force a recompile on
        # every subsequent run without ever freeing the budget it needs).
        evicted = 0
        for _, size, path in sorted(entries)[:-1]:
            try:
                path.unlink(missing_ok=True)
            except OSError:
                continue
            evicted += 1
            total -= size
            if total <= self.max_disk_bytes:
                break
        if evicted:
            # _sweep_disk runs outside the lock (it only touches the
            # filesystem); the shared counter update must not.
            with self._lock:
                self.disk_evictions += evicted

    def clear_disk(self) -> int:
        """Remove every on-disk entry (and stray temp files); returns the
        number of cache entries removed."""
        if self.cache_dir is None:
            return 0
        removed = 0
        for path in self.cache_dir.glob("*.pkl"):
            try:
                path.unlink(missing_ok=True)
                removed += 1
            except OSError:
                continue
        for tmp in self.cache_dir.glob("*.tmp"):
            tmp.unlink(missing_ok=True)
        return removed

    def disk_stats(self) -> dict:
        """Entry count and byte totals of the on-disk tier."""
        entries = 0
        total = 0
        if self.cache_dir is not None:
            for path in self.cache_dir.glob("*.pkl"):
                try:
                    total += path.stat().st_size
                except OSError:
                    continue
                entries += 1
        return {"disk_entries": entries, "disk_bytes": total,
                "max_disk_bytes": self.max_disk_bytes,
                "disk_evictions": self.disk_evictions,
                "verify_failed": self.verify_failed}

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Hit / miss counters and sizing, as one flat dict."""
        return {"hits": self.hits, "misses": self.misses,
                "disk_hits": self.disk_hits, "entries": len(self._entries),
                "capacity": self.capacity,
                "cache_dir": str(self.cache_dir) if self.cache_dir else None,
                **self.disk_stats()}

    def __len__(self) -> int:
        return len(self._entries)


class WorkloadQueue:
    """An ordered queue of jobs executed over one chip with program caching."""

    def __init__(self, jobs: Iterable[WorkloadJob] | None = None,
                 cache_capacity: int = DEFAULT_CACHE_CAPACITY,
                 cache_dir: str | Path | None = None) -> None:
        self.jobs: list[WorkloadJob] = list(jobs or [])
        self.cache = ProgramCache(cache_capacity, cache_dir=cache_dir)

    def add(self, job: WorkloadJob) -> "WorkloadQueue":
        """Append a job; returns self for chaining."""
        self.jobs.append(job)
        return self

    def add_spgemm(self, a: CSRMatrix, b: CSRMatrix | None = None,
                   label: str = "spgemm",
                   tile_size: int | None = None) -> "WorkloadQueue":
        """Append an SpGEMM job; returns self for chaining."""
        return self.add(WorkloadJob.spgemm(a, b, label=label,
                                           tile_size=tile_size))

    # ------------------------------------------------------------------
    def run(self, chip: "NeuraChip", backend: str = "analytic",
            impl: str = "numpy", verify: bool = False,
            executor: str = "serial", workers: int | None = None
            ) -> BatchReport:
        """Execute every queued job on ``chip`` through ``backend``.

        Compiled programs are reused across jobs with identical operands and
        tile size, so a queue that replays the same graph many times (e.g.
        repeated inference requests) pays the symbolic pass once.  This now
        routes through a :class:`~repro.core.session.Session` bound to the
        queue's cache; pass ``executor`` / ``workers`` to fan the jobs out.
        """
        from repro.core.session import Session
        from repro.core.specs import BatchSpec, SpGEMMSpec

        session = Session(chip, backend=backend, impl=impl,
                          executor=executor, workers=workers,
                          cache=self.cache)
        try:
            specs = [SpGEMMSpec(a=job.a, b=job.b, label=job.label,
                                tile_size=job.tile_size, source=job.source,
                                verify=verify)
                     for job in self.jobs]
            return session.run(BatchSpec(specs=specs)).legacy
        finally:
            session.close()
