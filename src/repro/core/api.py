"""NeuraChip facade: run SpGEMM / GCN workloads on a configured accelerator.

Typical use::

    from repro.core import NeuraChip
    from repro.datasets import load_dataset

    chip = NeuraChip("Tile-16")
    dataset = load_dataset("facebook", max_nodes=256)
    result = chip.run_spgemm(dataset.adjacency_csr())
    print(result.report.cycles, result.report.gops)

Every run is executed through a pluggable backend (see
:mod:`repro.backends`): ``cycle`` for the event-driven timing model,
``functional`` for the untimed dataflow, and ``analytic`` for roofline
cycle prediction on graphs too large to event-simulate.  Batches of jobs
run through :meth:`NeuraChip.run_batch`, which caches compiled programs
across jobs with identical operands.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.config import NeuraChipConfig, get_config
from repro.backends import ExecutionContext, get_backend
from repro.compiler import compile_gcn_aggregation, compile_spgemm
from repro.compiler.program import Program
from repro.core.runner import BatchReport, WorkloadJob, WorkloadQueue
from repro.datasets.suite import GraphDataset
from repro.gnn.gcn import GCNWorkload
from repro.power.model import PowerModel
from repro.sim.accelerator import SimulationReport
from repro.sim.functional import FunctionalReport
from repro.sim.params import SimulationParams
from repro.sparse.convert import coo_to_csr, csc_to_csr, csr_to_csc, dense_to_coo
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix


def _as_csr(matrix) -> CSRMatrix:
    """Accept CSR/CSC/COO/dense and return CSR."""
    if isinstance(matrix, CSRMatrix):
        return matrix
    if isinstance(matrix, CSCMatrix):
        return coo_to_csr(matrix.to_coo())
    if isinstance(matrix, COOMatrix):
        return coo_to_csr(matrix)
    if isinstance(matrix, np.ndarray):
        return coo_to_csr(dense_to_coo(matrix))
    raise TypeError(f"unsupported matrix type {type(matrix)!r}")


@dataclass
class SpGEMMRunResult:
    """Result of running one SpGEMM on NeuraChip.

    Attributes:
        program: the compiled program that was executed.
        report: timing report — measured (cycle backend) or predicted
            (analytic backend); None for the functional backend.
        functional: functional-model report (None for the analytic backend,
            which computes its output through the kernel layer instead).
        output: the product matrix C in CSR.
        power_w: modelled average power during the run.
        energy_j: modelled energy of the run.
        backend: name of the execution backend that produced this result.
    """

    program: Program
    report: SimulationReport | None
    functional: FunctionalReport | None
    output: CSRMatrix
    power_w: float = 0.0
    energy_j: float = 0.0
    backend: str = "cycle"

    @property
    def correct(self) -> bool | None:
        """Whether the cycle simulator's output matched the reference."""
        return self.report.correct if self.report is not None else None


@dataclass
class GCNRunResult:
    """Result of one GCN layer (aggregation on chip, combination modelled).

    Attributes:
        aggregation: the SpGEMM run result of the aggregation phase.
        combination_cycles: modelled cycles of the dense combination phase.
        total_cycles: aggregation + combination cycles.
        output: dense layer output (after activation).
        workload: the GCN workload that was executed.
    """

    aggregation: SpGEMMRunResult
    combination_cycles: float
    total_cycles: float
    output: np.ndarray
    workload: GCNWorkload | None = None
    metadata: dict = field(default_factory=dict)


class NeuraChip:
    """User-facing accelerator object bound to one configuration."""

    def __init__(self, config: str | NeuraChipConfig = "Tile-16",
                 mapping_scheme: str | None = None,
                 eviction_mode: str = "rolling",
                 params: SimulationParams | None = None,
                 mapping_seed: int = 0) -> None:
        self.config = get_config(config) if isinstance(config, str) else config
        self.mapping_scheme = mapping_scheme or self.config.mapping_scheme
        self.eviction_mode = eviction_mode
        self.params = params or SimulationParams()
        self.mapping_seed = mapping_seed
        self._power_model = PowerModel()

    # ------------------------------------------------------------------
    def compile(self, a_matrix, b_matrix=None,
                tile_size: int | None = None, source: str = "spgemm") -> Program:
        """Compile C = A @ B (default B = A) into a NeuraChip program."""
        a_csr = _as_csr(a_matrix)
        b_csr = _as_csr(b_matrix) if b_matrix is not None else a_csr
        a_csc = csr_to_csc(a_csr)
        return compile_spgemm(a_csc, b_csr,
                              tile_size=tile_size or self.config.mmh_tile_size,
                              source=source)

    # ------------------------------------------------------------------
    def _context(self, impl: str) -> ExecutionContext:
        """Execution context describing this chip for a backend."""
        return ExecutionContext(config=self.config, params=self.params,
                                mapping_scheme=self.mapping_scheme,
                                mapping_seed=self.mapping_seed,
                                eviction_mode=self.eviction_mode,
                                kernel_impl=impl)

    def run_program(self, program: Program, a=None, b=None,
                    backend: str = "cycle", impl: str = "numpy",
                    verify: bool = True) -> SpGEMMRunResult:
        """Execute an already-compiled program through a named backend.

        Args:
            program: compiled MMH stream (see :meth:`compile`).
            a / b: the operands the program was compiled from (CSR/CSC/COO
                or dense); fast backends use them to compute the numeric
                output through the kernel layer.  ``b`` defaults to ``a``.
            backend: registered backend name ('functional', 'cycle',
                'analytic', or any backend added via ``register_backend``).
            impl: kernel implementation for backends that use the kernel
                layer ('python' or 'numpy').
            verify: verify the accelerator output against the reference
                (cycle backend only).
        """
        executor = get_backend(backend)
        a_csr = _as_csr(a) if a is not None else None
        b_csr = _as_csr(b) if b is not None else a_csr
        execution = executor.execute(program, self._context(impl),
                                     a_csr=a_csr, b_csr=b_csr, verify=verify)
        power_w, energy_j = self._estimate_power(execution.report)
        return SpGEMMRunResult(program=program, report=execution.report,
                               functional=execution.functional,
                               output=execution.output,
                               power_w=power_w, energy_j=energy_j,
                               backend=execution.backend)

    # ------------------------------------------------------------------
    def run_spgemm(self, a_matrix, b_matrix=None, tile_size: int | None = None,
                   mode: str = "cycle", verify: bool = True,
                   source: str = "spgemm", backend: str | None = None,
                   impl: str = "numpy") -> SpGEMMRunResult:
        """Execute C = A @ B on the accelerator.

        Args:
            a_matrix: left operand (CSR/CSC/COO or dense numpy array).
            b_matrix: right operand; defaults to ``a_matrix`` (the A @ A
                workload of Table 1 / Figure 16).
            tile_size: MMH tile size override.
            mode: legacy backend selector ('cycle' or 'functional'); kept
                for backward compatibility.
            verify: verify the accelerator output against the reference.
            source: workload label.
            backend: backend name; overrides ``mode`` when given.  Unknown
                names raise ValueError listing the registered backends.
            impl: kernel implementation used by the analytic backend.

        Returns:
            A :class:`SpGEMMRunResult`.
        """
        get_backend(backend or mode)  # fail fast before the compile pass
        program = self.compile(a_matrix, b_matrix, tile_size=tile_size,
                               source=source)
        return self.run_program(program, a=a_matrix,
                                b=b_matrix if b_matrix is not None else a_matrix,
                                backend=backend or mode, impl=impl,
                                verify=verify)

    # ------------------------------------------------------------------
    def run_gcn_layer(self, dataset: GraphDataset | COOMatrix,
                      feature_dim: int = 32, hidden_dim: int = 16,
                      feature_density: float = 0.3, mode: str = "cycle",
                      verify: bool = True, seed: int = 7,
                      backend: str | None = None,
                      impl: str = "numpy") -> GCNRunResult:
        """Execute one GCN layer: aggregation on the accelerator, combination
        as a modelled dense phase (Section 2.2's combination stage).
        """
        if isinstance(dataset, GraphDataset):
            workload = GCNWorkload.build(dataset, feature_dim=feature_dim,
                                         hidden_dim=hidden_dim,
                                         feature_density=feature_density, seed=seed)
        else:
            from repro.datasets.suite import DatasetSpec

            spec = DatasetSpec("custom", "custom", dataset.shape[0],
                               dataset.nnz, 0.0, None, feature_dim=feature_dim)
            workload = GCNWorkload.build(GraphDataset(spec, dataset, 1.0),
                                         feature_dim=feature_dim,
                                         hidden_dim=hidden_dim,
                                         feature_density=feature_density, seed=seed)

        a_csc = workload.adjacency_csc
        program = compile_gcn_aggregation(a_csc, workload.features,
                                          tile_size=self.config.mmh_tile_size,
                                          dataset=workload.dataset.name)
        executor = get_backend(backend or mode)
        execution = executor.execute(program, self._context(impl),
                                     a_csr=csc_to_csr(a_csc),
                                     b_csr=workload.features,
                                     verify=verify)
        report = execution.report
        aggregated = execution.to_dense()
        combined = workload.layer.combination(aggregated)
        combination_cycles = self._combination_cycles(workload)
        aggregation_cycles = report.cycles if report is not None else 0.0
        power_w, energy_j = self._estimate_power(report)
        aggregation_result = SpGEMMRunResult(
            program=program, report=report, functional=execution.functional,
            output=execution.output,
            power_w=power_w, energy_j=energy_j, backend=execution.backend)
        return GCNRunResult(aggregation=aggregation_result,
                            combination_cycles=combination_cycles,
                            total_cycles=aggregation_cycles + combination_cycles,
                            output=combined,
                            workload=workload,
                            metadata={"feature_dim": feature_dim,
                                      "hidden_dim": hidden_dim})

    # ------------------------------------------------------------------
    def run_batch(self, jobs, backend: str = "analytic", impl: str = "numpy",
                  verify: bool = False) -> BatchReport:
        """Execute many SpGEMM jobs over this chip with program caching.

        Args:
            jobs: a :class:`~repro.core.runner.WorkloadQueue`, or an
                iterable of :class:`~repro.core.runner.WorkloadJob` /
                bare matrices (each becomes an A @ A job).
            backend: backend name every job runs through.
            impl: kernel implementation for kernel-layer backends.
            verify: verify each job's output (cycle backend only).

        Returns:
            A :class:`~repro.core.runner.BatchReport` with per-job rows and
            aggregate totals.
        """
        if isinstance(jobs, WorkloadQueue):
            queue = jobs
        else:
            queue = WorkloadQueue()
            for index, job in enumerate(jobs):
                if not isinstance(job, WorkloadJob):
                    job = WorkloadJob.spgemm(_as_csr(job), label=f"job-{index}")
                queue.add(job)
        return queue.run(self, backend=backend, impl=impl, verify=verify)

    # ------------------------------------------------------------------
    def _combination_cycles(self, workload: GCNWorkload) -> float:
        """Dense combination phase modelled at the chip's peak throughput,
        bounded by HBM streaming of the aggregated features."""
        flops = workload.combination_flops()
        compute_cycles = flops / max(self.config.peak_gflops, 1e-9)
        traffic = 4.0 * (workload.dataset.n_nodes
                         * (workload.layer.in_dim + workload.layer.out_dim))
        memory_cycles = traffic / max(self.config.peak_bandwidth_bytes_per_cycle, 1e-9)
        return max(compute_cycles, memory_cycles)

    @staticmethod
    def _activity_from_report(report: SimulationReport) -> dict[str, float]:
        """Per-component activity factors derived from a simulation report."""
        return {
            "NeuraCore": min(1.0, report.core_utilization * 4.0),
            "NeuraMem": min(1.0, report.mem_utilization * 2.0),
            "Router": min(1.0, report.noc_flits / max(report.cycles, 1.0)),
            "Memory Controller": min(1.0, report.avg_inflight_mem / 16.0),
        }

    def _estimate_power(self, report: SimulationReport | None) -> tuple[float, float]:
        """Average power and energy of a run, from the simulator's activity."""
        if report is None:
            return 0.0, 0.0
        activity = self._activity_from_report(report)
        power = self._power_model.power(self.config, activity).total_power_w
        seconds = report.cycles / (self.config.frequency_ghz * 1e9)
        return power, power * seconds

    # ------------------------------------------------------------------
    def power_breakdown(self, report: SimulationReport | None = None):
        """Table 4 style area/power breakdown for this configuration."""
        activity = self._activity_from_report(report) if report is not None else None
        return self._power_model.combined(self.config, activity)


def design_space_sweep(a_matrix, b_matrix=None,
                       configs: list[str | NeuraChipConfig] = ("Tile-4", "Tile-16",
                                                               "Tile-64"),
                       eviction_mode: str = "rolling",
                       normalize_to: str | None = "Tile-4",
                       params: SimulationParams | None = None,
                       backend: str = "cycle",
                       on_missing_base: str = "skip",
                       ) -> dict[str, dict[str, float]]:
    """Run the same workload across tile configurations (Figure 11).

    Returns, per configuration, the six Figure 11 metrics (stall cycles, CPI,
    IPC, in-flight memory instructions, power, busy cycles), optionally
    normalised to one of the configurations.

    Args:
        backend: execution backend for every configuration ('cycle' or
            'analytic'; 'functional' produces no timing report).
        on_missing_base: what to do when the normalisation baseline lacks a
            metric or reports it as zero — ``"skip"`` omits that metric from
            the normalised output, ``"raise"`` raises ValueError.  (The
            previous behaviour silently mapped such metrics to 0.0, which
            made a missing baseline indistinguishable from a real zero.)
    """
    if on_missing_base not in ("skip", "raise"):
        raise ValueError("on_missing_base must be 'skip' or 'raise'")
    get_backend(backend)  # fail fast on unknown names before any run
    if backend == "functional":
        raise ValueError("backend 'functional' produces no timing report; "
                         "use 'cycle' or 'analytic'")
    raw: dict[str, dict[str, float]] = {}
    for config in configs:
        chip = NeuraChip(config, eviction_mode=eviction_mode, params=params)
        result = chip.run_spgemm(a_matrix, b_matrix, verify=False,
                                 backend=backend)
        report = result.report
        if report is None:
            raise ValueError(f"backend {backend!r} produces no timing report; "
                             "use 'cycle' or 'analytic'")
        raw[chip.config.name] = {
            "stall_cycles": report.stall_cycles,
            "cpi": report.cpi,
            "ipc": report.ipc,
            "in_flight_instx": report.avg_inflight_mem,
            "power": result.power_w,
            "busy_cycles": report.busy_cycles,
            "cycles": report.cycles,
            "gops": report.gops,
        }
    if normalize_to is None:
        return raw
    base_name = get_config(normalize_to).name if isinstance(normalize_to, str) \
        else normalize_to.name
    base = raw[base_name]
    normalized: dict[str, dict[str, float]] = {}
    for name, metrics in raw.items():
        normalized[name] = {}
        for key, value in metrics.items():
            if not base.get(key):
                if on_missing_base == "raise":
                    raise ValueError(
                        f"cannot normalise metric {key!r}: baseline "
                        f"{base_name!r} reports {base.get(key)!r}")
                continue
            normalized[name][key] = value / base[key]
    return normalized
