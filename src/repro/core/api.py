"""NeuraChip facade: chip primitives plus deprecated single-call wrappers.

The supported entry point is the :class:`~repro.core.session.Session` API::

    from repro.core import Session, SpGEMMSpec
    from repro.datasets import load_dataset

    dataset = load_dataset("facebook", max_nodes=256)
    with Session("Tile-16") as session:
        result = session.run(SpGEMMSpec(a=dataset.adjacency_csr()))
    print(result.metrics["cycles"], result.provenance.wall_time_s)

:class:`NeuraChip` remains the *chip* object — configuration, compilation,
single-program execution, and the power model — and sessions build on those
primitives.  The legacy one-shot helpers (:meth:`NeuraChip.run_spgemm`,
:meth:`NeuraChip.run_gcn_layer`, :meth:`NeuraChip.run_batch`,
:func:`design_space_sweep`) are kept as thin deprecation shims that forward
to a session and return exactly what they always returned.
"""

from __future__ import annotations

import os
import sys
import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.arch.config import NeuraChipConfig, get_config
from repro.backends import ExecutionContext, get_backend
from repro.compiler import compile_spgemm
from repro.compiler.program import Program
from repro.core.runner import BatchReport, WorkloadJob, WorkloadQueue
from repro.datasets.suite import GraphDataset
from repro.gnn.gcn import GCNWorkload
from repro.power.model import PowerModel
from repro.sim.accelerator import SimulationReport
from repro.sim.functional import FunctionalReport
from repro.sim.params import SimulationParams
from repro.sparse.convert import coo_to_csr, csr_to_csc, dense_to_coo
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix


def _as_csr(matrix) -> CSRMatrix:
    """Accept CSR/CSC/COO/dense and return CSR."""
    if isinstance(matrix, CSRMatrix):
        return matrix
    if isinstance(matrix, CSCMatrix):
        return coo_to_csr(matrix.to_coo())
    if isinstance(matrix, COOMatrix):
        return coo_to_csr(matrix)
    if isinstance(matrix, np.ndarray):
        return coo_to_csr(dense_to_coo(matrix))
    raise TypeError(f"unsupported matrix type {type(matrix)!r}")


#: Root of the installed ``repro`` package, for frame classification below.
_PACKAGE_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__))) \
    + os.sep


def _deprecated(old: str, new: str) -> None:
    """Emit a :class:`DeprecationWarning` attributed to the *caller* of the
    deprecated entry point.

    A fixed ``stacklevel`` points the warning at shim internals whenever an
    entry point is reached through another layer of this package (e.g. a
    facade method forwarding to a queue), so the level is computed by
    walking outward to the first frame that lives outside ``repro``.
    """
    level = 2  # warn() attributes level 2 to _deprecated's caller
    frame = sys._getframe(1)
    while frame is not None and \
            os.path.abspath(frame.f_code.co_filename).startswith(_PACKAGE_ROOT):
        frame = frame.f_back
        level += 1
    warnings.warn(f"{old} is deprecated; use {new} instead",
                  DeprecationWarning, stacklevel=level)


@dataclass
class SpGEMMRunResult:
    """Result of running one SpGEMM on NeuraChip.

    Attributes:
        program: the compiled program that was executed.
        report: timing report — measured (cycle backend) or predicted
            (analytic backend); None for the functional backend.
        functional: functional-model report (None for the analytic backend,
            which computes its output through the kernel layer instead).
        output: the product matrix C in CSR.
        power_w: modelled average power during the run.
        energy_j: modelled energy of the run.
        backend: name of the execution backend that produced this result.
    """

    program: Program
    report: SimulationReport | None
    functional: FunctionalReport | None
    output: CSRMatrix
    power_w: float = 0.0
    energy_j: float = 0.0
    backend: str = "cycle"

    @property
    def correct(self) -> bool | None:
        """Whether the cycle simulator's output matched the reference."""
        return self.report.correct if self.report is not None else None


@dataclass
class GCNRunResult:
    """Result of one GCN layer (aggregation on chip, combination modelled).

    Attributes:
        aggregation: the SpGEMM run result of the aggregation phase.
        combination_cycles: modelled cycles of the dense combination phase.
        total_cycles: aggregation + combination cycles.
        output: dense layer output (after activation).
        workload: the GCN workload that was executed.
    """

    aggregation: SpGEMMRunResult
    combination_cycles: float
    total_cycles: float
    output: np.ndarray
    workload: GCNWorkload | None = None
    metadata: dict = field(default_factory=dict)


class NeuraChip:
    """The chip object: one configuration plus compile / execute / power
    primitives.  Workload orchestration lives in
    :class:`~repro.core.session.Session`."""

    def __init__(self, config: str | NeuraChipConfig = "Tile-16",
                 mapping_scheme: str | None = None,
                 eviction_mode: str = "rolling",
                 params: SimulationParams | None = None,
                 mapping_seed: int = 0) -> None:
        self.config = get_config(config) if isinstance(config, str) else config
        self.mapping_scheme = mapping_scheme or self.config.mapping_scheme
        self.eviction_mode = eviction_mode
        self.params = params or SimulationParams()
        self.mapping_seed = mapping_seed
        self._power_model = PowerModel()

    # ------------------------------------------------------------------
    def session(self, **kwargs) -> "Session":
        """A :class:`~repro.core.session.Session` bound to this chip;
        keyword arguments are forwarded to the Session constructor."""
        from repro.core.session import Session

        return Session(self, **kwargs)

    # ------------------------------------------------------------------
    def compile(self, a_matrix, b_matrix=None,
                tile_size: int | None = None, source: str = "spgemm") -> Program:
        """Compile C = A @ B (default B = A) into a NeuraChip program."""
        a_csr = _as_csr(a_matrix)
        b_csr = _as_csr(b_matrix) if b_matrix is not None else a_csr
        a_csc = csr_to_csc(a_csr)
        return compile_spgemm(a_csc, b_csr,
                              tile_size=tile_size or self.config.mmh_tile_size,
                              source=source)

    # ------------------------------------------------------------------
    def _context(self, impl: str) -> ExecutionContext:
        """Execution context describing this chip for a backend."""
        return ExecutionContext(config=self.config, params=self.params,
                                mapping_scheme=self.mapping_scheme,
                                mapping_seed=self.mapping_seed,
                                eviction_mode=self.eviction_mode,
                                kernel_impl=impl)

    def run_program(self, program: Program, a=None, b=None,
                    backend: str = "cycle", impl: str = "numpy",
                    verify: bool = True) -> SpGEMMRunResult:
        """Execute an already-compiled program through a named backend.

        Args:
            program: compiled MMH stream (see :meth:`compile`).
            a / b: the operands the program was compiled from (CSR/CSC/COO
                or dense); fast backends use them to compute the numeric
                output through the kernel layer.  ``b`` defaults to ``a``.
            backend: registered backend name ('functional', 'cycle',
                'analytic', or any backend added via ``register_backend``).
            impl: kernel implementation for backends that use the kernel
                layer ('python' or 'numpy').
            verify: verify the accelerator output against the reference
                (cycle backend only).
        """
        executor = get_backend(backend)
        a_csr = _as_csr(a) if a is not None else None
        b_csr = _as_csr(b) if b is not None else a_csr
        execution = executor.execute(program, self._context(impl),
                                     a_csr=a_csr, b_csr=b_csr, verify=verify)
        power_w, energy_j = self._estimate_power(execution.report)
        return SpGEMMRunResult(program=program, report=execution.report,
                               functional=execution.functional,
                               output=execution.output,
                               power_w=power_w, energy_j=energy_j,
                               backend=execution.backend)

    # ------------------------------------------------------------------
    # Deprecated single-call wrappers (thin shims over Session)
    # ------------------------------------------------------------------
    def run_spgemm(self, a_matrix, b_matrix=None, tile_size: int | None = None,
                   mode: str = "cycle", verify: bool = True,
                   source: str = "spgemm", backend: str | None = None,
                   impl: str = "numpy") -> SpGEMMRunResult:
        """Execute C = A @ B on the accelerator.

        .. deprecated:: use ``Session.run(SpGEMMSpec(...))``.

        Args:
            a_matrix: left operand (CSR/CSC/COO or dense numpy array).
            b_matrix: right operand; defaults to ``a_matrix`` (the A @ A
                workload of Table 1 / Figure 16).
            tile_size: MMH tile size override.
            mode: legacy backend selector ('cycle' or 'functional'); kept
                for backward compatibility.
            verify: verify the accelerator output against the reference.
            source: workload label.
            backend: backend name; overrides ``mode`` when given.  Unknown
                names raise ValueError listing the registered backends.
            impl: kernel implementation used by the analytic backend.

        Returns:
            A :class:`SpGEMMRunResult`.
        """
        from repro.core.session import Session
        from repro.core.specs import SpGEMMSpec

        _deprecated("NeuraChip.run_spgemm", "Session.run(SpGEMMSpec(...))")
        with Session(self, backend=backend or mode, impl=impl) as session:
            return session.run(SpGEMMSpec(a=a_matrix, b=b_matrix,
                                          tile_size=tile_size, verify=verify,
                                          source=source)).legacy

    # ------------------------------------------------------------------
    def run_gcn_layer(self, dataset: GraphDataset | COOMatrix,
                      feature_dim: int = 32, hidden_dim: int = 16,
                      feature_density: float = 0.3, mode: str = "cycle",
                      verify: bool = True, seed: int = 7,
                      backend: str | None = None,
                      impl: str = "numpy") -> GCNRunResult:
        """Execute one GCN layer: aggregation on the accelerator, combination
        as a modelled dense phase (Section 2.2's combination stage).

        .. deprecated:: use ``Session.run(GCNLayerSpec(...))``.
        """
        from repro.core.session import Session
        from repro.core.specs import GCNLayerSpec

        _deprecated("NeuraChip.run_gcn_layer",
                    "Session.run(GCNLayerSpec(...))")
        with Session(self, backend=backend or mode, impl=impl) as session:
            return session.run(GCNLayerSpec(
                dataset=dataset, feature_dim=feature_dim,
                hidden_dim=hidden_dim, feature_density=feature_density,
                verify=verify, seed=seed)).legacy

    # ------------------------------------------------------------------
    def run_batch(self, jobs, backend: str = "analytic", impl: str = "numpy",
                  verify: bool = False) -> BatchReport:
        """Execute many SpGEMM jobs over this chip with program caching.

        .. deprecated:: use ``Session.run(BatchSpec(...))`` or
           ``Session.map([...])``.

        Args:
            jobs: a :class:`~repro.core.runner.WorkloadQueue`, or an
                iterable of :class:`~repro.core.runner.WorkloadJob` /
                bare matrices (each becomes an A @ A job).
            backend: backend name every job runs through.
            impl: kernel implementation for kernel-layer backends.
            verify: verify each job's output (cycle backend only).

        Returns:
            A :class:`~repro.core.runner.BatchReport` with per-job rows and
            aggregate totals.
        """
        _deprecated("NeuraChip.run_batch", "Session.run(BatchSpec(...))")
        if isinstance(jobs, WorkloadQueue):
            queue = jobs
        else:
            queue = WorkloadQueue()
            for index, job in enumerate(jobs):
                if not isinstance(job, WorkloadJob):
                    job = WorkloadJob.spgemm(_as_csr(job), label=f"job-{index}")
                queue.add(job)
        return queue.run(self, backend=backend, impl=impl, verify=verify)

    # ------------------------------------------------------------------
    def _combination_cycles(self, workload: GCNWorkload) -> float:
        """Dense combination phase modelled at the chip's peak throughput,
        bounded by HBM streaming of the aggregated features."""
        flops = workload.combination_flops()
        compute_cycles = flops / max(self.config.peak_gflops, 1e-9)
        traffic = 4.0 * (workload.dataset.n_nodes
                         * (workload.layer.in_dim + workload.layer.out_dim))
        memory_cycles = traffic / max(self.config.peak_bandwidth_bytes_per_cycle, 1e-9)
        return max(compute_cycles, memory_cycles)

    @staticmethod
    def _activity_from_report(report: SimulationReport) -> dict[str, float]:
        """Per-component activity factors derived from a simulation report."""
        return {
            "NeuraCore": min(1.0, report.core_utilization * 4.0),
            "NeuraMem": min(1.0, report.mem_utilization * 2.0),
            "Router": min(1.0, report.noc_flits / max(report.cycles, 1.0)),
            "Memory Controller": min(1.0, report.avg_inflight_mem / 16.0),
        }

    def _estimate_power(self, report: SimulationReport | None) -> tuple[float, float]:
        """Average power and energy of a run, from the simulator's activity."""
        if report is None:
            return 0.0, 0.0
        activity = self._activity_from_report(report)
        power = self._power_model.power(self.config, activity).total_power_w
        seconds = report.cycles / (self.config.frequency_ghz * 1e9)
        return power, power * seconds

    # ------------------------------------------------------------------
    def power_breakdown(self, report: SimulationReport | None = None):
        """Table 4 style area/power breakdown for this configuration."""
        activity = self._activity_from_report(report) if report is not None else None
        return self._power_model.combined(self.config, activity)


def design_space_sweep(a_matrix, b_matrix=None,
                       configs: list[str | NeuraChipConfig] = ("Tile-4", "Tile-16",
                                                               "Tile-64"),
                       eviction_mode: str = "rolling",
                       normalize_to: str | None = "Tile-4",
                       params: SimulationParams | None = None,
                       backend: str = "cycle",
                       on_missing_base: str = "skip",
                       ) -> dict[str, dict[str, float]]:
    """Run the same workload across tile configurations (Figure 11).

    .. deprecated:: use ``Session.run(SweepSpec(...))``.

    Returns, per configuration, the six Figure 11 metrics (stall cycles, CPI,
    IPC, in-flight memory instructions, power, busy cycles), optionally
    normalised to one of the configurations.

    Args:
        backend: execution backend for every configuration ('cycle' or
            'analytic'; 'functional' produces no timing report).
        on_missing_base: what to do when the normalisation baseline lacks a
            metric or reports it as zero — ``"skip"`` omits that metric from
            the normalised output, ``"raise"`` raises ValueError.
    """
    from repro.core.session import Session
    from repro.core.specs import SweepSpec

    _deprecated("design_space_sweep", "Session.run(SweepSpec(...))")
    spec = SweepSpec(a=a_matrix, b=b_matrix, configs=list(configs),
                     normalize_to=normalize_to, eviction_mode=eviction_mode,
                     on_missing_base=on_missing_base)
    with Session(configs[0] if configs else "Tile-16", backend=backend,
                 params=params) as session:
        return session.run(spec).legacy
