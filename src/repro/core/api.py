"""NeuraChip facade: run SpGEMM / GCN workloads on a configured accelerator.

Typical use::

    from repro.core import NeuraChip
    from repro.datasets import load_dataset

    chip = NeuraChip("Tile-16")
    dataset = load_dataset("facebook", max_nodes=256)
    result = chip.run_spgemm(dataset.adjacency_csr())
    print(result.report.cycles, result.report.gops)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.config import NeuraChipConfig, get_config
from repro.compiler import compile_gcn_aggregation, compile_spgemm
from repro.compiler.program import Program
from repro.datasets.suite import GraphDataset
from repro.gnn.gcn import GCNLayer, GCNWorkload
from repro.power.model import PowerModel
from repro.sim.accelerator import NeuraChipAccelerator, SimulationReport
from repro.sim.functional import FunctionalAccelerator, FunctionalReport
from repro.sim.params import SimulationParams
from repro.sparse.convert import coo_to_csr, csr_to_csc, dense_to_coo
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix


def _as_csr(matrix) -> CSRMatrix:
    """Accept CSR/CSC/COO/dense and return CSR."""
    if isinstance(matrix, CSRMatrix):
        return matrix
    if isinstance(matrix, CSCMatrix):
        return coo_to_csr(matrix.to_coo())
    if isinstance(matrix, COOMatrix):
        return coo_to_csr(matrix)
    if isinstance(matrix, np.ndarray):
        return coo_to_csr(dense_to_coo(matrix))
    raise TypeError(f"unsupported matrix type {type(matrix)!r}")


@dataclass
class SpGEMMRunResult:
    """Result of running one SpGEMM on NeuraChip.

    Attributes:
        program: the compiled program that was executed.
        report: cycle-level simulation report (None in functional mode).
        functional: functional-model report (always populated).
        output: the product matrix C in CSR.
        power_w: modelled average power during the run.
        energy_j: modelled energy of the run.
    """

    program: Program
    report: SimulationReport | None
    functional: FunctionalReport
    output: CSRMatrix
    power_w: float = 0.0
    energy_j: float = 0.0

    @property
    def correct(self) -> bool | None:
        """Whether the cycle simulator's output matched the reference."""
        return self.report.correct if self.report is not None else None


@dataclass
class GCNRunResult:
    """Result of running one GCN layer (aggregation on chip, combination modelled).

    Attributes:
        aggregation: the SpGEMM run result of the aggregation phase.
        combination_cycles: modelled cycles of the dense combination phase.
        total_cycles: aggregation + combination cycles.
        output: dense layer output (after activation).
        workload: the GCN workload that was executed.
    """

    aggregation: SpGEMMRunResult
    combination_cycles: float
    total_cycles: float
    output: np.ndarray
    workload: GCNWorkload | None = None
    metadata: dict = field(default_factory=dict)


class NeuraChip:
    """User-facing accelerator object bound to one configuration."""

    def __init__(self, config: str | NeuraChipConfig = "Tile-16",
                 mapping_scheme: str | None = None,
                 eviction_mode: str = "rolling",
                 params: SimulationParams | None = None,
                 mapping_seed: int = 0) -> None:
        self.config = get_config(config) if isinstance(config, str) else config
        self.mapping_scheme = mapping_scheme or self.config.mapping_scheme
        self.eviction_mode = eviction_mode
        self.params = params or SimulationParams()
        self.mapping_seed = mapping_seed
        self._power_model = PowerModel()

    # ------------------------------------------------------------------
    def compile(self, a_matrix, b_matrix=None,
                tile_size: int | None = None, source: str = "spgemm") -> Program:
        """Compile C = A @ B (default B = A) into a NeuraChip program."""
        a_csr = _as_csr(a_matrix)
        b_csr = _as_csr(b_matrix) if b_matrix is not None else a_csr
        a_csc = csr_to_csc(a_csr)
        return compile_spgemm(a_csc, b_csr,
                              tile_size=tile_size or self.config.mmh_tile_size,
                              source=source)

    # ------------------------------------------------------------------
    def run_spgemm(self, a_matrix, b_matrix=None, tile_size: int | None = None,
                   mode: str = "cycle", verify: bool = True,
                   source: str = "spgemm") -> SpGEMMRunResult:
        """Execute C = A @ B on the accelerator.

        Args:
            a_matrix: left operand (CSR/CSC/COO or dense numpy array).
            b_matrix: right operand; defaults to ``a_matrix`` (the A @ A
                workload of Table 1 / Figure 16).
            tile_size: MMH tile size override.
            mode: 'cycle' for the cycle-level simulator, 'functional' for the
                untimed dataflow model.
            verify: verify the accelerator output against the reference.
            source: workload label.

        Returns:
            A :class:`SpGEMMRunResult`.
        """
        if mode not in ("cycle", "functional"):
            raise ValueError("mode must be 'cycle' or 'functional'")
        program = self.compile(a_matrix, b_matrix, tile_size=tile_size, source=source)
        functional = FunctionalAccelerator(self.config, self.mapping_scheme,
                                           self.mapping_seed).run(program)
        report: SimulationReport | None = None
        if mode == "cycle":
            accelerator = NeuraChipAccelerator(self.config, self.params,
                                               eviction_mode=self.eviction_mode,
                                               mapping_scheme=self.mapping_scheme,
                                               mapping_seed=self.mapping_seed)
            report = accelerator.run(program, verify=verify)
        output = coo_to_csr(dense_to_coo(functional.output))
        power_w, energy_j = self._estimate_power(report)
        return SpGEMMRunResult(program=program, report=report,
                               functional=functional, output=output,
                               power_w=power_w, energy_j=energy_j)

    # ------------------------------------------------------------------
    def run_gcn_layer(self, dataset: GraphDataset | COOMatrix,
                      feature_dim: int = 32, hidden_dim: int = 16,
                      feature_density: float = 0.3, mode: str = "cycle",
                      verify: bool = True, seed: int = 7) -> GCNRunResult:
        """Execute one GCN layer: aggregation on the accelerator, combination
        as a modelled dense phase (Section 2.2's combination stage).
        """
        if isinstance(dataset, GraphDataset):
            workload = GCNWorkload.build(dataset, feature_dim=feature_dim,
                                         hidden_dim=hidden_dim,
                                         feature_density=feature_density, seed=seed)
        else:
            from repro.datasets.suite import DatasetSpec

            spec = DatasetSpec("custom", "custom", dataset.shape[0],
                               dataset.nnz, 0.0, None, feature_dim=feature_dim)
            workload = GCNWorkload.build(GraphDataset(spec, dataset, 1.0),
                                         feature_dim=feature_dim,
                                         hidden_dim=hidden_dim,
                                         feature_density=feature_density, seed=seed)

        a_csc = workload.adjacency_csc
        program = compile_gcn_aggregation(a_csc, workload.features,
                                          tile_size=self.config.mmh_tile_size,
                                          dataset=workload.dataset.name)
        functional = FunctionalAccelerator(self.config, self.mapping_scheme,
                                           self.mapping_seed).run(program)
        report: SimulationReport | None = None
        if mode == "cycle":
            accelerator = NeuraChipAccelerator(self.config, self.params,
                                               eviction_mode=self.eviction_mode,
                                               mapping_scheme=self.mapping_scheme,
                                               mapping_seed=self.mapping_seed)
            report = accelerator.run(program, verify=verify)
        aggregated = functional.output
        combined = workload.layer.combination(aggregated)
        combination_cycles = self._combination_cycles(workload)
        aggregation_cycles = report.cycles if report is not None else 0.0
        power_w, energy_j = self._estimate_power(report)
        aggregation_result = SpGEMMRunResult(
            program=program, report=report, functional=functional,
            output=coo_to_csr(dense_to_coo(aggregated)),
            power_w=power_w, energy_j=energy_j)
        return GCNRunResult(aggregation=aggregation_result,
                            combination_cycles=combination_cycles,
                            total_cycles=aggregation_cycles + combination_cycles,
                            output=combined,
                            workload=workload,
                            metadata={"feature_dim": feature_dim,
                                      "hidden_dim": hidden_dim})

    # ------------------------------------------------------------------
    def _combination_cycles(self, workload: GCNWorkload) -> float:
        """Dense combination phase modelled at the chip's peak throughput,
        bounded by HBM streaming of the aggregated features."""
        flops = workload.combination_flops()
        compute_cycles = flops / max(self.config.peak_gflops, 1e-9)
        traffic = 4.0 * (workload.dataset.n_nodes
                         * (workload.layer.in_dim + workload.layer.out_dim))
        memory_cycles = traffic / max(self.config.peak_bandwidth_bytes_per_cycle, 1e-9)
        return max(compute_cycles, memory_cycles)

    def _estimate_power(self, report: SimulationReport | None) -> tuple[float, float]:
        """Average power and energy of a run, from the simulator's activity."""
        if report is None:
            return 0.0, 0.0
        activity = {
            "NeuraCore": min(1.0, report.core_utilization * 4.0),
            "NeuraMem": min(1.0, report.mem_utilization * 2.0),
            "Router": min(1.0, report.noc_flits / max(report.cycles, 1.0)),
            "Memory Controller": min(1.0, report.avg_inflight_mem / 16.0),
        }
        power = self._power_model.power(self.config, activity).total_power_w
        seconds = report.cycles / (self.config.frequency_ghz * 1e9)
        return power, power * seconds

    # ------------------------------------------------------------------
    def power_breakdown(self, report: SimulationReport | None = None):
        """Table 4 style area/power breakdown for this configuration."""
        activity = None
        if report is not None:
            activity = {
                "NeuraCore": min(1.0, report.core_utilization * 4.0),
                "NeuraMem": min(1.0, report.mem_utilization * 2.0),
                "Router": min(1.0, report.noc_flits / max(report.cycles, 1.0)),
                "Memory Controller": min(1.0, report.avg_inflight_mem / 16.0),
            }
        return self._power_model.combined(self.config, activity)


def design_space_sweep(a_matrix, b_matrix=None,
                       configs: list[str | NeuraChipConfig] = ("Tile-4", "Tile-16",
                                                               "Tile-64"),
                       eviction_mode: str = "rolling",
                       normalize_to: str | None = "Tile-4",
                       params: SimulationParams | None = None,
                       ) -> dict[str, dict[str, float]]:
    """Run the same workload across tile configurations (Figure 11).

    Returns, per configuration, the six Figure 11 metrics (stall cycles, CPI,
    IPC, in-flight memory instructions, power, busy cycles), optionally
    normalised to one of the configurations.
    """
    raw: dict[str, dict[str, float]] = {}
    for config in configs:
        chip = NeuraChip(config, eviction_mode=eviction_mode, params=params)
        result = chip.run_spgemm(a_matrix, b_matrix, verify=False)
        report = result.report
        raw[chip.config.name] = {
            "stall_cycles": report.stall_cycles,
            "cpi": report.cpi,
            "ipc": report.ipc,
            "in_flight_instx": report.avg_inflight_mem,
            "power": result.power_w,
            "busy_cycles": report.busy_cycles,
            "cycles": report.cycles,
            "gops": report.gops,
        }
    if normalize_to is None:
        return raw
    base_name = get_config(normalize_to).name if isinstance(normalize_to, str) \
        else normalize_to.name
    base = raw[base_name]
    normalized: dict[str, dict[str, float]] = {}
    for name, metrics in raw.items():
        normalized[name] = {key: (value / base[key] if base.get(key) else 0.0)
                            for key, value in metrics.items()}
    return normalized
