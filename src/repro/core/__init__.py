"""High-level NeuraChip API (the paper's primary contribution, packaged).

``repro.core`` is the entry point a downstream user works with.  The
supported surface is the session API: declarative workload specs
(:class:`SpGEMMSpec`, :class:`GCNLayerSpec`, :class:`SweepSpec`,
:class:`BatchSpec`) submitted to a :class:`Session` — which owns backend
resolution, a pluggable executor layer (serial / thread / process), and a
persistent LRU program cache — and returning unified :class:`RunResult`
envelopes.  :class:`NeuraChip` remains the chip primitive (configuration,
compile, run_program, power); the legacy one-shot helpers on it forward to
sessions and emit :class:`DeprecationWarning`.
"""

from repro.core.api import (
    GCNRunResult,
    NeuraChip,
    SpGEMMRunResult,
    design_space_sweep,
)
from repro.core.executors import (
    Executor,
    available_executors,
    get_executor,
    register_executor,
)
from repro.core.runner import (
    BatchReport,
    JobOutcome,
    ProgramCache,
    WorkloadJob,
    WorkloadQueue,
    default_cache_dir,
    matrix_fingerprint,
)
from repro.core.session import (
    Session,
    ShardPlan,
    estimate_row_partial_products,
    plan_row_shards,
    plan_shards,
)
from repro.core.specs import (
    BatchSpec,
    ChipTopology,
    GCNLayerSpec,
    GNNModelSpec,
    Provenance,
    RunResult,
    SpGEMMSpec,
    SweepSpec,
    WorkloadSpec,
)

__all__ = [
    "Session",
    "ChipTopology",
    "WorkloadSpec",
    "SpGEMMSpec",
    "GCNLayerSpec",
    "GNNModelSpec",
    "SweepSpec",
    "BatchSpec",
    "RunResult",
    "Provenance",
    "plan_row_shards",
    "plan_shards",
    "ShardPlan",
    "estimate_row_partial_products",
    "Executor",
    "register_executor",
    "get_executor",
    "available_executors",
    "NeuraChip",
    "SpGEMMRunResult",
    "GCNRunResult",
    "design_space_sweep",
    "WorkloadJob",
    "WorkloadQueue",
    "BatchReport",
    "JobOutcome",
    "ProgramCache",
    "matrix_fingerprint",
    "default_cache_dir",
]
