"""High-level NeuraChip API (the paper's primary contribution, packaged).

``repro.core`` is the entry point a downstream user works with: it hides the
compiler / backend plumbing behind a :class:`~repro.core.api.NeuraChip`
facade that runs SpGEMM and GCN-layer workloads on any tile configuration
through any registered execution backend, batches many jobs over one chip
via :class:`~repro.core.runner.WorkloadQueue`, and exposes the design-space
sweep used in Section 4.
"""

from repro.core.api import (
    GCNRunResult,
    NeuraChip,
    SpGEMMRunResult,
    design_space_sweep,
)
from repro.core.runner import (
    BatchReport,
    JobOutcome,
    ProgramCache,
    WorkloadJob,
    WorkloadQueue,
)

__all__ = [
    "NeuraChip",
    "SpGEMMRunResult",
    "GCNRunResult",
    "design_space_sweep",
    "WorkloadJob",
    "WorkloadQueue",
    "BatchReport",
    "JobOutcome",
    "ProgramCache",
]
