"""High-level NeuraChip API (the paper's primary contribution, packaged).

``repro.core`` is the entry point a downstream user works with: it hides the
compiler / simulator plumbing behind a :class:`~repro.core.api.NeuraChip`
facade that runs SpGEMM and GCN-layer workloads on any tile configuration,
and exposes the design-space sweep used in Section 4.
"""

from repro.core.api import (
    GCNRunResult,
    NeuraChip,
    SpGEMMRunResult,
    design_space_sweep,
)

__all__ = [
    "NeuraChip",
    "SpGEMMRunResult",
    "GCNRunResult",
    "design_space_sweep",
]
