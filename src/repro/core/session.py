"""The unified Session API: declarative specs in, RunResult envelopes out.

A :class:`Session` owns everything the four legacy entry points used to
wire up ad hoc: backend resolution, kernel-implementation selection, a
pluggable executor (``serial`` / ``thread`` / ``process``, registered like
backends), and a persistent LRU :class:`~repro.core.runner.ProgramCache`.
Workloads are described declaratively (:mod:`repro.core.specs`) and
submitted through three verbs::

    from repro.core import Session, SpGEMMSpec

    with Session("Tile-16", backend="analytic", executor="process",
                 workers=4, cache_dir="~/.cache/neurachip-repro") as session:
        result = session.run(SpGEMMSpec(a=adjacency))          # one result
        results = session.map([SpGEMMSpec(a=m) for m in mats]) # fan-out
        future = session.submit(SpGEMMSpec(a=adjacency))       # async

Every execution returns a :class:`~repro.core.specs.RunResult` carrying
metrics, activity factors, power/energy, and provenance (backend, impl,
executor, cache hit, wall time, shard count).

Sharding: an :class:`~repro.core.specs.SpGEMMSpec` with ``shards > 1`` is
split by the planner into balanced row-group jobs — rows of A partition the
partial products of A @ B exactly — which fan out over the executor and
reduce into a single result whose output matrix is identical to the
unsharded product.

Scale-out: ``Session(backend="multichip", chips=N)`` (or a full
:class:`~repro.backends.multichip.ChipTopology`) assigns those row shards
to N distinct chip instances — one
:class:`~repro.backends.base.ExecutionContext` per chip, each with its own
compiled shard program and stats — and reduces per-chip products into the
same byte-identical output, with cycles modelled as the slowest chip plus
a host reduce term and power summed across the fleet.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace as _replace_spec
from functools import partial
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.analysis.findings import VerificationError
from repro.analysis.verifier import VERIFY_LEVELS, verify_program
from repro.arch.config import NeuraChipConfig, get_config
from repro.backends import ChipTopology, get_backend
from repro.compiler import compile_gcn_aggregation
from repro.compiler.program import ProgramDigest
from repro.core.executors import Executor, get_executor
from repro.core.runner import (
    DEFAULT_CACHE_CAPACITY,
    DEFAULT_DISK_CAPACITY_BYTES,
    BatchReport,
    JobOutcome,
    ProgramCache,
)
from repro.core.specs import (
    BatchSpec,
    GCNLayerSpec,
    GNNModelSpec,
    Provenance,
    RunResult,
    SpGEMMSpec,
    SweepSpec,
    WorkloadSpec,
)
from repro.sim.params import SimulationParams
from repro.sparse.convert import csc_to_csr, csr_vstack
from repro.sparse.csr import CSRMatrix
from repro.sparse.kernels import IMPLS

# The planner lives in the sparse layer now (it is shared with the
# multichip backend); these re-exports keep the historical import path.
from repro.sparse.partition import (  # noqa: F401  (re-exported API)
    PARTITION_STRATEGIES,
    ShardPlan,
    build_shard_units,
    estimate_row_partial_products,
    plan_row_shards,
    plan_shards,
    stitch_shard_outputs,
)


# ----------------------------------------------------------------------
# Process-executor workers (module level so they pickle)
# ----------------------------------------------------------------------
def _process_spec_worker(state: dict, spec: WorkloadSpec) -> RunResult:
    """Run one spec in a worker process with a session rebuilt from
    ``state``; the in-memory cache is per-worker but the disk cache (when
    configured) is shared through the filesystem."""
    session = Session(**state)
    try:
        # Slim the result so the reply doesn't serialise the full macro-op
        # stream; count-level digests keep every report column working.
        return session.run(spec).slim()
    finally:
        session.close()


def _sweep_config_worker(payload: dict) -> tuple[str, dict[str, float]]:
    """Run one configuration of a design-space sweep and return its raw
    Figure-11 metrics row.

    Deliberately routes through ``NeuraChip.run_spgemm`` so callers that
    patch or subclass the facade see the sweep's per-config runs.  The
    multichip backend carries a topology the facade cannot express, so it
    runs through a per-config session instead.
    """
    import warnings

    from repro.core.api import NeuraChip

    chip = NeuraChip(payload["config"], eviction_mode=payload["eviction_mode"],
                     params=payload["params"])
    if payload.get("topology") is not None:
        with Session(chip, backend=payload["backend"],
                     topology=payload["topology"]) as session:
            result = session.run(SpGEMMSpec(a=payload["a"], b=payload["b"],
                                            verify=False)).legacy
    else:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            result = chip.run_spgemm(payload["a"], payload["b"], verify=False,
                                     backend=payload["backend"])
    report = result.report
    if report is None:
        raise ValueError(f"backend {payload['backend']!r} produces no timing "
                         "report; use 'cycle' or 'analytic'")
    return chip.config.name, {
        "stall_cycles": report.stall_cycles,
        "cpi": report.cpi,
        "ipc": report.ipc,
        "in_flight_instx": report.avg_inflight_mem,
        "power": result.power_w,
        "busy_cycles": report.busy_cycles,
        "cycles": report.cycles,
        "gops": report.gops,
    }


# ----------------------------------------------------------------------
# Session
# ----------------------------------------------------------------------
class Session:
    """One configured execution context: chip + backend + executor + cache.

    Args:
        chip_config: configuration name, :class:`NeuraChipConfig`, or an
            existing :class:`~repro.core.api.NeuraChip` to bind to.
        backend: registered execution backend name for every run.
        impl: kernel implementation for kernel-layer backends.
        executor: registered executor name ('serial', 'thread', 'process').
        workers: worker count for the pooled executors.
        cache: an existing :class:`ProgramCache` to share; overrides
            ``cache_dir`` / ``cache_capacity``.
        cache_dir: directory for the persistent program cache; ``None``
            keeps the cache in memory only.
        cache_capacity: in-memory LRU bound.
        cache_max_disk_bytes: size cap of the on-disk cache tier (swept
            oldest-mtime-first on spill); ``None`` disables the sweep.
        chips: chip count for the ``multichip`` backend (shorthand for
            ``topology=ChipTopology(n_chips=chips)``).
        topology: full :class:`~repro.backends.multichip.ChipTopology`
            (chip count, per-chip backend, host-reduce cost model); only
            meaningful with ``backend="multichip"``.
        partition: shard planning strategy ('auto', 'contiguous' or
            'degree') for both host-side sharding (``shards > 1``) and the
            multichip backend; 'auto' (default) keeps contiguous ranges
            unless a cheap skew probe shows the degree-aware index-set
            plan is measurably more balanced.
        mapping_scheme / eviction_mode / params / mapping_seed: forwarded
            to the chip when one is constructed here.

    All names (backend, executor, impl) are resolved eagerly so a typo
    fails at construction, not mid-batch.
    """

    def __init__(self, chip_config="Tile-16", *,
                 backend: str = "cycle", impl: str = "numpy",
                 executor: str = "serial", workers: int | None = None,
                 cache: ProgramCache | None = None,
                 cache_dir: str | Path | None = None,
                 cache_capacity: int = DEFAULT_CACHE_CAPACITY,
                 cache_max_disk_bytes: int | None = DEFAULT_DISK_CAPACITY_BYTES,
                 chips: int | None = None,
                 topology: ChipTopology | None = None,
                 partition: str = "auto",
                 mapping_scheme: str | None = None,
                 eviction_mode: str = "rolling",
                 params: SimulationParams | None = None,
                 mapping_seed: int = 0,
                 verify: str | None = None) -> None:
        from repro.core.api import NeuraChip

        if isinstance(chip_config, NeuraChip):
            self.chip = chip_config
        else:
            self.chip = NeuraChip(chip_config, mapping_scheme=mapping_scheme,
                                  eviction_mode=eviction_mode, params=params,
                                  mapping_seed=mapping_seed)
        get_backend(backend)  # fail fast on unknown names
        if impl not in IMPLS:
            raise ValueError(f"unknown kernel impl {impl!r}; "
                             f"available impls: {list(IMPLS)}")
        if chips is not None and topology is not None \
                and topology.n_chips != chips:
            raise ValueError(f"chips={chips} contradicts "
                             f"topology.n_chips={topology.n_chips}")
        if partition not in PARTITION_STRATEGIES:
            raise ValueError(f"unknown partition strategy {partition!r}; "
                             f"expected one of {PARTITION_STRATEGIES}")
        if topology is None and chips is not None:
            topology = ChipTopology(n_chips=chips, partition=partition)
        if backend == "multichip" and topology is None:
            topology = ChipTopology(partition=partition)
        if topology is not None and partition != "auto":
            if topology.partition == "auto":
                topology = _replace_spec(topology, partition=partition)
            elif topology.partition != partition:
                raise ValueError(
                    f"partition={partition!r} contradicts "
                    f"topology.partition={topology.partition!r}")
        if topology is not None and backend != "multichip":
            raise ValueError("chips/topology require backend='multichip'; "
                             f"got backend={backend!r}")
        if topology is not None:
            get_backend(topology.chip_backend)  # fail fast here too
        self.backend = backend
        self.topology = topology
        self.partition = partition
        self.impl = impl
        self.executor: Executor = get_executor(executor, workers=workers)
        self.cache = cache if cache is not None else \
            ProgramCache(cache_capacity, cache_dir=cache_dir,
                         max_disk_bytes=cache_max_disk_bytes)
        if verify in (None, "off"):
            self.verify_mode: str | None = None
        elif verify in VERIFY_LEVELS:
            self.verify_mode = verify
        else:
            raise ValueError(f"unknown verify mode {verify!r}; expected "
                             f"one of {VERIFY_LEVELS} or None/'off'")
        self._verify_lock = threading.Lock()
        self._verified_digests: set = set()  # guarded-by: _verify_lock
        self.verify_runs = 0  # guarded-by: _verify_lock
        self.verify_skips = 0  # guarded-by: _verify_lock
        self._local = threading.local()
        self._closed = False

    # ------------------------------------------------------------------
    # Public verbs
    # ------------------------------------------------------------------
    def run(self, spec: WorkloadSpec) -> RunResult:
        """Execute one spec and return its :class:`RunResult`."""
        self._ensure_open()
        return self._run_one(spec)

    def map(self, specs: Iterable[WorkloadSpec]) -> list[RunResult]:
        """Execute many specs over the session executor; results come back
        in submission order."""
        self._ensure_open()
        return self._map_specs(list(specs))

    def submit(self, spec: WorkloadSpec):
        """Schedule one spec; returns a ``concurrent.futures.Future`` whose
        result is the :class:`RunResult`."""
        self._ensure_open()
        if self.executor.name == "process":
            fn = partial(_process_spec_worker, self._subprocess_state())
        else:
            fn = self._run_in_worker
        return self.executor.submit(fn, spec)

    def close(self) -> None:
        """Release executor resources; safe to call more than once."""
        if self._closed:
            return
        self._closed = True
        self.executor.shutdown()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` (or ``__exit__``) has run."""
        return self._closed

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed")

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def cache_stats(self) -> dict:
        """Program-cache hit/miss counters and sizing."""
        return self.cache.stats()

    def verify_stats(self) -> dict:
        """IR-verification counters: mode, programs verified (one per
        distinct cache key, memoized) and memo-hit skips."""
        with self._verify_lock:
            return {"verify_mode": self.verify_mode,
                    "verify_runs": self.verify_runs,
                    "verify_skips": self.verify_skips}

    def _maybe_verify(self, key: tuple, program):
        """Run the static IR verifier on ``program`` once per cache key.

        With ``verify=None`` this is a no-op.  Otherwise the first sight
        of a key (fresh compile, memory hit or disk hit) pays one
        verification at the session's level; repeats are memo hits.  A
        failed verification un-reserves the key (so a later, repaired
        program is re-checked) and raises
        :class:`~repro.analysis.findings.VerificationError`.
        """
        if self.verify_mode is None:
            return program
        with self._verify_lock:
            if key in self._verified_digests:
                self.verify_skips += 1
                return program
            self._verified_digests.add(key)
        findings = verify_program(program, level=self.verify_mode)
        if findings:
            with self._verify_lock:
                self._verified_digests.discard(key)
            raise VerificationError(
                f"program {program.source!r} failed IR verification: "
                + "; ".join(f.format() for f in findings[:3]), findings)
        with self._verify_lock:
            self.verify_runs += 1
        return program

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _run_one(self, spec: WorkloadSpec) -> RunResult:
        if isinstance(spec, SpGEMMSpec):
            return self._run_spgemm(spec)
        if isinstance(spec, GCNLayerSpec):
            return self._run_gcn_layer(spec)
        if isinstance(spec, GNNModelSpec):
            return self._run_gnn_model(spec)
        if isinstance(spec, SweepSpec):
            return self._run_sweep(spec)
        if isinstance(spec, BatchSpec):
            return self._run_batch(spec)
        raise TypeError(f"unsupported spec type {type(spec)!r}")

    def _map_specs(self, specs: Sequence[WorkloadSpec]) -> list[RunResult]:
        if getattr(self._local, "in_worker", False):
            # Already inside one of this session's pool workers (a sharded
            # spec within a batch, or a sharded submit): fanning out to the
            # same pool and blocking on the results would deadlock once the
            # pool is saturated, so nested work runs inline instead.
            return [self._run_one(spec) for spec in specs]
        if self.executor.name == "process":
            fn = partial(_process_spec_worker, self._subprocess_state())
            return self.executor.map(fn, specs)
        return self.executor.map(self._run_in_worker, specs)

    def _run_in_worker(self, spec: WorkloadSpec) -> RunResult:
        """Run one spec with the worker flag set so nested fan-out stays
        inline (see :meth:`_map_specs`)."""
        self._local.in_worker = True
        try:
            return self._run_one(spec)
        finally:
            self._local.in_worker = False

    def _subprocess_state(self) -> dict:
        """Constructor kwargs rebuilding this session inside a worker
        process (executor forced serial; disk cache shared, memory not)."""
        chip = self.chip
        return {
            "chip_config": chip.config,
            "backend": self.backend,
            "topology": self.topology,
            "partition": self.partition,
            "impl": self.impl,
            "executor": "serial",
            "cache_dir": self.cache.cache_dir,
            "cache_capacity": self.cache.capacity,
            "cache_max_disk_bytes": self.cache.max_disk_bytes,
            "mapping_scheme": chip.mapping_scheme,
            "eviction_mode": chip.eviction_mode,
            "params": chip.params,
            "mapping_seed": chip.mapping_seed,
            "verify": self.verify_mode,
        }

    # ------------------------------------------------------------------
    # SpGEMM
    # ------------------------------------------------------------------
    def _compile_cached(self, a_csr: CSRMatrix, b_csr: CSRMatrix | None,
                        tile_size: int, source: str) -> tuple:
        """Compile (or fetch) the program for (a, b); returns
        ``(program, cache_hit)``."""
        key = self.cache.key(a_csr, b_csr, tile_size)
        program = self.cache.get(key)
        if program is not None:
            return self._maybe_verify(key, program), True
        program = self.chip.compile(a_csr, b_csr, tile_size=tile_size,
                                    source=source)
        self.cache.put(key, program)
        return self._maybe_verify(key, program), False

    def _run_spgemm(self, spec: SpGEMMSpec) -> RunResult:
        from repro.core.api import SpGEMMRunResult, _as_csr

        start = time.perf_counter()
        a_csr = _as_csr(spec.a)
        b_csr = _as_csr(spec.b) if spec.b is not None else None
        if self.backend == "multichip":
            return self._run_multichip_spgemm(spec, a_csr, b_csr, start)
        if spec.shards > 1:
            return self._run_sharded_spgemm(spec, a_csr, b_csr, start)
        tile = spec.tile_size or self.chip.config.mmh_tile_size
        program, cache_hit = self._compile_cached(a_csr, b_csr, tile,
                                                  spec.source)
        legacy: SpGEMMRunResult = self.chip.run_program(
            program, a=a_csr, b=b_csr if b_csr is not None else a_csr,
            backend=self.backend, impl=self.impl, verify=spec.verify)
        wall = time.perf_counter() - start
        report = legacy.report
        metrics = {
            "cycles": report.cycles if report is not None else 0.0,
            "gops": round(report.gops, 3) if report is not None else 0.0,
            "mmh": program.n_instructions,
            "partial_products": program.total_partial_products,
            "output_nnz": legacy.output.nnz,
            "verified": report.correct if report is not None else None,
        }
        activity = (self.chip._activity_from_report(report)
                    if report is not None else {})
        return RunResult(
            kind="spgemm", label=spec.label, metrics=metrics,
            activity=activity,
            provenance=self._provenance(cache_hit=cache_hit, wall=wall),
            output=legacy.output, report=report, program=program,
            power_w=legacy.power_w, energy_j=legacy.energy_j, legacy=legacy)

    def _run_sharded_spgemm(self, spec: SpGEMMSpec, a_csr: CSRMatrix,
                            b_csr: CSRMatrix | None,
                            start: float) -> RunResult:
        """Split C = A @ B into row-group shards, fan them out over the
        executor, and reduce into one result.

        Rows of A partition the partial products of A @ B exactly, so the
        merged output matrix, output nnz, and total partial-product count
        are identical to the unsharded run; per-shard timing reports are
        aggregated (cycles summed — a sequential estimate).

        The session's ``partition`` strategy applies: contiguous plans
        reduce with :func:`~repro.sparse.convert.csr_vstack`, degree-aware
        plans (index-set shards plus monster-row column fragments) with
        the fragment-aware :func:`~repro.sparse.partition.stitch_shard_outputs`
        — both byte-identical to the unsharded product."""
        from repro.core.api import SpGEMMRunResult

        effective_b = b_csr if b_csr is not None else a_csr
        plan = plan_shards(a_csr, spec.shards, effective_b,
                           strategy=self.partition)
        if plan.n_shards == 1:
            # Degenerate plan (single row, empty matrix, one unit of work):
            # run unsharded instead of compiling a one-shard copy.
            return self._run_spgemm(_replace_spec(spec, shards=1))
        if plan.ranges is not None:
            shard_specs = [
                SpGEMMSpec(a=a_csr.row_slice(lo, hi), b=effective_b,
                           tile_size=spec.tile_size, verify=spec.verify,
                           source=f"{spec.source}[{lo}:{hi}]",
                           label=f"{spec.label}/shard{index}")
                for index, (lo, hi) in enumerate(plan.ranges)
            ]
            shard_results = self._map_specs(shard_specs)
            output = csr_vstack([result.output for result in shard_results])
        else:
            unit_specs, regroup = [], []
            for index, units in enumerate(
                    build_shard_units(a_csr, effective_b, plan)):
                for unit in units:
                    if unit.fragment is None:
                        source = f"{spec.source}[shard{index}]"
                        label = f"{spec.label}/shard{index}"
                    else:
                        fragment = unit.fragment
                        source = (f"{spec.source}[shard{index}:"
                                  f"r{fragment.row}@c{fragment.col_lo}"
                                  f":{fragment.col_hi}]")
                        label = (f"{spec.label}/shard{index}"
                                 f".r{fragment.row}")
                    unit_specs.append(SpGEMMSpec(
                        a=unit.a, b=unit.b, tile_size=spec.tile_size,
                        verify=spec.verify, source=source, label=label))
                    regroup.append((index, unit.fragment is None))
            shard_results = self._map_specs(unit_specs)
            grouped: list[tuple] = [(None, []) for _ in plan.shards]
            for (index, is_rows), result in zip(regroup, shard_results):
                rows_out, frag_outs = grouped[index]
                if is_rows:
                    grouped[index] = (result.output, frag_outs)
                else:
                    frag_outs.append(result.output)
            output = stitch_shard_outputs(plan, grouped,
                                          effective_b.shape[1])
        wall = time.perf_counter() - start
        verified = [result.metrics.get("verified") for result in shard_results]
        powers = [result.power_w for result in shard_results
                  if result.power_w > 0]
        metrics = {
            "cycles": sum(r.metrics["cycles"] for r in shard_results),
            "gops": round(sum(r.metrics["gops"] for r in shard_results), 3),
            "mmh": sum(r.metrics["mmh"] for r in shard_results),
            "partial_products": sum(r.metrics["partial_products"]
                                    for r in shard_results),
            "output_nnz": output.nnz,
            "verified": (None if any(v is None for v in verified)
                         else all(verified)),
        }
        provenance = self._provenance(
            cache_hit=all(r.cache_hit for r in shard_results), wall=wall)
        provenance.shards = plan.n_shards
        power_w = max(powers) if powers else 0.0
        energy_j = sum(r.energy_j for r in shard_results)
        # No single compiled program backs a sharded run; a count digest
        # stands in so report rows and legacy consumers keep working.
        digest = ProgramDigest(
            n_instructions=metrics["mmh"],
            total_partial_products=metrics["partial_products"],
            output_nnz=output.nnz, shape=output.shape,
            tile_size=spec.tile_size or self.chip.config.mmh_tile_size,
            a_nnz=a_csr.nnz, b_nnz=effective_b.nnz, source=spec.source)
        legacy = SpGEMMRunResult(program=digest, report=None, functional=None,
                                 output=output, power_w=power_w,
                                 energy_j=energy_j, backend=self.backend)
        return RunResult(
            kind="spgemm", label=spec.label, metrics=metrics,
            provenance=provenance, output=output, program=digest,
            power_w=power_w, energy_j=energy_j, legacy=legacy,
            shard_results=shard_results)

    def _multichip_backend(self):
        """A configured :class:`~repro.backends.multichip.MultiChipBackend`:
        session topology + program cache, fanning per-chip work out over the
        session executor (inline when already inside a pool worker, so a
        multichip spec inside a batch cannot deadlock the pool)."""
        backend = get_backend("multichip")
        backend.topology = self.topology
        backend.cache = self.cache
        if not getattr(self._local, "in_worker", False):
            backend.executor = self.executor
        return backend

    def _multichip_power_and_digest(self, execution, tile: int, a_nnz: int,
                                    b_nnz: int, source: str):
        """Fleet power/energy (summed per chip) and the count digest that
        stands in for a compiled program on multichip runs."""
        power_w = energy_j = 0.0
        for run in execution.chip_runs:
            chip_power, chip_energy = self.chip._estimate_power(run.report)
            power_w += chip_power
            energy_j += chip_energy
        digest = ProgramDigest(
            n_instructions=sum(run.mmh for run in execution.chip_runs),
            total_partial_products=sum(run.partial_products
                                       for run in execution.chip_runs),
            output_nnz=execution.output.nnz, shape=execution.output.shape,
            tile_size=tile, a_nnz=a_nnz, b_nnz=b_nnz, source=source)
        return power_w, energy_j, digest

    def _run_multichip_spgemm(self, spec: SpGEMMSpec, a_csr: CSRMatrix,
                              b_csr: CSRMatrix | None,
                              start: float) -> RunResult:
        """Assign row shards to N chip instances and reduce (tentpole path).

        Each chip compiles and executes its own shard program on its own
        :class:`~repro.backends.base.ExecutionContext`; the reduced output
        is identical to the single-chip unsharded product.  Aggregate
        cycles are ``max over chips + host reduce term``; power and energy
        are summed across chips."""
        from repro.core.api import SpGEMMRunResult

        if spec.shards > 1:
            raise ValueError(
                "the multichip backend assigns row shards to chips itself; "
                "set Session(chips=N) instead of SpGEMMSpec(shards=N)")
        tile = spec.tile_size or self.chip.config.mmh_tile_size
        execution = self._multichip_backend().execute_operands(
            a_csr, b_csr, self.chip._context(self.impl), tile_size=tile,
            source=spec.source, verify=spec.verify)
        wall = time.perf_counter() - start
        report = execution.report
        effective_b = b_csr if b_csr is not None else a_csr
        power_w, energy_j, digest = self._multichip_power_and_digest(
            execution, tile, a_csr.nnz, effective_b.nnz, spec.source)
        counters = report.counters if report is not None else {}
        metrics = {
            "cycles": report.cycles if report is not None else 0.0,
            "gops": round(report.gops, 3) if report is not None else 0.0,
            "mmh": digest.n_instructions,
            "partial_products": digest.total_partial_products,
            "output_nnz": execution.output.nnz,
            "chips": execution.n_chips,
            "shard_skew": counters.get("multichip.shard_skew"),
            "efficiency": counters.get("multichip.efficiency"),
            "partition": (execution.plan.strategy
                          if execution.plan is not None else None),
            "split_rows": (len(execution.plan.split_rows)
                           if execution.plan is not None else 0),
            "verified": report.correct if report is not None else None,
        }
        provenance = self._provenance(cache_hit=execution.cache_hit,
                                      wall=wall)
        provenance.chips = execution.n_chips
        legacy = SpGEMMRunResult(program=digest, report=report,
                                 functional=None, output=execution.output,
                                 power_w=power_w, energy_j=energy_j,
                                 backend=self.backend)
        activity = (self.chip._activity_from_report(report)
                    if report is not None else {})
        return RunResult(
            kind="spgemm", label=spec.label, metrics=metrics,
            activity=activity, provenance=provenance,
            output=execution.output, report=report, program=digest,
            power_w=power_w, energy_j=energy_j, legacy=legacy)

    # ------------------------------------------------------------------
    # GCN layer
    # ------------------------------------------------------------------
    def _gcn_workload(self, spec: GCNLayerSpec, dataset):
        """Build the layer workload for a :class:`GCNLayerSpec`.

        Without explicit ``features`` this is the legacy synthetic-feature
        workload.  With ``features`` (a chained layer fed its predecessor's
        output) the input flows through the same dense full-structure CSR
        encoding the :class:`GNNModelSpec` pipeline uses, so a
        layer-by-layer chain stays byte-identical to the stacked run."""
        from repro.gnn.gcn import GCNLayer, GCNWorkload, \
            normalize_adjacency_cached
        from repro.gnn.pipeline import full_structure_csr

        if spec.features is None:
            return GCNWorkload.build(dataset, feature_dim=spec.feature_dim,
                                     hidden_dim=spec.hidden_dim,
                                     feature_density=spec.feature_density,
                                     seed=spec.seed,
                                     weight_seed=spec.weight_seed,
                                     activation=spec.activation)
        features = spec.features
        dense = features if isinstance(features, np.ndarray) \
            else features.to_dense()
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2 or dense.shape[0] != dataset.n_nodes:
            raise ValueError(
                f"features shape {dense.shape} does not match the "
                f"{dataset.n_nodes}-node dataset")
        layer = GCNLayer.create(
            dense.shape[1], spec.hidden_dim,
            seed=spec.seed + 1 if spec.weight_seed is None
            else spec.weight_seed,
            activation=spec.activation)
        return GCNWorkload(dataset=dataset,
                           a_hat=normalize_adjacency_cached(dataset.adjacency),
                           features=full_structure_csr(dense), layer=layer)

    def _run_gcn_layer(self, spec: GCNLayerSpec) -> RunResult:
        from repro.core.api import GCNRunResult, SpGEMMRunResult
        from repro.datasets.suite import DatasetSpec, GraphDataset

        start = time.perf_counter()
        dataset = spec.dataset
        if not isinstance(dataset, GraphDataset):
            dataset_spec = DatasetSpec("custom", "custom", dataset.shape[0],
                                       dataset.nnz, 0.0, None,
                                       feature_dim=spec.feature_dim)
            dataset = GraphDataset(dataset_spec, dataset, 1.0)
        workload = self._gcn_workload(spec, dataset)
        a_csc = workload.adjacency_csc
        tile = self.chip.config.mmh_tile_size
        if self.backend == "multichip":
            # Each chip compiles its own shard of A @ X, so the
            # whole-matrix aggregation program would be discarded: skip it
            # and report a count digest, with power summed over the fleet
            # exactly like the SpGEMM multichip path.
            label = f"gcn-aggregation:{workload.dataset.name}"
            execution = self._multichip_backend().execute_operands(
                csc_to_csr(a_csc), workload.features,
                self.chip._context(self.impl), tile_size=tile,
                source=label, verify=spec.verify)
            cache_hit = execution.cache_hit
            power_w, energy_j, program = self._multichip_power_and_digest(
                execution, tile, a_csc.nnz, workload.features.nnz, label)
        else:
            key = self.cache.key(a_csc, workload.features, tile, kind="gcn")
            program = self.cache.get(key)
            cache_hit = program is not None
            if program is None:
                program = compile_gcn_aggregation(
                    a_csc, workload.features, tile_size=tile,
                    dataset=workload.dataset.name)
                self.cache.put(key, program)
            program = self._maybe_verify(key, program)
            execution = get_backend(self.backend).execute(
                program, self.chip._context(self.impl),
                a_csr=csc_to_csr(a_csc), b_csr=workload.features,
                verify=spec.verify)
            power_w, energy_j = self.chip._estimate_power(execution.report)
        report = execution.report
        combined = workload.layer.combination(execution.to_dense())
        combination_cycles = self.chip._combination_cycles(workload)
        aggregation_cycles = report.cycles if report is not None else 0.0
        aggregation = SpGEMMRunResult(
            program=program, report=report, functional=execution.functional,
            output=execution.output, power_w=power_w, energy_j=energy_j,
            backend=execution.backend)
        legacy = GCNRunResult(
            aggregation=aggregation, combination_cycles=combination_cycles,
            total_cycles=aggregation_cycles + combination_cycles,
            output=combined, workload=workload,
            metadata={"feature_dim": workload.layer.in_dim,
                      "hidden_dim": spec.hidden_dim})
        wall = time.perf_counter() - start
        metrics = {
            "aggregation_cycles": aggregation_cycles,
            "combination_cycles": round(combination_cycles, 1),
            "total_cycles": round(legacy.total_cycles, 1),
            "output_shape": str(combined.shape),
            "verified": report.correct if report is not None else None,
        }
        activity = (self.chip._activity_from_report(report)
                    if report is not None else {})
        provenance = self._provenance(cache_hit=cache_hit, wall=wall)
        provenance.chips = getattr(execution, "n_chips", 1)
        return RunResult(
            kind="gcn_layer", label=spec.label, metrics=metrics,
            activity=activity, provenance=provenance,
            output=combined, report=report, program=program,
            power_w=power_w, energy_j=energy_j, legacy=legacy)

    # ------------------------------------------------------------------
    # GNN model stack
    # ------------------------------------------------------------------
    def _run_gnn_model(self, spec: GNNModelSpec) -> RunResult:
        """Execute a whole layer stack over one resident graph: normalise
        once, compile the aggregation program once, re-bind feature values
        per layer, pipeline batches across the fleet.  The heavy lifting
        lives in :func:`repro.gnn.pipeline.run_gnn_model`."""
        from repro.gnn.pipeline import run_gnn_model

        return run_gnn_model(self, spec)

    # ------------------------------------------------------------------
    # Design-space sweep
    # ------------------------------------------------------------------
    def _run_sweep(self, spec: SweepSpec) -> RunResult:
        start = time.perf_counter()
        get_backend(self.backend)
        if self.backend == "functional":
            raise ValueError("backend 'functional' produces no timing report; "
                             "use 'cycle' or 'analytic'")
        payloads = [{"config": config, "a": spec.a, "b": spec.b,
                     "eviction_mode": spec.eviction_mode,
                     "params": self.chip.params, "backend": self.backend,
                     "topology": self.topology}
                    for config in spec.configs]
        raw = dict(self.executor.map(_sweep_config_worker, payloads))
        table = raw if spec.normalize_to is None else \
            self._normalize_sweep(raw, spec)
        wall = time.perf_counter() - start
        return RunResult(
            kind="sweep", label=spec.label,
            metrics={"configs": len(table)},
            provenance=self._provenance(cache_hit=False, wall=wall),
            legacy=table)

    @staticmethod
    def _normalize_sweep(raw: dict, spec: SweepSpec) -> dict:
        base_name = get_config(spec.normalize_to).name \
            if isinstance(spec.normalize_to, str) else spec.normalize_to.name
        base = raw[base_name]
        normalized: dict[str, dict[str, float]] = {}
        for name, metrics in raw.items():
            normalized[name] = {}
            for key, value in metrics.items():
                if not base.get(key):
                    if spec.on_missing_base == "raise":
                        raise ValueError(
                            f"cannot normalise metric {key!r}: baseline "
                            f"{base_name!r} reports {base.get(key)!r}")
                    continue
                normalized[name][key] = value / base[key]
        return normalized

    # ------------------------------------------------------------------
    # Batch
    # ------------------------------------------------------------------
    def _run_batch(self, spec: BatchSpec) -> RunResult:
        start = time.perf_counter()
        results = self._map_specs(spec.specs)
        outcomes = [JobOutcome(label=result.label, result=result.legacy,
                               cache_hit=result.cache_hit,
                               wall_time_s=result.wall_time_s)
                    for result in results]
        wall = time.perf_counter() - start
        legacy = BatchReport(outcomes=outcomes, backend=self.backend,
                             executor=self.executor.name,
                             cache_hits=sum(o.cache_hit for o in outcomes),
                             wall_time_s=wall)
        provenance = self._provenance(
            cache_hit=bool(outcomes) and all(o.cache_hit for o in outcomes),
            wall=wall)
        return RunResult(
            kind="batch", label=spec.label, metrics=legacy.summary(),
            provenance=provenance, legacy=legacy,
            power_w=max((o.result.power_w for o in outcomes), default=0.0),
            energy_j=legacy.total_energy_j)

    # ------------------------------------------------------------------
    def _provenance(self, cache_hit: bool, wall: float) -> Provenance:
        return Provenance(backend=self.backend, impl=self.impl,
                          executor=self.executor.name,
                          config=self.chip.config.name,
                          cache_hit=cache_hit, wall_time_s=wall)
