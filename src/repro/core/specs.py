"""Declarative workload specifications and the unified result envelope.

Every workload the repository knows how to execute is described by a typed,
immutable-ish *spec* dataclass — :class:`SpGEMMSpec`, :class:`GCNLayerSpec`,
:class:`SweepSpec`, :class:`BatchSpec` — and submitted to a
:class:`~repro.core.session.Session` via ``session.run(spec)`` /
``session.map(specs)`` / ``session.submit(spec)``.  Each execution returns a
:class:`RunResult`: one envelope carrying the flat metrics row, per-component
activity factors, power/energy, and a :class:`Provenance` record (backend,
kernel impl, executor, cache hit, wall time, shard count).

Specs are plain data: they carry operands and knobs, never behaviour, so
they can be pickled across process boundaries, fingerprinted for caching,
and fanned out by the executor layer without touching the chip they will
eventually run on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

# Re-exported here so workload plumbing can be described with one import:
# a ChipTopology is plain data exactly like the specs below.
from repro.backends.multichip import ChipTopology  # noqa: F401
from repro.compiler.program import Program
from repro.sim.accelerator import SimulationReport
from repro.sparse.csr import CSRMatrix


@dataclass
class WorkloadSpec:
    """Base class for all workload specifications."""

    #: Human-readable name used in reports and tables.
    label: str = "workload"


@dataclass(frozen=True)
class OperandRef:
    """Content-addressed handle to a server-resident operand.

    ``ref`` is the operand's content digest
    (:func:`~repro.core.runner.matrix_fingerprint`), minted by the
    serving layer's operand registry (``PUT /v1/operands``).  A spec
    carrying an :class:`OperandRef` is *unresolved* — it cannot execute
    until :meth:`~repro.serve.registry.OperandRegistry.resolve` swaps the
    handle for the resident matrix — but it is plain, tiny data, so
    clients describe multi-megabyte workloads in ~100-byte requests.
    """

    ref: str


@dataclass
class SpGEMMSpec(WorkloadSpec):
    """One SpGEMM workload: C = A @ B (B defaults to A).

    Attributes:
        a: left operand (CSR/CSC/COO or dense numpy array, or an
            :class:`OperandRef` to a registered server-side operand —
            refs must be resolved by the serving registry before the
            spec reaches a session).
        b: right operand; ``None`` means the A @ A workload.
        tile_size: MMH tile-size override; ``None`` uses the chip default.
        verify: verify the output against a reference (cycle backend only).
        source: workload label recorded in the compiled program.
        shards: split the workload into this many row-group shards that fan
            out over the session's executor and reduce into one result.
        a_digest / b_digest: known content digests of the operands
            (stamped by the operand registry on ref resolution) so the
            serving coalescer keys on them directly instead of
            re-fingerprinting the arrays per request.  Purely advisory:
            ``None`` means "fingerprint on demand".
    """

    a: Any = None
    b: Any = None
    tile_size: int | None = None
    verify: bool = True
    source: str = "spgemm"
    shards: int = 1
    a_digest: str | None = None
    b_digest: str | None = None
    label: str = "spgemm"

    def __post_init__(self) -> None:
        if self.a is None:
            raise ValueError("SpGEMMSpec requires operand 'a'")
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")


@dataclass
class GCNLayerSpec(WorkloadSpec):
    """One GCN layer: aggregation on the accelerator, combination modelled.

    Attributes:
        dataset: a :class:`~repro.datasets.suite.GraphDataset` or a raw
            adjacency :class:`~repro.sparse.coo.COOMatrix`.
        feature_dim / hidden_dim: layer dimensions.
        feature_density: density of the synthetic feature matrix.
        verify: verify the aggregation output (cycle backend only).
        seed: feature / weight seed.
        features: explicit input features (dense ``(n_nodes, in_dim)`` array
            or CSR) instead of the synthetic matrix — this is how a layer
            chain feeds layer ``i``'s output into layer ``i+1``.  When set,
            ``feature_dim`` / ``feature_density`` are ignored and the input
            is executed through the same dense full-structure operand
            encoding :class:`GNNModelSpec` uses, so a chained run is
            byte-identical to the stacked pipeline.
        weight_seed: explicit weight seed; ``None`` keeps the legacy
            ``seed + 1``.
        activation: activation applied by the modelled combination stage
            ('relu', 'identity'/'none'/None).
    """

    dataset: Any = None
    feature_dim: int = 32
    hidden_dim: int = 16
    feature_density: float = 0.3
    verify: bool = True
    seed: int = 7
    features: Any = None
    weight_seed: int | None = None
    activation: str | None = "relu"
    label: str = "gcn-layer"

    def __post_init__(self) -> None:
        if self.dataset is None:
            raise ValueError("GCNLayerSpec requires a dataset")


@dataclass
class GNNModelSpec(WorkloadSpec):
    """A multi-layer GNN over one resident graph: compile once, run L layers.

    The whole stack is one workload: the adjacency is normalised once, the
    aggregation program is compiled once per resident graph (its symbolic
    structure depends only on ``A_hat``'s sparsity, never on the dense
    features) and re-bound to each layer's feature values, and on the
    multichip backend the per-chip shard programs stay resident across
    layers with the operand broadcast charged once per stack.

    Attributes:
        dataset: a :class:`~repro.datasets.suite.GraphDataset` or a raw
            adjacency :class:`~repro.sparse.coo.COOMatrix`.
        layer_dims: output width of each layer, outermost first; its length
            is the stack depth L.
        feature_dim: width of the synthetic input features (layer 0 input).
        feature_density: density of the synthetic feature matrix.
        activations: per-layer activations — a single name applied to every
            layer, a sequence of length L, or ``None`` for 'relu'
            everywhere (matching a chain of default :class:`GCNLayerSpec`).
        seed: feature seed; layer ``i``'s weights use ``seed + 1 + i``.
        batches: number of feature batches pushed through the resident
            stack; batches > 1 are pipelined layer-by-layer across the
            fleet (layer i of batch j runs while layer i+1 processes batch
            j-1), so the modelled makespan is
            ``sum(layer_cycles) + (batches - 1) * max(layer_cycles)``.
        verify: verify each aggregation output (cycle backend only).
    """

    dataset: Any = None
    layer_dims: Sequence[int] = (16,)
    feature_dim: int = 32
    feature_density: float = 0.3
    activations: Any = None
    seed: int = 7
    batches: int = 1
    verify: bool = True
    label: str = "gnn-model"

    def __post_init__(self) -> None:
        if self.dataset is None:
            raise ValueError("GNNModelSpec requires a dataset")
        self.layer_dims = tuple(int(dim) for dim in self.layer_dims)
        if not self.layer_dims:
            raise ValueError("GNNModelSpec requires at least one layer")
        if any(dim < 1 for dim in self.layer_dims):
            raise ValueError(f"layer dims must be >= 1, got {self.layer_dims}")
        if self.batches < 1:
            raise ValueError(f"batches must be >= 1, got {self.batches}")
        if (self.activations is not None
                and not isinstance(self.activations, str)):
            self.activations = tuple(self.activations)
            if len(self.activations) != len(self.layer_dims):
                raise ValueError(
                    f"activations length {len(self.activations)} does not "
                    f"match stack depth {len(self.layer_dims)}")


@dataclass
class SweepSpec(WorkloadSpec):
    """A design-space sweep: the same workload across tile configurations.

    Attributes:
        a / b: SpGEMM operands (B defaults to A).
        configs: configuration names or objects to sweep over.
        normalize_to: configuration the metrics are normalised to;
            ``None`` reports raw values.
        eviction_mode: eviction mode for every configuration.
        on_missing_base: ``"skip"`` omits metrics whose baseline is
            missing/zero from the normalised output; ``"raise"`` errors.
    """

    a: Any = None
    b: Any = None
    configs: Sequence[Any] = ("Tile-4", "Tile-16", "Tile-64")
    normalize_to: str | None = "Tile-4"
    eviction_mode: str = "rolling"
    on_missing_base: str = "skip"
    label: str = "sweep"

    def __post_init__(self) -> None:
        if self.a is None:
            raise ValueError("SweepSpec requires operand 'a'")
        if self.on_missing_base not in ("skip", "raise"):
            raise ValueError("on_missing_base must be 'skip' or 'raise'")


@dataclass
class BatchSpec(WorkloadSpec):
    """Many jobs executed over one chip with shared program caching.

    Attributes:
        specs: the member workloads (currently :class:`SpGEMMSpec` only).
    """

    specs: Sequence[SpGEMMSpec] = ()
    label: str = "batch"

    def __post_init__(self) -> None:
        self.specs = list(self.specs)
        for spec in self.specs:
            if not isinstance(spec, SpGEMMSpec):
                raise TypeError("BatchSpec members must be SpGEMMSpec, "
                                f"got {type(spec)!r}")


@dataclass
class Provenance:
    """Where a result came from and what it cost to produce.

    Attributes:
        backend: execution backend name.
        impl: kernel implementation used by kernel-layer backends.
        executor: executor the work ran on ('serial', 'thread', 'process').
        config: chip configuration name.
        cache_hit: True when the compiled program came from the program
            cache (in-memory or disk) instead of a fresh compile.
        wall_time_s: host wall-clock seconds for compile + execute.
        shards: number of row-group shards the workload was split into.
        chips: number of chip instances a multichip run fanned out to.
    """

    backend: str = ""
    impl: str = ""
    executor: str = "serial"
    config: str = ""
    cache_hit: bool = False
    wall_time_s: float = 0.0
    shards: int = 1
    chips: int = 1


@dataclass
class RunResult:
    """Unified envelope for every workload kind a session executes.

    Attributes:
        kind: 'spgemm' | 'gcn_layer' | 'gnn_model' | 'sweep' | 'batch'.
        label: the spec's label.
        metrics: flat metrics row (cycles, gops, op counts, ...); suitable
            for table / CSV export after dropping ``None`` values.
        activity: per-component activity factors (when a timing report
            exists) — the input to the power model.
        provenance: backend / impl / executor / cache / wall-time record.
        output: the numeric result — CSR product matrix for SpGEMM, dense
            layer output for GCN, ``None`` for sweeps and batches.
        report: timing report when a single timing run backs this result.
        program: the compiled program for single SpGEMM runs.
        power_w / energy_j: modelled power and energy.
        legacy: the pre-Session result object (``SpGEMMRunResult``,
            ``GCNRunResult``, ``BatchReport``, or the sweep dict) so the
            deprecation shims can return exactly what they always did.
        shard_results: per-shard results for sharded executions.
    """

    kind: str = ""
    label: str = ""
    metrics: dict[str, Any] = field(default_factory=dict)
    activity: dict[str, float] = field(default_factory=dict)
    provenance: Provenance = field(default_factory=Provenance)
    output: CSRMatrix | np.ndarray | None = None
    report: SimulationReport | None = None
    program: Program | None = None
    power_w: float = 0.0
    energy_j: float = 0.0
    legacy: Any = None
    shard_results: list["RunResult"] | None = None

    @property
    def cache_hit(self) -> bool:
        return self.provenance.cache_hit

    @property
    def wall_time_s(self) -> float:
        return self.provenance.wall_time_s

    def slim(self) -> "RunResult":
        """Replace heavyweight program payloads with count-level digests
        (in place; returns self).

        Used by the process executor so results crossing a process boundary
        don't serialise full macro-op streams — every report column still
        works, but ``program`` becomes a
        :class:`~repro.compiler.program.ProgramDigest`.
        """
        if self.program is not None:
            self.program = self.program.digest()
        legacy = self.legacy
        if legacy is not None and getattr(legacy, "program", None) is not None:
            legacy.program = legacy.program.digest()
        aggregation = getattr(legacy, "aggregation", None)
        if aggregation is not None and aggregation.program is not None:
            aggregation.program = aggregation.program.digest()
        if self.shard_results:
            for shard in self.shard_results:
                shard.slim()
        return self

    def as_row(self) -> dict:
        """Flat row for table / CSV export; ``None``-valued fields dropped."""
        row = {
            "label": self.label,
            "kind": self.kind,
            "config": self.provenance.config or None,
            "backend": self.provenance.backend or None,
            "executor": self.provenance.executor or None,
            **self.metrics,
            "power_w": round(self.power_w, 3),
            "cache_hit": self.provenance.cache_hit,
            "wall_time_s": round(self.provenance.wall_time_s, 6),
        }
        if self.provenance.shards > 1:
            row["shards"] = self.provenance.shards
        if self.provenance.chips > 1:
            row["chips"] = self.provenance.chips
        return {key: value for key, value in row.items() if value is not None}
