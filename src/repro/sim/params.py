"""Simulation timing parameters.

All latencies are expressed in clock cycles at the configuration's frequency
(1 GHz for every NeuraChip configuration).  The defaults approximate the
magnitudes implied by the paper (HBM access of a few tens of nanoseconds,
single-cycle hash lookups, two-cycle router hops) and can be overridden for
sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class SimulationParams:
    """Latency and structural parameters of the NeuraSim timing model.

    Attributes:
        decode_cycles: MMH decode latency in a NeuraCore pipeline.
        register_alloc_cycles: dynamic register allocation latency.
        address_gen_cycles: address generation latency per MMH.
        multiply_cycles: latency of one multiply batch in the pipeline.
        registers_per_mmh: register-file slots one in-flight MMH occupies.
        hacc_sends_per_cycle: HACC instructions a NeuraCore can inject into
            the NoC per cycle (bounded by its ports).
        hash_lookup_cycles: HashPad TAG comparison latency.
        hash_accumulate_cycles: accumulation (adder) latency.
        hash_insert_cycles: new hash-line allocation latency.
        hash_eviction_cycles: hash-line eviction routine latency.
        hash_collision_penalty_cycles: extra latency when the HashPad is full
            and a line must be spilled to HBM.
        router_hop_cycles: per-hop latency of the 2-D torus.
        router_flit_bytes: bytes carried per flit (128-bit data bus).
        router_link_bytes_per_cycle: ingress bandwidth of each component port.
        memory_controller_cycles: fixed controller pipeline latency.
        coalesce_line_bytes: request-coalescing granularity.
        controller_buffer_lines: recently-fetched lines each memory controller
            keeps in its read buffer (the paper's controllers reorganise and
            buffer transactions to enhance spatial locality); repeated operand
            fetches within a row group hit this buffer instead of DRAM.
        hbm_row_bytes: DRAM row-buffer size per bank.
        hbm_banks_per_channel: banks per HBM channel.
        hbm_row_hit_cycles: access latency on a row-buffer hit.
        hbm_row_miss_cycles: access latency on a row-buffer miss.
        hbm_bytes_per_cycle_per_channel: peak data rate per channel
            (128 GB/s across 8 channels at 1 GHz = 16 B/cycle/channel).
        dispatch_width: MMH instructions the Dispatcher can issue per cycle.
        barrier_interval_columns: for barrier-based eviction, the number of
            completed input columns between HashPad flushes.
        writeback_bytes: bytes written to HBM per evicted hash line.
        sample_interval_cycles: statistics sampling period.
    """

    decode_cycles: int = 1
    register_alloc_cycles: int = 1
    address_gen_cycles: int = 1
    multiply_cycles: int = 2
    registers_per_mmh: int = 2
    hacc_sends_per_cycle: int = 4

    hash_lookup_cycles: int = 1
    hash_accumulate_cycles: int = 1
    hash_insert_cycles: int = 1
    hash_eviction_cycles: int = 2
    hash_collision_penalty_cycles: int = 4

    router_hop_cycles: int = 2
    router_flit_bytes: int = 16
    router_link_bytes_per_cycle: int = 16

    memory_controller_cycles: int = 6
    coalesce_line_bytes: int = 32
    controller_buffer_lines: int = 256
    hbm_row_bytes: int = 1024
    hbm_banks_per_channel: int = 16
    hbm_row_hit_cycles: int = 18
    hbm_row_miss_cycles: int = 36
    hbm_bytes_per_cycle_per_channel: float = 16.0

    dispatch_width: int = 8
    barrier_interval_columns: int = 8
    writeback_bytes: int = 8
    sample_interval_cycles: int = 64

    def scaled(self, **overrides) -> "SimulationParams":
        """Return a copy with the given fields overridden."""
        return replace(self, **overrides)
