"""NeuraMem: on-chip hash-based accumulation unit (Section 3.4).

Each NeuraMem owns a HashPad — an array of hash lines, each holding a TAG, a
DATA accumulator and a rolling-eviction COUNTER — and a set of hash engines
that process incoming HACC instructions (Algorithm 2).  Two eviction policies
are modelled:

* **rolling** (HACC-RE): a hash line is evicted, and its result written back
  to HBM, the moment its counter reaches zero;
* **barrier** (HACC-BE): completed lines stay resident until a computation
  barrier (a group of input columns finishing) flushes them.

The latency of a HACC instruction is measured from its dispatch by a
NeuraCore to the eviction of the hash line it contributed to, which is the
quantity Figure 15 plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.compiler.program import HACCMacroOp
from repro.sim.engine import Simulator
from repro.sim.params import SimulationParams
from repro.sim.stats import StatsCollector

#: Histogram shape of Figure 15 (bins of 50 cycles, 0 to 1000+).
HACC_HIST_BIN_WIDTH = 50
HACC_HIST_BINS = 20


@dataclass
class HashLine:
    """One TAG/DATA/COUNTER entry of the HashPad."""

    tag: int
    value: float
    remaining: int
    out_row: int
    out_col: int
    writeback_addr: int
    insert_time: float
    dispatch_times: list[float] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """True once every contributing partial product has been accumulated."""
        return self.remaining <= 0


class NeuraMem:
    """Hash-based accumulation unit with a bounded HashPad."""

    def __init__(self, mem_id: int, position: tuple[int, int], sim: Simulator,
                 params: SimulationParams, stats: StatsCollector,
                 hashlines: int, hash_engines: int,
                 eviction_mode: str = "rolling",
                 writeback: Callable[[int, int], None] | None = None,
                 on_evict: Callable[[HashLine, float], None] | None = None,
                 on_spill: Callable[[HashLine, float], None] | None = None,
                 on_applied: Callable[[], None] | None = None,
                 resume_lookup: Callable[[int], int] | None = None) -> None:
        if eviction_mode not in ("rolling", "barrier"):
            raise ValueError("eviction_mode must be 'rolling' or 'barrier'")
        self.mem_id = mem_id
        self.position = position
        self.sim = sim
        self.params = params
        self.stats = stats
        self.capacity = int(hashlines)
        self.eviction_mode = eviction_mode
        self._writeback = writeback
        self._on_evict = on_evict
        self._on_spill = on_spill
        self._on_applied = on_applied
        self._resume_lookup = resume_lookup
        self._engine_next_free = [0.0] * max(1, hash_engines)
        self._pad: dict[int, HashLine] = {}
        self._completed: dict[int, HashLine] = {}
        self.busy_cycles = 0.0
        self.accumulations = 0
        self.insertions = 0
        self.evictions = 0
        self.spills = 0
        self.peak_occupancy = 0
        self.haccs_received = 0

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Currently allocated hash lines (resident + completed-but-unevicted)."""
        return len(self._pad) + len(self._completed)

    # ------------------------------------------------------------------
    def receive_hacc(self, hacc: HACCMacroOp, dispatch_time: float) -> None:
        """Accept a HACC instruction arriving from the NoC.

        The instruction queues for the least-busy hash engine; Algorithm 2 is
        applied when the engine becomes available.
        """
        self.haccs_received += 1
        engine = min(range(len(self._engine_next_free)),
                     key=self._engine_next_free.__getitem__)
        start = max(self.sim.now, self._engine_next_free[engine])
        latency = self.params.hash_lookup_cycles + self.params.hash_accumulate_cycles
        self._engine_next_free[engine] = start + latency
        self.busy_cycles += latency
        self.sim.schedule_at(start + latency, self._apply, hacc, dispatch_time)

    # ------------------------------------------------------------------
    def _apply(self, hacc: HACCMacroOp, dispatch_time: float) -> None:
        """Algorithm 2: hash, accumulate / insert, decrement, maybe evict."""
        line = self._pad.get(hacc.tag)
        if line is not None:
            line.value += hacc.value
            line.remaining -= 1
            line.dispatch_times.append(dispatch_time)
            self.accumulations += 1
            self.stats.incr("neuramem.accumulations")
        else:
            if self.occupancy >= self.capacity:
                self._spill_victim()
            already_applied = 0
            if self._resume_lookup is not None:
                # If this TAG was spilled earlier, resume its counter where it
                # left off (the spilled partial value is merged at eviction).
                already_applied = self._resume_lookup(hacc.tag)
            line = HashLine(tag=hacc.tag, value=hacc.value,
                            remaining=hacc.counter - 1 - already_applied,
                            out_row=hacc.out_row, out_col=hacc.out_col,
                            writeback_addr=hacc.writeback_addr,
                            insert_time=self.sim.now,
                            dispatch_times=[dispatch_time])
            self._pad[hacc.tag] = line
            self.insertions += 1
            self.stats.incr("neuramem.insertions")
        self.peak_occupancy = max(self.peak_occupancy, self.occupancy)
        if self._on_applied is not None:
            self._on_applied()

        if line.complete:
            del self._pad[hacc.tag]
            if self.eviction_mode == "rolling":
                self._evict(line)
            else:
                self._completed[hacc.tag] = line

    # ------------------------------------------------------------------
    def _spill_victim(self) -> None:
        """HashPad overflow: spill an incomplete line to HBM (collision routine).

        The partial value is written back and re-fetched when the TAG next
        appears; the accelerator keeps the spilled partials so numerical
        correctness is preserved.
        """
        if self._completed:
            # Prefer evicting a completed line: it is free capacity.
            tag, line = next(iter(self._completed.items()))
            del self._completed[tag]
            self._evict(line)
            return
        if not self._pad:
            return
        tag, line = next(iter(self._pad.items()))
        del self._pad[tag]
        self.spills += 1
        self.stats.incr("neuramem.spills")
        self.busy_cycles += self.params.hash_collision_penalty_cycles
        if self._writeback is not None:
            self._writeback(line.writeback_addr, self.params.writeback_bytes)
        if self._on_spill is not None:
            self._on_spill(line, self.sim.now)
        self._record_hacc_latencies(line, self.sim.now)

    # ------------------------------------------------------------------
    def _evict(self, line: HashLine) -> None:
        """Rolling/barrier eviction: write the accumulated value back to HBM."""
        evict_time = self.sim.now + self.params.hash_eviction_cycles
        self.evictions += 1
        self.stats.incr("neuramem.evictions")
        self.busy_cycles += self.params.hash_eviction_cycles
        if self._writeback is not None:
            self._writeback(line.writeback_addr, self.params.writeback_bytes)
        if self._on_evict is not None:
            self._on_evict(line, evict_time)
        self._record_hacc_latencies(line, evict_time)

    def _record_hacc_latencies(self, line: HashLine, end_time: float) -> None:
        histogram = self.stats.histogram("hacc_cpi", HACC_HIST_BIN_WIDTH,
                                         HACC_HIST_BINS)
        for dispatch_time in line.dispatch_times:
            histogram.add(end_time - dispatch_time)
            self.stats.observe("hacc.latency", end_time - dispatch_time)

    # ------------------------------------------------------------------
    def barrier_flush(self) -> int:
        """Evict every completed-but-resident line (barrier eviction policy)."""
        flushed = 0
        for tag in list(self._completed):
            line = self._completed.pop(tag)
            self._evict(line)
            flushed += 1
        return flushed

    def finalize(self) -> int:
        """End-of-program flush; also detects lines that never completed."""
        flushed = self.barrier_flush()
        if self._pad:
            # Remaining lines indicate a counter mismatch; evict them anyway so
            # the output is complete, and record the anomaly.
            self.stats.incr("neuramem.incomplete_lines", len(self._pad))
            for tag in list(self._pad):
                line = self._pad.pop(tag)
                self._evict(line)
                flushed += 1
        return flushed
