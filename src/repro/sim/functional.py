"""Functional (untimed) model of the NeuraChip dataflow.

The functional accelerator executes a compiled program with the same
hash-accumulate semantics as the cycle simulator — per-NeuraMem HashPads,
rolling counters, capacity-induced spills — but without any timing.  It is
used by the test suite to validate dataflow correctness quickly, and by the
benchmark harness for workloads too large for the cycle simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.config import NeuraChipConfig
from repro.compiler.program import Program
from repro.hashing.mappings import make_mapping


@dataclass
class FunctionalReport:
    """Result of a functional execution.

    Attributes:
        output: dense output matrix produced by the hash-accumulate dataflow.
        per_mem_haccs: HACC operations handled by each NeuraMem.
        per_mem_evictions: hash-line evictions per NeuraMem.
        per_core_mmhs: MMH instructions executed per NeuraCore (dispatch by
            least-loaded approximated with round robin in program order).
        peak_occupancy: maximum resident hash lines in any NeuraMem.
        spills: capacity-induced spills across all NeuraMems.
        total_partial_products: HACCs processed (should equal the program's).
        load_imbalance: max/mean ratio of per-NeuraMem HACC counts.
    """

    output: np.ndarray
    per_mem_haccs: np.ndarray
    per_mem_evictions: np.ndarray
    per_core_mmhs: np.ndarray
    peak_occupancy: int
    spills: int
    total_partial_products: int
    load_imbalance: float
    metadata: dict = field(default_factory=dict)


class FunctionalAccelerator:
    """Untimed NeuraChip dataflow executor."""

    def __init__(self, config: NeuraChipConfig,
                 mapping_scheme: str | None = None, mapping_seed: int = 0) -> None:
        self.config = config
        self.mapping_scheme_name = mapping_scheme or config.mapping_scheme
        self.mapping_seed = mapping_seed

    def run(self, program: Program) -> FunctionalReport:
        """Execute a program functionally and return the report."""
        config = self.config
        n_mems = config.total_mems
        n_cores = config.total_cores
        if self.mapping_scheme_name in ("random", "drhm"):
            mapping = make_mapping(self.mapping_scheme_name, n_mems,
                                   seed=self.mapping_seed)
        else:
            mapping = make_mapping(self.mapping_scheme_name, n_mems)

        output = np.zeros(program.shape, dtype=np.float64)
        pads: list[dict[int, list]] = [dict() for _ in range(n_mems)]
        spilled: dict[int, float] = {}
        spilled_applied: dict[int, int] = {}
        per_mem_haccs = np.zeros(n_mems, dtype=np.int64)
        per_mem_evictions = np.zeros(n_mems, dtype=np.int64)
        per_core_mmhs = np.zeros(max(1, n_cores), dtype=np.int64)
        peak_occupancy = 0
        spills = 0
        total = 0
        capacity = config.mem.hashlines

        # The lazy columnar view: ops materialize one at a time and are
        # dropped after processing, so the functional pass never holds the
        # full macro-op list.
        for op_index, op in enumerate(program.iter_mmh_ops()):
            per_core_mmhs[op_index % max(1, n_cores)] += 1
            for hacc in program.expand_haccs(op):
                total += 1
                mem_index = mapping.map(hacc.tag, group=hacc.out_row)
                per_mem_haccs[mem_index] += 1
                pad = pads[mem_index]
                line = pad.get(hacc.tag)
                if line is None:
                    if len(pad) >= capacity:
                        victim_tag, victim = next(iter(pad.items()))
                        del pad[victim_tag]
                        spilled[victim_tag] = spilled.get(victim_tag, 0.0) + victim[0]
                        spilled_applied[victim_tag] = (
                            spilled_applied.get(victim_tag, 0) + victim[2])
                        spills += 1
                    already = spilled_applied.get(hacc.tag, 0)
                    pad[hacc.tag] = [hacc.value, hacc.counter - 1 - already, 1,
                                     hacc.out_row, hacc.out_col]
                else:
                    line[0] += hacc.value
                    line[1] -= 1
                    line[2] += 1
                line = pad[hacc.tag]
                peak_occupancy = max(peak_occupancy, len(pad))
                if line[1] <= 0:
                    value = line[0] + spilled.pop(hacc.tag, 0.0)
                    spilled_applied.pop(hacc.tag, None)
                    output[line[3], line[4]] += value
                    del pad[hacc.tag]
                    per_mem_evictions[mem_index] += 1
            if op.reseed_after:
                mapping.reseed(op.k)

        # Flush anything left resident (counter anomalies or spilled resumes).
        for mem_index, pad in enumerate(pads):
            for tag, line in list(pad.items()):
                value = line[0] + spilled.pop(tag, 0.0)
                output[line[3], line[4]] += value
                per_mem_evictions[mem_index] += 1
            pad.clear()

        mean = per_mem_haccs.mean() if n_mems else 0.0
        imbalance = float(per_mem_haccs.max() / mean) if mean > 0 else 0.0
        return FunctionalReport(
            output=output,
            per_mem_haccs=per_mem_haccs,
            per_mem_evictions=per_mem_evictions,
            per_core_mmhs=per_core_mmhs,
            peak_occupancy=peak_occupancy,
            spills=spills,
            total_partial_products=total,
            load_imbalance=imbalance,
            metadata={"mapping_scheme": self.mapping_scheme_name},
        )
