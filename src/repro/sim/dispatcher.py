"""Dispatcher: issues MMH instructions to NeuraCores (Step 1 of Figure 5).

The Dispatcher walks the compiled program in order and pushes MMH
instructions onto whichever NeuraCore has the most free capacity, issuing up
to ``dispatch_width`` instructions per cycle.  When every core's instruction
buffer is full it sleeps until a core retires an instruction.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.compiler.program import MMHMacroOp
from repro.sim.engine import Simulator
from repro.sim.neuracore import NeuraCore
from repro.sim.params import SimulationParams
from repro.sim.stats import StatsCollector


class Dispatcher:
    """Push-based task distribution onto the NeuraCores."""

    def __init__(self, sim: Simulator, params: SimulationParams,
                 cores: Sequence[NeuraCore], stats: StatsCollector,
                 on_all_issued: Callable[[], None] | None = None) -> None:
        self.sim = sim
        self.params = params
        self.cores = list(cores)
        self.stats = stats
        self._ops: list[MMHMacroOp] = []
        self._next_index = 0
        self._issue_scheduled = False
        self._waiting_for_slot = False
        self._on_all_issued = on_all_issued
        self.instructions_issued = 0

    # ------------------------------------------------------------------
    def load(self, ops: Iterable[MMHMacroOp]) -> None:
        """Load a program's MMH stream for issue.

        Accepts any iterable (including a columnar program's lazy macro-op
        view); the stream is materialized here because the cycle simulator
        re-indexes in-flight instructions by position."""
        self._ops = list(ops)
        self._next_index = 0
        self.instructions_issued = 0

    @property
    def done(self) -> bool:
        """True when every instruction has been issued."""
        return self._next_index >= len(self._ops)

    @property
    def remaining(self) -> int:
        return len(self._ops) - self._next_index

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin issuing at cycle 0."""
        self._schedule_issue(0.0)

    def _schedule_issue(self, delay: float) -> None:
        if self._issue_scheduled or self.done:
            return
        self._issue_scheduled = True
        self.sim.schedule(delay, self._issue_cycle)

    def _issue_cycle(self) -> None:
        """Issue up to ``dispatch_width`` instructions this cycle."""
        self._issue_scheduled = False
        issued = 0
        while issued < self.params.dispatch_width and not self.done:
            core = self._least_loaded_core()
            if core is None:
                self._waiting_for_slot = True
                return
            op = self._ops[self._next_index]
            self._next_index += 1
            core.issue(op)
            issued += 1
            self.instructions_issued += 1
            self.stats.incr("dispatcher.issued")
        if self.done:
            if self._on_all_issued is not None:
                self._on_all_issued()
            return
        self._schedule_issue(1.0)

    def _least_loaded_core(self) -> NeuraCore | None:
        """The core with the fewest in-flight instructions that can accept."""
        best = None
        best_load = None
        for core in self.cores:
            if not core.can_accept():
                continue
            load = core.in_flight
            if best_load is None or load < best_load:
                best, best_load = core, load
        return best

    # ------------------------------------------------------------------
    def notify_slot_free(self) -> None:
        """A core retired an instruction; resume issuing if we were blocked."""
        if self._waiting_for_slot and not self.done:
            self._waiting_for_slot = False
            self._schedule_issue(0.0)
