"""NeuraCore: the multiplication engine (Section 3.3).

A NeuraCore owns several multiply pipelines (the quad-pipeline layout of
Figure 6).  Each in-flight MMH instruction occupies register-file slots in
one pipeline, fetches its four operand groups from HBM through the memory
controllers, computes its partial products, and dispatches HACC instructions
over the NoC to the NeuraMems selected by the mapping function.

The per-instruction latency (issue to the arrival of its last HACC at a
NeuraMem) is the quantity the Figure 14 CPI histograms plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.compiler.program import MMHMacroOp
from repro.sim.engine import Simulator
from repro.sim.params import SimulationParams
from repro.sim.stats import StatsCollector

#: Histogram shape of Figure 14 (bins of 25 cycles, 0 to 500+).
MMH_HIST_BIN_WIDTH = 25
MMH_HIST_BINS = 20


@dataclass
class _Pipeline:
    """One multiply pipeline: a register file holding in-flight MMH ops."""

    capacity: int
    in_flight: int = 0

    @property
    def has_slot(self) -> bool:
        return self.in_flight < self.capacity


@dataclass
class _InFlightMMH:
    """Book-keeping for one MMH instruction travelling through a pipeline."""

    op: MMHMacroOp
    pipeline: int
    issue_time: float
    frontend_done: float = 0.0
    outstanding_reads: int = 0
    outstanding_haccs: int = 0
    responses_done: float = 0.0


class NeuraCore:
    """In-order multiplication core with a small number of pipelines."""

    def __init__(self, core_id: int, position: tuple[int, int], sim: Simulator,
                 params: SimulationParams, stats: StatsCollector,
                 n_pipelines: int, pipeline_registers: int, multipliers: int,
                 read_fn: Callable[[int, int, Callable[[], None]], None],
                 dispatch_hacc_fn: Callable[["NeuraCore", MMHMacroOp, int,
                                             Callable[[], None]], None],
                 on_retire: Callable[["NeuraCore", MMHMacroOp, float], None]) -> None:
        self.core_id = core_id
        self.position = position
        self.sim = sim
        self.params = params
        self.stats = stats
        self.multipliers = max(1, multipliers)
        capacity = max(1, pipeline_registers // params.registers_per_mmh)
        self.pipelines = [_Pipeline(capacity=capacity) for _ in range(max(1, n_pipelines))]
        self._read = read_fn
        self._dispatch_hacc = dispatch_hacc_fn
        self._on_retire = on_retire
        self._next_pipeline = 0
        self.busy_cycles = 0.0
        self.stall_cycles = 0.0
        self.instructions_retired = 0
        self.haccs_dispatched = 0

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Total MMH instructions currently occupying register slots."""
        return sum(p.in_flight for p in self.pipelines)

    def can_accept(self) -> bool:
        """True when at least one pipeline has a free register slot."""
        return any(p.has_slot for p in self.pipelines)

    # ------------------------------------------------------------------
    def issue(self, op: MMHMacroOp) -> None:
        """Accept an MMH instruction from the Dispatcher (Step 1, Figure 6)."""
        pipeline_index = self._select_pipeline()
        self.pipelines[pipeline_index].in_flight += 1
        state = _InFlightMMH(op=op, pipeline=pipeline_index, issue_time=self.sim.now)
        frontend = (self.params.decode_cycles + self.params.register_alloc_cycles
                    + self.params.address_gen_cycles)
        self.sim.schedule(frontend, self._issue_memory_requests, state)

    def _select_pipeline(self) -> int:
        """Round-robin over pipelines with a free slot (Figure 6, Step 1)."""
        n = len(self.pipelines)
        for offset in range(n):
            candidate = (self._next_pipeline + offset) % n
            if self.pipelines[candidate].has_slot:
                self._next_pipeline = (candidate + 1) % n
                return candidate
        raise RuntimeError("issue() called with no free pipeline slot")

    # ------------------------------------------------------------------
    def _issue_memory_requests(self, state: _InFlightMMH) -> None:
        """Steps 4-5: generate operand fetches and send them to memory."""
        state.frontend_done = self.sim.now
        requests = state.op.operand_addresses()
        state.outstanding_reads = len(requests)
        self.stats.level("core.mem_inflight").change(self.sim.now, len(requests))
        for addr, nbytes in requests.values():
            self._read(addr, nbytes, lambda s=state: self._on_read_response(s))

    def _on_read_response(self, state: _InFlightMMH) -> None:
        """Step 6-7: a memory response arrived; execute once all are present."""
        state.outstanding_reads -= 1
        self.stats.level("core.mem_inflight").change(self.sim.now, -1)
        if state.outstanding_reads > 0:
            return
        state.responses_done = self.sim.now
        self.stall_cycles += max(0.0, state.responses_done - state.frontend_done)
        self.stats.incr("core.stall_cycles",
                        max(0.0, state.responses_done - state.frontend_done))
        n_products = state.op.n_partial_products
        batches = -(-n_products // self.multipliers)
        compute_latency = max(1, batches * self.params.multiply_cycles)
        self.busy_cycles += compute_latency
        self.stats.incr("core.busy_cycles", compute_latency)
        self.sim.schedule(compute_latency, self._dispatch_haccs, state)

    # ------------------------------------------------------------------
    def _dispatch_haccs(self, state: _InFlightMMH) -> None:
        """Step 8: relay HACC instructions to NeuraMem units via the NoC."""
        haccs = list(range(state.op.n_partial_products))
        state.outstanding_haccs = len(haccs)
        if not haccs:
            self._retire(state)
            return
        sends_per_cycle = max(1, self.params.hacc_sends_per_cycle)
        dispatch_cycles = len(haccs) / sends_per_cycle
        self.busy_cycles += dispatch_cycles
        for index in haccs:
            delay = index // sends_per_cycle
            self.sim.schedule(delay, self._send_one_hacc, state, index)

    def _send_one_hacc(self, state: _InFlightMMH, index: int) -> None:
        self.haccs_dispatched += 1
        self.stats.incr("core.haccs_dispatched")
        self._dispatch_hacc(self, state.op, index,
                            lambda s=state: self._on_hacc_arrival(s))

    def _on_hacc_arrival(self, state: _InFlightMMH) -> None:
        """A HACC reached its NeuraMem; retire once the last one lands."""
        state.outstanding_haccs -= 1
        if state.outstanding_haccs > 0:
            return
        self._retire(state)

    # ------------------------------------------------------------------
    def _retire(self, state: _InFlightMMH) -> None:
        latency = self.sim.now - state.issue_time
        self.stats.histogram("mmh_cpi", MMH_HIST_BIN_WIDTH, MMH_HIST_BINS).add(latency)
        self.stats.observe("mmh.latency", latency)
        self.pipelines[state.pipeline].in_flight -= 1
        self.instructions_retired += 1
        self.stats.incr("core.instructions_retired")
        self._on_retire(self, state.op, latency)
