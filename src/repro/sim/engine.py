"""Discrete-event simulation kernel.

A minimal, fast event queue: callbacks are scheduled at absolute or relative
cycle times and executed in time order (FIFO among equal timestamps).  All
NeuraSim components share one :class:`Simulator` instance.
"""

from __future__ import annotations

import heapq
from typing import Callable


class Simulator:
    """Event-driven simulation clock and queue.

    The clock unit is one accelerator cycle.  Events may be scheduled at
    fractional cycles internally (e.g. sub-cycle hash-engine slots); reported
    statistics are rounded to whole cycles.
    """

    def __init__(self) -> None:
        self._queue: list[tuple[float, int, Callable, tuple]] = []
        self._seq = 0
        self.now: float = 0.0
        self.events_processed = 0

    def schedule(self, delay: float, callback: Callable, *args) -> None:
        """Schedule ``callback(*args)`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, callback, args))

    def schedule_at(self, time: float, callback: Callable, *args) -> None:
        """Schedule ``callback(*args)`` at an absolute time (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        self._seq += 1
        heapq.heappush(self._queue, (time, self._seq, callback, args))

    def run(self, max_events: int | None = None, until: float | None = None) -> None:
        """Drain the event queue.

        Args:
            max_events: optional safety cap on the number of events processed.
            until: optional simulation-time horizon.
        """
        processed = 0
        while self._queue:
            if max_events is not None and processed >= max_events:
                break
            time, _seq, callback, args = heapq.heappop(self._queue)
            if until is not None and time > until:
                # Put the event back and stop.
                heapq.heappush(self._queue, (time, _seq, callback, args))
                break
            self.now = time
            callback(*args)
            processed += 1
        self.events_processed += processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def reset(self) -> None:
        """Clear the queue and rewind the clock to zero."""
        self._queue.clear()
        self._seq = 0
        self.now = 0.0
        self.events_processed = 0
