"""NeuraSim: a cycle-level, discrete-event simulator of the NeuraChip accelerator.

The simulator reproduces the component decomposition of the paper's NeuraSim
(Appendix A.1): a Dispatcher, NeuraCores with quad multiply pipelines,
NeuraMems with hash engines and a HashPad supporting rolling or barrier
eviction, a 2-D torus on-chip network, and per-tile memory controllers backed
by a simplified HBM channel/bank model.  The Python implementation is
event-driven rather than thread-parallel; absolute cycle counts therefore
differ from the authors' C++ simulator, but the architectural mechanisms (and
hence the relative effects the paper reports) are the same.
"""

from repro.sim.params import SimulationParams
from repro.sim.engine import Simulator
from repro.sim.stats import Histogram, StatsCollector
from repro.sim.accelerator import NeuraChipAccelerator, SimulationReport
from repro.sim.functional import FunctionalAccelerator, FunctionalReport

__all__ = [
    "SimulationParams",
    "Simulator",
    "Histogram",
    "StatsCollector",
    "NeuraChipAccelerator",
    "SimulationReport",
    "FunctionalAccelerator",
    "FunctionalReport",
]
