"""2-D torus on-chip network model.

NeuraCores and NeuraMems are arranged in an interleaved pattern and connected
through a 2-D torus fabric (Figure 5).  The model charges per-hop latency plus
serialisation, and approximates contention by limiting each destination port
to one flit acceptance per ``router_flit_bytes / router_link_bytes_per_cycle``
cycles.  Dimension-order hop counts with wraparound are used for distance.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.engine import Simulator
from repro.sim.params import SimulationParams
from repro.sim.stats import StatsCollector


class TorusNetwork:
    """A width x height torus carrying HACC and control traffic."""

    def __init__(self, sim: Simulator, params: SimulationParams,
                 width: int, height: int, stats: StatsCollector) -> None:
        if width <= 0 or height <= 0:
            raise ValueError("torus dimensions must be positive")
        self.sim = sim
        self.params = params
        self.width = width
        self.height = height
        self.stats = stats
        # Per-destination ingress port availability (contention approximation).
        self._ingress_next_free: dict[tuple[int, int], float] = {}
        self.flits_sent = 0
        self.total_hops = 0

    def hops(self, src: tuple[int, int], dst: tuple[int, int]) -> int:
        """Minimal dimension-order hop count on the torus."""
        dx = abs(src[0] - dst[0])
        dy = abs(src[1] - dst[1])
        dx = min(dx, self.width - dx)
        dy = min(dy, self.height - dy)
        return dx + dy

    def latency(self, src: tuple[int, int], dst: tuple[int, int],
                nbytes: int) -> float:
        """Zero-load latency for a message of ``nbytes``."""
        hops = self.hops(src, dst)
        serialization = nbytes / self.params.router_link_bytes_per_cycle
        return hops * self.params.router_hop_cycles + serialization

    def send(self, src: tuple[int, int], dst: tuple[int, int], nbytes: int,
             callback: Callable[[], None] | None = None) -> float:
        """Send a message; returns (and schedules the callback at) arrival time."""
        params = self.params
        hops = self.hops(src, dst)
        flits = max(1, -(-nbytes // params.router_flit_bytes))
        serialization = flits * params.router_flit_bytes / params.router_link_bytes_per_cycle
        zero_load_arrival = self.sim.now + hops * params.router_hop_cycles + serialization
        port_free = self._ingress_next_free.get(dst, 0.0)
        arrival = max(zero_load_arrival, port_free + serialization)
        self._ingress_next_free[dst] = arrival
        self.flits_sent += flits
        self.total_hops += hops * flits
        self.stats.incr("noc.flits", flits)
        self.stats.incr("noc.hop_flits", hops * flits)
        if callback is not None:
            self.sim.schedule_at(arrival, callback)
        return arrival

    @property
    def average_hops_per_flit(self) -> float:
        """Mean hop count weighted by flits."""
        if self.flits_sent == 0:
            return 0.0
        return self.total_hops / self.flits_sent


def interleaved_positions(n_cores: int, n_mems: int) -> tuple[dict[int, tuple[int, int]],
                                                              dict[int, tuple[int, int]],
                                                              int, int]:
    """Place cores and mems on a near-square grid in an interleaved pattern.

    Returns (core_positions, mem_positions, width, height).  Positions follow
    the checkerboard-style interleaving of Figure 5: components alternate
    along the row-major order of the grid.
    """
    total = n_cores + n_mems
    width = max(1, int(round(total ** 0.5)))
    height = -(-total // width)
    core_positions: dict[int, tuple[int, int]] = {}
    mem_positions: dict[int, tuple[int, int]] = {}
    core_idx = 0
    mem_idx = 0
    for slot in range(width * height):
        pos = (slot % width, slot // width)
        # Alternate core / mem while either kind remains.
        take_core = (slot % 2 == 0 and core_idx < n_cores) or mem_idx >= n_mems
        if take_core and core_idx < n_cores:
            core_positions[core_idx] = pos
            core_idx += 1
        elif mem_idx < n_mems:
            mem_positions[mem_idx] = pos
            mem_idx += 1
        if core_idx >= n_cores and mem_idx >= n_mems:
            break
    return core_positions, mem_positions, width, height
