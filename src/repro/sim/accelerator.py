"""Top-level NeuraChip accelerator model: builds and runs the full chip.

``NeuraChipAccelerator`` wires the Dispatcher, NeuraCores, NeuraMems, the
torus NoC and the memory system according to a
:class:`~repro.arch.config.NeuraChipConfig`, executes a compiled
:class:`~repro.compiler.program.Program`, and returns a
:class:`SimulationReport` with the timing, utilisation and correctness data
the benchmark harness consumes.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field

import numpy as np

from repro.arch.config import NeuraChipConfig
from repro.compiler.program import HACCMacroOp, MMHMacroOp, Program
from repro.hashing.mappings import MappingScheme, make_mapping
from repro.sim.dispatcher import Dispatcher
from repro.sim.engine import Simulator
from repro.sim.memory import MemorySystem
from repro.sim.neuracore import NeuraCore
from repro.sim.neuramem import HashLine, NeuraMem
from repro.sim.params import SimulationParams
from repro.sim.router import TorusNetwork, interleaved_positions
from repro.sim.stats import Histogram, StatsCollector

#: Approximate NoC round-trip overhead charged on memory requests, in cycles.
_MEMORY_NOC_OVERHEAD = 4
#: HACC message size on the NoC (one 128-bit instruction).
_HACC_BYTES = 16


@dataclass
class SimulationReport:
    """Result of one NeuraSim execution.

    Attributes:
        config_name: NeuraChip configuration simulated.
        workload: program source label.
        cycles: total simulated cycles until the last write-back drained.
        mmh_instructions: MMH instructions executed.
        hacc_instructions: HACC instructions executed.
        useful_flops: useful floating point work (2 x partial products).
        gflops: sustained GFLOP/s at the configuration's clock frequency.
        gops: sustained GOP/s counting one multiply-accumulate per partial
            product (the paper's Table 5 "SpGEMM Perf." metric).
        mmh_cpi_mean / hacc_cpi_mean: average instruction latencies.
        mmh_cpi_histogram / hacc_cpi_histogram: Figure 14 / 15 histograms.
        ipc: retired MMH instructions per cycle.
        cpi: cycles per retired MMH instruction.
        stall_cycles: aggregate NeuraCore stall cycles (data starvation).
        busy_cycles: aggregate NeuraCore busy cycles.
        core_utilization: busy cycles / (cycles x number of cores).
        mem_utilization: NeuraMem hash-engine busy fraction.
        avg_inflight_mem: time-averaged outstanding memory requests.
        memory_traffic_bytes: total HBM read + write traffic.
        evictions / spills: HashPad eviction and overflow-spill counts.
        peak_hashpad_occupancy: maximum hash lines resident in any NeuraMem.
        hashpad_occupancy_fraction: peak occupancy / per-NeuraMem capacity.
        noc_flits / noc_avg_hops: on-chip network activity.
        output_nnz: number of output elements produced.
        correct: True when the accumulated output matches the reference
            (only populated when ``verify=True``).
        max_abs_error: largest absolute deviation from the reference.
        wall_clock_seconds: host time spent simulating.
        events: number of simulation events processed.
        eviction_mode: 'rolling' or 'barrier'.
        mapping_scheme: accumulation mapping scheme used.
        counters: raw counter dump for debugging / extended analysis.
    """

    config_name: str
    workload: str
    cycles: float
    mmh_instructions: int
    hacc_instructions: int
    useful_flops: int
    gflops: float
    gops: float
    mmh_cpi_mean: float
    hacc_cpi_mean: float
    mmh_cpi_histogram: Histogram
    hacc_cpi_histogram: Histogram
    ipc: float
    cpi: float
    stall_cycles: float
    busy_cycles: float
    core_utilization: float
    mem_utilization: float
    avg_inflight_mem: float
    memory_traffic_bytes: int
    evictions: int
    spills: int
    peak_hashpad_occupancy: int
    hashpad_occupancy_fraction: float
    noc_flits: int
    noc_avg_hops: float
    output_nnz: int
    correct: bool | None
    max_abs_error: float
    wall_clock_seconds: float
    events: int
    eviction_mode: str
    mapping_scheme: str
    counters: dict = field(default_factory=dict)

    @property
    def simulation_kcps(self) -> float:
        """Simulator throughput in kilocycles per host second (the NeuraSim
        appendix metric: 112 / 48 / 11 KCPS for Tile-4/16/64 in the paper)."""
        if self.wall_clock_seconds <= 0:
            return 0.0
        return self.cycles / self.wall_clock_seconds / 1e3

    def speedup_over(self, other: "SimulationReport") -> float:
        """Cycle-count speedup of this run relative to another run."""
        if self.cycles <= 0:
            return 0.0
        return other.cycles / self.cycles


class NeuraChipAccelerator:
    """Builds the chip described by a configuration and executes programs."""

    def __init__(self, config: NeuraChipConfig,
                 params: SimulationParams | None = None,
                 eviction_mode: str = "rolling",
                 mapping_scheme: str | None = None,
                 mapping_seed: int = 0) -> None:
        self.config = config
        self.params = params or SimulationParams()
        self.eviction_mode = eviction_mode
        self.mapping_scheme_name = mapping_scheme or config.mapping_scheme
        self.mapping_seed = mapping_seed

    # ------------------------------------------------------------------
    # Chip construction (per run, so state never leaks between runs)
    # ------------------------------------------------------------------
    def _build(self) -> None:
        config, params = self.config, self.params
        self.sim = Simulator()
        self.stats = StatsCollector()
        self.memory = MemorySystem(self.sim, params, config.memory_controllers,
                                   self.stats)
        core_pos, mem_pos, width, height = interleaved_positions(
            config.total_cores, config.total_mems)
        self.noc = TorusNetwork(self.sim, params, width, height, self.stats)
        if self.mapping_scheme_name == "random":
            self.mapping: MappingScheme = make_mapping("random", config.total_mems,
                                                       seed=self.mapping_seed)
        elif self.mapping_scheme_name == "drhm":
            self.mapping = make_mapping("drhm", config.total_mems,
                                        seed=self.mapping_seed)
        else:
            self.mapping = make_mapping(self.mapping_scheme_name, config.total_mems)

        self.mems = [
            NeuraMem(mem_id=i, position=mem_pos[i], sim=self.sim, params=params,
                     stats=self.stats, hashlines=config.mem.hashlines,
                     hash_engines=config.mem.hash_engines,
                     eviction_mode=self.eviction_mode,
                     writeback=self._writeback,
                     on_evict=self._on_evict,
                     on_spill=self._on_spill,
                     on_applied=self._on_hacc_applied,
                     resume_lookup=self._spilled_applied_count)
            for i in range(config.total_mems)
        ]
        self.cores = [
            NeuraCore(core_id=i, position=core_pos[i], sim=self.sim, params=params,
                      stats=self.stats, n_pipelines=config.core.pipelines,
                      pipeline_registers=config.core.pipeline_registers,
                      multipliers=config.core.multipliers,
                      read_fn=self._memory_read,
                      dispatch_hacc_fn=self._dispatch_hacc,
                      on_retire=self._on_mmh_retire)
            for i in range(config.total_cores)
        ]
        self.dispatcher = Dispatcher(self.sim, params, self.cores, self.stats)

        # Per-run program state.
        self._program: Program | None = None
        self._hacc_cache: dict[int, list[HACCMacroOp]] = {}
        self._output: dict[tuple[int, int], float] = {}
        self._spilled_value: dict[int, float] = {}
        self._spilled_applied: dict[int, int] = {}
        self._haccs_applied = 0
        self._haccs_expected = 0
        self._columns_completed = 0
        self._finalized = False

    # ------------------------------------------------------------------
    # Component callbacks
    # ------------------------------------------------------------------
    def _memory_read(self, addr: int, nbytes: int, callback) -> None:
        """Route a NeuraCore operand fetch through the NoC to memory."""
        def respond() -> None:
            self.sim.schedule(_MEMORY_NOC_OVERHEAD / 2, callback)

        self.sim.schedule(_MEMORY_NOC_OVERHEAD / 2, self.memory.read, addr, nbytes,
                          respond)

    def _writeback(self, addr: int, nbytes: int) -> None:
        """A NeuraMem wrote an evicted result back to HBM."""
        self.memory.write(addr, nbytes)

    def _dispatch_hacc(self, core: NeuraCore, op: MMHMacroOp, index: int,
                       arrival_callback) -> None:
        """Send one HACC of an MMH to its NeuraMem over the torus."""
        haccs = self._hacc_cache.get(op.sequence)
        if haccs is None:
            haccs = self._program.expand_haccs(op)
            self._hacc_cache[op.sequence] = haccs
        hacc = haccs[index]
        mem_index = self.mapping.map(hacc.tag, group=hacc.out_row)
        mem = self.mems[mem_index]
        dispatch_time = self.sim.now

        def on_arrival() -> None:
            arrival_callback()
            mem.receive_hacc(hacc, dispatch_time)

        self.noc.send(core.position, mem.position, _HACC_BYTES, on_arrival)

    def _on_mmh_retire(self, core: NeuraCore, op: MMHMacroOp, latency: float) -> None:
        self.dispatcher.notify_slot_free()
        if op.reseed_after:
            self._columns_completed += 1
            self.mapping.reseed(op.k)
            if (self.eviction_mode == "barrier"
                    and self._columns_completed % self.params.barrier_interval_columns == 0):
                for mem in self.mems:
                    mem.barrier_flush()

    def _on_hacc_applied(self) -> None:
        self._haccs_applied += 1
        if self._haccs_applied >= self._haccs_expected and not self._finalized:
            self._finalized = True
            # Defer the flush so the current hash-engine event finishes first.
            self.sim.schedule(0.0, self._finalize)

    def _finalize(self) -> None:
        for mem in self.mems:
            mem.finalize()

    def _on_evict(self, line: HashLine, evict_time: float) -> None:
        key = (line.out_row, line.out_col)
        value = line.value + self._spilled_value.pop(line.tag, 0.0)
        self._spilled_applied.pop(line.tag, None)
        self._output[key] = self._output.get(key, 0.0) + value

    def _on_spill(self, line: HashLine, spill_time: float) -> None:
        self._spilled_value[line.tag] = (self._spilled_value.get(line.tag, 0.0)
                                         + line.value)
        self._spilled_applied[line.tag] = (self._spilled_applied.get(line.tag, 0)
                                           + len(line.dispatch_times))

    def _spilled_applied_count(self, tag: int) -> int:
        return self._spilled_applied.get(tag, 0)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, program: Program, verify: bool = True,
            max_events: int | None = None) -> SimulationReport:
        """Execute a compiled program and return the simulation report.

        Args:
            program: compiled MMH stream (see :mod:`repro.compiler`).
            verify: when True, the accumulated output matrix is compared
                against the program's software reference.
            max_events: optional safety cap on simulation events.

        Returns:
            A :class:`SimulationReport`.
        """
        start_wall = _time.perf_counter()
        self._build()
        self._program = program
        self._haccs_expected = program.total_partial_products
        self.dispatcher.load(program.iter_mmh_ops())
        self.dispatcher.start()
        self.sim.run(max_events=max_events)
        if not self._finalized:
            # Degenerate programs (no partial products) never trigger the
            # applied-count finalizer.
            self._finalize()
            self.sim.run(max_events=max_events)
        wall = _time.perf_counter() - start_wall
        return self._build_report(program, verify, wall)

    # ------------------------------------------------------------------
    def _build_report(self, program: Program, verify: bool,
                      wall: float) -> SimulationReport:
        config = self.config
        cycles = float(np.ceil(max(self.sim.now, 1.0)))
        n_mmh = sum(core.instructions_retired for core in self.cores)
        n_hacc = sum(mem.haccs_received for mem in self.mems)
        useful_flops = program.useful_flops
        seconds = cycles / (config.frequency_ghz * 1e9)
        gflops = useful_flops / seconds / 1e9 if seconds > 0 else 0.0
        gops = program.total_partial_products / seconds / 1e9 if seconds > 0 else 0.0

        stall = sum(core.stall_cycles for core in self.cores)
        busy = sum(core.busy_cycles for core in self.cores)
        mem_busy = sum(mem.busy_cycles for mem in self.mems)
        evictions = sum(mem.evictions for mem in self.mems)
        spills = sum(mem.spills for mem in self.mems)
        peak_occ = max((mem.peak_occupancy for mem in self.mems), default=0)

        correct: bool | None = None
        max_err = 0.0
        if verify:
            reference = program.reference_result()
            produced = np.zeros(program.shape, dtype=np.float64)
            for (row, col), value in self._output.items():
                produced[row, col] = value
            max_err = float(np.max(np.abs(produced - reference))) if reference.size else 0.0
            correct = bool(np.allclose(produced, reference, rtol=1e-9, atol=1e-9))

        mmh_hist = self.stats.histograms.get(
            "mmh_cpi", Histogram(bin_width=25, n_bins=20))
        hacc_hist = self.stats.histograms.get(
            "hacc_cpi", Histogram(bin_width=50, n_bins=20))

        return SimulationReport(
            config_name=config.name,
            workload=program.source,
            cycles=cycles,
            mmh_instructions=n_mmh,
            hacc_instructions=n_hacc,
            useful_flops=useful_flops,
            gflops=gflops,
            gops=gops,
            mmh_cpi_mean=mmh_hist.mean,
            hacc_cpi_mean=hacc_hist.mean,
            mmh_cpi_histogram=mmh_hist,
            hacc_cpi_histogram=hacc_hist,
            ipc=n_mmh / cycles,
            cpi=cycles / n_mmh if n_mmh else 0.0,
            stall_cycles=stall,
            busy_cycles=busy,
            core_utilization=min(1.0, busy / (cycles * max(1, config.total_pipelines))),
            mem_utilization=min(1.0, mem_busy / (cycles * max(1, config.total_hash_engines))),
            avg_inflight_mem=self.stats.level("memctrl.in_flight").average(cycles),
            memory_traffic_bytes=self.memory.total_traffic_bytes,
            evictions=evictions,
            spills=spills,
            peak_hashpad_occupancy=peak_occ,
            hashpad_occupancy_fraction=peak_occ / max(1, config.mem.hashlines),
            noc_flits=self.noc.flits_sent,
            noc_avg_hops=self.noc.average_hops_per_flit,
            output_nnz=len(self._output),
            correct=correct,
            max_abs_error=max_err,
            wall_clock_seconds=wall,
            events=self.sim.events_processed,
            eviction_mode=self.eviction_mode,
            mapping_scheme=self.mapping_scheme_name,
            counters=dict(self.stats.counters),
        )
