"""Statistics collection for NeuraSim.

Provides scalar counters, value observations (for CPI distributions), binned
histograms matching the paper's Figures 14 and 15, and time-weighted level
tracking (for the "in-flight memory instructions" metric of Figure 11).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np


@dataclass
class Histogram:
    """Fixed-width binned histogram with an overflow bucket.

    Mirrors the CPI histograms of Figures 14/15: bins of ``bin_width`` cycles
    from 0 to ``n_bins * bin_width``, with everything beyond that falling into
    the final ``...+`` bucket.
    """

    bin_width: int
    n_bins: int
    counts: np.ndarray = field(default=None)
    total_observations: int = 0
    sum_values: float = 0.0

    def __post_init__(self) -> None:
        if self.counts is None:
            self.counts = np.zeros(self.n_bins, dtype=np.int64)

    def add(self, value: float) -> None:
        """Record one observation."""
        index = min(int(value // self.bin_width), self.n_bins - 1)
        self.counts[max(index, 0)] += 1
        self.total_observations += 1
        self.sum_values += value

    @property
    def mean(self) -> float:
        """Mean of the recorded observations."""
        if self.total_observations == 0:
            return 0.0
        return self.sum_values / self.total_observations

    def labels(self) -> list[str]:
        """Human-readable bin labels ('0-25', '25-50', ..., '475-500+')."""
        labels = []
        for i in range(self.n_bins):
            lo = i * self.bin_width
            hi = (i + 1) * self.bin_width
            suffix = "+" if i == self.n_bins - 1 else ""
            labels.append(f"{lo}-{hi}{suffix}")
        return labels

    def percentages(self) -> np.ndarray:
        """Percentage of observations falling into each bin."""
        if self.total_observations == 0:
            return np.zeros(self.n_bins)
        return self.counts / self.total_observations * 100.0

    def as_dict(self) -> dict[str, float]:
        """Bin label -> percentage mapping."""
        return dict(zip(self.labels(), self.percentages().tolist()))


class LevelTracker:
    """Time-weighted tracker of an integer level (e.g. in-flight requests)."""

    def __init__(self) -> None:
        self._level = 0
        self._last_time = 0.0
        self._area = 0.0
        self.peak = 0

    def change(self, time: float, delta: int) -> None:
        """Apply a level change at the given time."""
        self._area += self._level * max(0.0, time - self._last_time)
        self._last_time = max(self._last_time, time)
        self._level += delta
        self.peak = max(self.peak, self._level)

    def average(self, end_time: float) -> float:
        """Time-weighted average level over [0, end_time]."""
        if end_time <= 0:
            return 0.0
        area = self._area + self._level * max(0.0, end_time - self._last_time)
        return area / end_time

    @property
    def current(self) -> int:
        return self._level


class StatsCollector:
    """Shared statistics sink for all NeuraSim components."""

    def __init__(self) -> None:
        self.counters: dict[str, float] = defaultdict(float)
        self.observations: dict[str, list[float]] = defaultdict(list)
        self.histograms: dict[str, Histogram] = {}
        self.levels: dict[str, LevelTracker] = defaultdict(LevelTracker)

    # ------------------------------------------------------------------
    def incr(self, name: str, amount: float = 1.0) -> None:
        """Increment a scalar counter."""
        self.counters[name] += amount

    def observe(self, name: str, value: float) -> None:
        """Record a value observation (kept in full for percentile queries)."""
        self.observations[name].append(float(value))

    def histogram(self, name: str, bin_width: int, n_bins: int) -> Histogram:
        """Get (or create) a named histogram."""
        if name not in self.histograms:
            self.histograms[name] = Histogram(bin_width=bin_width, n_bins=n_bins)
        return self.histograms[name]

    def level(self, name: str) -> LevelTracker:
        """Get (or create) a named level tracker."""
        return self.levels[name]

    # ------------------------------------------------------------------
    def mean(self, name: str) -> float:
        """Mean of an observation series (0.0 if empty)."""
        values = self.observations.get(name, [])
        return float(np.mean(values)) if values else 0.0

    def percentile(self, name: str, q: float) -> float:
        """Percentile of an observation series (0.0 if empty)."""
        values = self.observations.get(name, [])
        return float(np.percentile(values, q)) if values else 0.0

    def summary(self, end_time: float) -> dict[str, float]:
        """Flatten counters, observation means and level averages."""
        result = dict(self.counters)
        for name in self.observations:
            result[f"{name}.mean"] = self.mean(name)
        for name, tracker in self.levels.items():
            result[f"{name}.avg"] = tracker.average(end_time)
            result[f"{name}.peak"] = tracker.peak
        return result
