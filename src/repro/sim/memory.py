"""Memory hierarchy model: per-tile memory controllers and HBM channels.

NeuraChip attaches one HBM channel to each of its eight tiles (Figure 5).
The controller coalesces read requests that fall into the same cache line
(Step 3 of the on-chip dataflow) and forwards them to a channel model with a
small number of banks, a row-buffer hit/miss latency, and a peak per-channel
data rate.  Aggregate bandwidth across the eight channels matches the
128 GB/s the paper assumes.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.engine import Simulator
from repro.sim.params import SimulationParams
from repro.sim.stats import StatsCollector


class HBMChannel:
    """A single HBM pseudo-channel with banked row buffers."""

    def __init__(self, sim: Simulator, params: SimulationParams,
                 channel_id: int, stats: StatsCollector) -> None:
        self.sim = sim
        self.params = params
        self.channel_id = channel_id
        self.stats = stats
        self._bank_next_free = [0.0] * params.hbm_banks_per_channel
        self._bank_open_row = [-1] * params.hbm_banks_per_channel
        self._data_bus_next_free = 0.0
        self.bytes_read = 0
        self.bytes_written = 0
        self.busy_cycles = 0.0

    def access(self, addr: int, nbytes: int, is_write: bool,
               callback: Callable[[], None] | None) -> float:
        """Issue one DRAM access; returns the completion time.

        The access waits for its bank and for the channel data bus, pays a
        row-buffer hit or miss latency, then streams ``nbytes`` at the
        channel's peak data rate.
        """
        params = self.params
        transfer = nbytes / params.hbm_bytes_per_cycle_per_channel
        if is_write:
            # Writes are posted: the controller's write buffer absorbs them and
            # drains over the data bus without disturbing the read row buffers.
            bus_start = max(self.sim.now, self._data_bus_next_free)
            finish = bus_start + transfer
            self._data_bus_next_free = finish
            self.busy_cycles += transfer
            self.bytes_written += nbytes
            self.stats.incr("hbm.bytes_written", nbytes)
            if callback is not None:
                self.sim.schedule_at(finish, callback)
            return finish
        row = addr // params.hbm_row_bytes
        bank = row % params.hbm_banks_per_channel
        if self._bank_open_row[bank] == row:
            access_latency = params.hbm_row_hit_cycles
            self.stats.incr("hbm.row_hits")
        else:
            access_latency = params.hbm_row_miss_cycles
            self._bank_open_row[bank] = row
            self.stats.incr("hbm.row_misses")
        # Banks overlap their access latencies; the shared data bus is only
        # occupied for the transfer itself, which sets the channel's peak rate.
        bank_ready = max(self.sim.now, self._bank_next_free[bank]) + access_latency
        bus_start = max(bank_ready, self._data_bus_next_free)
        finish = bus_start + transfer
        self._bank_next_free[bank] = finish
        self._data_bus_next_free = bus_start + transfer
        self.busy_cycles += transfer
        self.bytes_read += nbytes
        self.stats.incr("hbm.bytes_read", nbytes)
        if callback is not None:
            self.sim.schedule_at(finish, callback)
        return finish


class MemoryController:
    """Per-tile memory controller with coalescing and a small read buffer.

    Requests to the same ``coalesce_line_bytes``-aligned line that are still
    outstanding are merged into a single DRAM access, and recently returned
    lines are kept in a small LRU read buffer (Step 3 of Figure 5: the
    controller coalesces requests and reorganises transactions to enhance
    spatial locality).  All waiters are notified when the line is available.
    """

    def __init__(self, sim: Simulator, params: SimulationParams, tile_id: int,
                 channel: HBMChannel, stats: StatsCollector) -> None:
        self.sim = sim
        self.params = params
        self.tile_id = tile_id
        self.channel = channel
        self.stats = stats
        # line address -> list of callbacks waiting for that line.
        self._pending_lines: dict[int, list[Callable[[], None]]] = {}
        # LRU of recently fetched lines (insertion ordered dict).
        self._line_buffer: dict[int, bool] = {}
        self.reads_received = 0
        self.reads_coalesced = 0
        self.reads_buffered = 0
        self.writes_received = 0

    def read(self, addr: int, nbytes: int, callback: Callable[[], None]) -> None:
        """Issue a read; ``callback`` fires when the data is available."""
        self.reads_received += 1
        self.stats.incr("memctrl.reads")
        self.stats.level("memctrl.in_flight").change(self.sim.now, +1)
        line_bytes = self.params.coalesce_line_bytes
        first_line = addr // line_bytes
        last_line = (addr + max(nbytes, 1) - 1) // line_bytes
        lines = list(range(first_line, last_line + 1))
        remaining = {"count": len(lines)}

        def line_ready() -> None:
            remaining["count"] -= 1
            if remaining["count"] == 0:
                self.stats.level("memctrl.in_flight").change(self.sim.now, -1)
                callback()

        for line in lines:
            if line in self._line_buffer:
                # Read-buffer hit: serviced at controller latency, no DRAM trip.
                self._line_buffer.pop(line)
                self._line_buffer[line] = True  # refresh LRU position
                self.reads_buffered += 1
                self.stats.incr("memctrl.buffer_hits")
                self.sim.schedule(self.params.memory_controller_cycles, line_ready)
                continue
            if line in self._pending_lines:
                # Coalesced with an outstanding request for the same line.
                self._pending_lines[line].append(line_ready)
                self.reads_coalesced += 1
                self.stats.incr("memctrl.coalesced")
                continue
            self._pending_lines[line] = [line_ready]
            self._issue_line_read(line)

    def _insert_buffer_line(self, line: int) -> None:
        capacity = self.params.controller_buffer_lines
        if capacity <= 0:
            return
        self._line_buffer[line] = True
        while len(self._line_buffer) > capacity:
            self._line_buffer.pop(next(iter(self._line_buffer)))

    def _issue_line_read(self, line: int) -> None:
        line_bytes = self.params.coalesce_line_bytes
        addr = line * line_bytes

        def on_complete() -> None:
            self._insert_buffer_line(line)
            waiters = self._pending_lines.pop(line, [])
            for waiter in waiters:
                waiter()

        self.sim.schedule(self.params.memory_controller_cycles,
                          self.channel.access, addr, line_bytes, False, on_complete)

    def write(self, addr: int, nbytes: int,
              callback: Callable[[], None] | None = None) -> None:
        """Issue a write; the optional ``callback`` fires on completion."""
        self.writes_received += 1
        self.stats.incr("memctrl.writes")
        self.sim.schedule(self.params.memory_controller_cycles,
                          self.channel.access, addr, nbytes, True, callback)


class MemorySystem:
    """All memory controllers and channels, with address interleaving.

    Addresses are interleaved across channels at ``coalesce_line_bytes``
    granularity so contiguous operand streams load-balance over the eight
    HBM channels.
    """

    def __init__(self, sim: Simulator, params: SimulationParams,
                 n_channels: int, stats: StatsCollector) -> None:
        self.sim = sim
        self.params = params
        self.stats = stats
        self.channels = [HBMChannel(sim, params, i, stats) for i in range(n_channels)]
        self.controllers = [MemoryController(sim, params, i, self.channels[i], stats)
                            for i in range(n_channels)]

    def controller_for(self, addr: int) -> MemoryController:
        """The controller owning an address under the interleaving scheme."""
        line = addr // self.params.coalesce_line_bytes
        return self.controllers[line % len(self.controllers)]

    def read(self, addr: int, nbytes: int, callback: Callable[[], None]) -> None:
        """Route a read request to the owning controller."""
        self.controller_for(addr).read(addr, nbytes, callback)

    def write(self, addr: int, nbytes: int,
              callback: Callable[[], None] | None = None) -> None:
        """Route a write request to the owning controller."""
        self.controller_for(addr).write(addr, nbytes, callback)

    @property
    def total_bytes_read(self) -> int:
        return sum(c.bytes_read for c in self.channels)

    @property
    def total_bytes_written(self) -> int:
        return sum(c.bytes_written for c in self.channels)

    @property
    def total_traffic_bytes(self) -> int:
        return self.total_bytes_read + self.total_bytes_written
