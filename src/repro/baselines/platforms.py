"""Analytic performance models of the CPU / GPU SpGEMM baselines.

Each platform charges a compute term (useful FLOPs over peak throughput) and
a memory term (dataflow-specific traffic over memory bandwidth), takes the
maximum of the two, and divides by a platform *efficiency* constant capturing
everything the roofline misses (cache behaviour, atomics, kernel overheads,
load imbalance).  The shipped efficiency constants are calibrated against the
paper's Table 5 sustained-GOP/s column on the Table-1 dataset suite;
:func:`calibrate_platforms` re-derives them for any workload collection.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.baselines.workload import SpGEMMWorkloadStats


@dataclass(frozen=True)
class BaselinePlatform:
    """Roofline-style performance model of one SpGEMM platform.

    Attributes:
        name: platform / library name as used in Figure 16.
        peak_gflops: peak floating-point throughput (Table 5).
        bandwidth_gb_s: off-chip memory bandwidth (Table 5).
        on_chip_mb: on-chip memory capacity (Table 5).
        dataflow: multiplication dataflow ('row_wise', 'outer', 'inner',
            'gpu_hash', 'decoupled_hash').
        efficiency: fraction of the roofline bound the platform sustains on
            hyper-sparse workloads; calibrated to Table 5.
        reference_gops: the paper's measured sustained SpGEMM GOP/s
            (Table 5), used as the calibration target.
        traffic_multiplier: extra factor on the dataflow traffic (e.g.
            multi-pass symbolic+numeric GPU implementations).
        imbalance_sensitivity: how strongly the platform degrades with degree
            skew (0 = insensitive).
        area_mm2 / power_w / technology_nm: physical data for Table 5.
    """

    name: str
    peak_gflops: float
    bandwidth_gb_s: float
    on_chip_mb: float
    dataflow: str
    efficiency: float
    reference_gops: float
    traffic_multiplier: float = 1.0
    imbalance_sensitivity: float = 0.0
    area_mm2: float | None = None
    power_w: float | None = None
    technology_nm: int | None = None
    compute_units: str = ""
    frequency_ghz: float = 1.0

    # ------------------------------------------------------------------
    def traffic_bytes(self, stats: SpGEMMWorkloadStats) -> float:
        """Off-chip traffic of this platform's dataflow on the workload."""
        element = 8.0  # value + index per streamed non-zero
        inputs = element * (stats.nnz_a + stats.nnz_b)
        output = element * stats.output_nnz
        if self.dataflow == "row_wise":
            # Gustavson: B rows re-streamed once per referencing non-zero of A.
            streamed = element * stats.partial_products
            traffic = inputs + streamed + output
        elif self.dataflow == "outer":
            # Outer product: every partial product is materialised to memory
            # and read back at least once for the merge phase.
            partial_matrices = 2.0 * element * stats.partial_products
            traffic = inputs + partial_matrices + output
        elif self.dataflow == "inner":
            # Inner product: poor input reuse; rows/columns re-fetched per
            # candidate output element.
            refetch = element * stats.partial_products * 1.5
            traffic = inputs * 2.0 + refetch + output
        elif self.dataflow == "gpu_hash":
            # Two-pass (symbolic + numeric) hash SpGEMM on GPUs.
            streamed = element * stats.partial_products
            traffic = 2.0 * (inputs + streamed) + output
        elif self.dataflow == "decoupled_hash":
            # NeuraChip: operands streamed once, partial products stay on chip
            # in the HashPad, outputs written once on rolling eviction.
            streamed = element * stats.partial_products
            counters = 4.0 * stats.output_nnz
            traffic = inputs + streamed + counters + output
        else:
            raise ValueError(f"unknown dataflow {self.dataflow!r}")
        return traffic * self.traffic_multiplier

    def execution_time_s(self, stats: SpGEMMWorkloadStats) -> float:
        """Modelled SpGEMM execution time in seconds."""
        compute_time = stats.useful_flops / (self.peak_gflops * 1e9)
        memory_time = self.traffic_bytes(stats) / (self.bandwidth_gb_s * 1e9)
        base = max(compute_time, memory_time)
        imbalance = 1.0 + self.imbalance_sensitivity * stats.degree_cv
        return base * imbalance / max(self.efficiency, 1e-9)

    def sustained_gops(self, stats: SpGEMMWorkloadStats) -> float:
        """Modelled sustained GOP/s (multiply-accumulates per second / 1e9)."""
        time = self.execution_time_s(stats)
        return stats.useful_ops / time / 1e9 if time > 0 else 0.0

    def with_efficiency(self, efficiency: float) -> "BaselinePlatform":
        """Copy of this platform with a different efficiency constant."""
        return replace(self, efficiency=efficiency)


# ----------------------------------------------------------------------
# Platform definitions (Table 5 columns).  Efficiencies are the shipped
# calibration against the Table-1 suite at the default benchmark scale.
# ----------------------------------------------------------------------
CPU_MKL = BaselinePlatform(
    name="MKL",
    peak_gflops=186.0,
    bandwidth_gb_s=136.0,
    on_chip_mb=15.0,
    dataflow="row_wise",
    efficiency=0.021,
    reference_gops=1.12,
    imbalance_sensitivity=0.15,
    area_mm2=356.0,
    power_w=85.0,
    technology_nm=32,
    compute_units="8 cores AVX2",
    frequency_ghz=2.9,
)

GPU_CUSPARSE = BaselinePlatform(
    name="cuSPARSE",
    peak_gflops=26_000.0,
    bandwidth_gb_s=2000.0,
    on_chip_mb=50.0,
    dataflow="gpu_hash",
    efficiency=0.0042,
    reference_gops=1.45,
    imbalance_sensitivity=0.35,
    area_mm2=814.0,
    power_w=300.0,
    technology_nm=4,
    compute_units="7296 FP64 cores",
    frequency_ghz=1.6,
)

GPU_CUSP = BaselinePlatform(
    name="CUSP",
    peak_gflops=26_000.0,
    bandwidth_gb_s=2000.0,
    on_chip_mb=50.0,
    dataflow="row_wise",
    efficiency=0.0042,
    reference_gops=1.86,
    imbalance_sensitivity=0.30,
    area_mm2=814.0,
    power_w=300.0,
    technology_nm=4,
    compute_units="7296 FP64 cores",
    frequency_ghz=1.6,
)

GPU_HIPSPARSE = BaselinePlatform(
    name="hipSPARSE",
    peak_gflops=11_500.0,
    bandwidth_gb_s=1200.0,
    on_chip_mb=8.0,
    dataflow="gpu_hash",
    efficiency=0.0055,
    reference_gops=1.48,
    imbalance_sensitivity=0.35,
    area_mm2=750.0,
    power_w=300.0,
    technology_nm=7,
    compute_units="7680 FP64 cores",
    frequency_ghz=1.5,
)


def spgemm_platforms() -> list[BaselinePlatform]:
    """The four off-the-shelf platforms of Figure 16, in paper order."""
    return [CPU_MKL, GPU_CUSPARSE, GPU_CUSP, GPU_HIPSPARSE]


def calibrate_platforms(platforms: list[BaselinePlatform],
                        workloads: list[SpGEMMWorkloadStats],
                        ) -> list[BaselinePlatform]:
    """Re-derive each platform's efficiency so its geometric-mean sustained
    GOP/s over ``workloads`` equals the paper's Table 5 reference value.

    This keeps the *average* platform throughput pinned to the paper while the
    per-workload spread is produced by the dataflow traffic model, which is
    exactly the calibration described in DESIGN.md.
    """
    if not workloads:
        return list(platforms)
    calibrated = []
    for platform in platforms:
        gops = [platform.sustained_gops(stats) for stats in workloads]
        gops = [g for g in gops if g > 0]
        if not gops:
            calibrated.append(platform)
            continue
        gmean = float(np.exp(np.mean(np.log(gops))))
        scale = platform.reference_gops / gmean if gmean > 0 else 1.0
        calibrated.append(platform.with_efficiency(platform.efficiency * scale))
    return calibrated
