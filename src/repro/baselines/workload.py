"""Workload statistics consumed by the analytic baseline models.

All baseline models derive execution time from the same structural statistics
of the workload — operand non-zeros, partial products, output non-zeros,
degree skew — so that every platform is evaluated on exactly the same problem
instance (the synthetic, possibly scaled-down dataset), making the speedup
ratios scale-consistent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.bloat import partial_product_count
from repro.sparse.csr import CSRMatrix
from repro.sparse.symbolic import symbolic_spgemm


@dataclass(frozen=True)
class SpGEMMWorkloadStats:
    """Structural statistics of one SpGEMM workload C = A @ B.

    Attributes:
        name: workload name (dataset).
        rows / inner_dim / cols: matrix dimensions.
        nnz_a / nnz_b: operand non-zeros.
        partial_products: intermediate partial products (Equation 1 numerator).
        output_nnz: non-zeros of the product.
        bloat_percent: Equation 1 value.
        avg_b_row_nnz: average non-zeros per referenced row of B.
        degree_cv: coefficient of variation of A's row-degree distribution
            (captures sparsity-pattern skew; drives load-imbalance penalties).
    """

    name: str
    rows: int
    inner_dim: int
    cols: int
    nnz_a: int
    nnz_b: int
    partial_products: int
    output_nnz: int
    bloat_percent: float
    avg_b_row_nnz: float
    degree_cv: float

    @classmethod
    def from_matrices(cls, name: str, a_csr: CSRMatrix,
                      b_csr: CSRMatrix | None = None) -> "SpGEMMWorkloadStats":
        """Measure the statistics of A @ B (defaults to A @ A)."""
        if b_csr is None:
            b_csr = a_csr
        pp = partial_product_count(a_csr, b_csr)
        out_nnz = symbolic_spgemm(a_csr, b_csr).nnz
        bloat = 0.0 if out_nnz == 0 else (pp - out_nnz) / out_nnz * 100.0
        degrees = a_csr.row_nnz_counts().astype(np.float64)
        mean_deg = degrees.mean() if degrees.size else 0.0
        cv = float(degrees.std() / mean_deg) if mean_deg > 0 else 0.0
        avg_b_row = pp / a_csr.nnz if a_csr.nnz else 0.0
        return cls(name=name, rows=a_csr.shape[0], inner_dim=a_csr.shape[1],
                   cols=b_csr.shape[1], nnz_a=a_csr.nnz, nnz_b=b_csr.nnz,
                   partial_products=pp, output_nnz=out_nnz, bloat_percent=bloat,
                   avg_b_row_nnz=avg_b_row, degree_cv=cv)

    @property
    def useful_ops(self) -> int:
        """Multiply-accumulate operations (the paper's GOP numerator)."""
        return self.partial_products

    @property
    def useful_flops(self) -> int:
        """Floating point operations (2 per multiply-accumulate)."""
        return 2 * self.partial_products

    @property
    def density_a(self) -> float:
        cells = self.rows * self.inner_dim
        return self.nnz_a / cells if cells else 0.0


@dataclass(frozen=True)
class GCNWorkloadStats:
    """Structural statistics of one GCN-layer workload.

    The aggregation phase is an SpGEMM (A_hat @ X); the combination phase is a
    dense GEMM with the weight matrix.
    """

    name: str
    n_nodes: int
    n_edges: int
    feature_dim: int
    hidden_dim: int
    aggregation: SpGEMMWorkloadStats
    degree_cv: float

    @property
    def aggregation_flops(self) -> int:
        return self.aggregation.useful_flops

    @property
    def combination_flops(self) -> int:
        return 2 * self.n_nodes * self.feature_dim * self.hidden_dim

    @property
    def total_flops(self) -> int:
        return self.aggregation_flops + self.combination_flops

    @property
    def aggregation_traffic_bytes(self) -> float:
        """Streaming traffic of the aggregation phase (operands + output)."""
        agg = self.aggregation
        return 8.0 * (agg.nnz_a + agg.partial_products + agg.output_nnz)

    @property
    def combination_traffic_bytes(self) -> float:
        """Streaming traffic of the dense combination phase."""
        return 4.0 * (self.n_nodes * self.feature_dim
                      + self.feature_dim * self.hidden_dim
                      + self.n_nodes * self.hidden_dim)

    @classmethod
    def from_workload(cls, name: str, a_hat: CSRMatrix, features: CSRMatrix,
                      hidden_dim: int) -> "GCNWorkloadStats":
        """Measure the statistics of a GCN layer on the given operands."""
        agg = SpGEMMWorkloadStats.from_matrices(name, a_hat, features)
        degrees = a_hat.row_nnz_counts().astype(np.float64)
        mean_deg = degrees.mean() if degrees.size else 0.0
        cv = float(degrees.std() / mean_deg) if mean_deg > 0 else 0.0
        return cls(name=name, n_nodes=a_hat.shape[0], n_edges=a_hat.nnz,
                   feature_dim=features.shape[1], hidden_dim=hidden_dim,
                   aggregation=agg, degree_cv=cv)
