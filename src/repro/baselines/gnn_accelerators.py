"""Analytic models of prior GNN accelerators (EnGN, GROW, HyGCN, FlowGNN).

Section 5.4 of the paper compares the GNN-mode Tile-16 NeuraChip against four
GNN accelerators on GCN layers.  None of their simulators is available
offline, so each is modelled as: aggregation time + combination time on its
compute/bandwidth budget, inflated by an architecture-specific penalty that
captures the weakness the paper discusses:

* **EnGN** — ring-based edge reducer: load imbalance grows with degree skew.
* **GROW** — row-stationary with graph-partitioning software overhead and
  prefetch data idling in the streaming buffers.
* **HyGCN** — hybrid aggregation/combination pipeline: stalls when the two
  phase durations are unbalanced.
* **FlowGNN** — dataflow architecture with dynamic pull-based mapping; small
  queueing overhead, the strongest prior design.

The penalty constants are calibrated so the suite-average NeuraChip speedup
matches the paper's reported averages (29%, 58%, 69% and 30% respectively);
the per-dataset spread comes from each penalty's dependence on the workload
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.workload import GCNWorkloadStats


@dataclass(frozen=True)
class GNNAcceleratorModel:
    """Analytic performance model of a GNN accelerator on one GCN layer.

    Attributes:
        name: accelerator name as used in Figure 17.
        peak_gflops: peak compute throughput.
        bandwidth_gb_s: off-chip bandwidth.
        base_overhead: constant multiplicative overhead on the ideal time.
        imbalance_penalty: multiplies the workload degree skew (EnGN-style
            ring-reducer imbalance).
        partition_overhead: fixed software preprocessing overhead as a
            fraction of the ideal time (GROW's graph partitioning).
        pipeline_stall_penalty: weight on the aggregation/combination phase
            imbalance (HyGCN's pipeline stalls).
        reference_speedup: the paper's reported average NeuraChip speedup
            over this accelerator, used for calibration.
        calibration_scale: multiplicative factor on the total time, set by
            :func:`calibrate_gnn_accelerators`.
    """

    name: str
    peak_gflops: float
    bandwidth_gb_s: float
    base_overhead: float = 1.0
    imbalance_penalty: float = 0.0
    partition_overhead: float = 0.0
    pipeline_stall_penalty: float = 0.0
    reference_speedup: float = 1.0
    calibration_scale: float = 1.0

    # ------------------------------------------------------------------
    def _phase_times(self, stats: GCNWorkloadStats) -> tuple[float, float]:
        """(aggregation, combination) roofline times in seconds."""
        agg_compute = stats.aggregation_flops / (self.peak_gflops * 1e9)
        agg_memory = stats.aggregation_traffic_bytes / (self.bandwidth_gb_s * 1e9)
        comb_compute = stats.combination_flops / (self.peak_gflops * 1e9)
        comb_memory = stats.combination_traffic_bytes / (self.bandwidth_gb_s * 1e9)
        return max(agg_compute, agg_memory), max(comb_compute, comb_memory)

    def execution_time_s(self, stats: GCNWorkloadStats) -> float:
        """Modelled GCN-layer execution time in seconds."""
        agg, comb = self._phase_times(stats)
        ideal = agg + comb
        penalty = self.base_overhead
        penalty += self.imbalance_penalty * stats.degree_cv
        penalty += self.partition_overhead
        if self.pipeline_stall_penalty > 0.0 and ideal > 0.0:
            # A perfectly balanced pipeline hides the shorter phase entirely;
            # imbalance exposes the difference as stall time.
            stall_fraction = abs(agg - comb) / ideal
            penalty += self.pipeline_stall_penalty * stall_fraction
        return ideal * penalty * self.calibration_scale

    def sustained_gflops(self, stats: GCNWorkloadStats) -> float:
        """Modelled sustained GFLOP/s on the layer."""
        time = self.execution_time_s(stats)
        return stats.total_flops / time / 1e9 if time > 0 else 0.0


# ----------------------------------------------------------------------
# Model instances.  Peak numbers follow the corresponding publications at the
# order-of-magnitude level; the penalty structure is what differentiates them.
# ----------------------------------------------------------------------
ENGN = GNNAcceleratorModel(
    name="EnGN",
    peak_gflops=6144.0,
    bandwidth_gb_s=256.0,
    base_overhead=1.05,
    imbalance_penalty=0.22,
    reference_speedup=1.29,
)

GROW = GNNAcceleratorModel(
    name="GROW",
    peak_gflops=4096.0,
    bandwidth_gb_s=256.0,
    base_overhead=1.10,
    partition_overhead=0.35,
    imbalance_penalty=0.05,
    reference_speedup=1.58,
)

HYGCN = GNNAcceleratorModel(
    name="HyGCN",
    peak_gflops=4608.0,
    bandwidth_gb_s=256.0,
    base_overhead=1.08,
    pipeline_stall_penalty=0.85,
    imbalance_penalty=0.08,
    reference_speedup=1.69,
)

FLOWGNN = GNNAcceleratorModel(
    name="FlowGNN",
    peak_gflops=8192.0,
    bandwidth_gb_s=256.0,
    base_overhead=1.06,
    imbalance_penalty=0.12,
    reference_speedup=1.30,
)


def neurachip_gnn_model(peak_gflops: float = 8192.0,
                        bandwidth_gb_s: float = 128.0) -> GNNAcceleratorModel:
    """Analytic model of the GNN-mode Tile-16 NeuraChip (Section 5.4).

    Decoupled multiply/accumulate components serve both phases, so there is no
    pipeline-imbalance stall; DRHM keeps the imbalance penalty near zero.
    """
    return GNNAcceleratorModel(
        name="NeuraChip GNN-Tile-16",
        peak_gflops=peak_gflops,
        bandwidth_gb_s=bandwidth_gb_s,
        base_overhead=1.0,
        imbalance_penalty=0.01,
        reference_speedup=1.0,
    )


def gnn_accelerators() -> list[GNNAcceleratorModel]:
    """The four prior GNN accelerators of Figure 17, in paper order."""
    return [ENGN, GROW, HYGCN, FLOWGNN]


def calibrate_gnn_accelerators(models: list[GNNAcceleratorModel],
                               workloads: list[GCNWorkloadStats],
                               neurachip: GNNAcceleratorModel | None = None,
                               ) -> list[GNNAcceleratorModel]:
    """Scale each model's base overhead so the suite-average NeuraChip speedup
    equals the paper's reported average (the Figure 17 calibration)."""
    from dataclasses import replace

    if neurachip is None:
        neurachip = neurachip_gnn_model()
    if not workloads:
        return list(models)
    calibrated = []
    reference_times = [neurachip.execution_time_s(stats) for stats in workloads]
    for model in models:
        speedups = []
        for stats, ref_time in zip(workloads, reference_times):
            time = model.execution_time_s(stats)
            if ref_time > 0:
                speedups.append(time / ref_time)
        if not speedups:
            calibrated.append(model)
            continue
        gmean = float(np.exp(np.mean(np.log(speedups))))
        scale = model.reference_speedup / gmean if gmean > 0 else 1.0
        calibrated.append(replace(model,
                                  calibration_scale=model.calibration_scale * scale))
    return calibrated


def gnn_speedup_table(workloads: list[GCNWorkloadStats],
                      calibrate: bool = True) -> dict[str, dict[str, float]]:
    """Per-dataset NeuraChip speedup over each GNN accelerator (Figure 17)."""
    neurachip = neurachip_gnn_model()
    models = gnn_accelerators()
    if calibrate:
        models = calibrate_gnn_accelerators(models, workloads, neurachip)
    table: dict[str, dict[str, float]] = {}
    for model in models:
        per_dataset = {}
        for stats in workloads:
            ref_time = neurachip.execution_time_s(stats)
            base_time = model.execution_time_s(stats)
            per_dataset[stats.name] = base_time / ref_time if ref_time > 0 else 0.0
        values = [v for v in per_dataset.values() if v > 0]
        per_dataset["gmean"] = float(np.exp(np.mean(np.log(values)))) if values else 0.0
        table[model.name] = per_dataset
    return table
