"""Baseline performance models.

The paper compares NeuraChip against hardware we cannot execute in this
environment: an Intel Xeon running MKL, NVIDIA H100 / AMD MI100 GPUs running
cuSPARSE / CUSP / hipSPARSE, the OuterSPACE, SpArch and Gamma SpGEMM
accelerators, and the EnGN, GROW, HyGCN and FlowGNN GNN accelerators.

Each baseline is therefore modelled analytically: its execution time on a
workload is the maximum of a compute term (peak throughput) and a memory term
(dataflow-specific traffic divided by platform bandwidth), scaled by a
platform efficiency constant.  The efficiency constants are calibrated so
that the *suite-average* sustained throughput of each platform matches the
paper's Table 5 (SpGEMM) or the paper's reported average speedups
(Section 5.4, GNN accelerators); the per-dataset variation then emerges from
each dataflow's sensitivity to the workload's structure (memory bloat, row
lengths, degree skew).  See DESIGN.md for the substitution rationale.
"""

from repro.baselines.workload import SpGEMMWorkloadStats, GCNWorkloadStats
from repro.baselines.platforms import (
    BaselinePlatform,
    CPU_MKL,
    GPU_CUSP,
    GPU_CUSPARSE,
    GPU_HIPSPARSE,
    calibrate_platforms,
    spgemm_platforms,
)
from repro.baselines.accelerators import (
    ACCEL_GAMMA,
    ACCEL_OUTERSPACE,
    ACCEL_SPARCH,
    NEURACHIP_ANALYTIC_TILE4,
    NEURACHIP_ANALYTIC_TILE16,
    NEURACHIP_ANALYTIC_TILE64,
    neurachip_analytic,
    spgemm_accelerators,
)
from repro.baselines.gnn_accelerators import (
    GNNAcceleratorModel,
    gnn_accelerators,
    neurachip_gnn_model,
)

__all__ = [
    "SpGEMMWorkloadStats",
    "GCNWorkloadStats",
    "BaselinePlatform",
    "CPU_MKL",
    "GPU_CUSPARSE",
    "GPU_CUSP",
    "GPU_HIPSPARSE",
    "spgemm_platforms",
    "calibrate_platforms",
    "ACCEL_OUTERSPACE",
    "ACCEL_SPARCH",
    "ACCEL_GAMMA",
    "NEURACHIP_ANALYTIC_TILE4",
    "NEURACHIP_ANALYTIC_TILE16",
    "NEURACHIP_ANALYTIC_TILE64",
    "neurachip_analytic",
    "spgemm_accelerators",
    "GNNAcceleratorModel",
    "gnn_accelerators",
    "neurachip_gnn_model",
]
