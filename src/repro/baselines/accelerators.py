"""Analytic models of the SpGEMM accelerators (OuterSPACE, SpArch, Gamma)
and the analytic NeuraChip model used for cross-platform comparison.

The prior accelerators cannot be simulated here (their RTL / simulators are
not available offline), so each is modelled with the same roofline + dataflow
traffic approach as the CPU/GPU platforms (:mod:`repro.baselines.platforms`),
with traffic terms reflecting their published dataflow:

* **OuterSPACE** — outer-product dataflow; all partial products spill to
  memory and are merged in a second phase (the memory-bloat weakness the
  paper highlights).
* **SpArch** — outer product with on-chip merger trees; a large fraction of
  the partial-product traffic is eliminated, at a large comparator-area cost.
* **Gamma** — Gustavson dataflow with FiberCache prefetching; near-streaming
  traffic, slight degradation from cache under-utilisation (data idling).
* **NeuraChip (analytic)** — Gustavson dataflow with on-chip hash
  accumulation and rolling eviction; operands streamed once, outputs written
  once.  The analytic model is used for the *cross-platform* figures
  (Figure 16, Table 5); the cycle simulator cross-validates its trends on
  small instances (see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.arch.config import NeuraChipConfig, TILE16, TILE4, TILE64
from repro.baselines.platforms import BaselinePlatform
from repro.baselines.workload import SpGEMMWorkloadStats

ACCEL_OUTERSPACE = BaselinePlatform(
    name="OuterSPACE",
    peak_gflops=384.0,
    bandwidth_gb_s=128.0,
    on_chip_mb=4.0,
    dataflow="outer",
    efficiency=0.16,
    reference_gops=2.9,
    imbalance_sensitivity=0.20,
    area_mm2=86.74,
    power_w=24.0,
    technology_nm=32,
    compute_units="256 PEs",
    frequency_ghz=1.5,
)

ACCEL_SPARCH = BaselinePlatform(
    name="SpArch",
    peak_gflops=32.0,
    bandwidth_gb_s=128.0,
    on_chip_mb=15.0,
    dataflow="outer",
    efficiency=0.62,
    reference_gops=10.4,
    # Merger trees keep most partial products on chip: discount the
    # partial-matrix traffic relative to OuterSPACE.
    traffic_multiplier=0.45,
    imbalance_sensitivity=0.10,
    area_mm2=28.49,
    power_w=9.26,
    technology_nm=40,
    compute_units="2x8 mults, 16x16 merger",
    frequency_ghz=1.0,
)

ACCEL_GAMMA = BaselinePlatform(
    name="Gamma",
    peak_gflops=32.0,
    bandwidth_gb_s=128.0,
    on_chip_mb=3.0,
    dataflow="row_wise",
    efficiency=0.78,
    reference_gops=16.5,
    # FiberCache prefetching leaves data idling in the cache; modelled as a
    # modest traffic inflation from conflict/idle refetches.
    traffic_multiplier=1.12,
    imbalance_sensitivity=0.08,
    area_mm2=30.6,
    power_w=None,
    technology_nm=45,
    compute_units="32 PEs radix-64",
    frequency_ghz=1.0,
)


def neurachip_analytic(config: NeuraChipConfig,
                       reference_gops: float,
                       efficiency: float = 0.90) -> BaselinePlatform:
    """Analytic NeuraChip model for a given tile configuration.

    Args:
        config: NeuraChip configuration (peak throughput, bandwidth).
        reference_gops: Table 5 sustained GOP/s used for calibration.
        efficiency: fraction of the roofline sustained (the decoupled pipeline
            plus DRHM load balancing keep this high).
    """
    return BaselinePlatform(
        name=f"NeuraChip {config.name}",
        peak_gflops=config.peak_gflops,
        bandwidth_gb_s=config.hbm_bandwidth_gb_s,
        on_chip_mb=config.hashpad_total_mb,
        dataflow="decoupled_hash",
        efficiency=efficiency,
        reference_gops=reference_gops,
        imbalance_sensitivity=0.02,
        area_mm2=None,
        power_w=None,
        technology_nm=config.technology_nm,
        compute_units=f"2x{config.total_cores // 2} NeuraCores",
        frequency_ghz=config.frequency_ghz,
    )


#: Analytic NeuraChip models with the Table 5 sustained-throughput targets.
NEURACHIP_ANALYTIC_TILE4 = neurachip_analytic(TILE4, reference_gops=5.15,
                                              efficiency=0.55)
NEURACHIP_ANALYTIC_TILE16 = neurachip_analytic(TILE16, reference_gops=24.75,
                                               efficiency=0.90)
NEURACHIP_ANALYTIC_TILE64 = neurachip_analytic(TILE64, reference_gops=30.69,
                                               efficiency=0.95)


def spgemm_accelerators() -> list[BaselinePlatform]:
    """The three prior SpGEMM accelerators of Figure 16, in paper order."""
    return [ACCEL_OUTERSPACE, ACCEL_SPARCH, ACCEL_GAMMA]


def table5_platforms() -> list[BaselinePlatform]:
    """Every column of Table 5 as an analytic platform model."""
    from repro.baselines.platforms import (CPU_MKL, GPU_CUSPARSE, GPU_CUSP,
                                           GPU_HIPSPARSE)

    return [CPU_MKL, GPU_CUSPARSE, GPU_CUSP, GPU_HIPSPARSE,
            ACCEL_OUTERSPACE, ACCEL_SPARCH, ACCEL_GAMMA,
            NEURACHIP_ANALYTIC_TILE4, NEURACHIP_ANALYTIC_TILE16,
            NEURACHIP_ANALYTIC_TILE64]


def speedup_table(workloads: list[SpGEMMWorkloadStats],
                  reference: BaselinePlatform = NEURACHIP_ANALYTIC_TILE16,
                  platforms: list[BaselinePlatform] | None = None,
                  calibrate: bool = True) -> dict[str, dict[str, float]]:
    """Per-dataset speedup of ``reference`` over each platform (Figure 16).

    Returns a nested mapping ``{platform: {dataset: speedup, ..., 'gmean': g}}``.
    """
    import numpy as np

    from repro.baselines.platforms import calibrate_platforms

    if platforms is None:
        platforms = [*spgemm_platforms_in_order(), *spgemm_accelerators()]
    all_platforms = [*platforms, reference]
    if calibrate:
        all_platforms = calibrate_platforms(all_platforms, workloads)
    reference_model = all_platforms[-1]
    table: dict[str, dict[str, float]] = {}
    for platform in all_platforms[:-1]:
        per_dataset = {}
        for stats in workloads:
            ref_time = reference_model.execution_time_s(stats)
            base_time = platform.execution_time_s(stats)
            per_dataset[stats.name] = base_time / ref_time if ref_time > 0 else 0.0
        values = [v for v in per_dataset.values() if v > 0]
        per_dataset["gmean"] = float(np.exp(np.mean(np.log(values)))) if values else 0.0
        table[platform.name] = per_dataset
    return table


def spgemm_platforms_in_order() -> list[BaselinePlatform]:
    """CPU and GPU platforms in the order Figure 16 lists them."""
    from repro.baselines.platforms import spgemm_platforms

    return spgemm_platforms()
