"""Compute-mapping schemes: ring, prime-modular, random lookup, and DRHM.

A mapping scheme assigns a 32-bit TAG (the identifier of an output element or
an input row) to one of ``n_resources`` compute/memory units.  Section 2.4 of
the paper lists the three requirements — consistency, low overhead, and
sparsity agnosticism — and Section 3.5 introduces the Dynamically Reseeding
Hash-based Mapping (DRHM) whose lower-bit variant (Equation 3) NeuraChip uses.
"""

from __future__ import annotations

import abc

import numpy as np

TAG_BITS = 32
TAG_MASK = (1 << TAG_BITS) - 1

# A fixed prime used by the modular scheme, as in prime-modular hashing
# literature referenced by the paper.
_DEFAULT_PRIME = 2_654_435_761  # Knuth's multiplicative hashing constant.


class MappingScheme(abc.ABC):
    """Base class for TAG -> resource mapping schemes.

    A scheme is *consistent* when, between reseed events, the same TAG always
    maps to the same resource.  Schemes are cheap objects; one is instantiated
    per simulation run.
    """

    name = "abstract"

    def __init__(self, n_resources: int) -> None:
        if n_resources <= 0:
            raise ValueError("n_resources must be positive")
        self.n_resources = int(n_resources)

    @abc.abstractmethod
    def map(self, tag: int, group: int | None = None) -> int:
        """Map a TAG to a resource index in ``[0, n_resources)``.

        Args:
            tag: 32-bit identifier of the task (output element or row).
            group: optional consistency group (the output row the tag belongs
                to).  Schemes that reseed over time (DRHM) use the group to
                keep every task of the same output row on the same resource,
                which the accumulate-by-TAG dataflow requires.  Static schemes
                ignore it.
        """

    def reseed(self, row_index: int | None = None) -> None:
        """Notify the scheme that a row of computation finished.

        Only DRHM reacts to this; the other schemes are static.  The optional
        ``row_index`` lets deterministic tests reproduce the reseed sequence.
        """

    def lookup_table_bytes(self) -> int:
        """Memory footprint of any lookup state the scheme must keep."""
        return 0

    def map_many(self, tags: np.ndarray) -> np.ndarray:
        """Vector-map an array of TAGs (no reseeding in between)."""
        return np.array([self.map(int(t)) for t in np.asarray(tags).ravel()],
                        dtype=np.int64)


class RingHashMapping(MappingScheme):
    """Round-robin / ring mapping: ``resource = TAG mod N``.

    Cheap and consistent, but strided TAG sequences (common in banded mesh
    matrices) repeatedly hit the same subset of resources, producing the hot
    spots of Figure 12(a).
    """

    name = "ring"

    def map(self, tag: int, group: int | None = None) -> int:
        return (tag & TAG_MASK) % self.n_resources


class ModularHashMapping(MappingScheme):
    """Prime-number modular hashing: ``resource = (TAG * p) mod N``."""

    name = "modular"

    def __init__(self, n_resources: int, prime: int = _DEFAULT_PRIME) -> None:
        super().__init__(n_resources)
        if prime <= 1:
            raise ValueError("prime must be > 1")
        self.prime = int(prime)

    def map(self, tag: int, group: int | None = None) -> int:
        return ((tag & TAG_MASK) * self.prime % (1 << 61)) % self.n_resources


class RandomLookupMapping(MappingScheme):
    """Ideal random mapping backed by an explicit lookup table.

    Sparsity agnostic by construction but requires one table entry per
    distinct TAG, which is the memory cost the paper deems impractical in
    hardware.  The table grows lazily as TAGs are first seen.
    """

    name = "random"

    def __init__(self, n_resources: int, seed: int = 0) -> None:
        super().__init__(n_resources)
        self._rng = np.random.default_rng(seed)
        self._table: dict[int, int] = {}

    def map(self, tag: int, group: int | None = None) -> int:
        tag &= TAG_MASK
        if tag not in self._table:
            self._table[tag] = int(self._rng.integers(0, self.n_resources))
        return self._table[tag]

    def lookup_table_bytes(self) -> int:
        # One 32-bit TAG key plus one resource index per entry.
        return len(self._table) * 8


class DynamicReseedHashMapping(MappingScheme):
    """Dynamically Reseeding Hash-based Mapping (DRHM, Section 3.5).

    Implements Equations 3 and 4 of the paper::

        H_l(TAG, gamma) = ((TAG << k) >> k) * gamma  mod N     (lower k bits)
        H_h(TAG, gamma) = ((TAG >> k) << k) * gamma  mod N     (upper k bits)

    with 32-bit shift semantics (bits shifted out are discarded).  After each
    row of the input matrix is processed, :meth:`reseed` draws a fresh random
    seed gamma, which is recorded in a compact per-row seed table so the
    mapping stays consistent (replayable) for that row.

    Implementation note: the final "mod N" of Equations 3/4 is applied to an
    xor-folded 32-bit product (``p = masked * gamma mod 2^32; p ^= p >> 16``)
    rather than to the raw product.  A direct modulo of the raw product
    preserves any common factor between the TAG stride and N (all the
    power-of-two resource counts of Table 3), so no choice of gamma could
    break strided hot spots; folding the high half into the low half makes the
    bucket gamma-sensitive while still spreading consecutive TAGs, which is
    the sparsity-agnostic behaviour the paper attributes to DRHM.
    """

    name = "drhm"

    def __init__(self, n_resources: int, k: int = 16, seed: int = 0,
                 use_lower_bits: bool = True) -> None:
        super().__init__(n_resources)
        if not 0 <= k < TAG_BITS:
            raise ValueError("k must be in [0, 32)")
        self.k = int(k)
        self.use_lower_bits = bool(use_lower_bits)
        self._rng = np.random.default_rng(seed)
        self._seed_table: list[int] = []
        self._group_gammas: dict[int, int] = {}
        self._base_seed = int(seed)
        self.gamma = self._draw_gamma()

    def _draw_gamma(self) -> int:
        # Odd gamma avoids degenerate all-even products collapsing onto a few
        # buckets when N is a power of two.
        gamma = int(self._rng.integers(1, 1 << 30)) | 1
        self._seed_table.append(gamma)
        return gamma

    def _gamma_for_group(self, group: int) -> int:
        """Per-group seed: each output row gets its own gamma, stored in the
        compact seed lookup table, so the mapping stays consistent for every
        task of that row (the reseed-after-each-row behaviour of the paper)."""
        gamma = self._group_gammas.get(group)
        if gamma is None:
            mix = (group * 2_654_435_761 + self._base_seed * 40_503 + 1) & 0xFFFFFFFF
            gamma = int(np.random.default_rng(mix).integers(1, 1 << 30)) | 1
            self._group_gammas[group] = gamma
            self._seed_table.append(gamma)
        return gamma

    def map(self, tag: int, group: int | None = None) -> int:
        tag &= TAG_MASK
        if self.use_lower_bits:
            masked = ((tag << self.k) & TAG_MASK) >> self.k
        else:
            masked = ((tag >> self.k) << self.k) & TAG_MASK
        gamma = self.gamma if group is None else self._gamma_for_group(group)
        product = (masked * gamma) & TAG_MASK
        product ^= product >> 16
        return product % self.n_resources

    def reseed(self, row_index: int | None = None) -> None:
        """Draw a new gamma; called after each input row completes."""
        if row_index is not None:
            # Deterministic per-row seeding keeps replays consistent.
            self._rng = np.random.default_rng((row_index + 1) * 2_246_822_519 % (1 << 32))
        self.gamma = self._draw_gamma()

    def seed_history(self) -> list[int]:
        """All gamma values drawn so far (the compact seed lookup table)."""
        return list(self._seed_table)

    def lookup_table_bytes(self) -> int:
        # Only the seed values are stored (4 bytes each).
        return len(self._seed_table) * 4


_SCHEMES = {
    "ring": RingHashMapping,
    "modular": ModularHashMapping,
    "random": RandomLookupMapping,
    "drhm": DynamicReseedHashMapping,
}


def make_mapping(name: str, n_resources: int, **kwargs) -> MappingScheme:
    """Factory for mapping schemes by name ('ring', 'modular', 'random', 'drhm')."""
    if name not in _SCHEMES:
        raise ValueError(f"unknown mapping scheme {name!r}; "
                         f"choose from {sorted(_SCHEMES)}")
    return _SCHEMES[name](n_resources, **kwargs)
