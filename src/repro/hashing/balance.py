"""Load-balance metrics and compute-mapping heat maps (Figures 12 and 13).

Given a workload (the multiplication/accumulation task stream of an SpGEMM
execution) and a mapping scheme, this module measures how evenly work lands
on the NeuraCore and NeuraMem units and extracts the 2-D heat map the paper
uses to visualise hot spots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hashing.mappings import MappingScheme, make_mapping
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix


@dataclass
class LoadBalanceReport:
    """Summary statistics of how tasks were distributed over resources.

    Attributes:
        scheme: mapping scheme name.
        counts: per-resource task counts.
        mean: mean tasks per resource.
        std: standard deviation of tasks per resource.
        max_over_mean: hot-spot factor (1.0 is perfectly balanced).
        coefficient_of_variation: std / mean.
        gini: Gini coefficient of the task distribution (0 = perfectly even).
    """

    scheme: str
    counts: np.ndarray
    mean: float
    std: float
    max_over_mean: float
    coefficient_of_variation: float
    gini: float

    @property
    def n_resources(self) -> int:
        return int(self.counts.size)


def _gini(counts: np.ndarray) -> float:
    """Gini coefficient of a non-negative count vector."""
    if counts.size == 0:
        return 0.0
    sorted_counts = np.sort(counts.astype(np.float64))
    total = sorted_counts.sum()
    if total == 0:
        return 0.0
    n = sorted_counts.size
    cum = np.cumsum(sorted_counts)
    return float((n + 1 - 2 * (cum / total).sum()) / n)


def summarize_counts(scheme_name: str, counts: np.ndarray) -> LoadBalanceReport:
    """Build a :class:`LoadBalanceReport` from raw per-resource counts."""
    counts = np.asarray(counts, dtype=np.int64)
    mean = float(counts.mean()) if counts.size else 0.0
    std = float(counts.std()) if counts.size else 0.0
    max_over_mean = float(counts.max()) / mean if mean > 0 else 0.0
    cv = std / mean if mean > 0 else 0.0
    return LoadBalanceReport(scheme=scheme_name, counts=counts, mean=mean,
                             std=std, max_over_mean=max_over_mean,
                             coefficient_of_variation=cv, gini=_gini(counts))


def accumulation_tags(a_csc: CSCMatrix, b_csr: CSRMatrix,
                      reseed_per_column: bool = True):
    """Yield (column index, TAG) pairs for every partial product of A @ B.

    The TAG identifies the output element (row * n_cols + col), exactly the
    identifier NeuraMem hashes.  ``reseed_per_column`` marks the points where
    DRHM would reseed (after each input row/column of computation).
    """
    n_out_cols = b_csr.shape[1]
    for k in range(a_csc.shape[1]):
        a_rows, _ = a_csc.col(k)
        if a_rows.size == 0:
            continue
        b_cols, _ = b_csr.row(k)
        if b_cols.size == 0:
            continue
        for i in a_rows.tolist():
            for j in b_cols.tolist():
                yield k, (i * n_out_cols + j) & 0xFFFFFFFF
        if reseed_per_column:
            yield k, None  # sentinel: reseed point


def load_balance_report(scheme: MappingScheme | str, a_csc: CSCMatrix,
                        b_csr: CSRMatrix, n_resources: int | None = None,
                        **scheme_kwargs) -> LoadBalanceReport:
    """Distribute the accumulation tasks of A @ B and measure the balance.

    Args:
        scheme: a mapping scheme instance or a scheme name.
        a_csc: left operand in CSC.
        b_csr: right operand in CSR.
        n_resources: number of NeuraMem units (required when ``scheme`` is a
            name).
        **scheme_kwargs: forwarded to :func:`make_mapping` when constructing
            a scheme by name.

    Returns:
        A :class:`LoadBalanceReport` over the accumulation units.
    """
    if isinstance(scheme, str):
        if n_resources is None:
            raise ValueError("n_resources is required when scheme is a name")
        scheme = make_mapping(scheme, n_resources, **scheme_kwargs)
    counts = np.zeros(scheme.n_resources, dtype=np.int64)
    for k, tag in accumulation_tags(a_csc, b_csr):
        if tag is None:
            scheme.reseed(k)
            continue
        counts[scheme.map(tag)] += 1
    return summarize_counts(scheme.name, counts)


def mapping_heatmap(scheme: MappingScheme | str, a_csc: CSCMatrix,
                    b_csr: CSRMatrix, n_cores: int, n_mems: int | None = None,
                    **scheme_kwargs) -> np.ndarray:
    """Compute the (NeuraCore x NeuraMem) heat map of Figures 12 / 13.

    Multiplications are assigned to NeuraCores by the column index of A being
    processed (the dispatcher's task distribution); accumulations are assigned
    to NeuraMems by the mapping scheme applied to the output TAG.  The entry
    ``heatmap[core, mem]`` counts partial products generated on ``core`` and
    accumulated on ``mem``.

    Args:
        scheme: accumulation mapping scheme (instance or name).
        a_csc: left operand in CSC.
        b_csr: right operand in CSR.
        n_cores: number of NeuraCore units (heat map rows).
        n_mems: number of NeuraMem units (heat map columns; defaults to
            ``n_cores``).
        **scheme_kwargs: forwarded to :func:`make_mapping`.

    Returns:
        int64 array of shape (n_cores, n_mems).
    """
    n_mems = n_mems or n_cores
    if isinstance(scheme, str):
        scheme = make_mapping(scheme, n_mems, **scheme_kwargs)
    elif scheme.n_resources != n_mems:
        raise ValueError("scheme resource count must equal n_mems")
    heatmap = np.zeros((n_cores, n_mems), dtype=np.int64)
    for k, tag in accumulation_tags(a_csc, b_csr):
        if tag is None:
            scheme.reseed(k)
            continue
        core = k % n_cores
        heatmap[core, scheme.map(tag)] += 1
    return heatmap


def compare_schemes(a_csc: CSCMatrix, b_csr: CSRMatrix, n_resources: int,
                    schemes: tuple[str, ...] = ("ring", "modular", "random", "drhm"),
                    ) -> dict[str, LoadBalanceReport]:
    """Run every mapping scheme on the same workload (Figure 13 comparison)."""
    return {name: load_balance_report(name, a_csc, b_csr, n_resources)
            for name in schemes}
