"""Hash-based compute mapping algorithms (Section 2.4 / 3.5 of the paper).

Implements the four mapping schemes the paper compares — ring (round robin),
prime-modular, random lookup-table, and NeuraChip's Dynamically Reseeding
Hash-based Mapping (DRHM) — plus load-balance metrics and the compute-mapping
heat maps of Figures 12 and 13.
"""

from repro.hashing.mappings import (
    DynamicReseedHashMapping,
    MappingScheme,
    ModularHashMapping,
    RandomLookupMapping,
    RingHashMapping,
    make_mapping,
)
from repro.hashing.balance import (
    LoadBalanceReport,
    load_balance_report,
    mapping_heatmap,
)

__all__ = [
    "MappingScheme",
    "RingHashMapping",
    "ModularHashMapping",
    "RandomLookupMapping",
    "DynamicReseedHashMapping",
    "make_mapping",
    "LoadBalanceReport",
    "load_balance_report",
    "mapping_heatmap",
]
