"""Execution backend protocol and shared datatypes.

A *backend* is one way of executing a compiled
:class:`~repro.compiler.program.Program` on a configured chip.  The three
built-in backends trade fidelity for speed:

========== ====================================== =========================
name       what runs                              cost
========== ====================================== =========================
functional hash-accumulate dataflow, untimed      O(partial products)
cycle      event-driven NeuraSim timing model     O(events) — slowest
analytic   roofline cycle prediction, no events   O(MMH instructions)
========== ====================================== =========================

Backends receive the compiled program plus (optionally) the CSR/CSC
operands, so fast backends can compute the numeric output through the
vectorized kernel layer instead of replaying the macro-op stream.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.arch.config import NeuraChipConfig
from repro.compiler.program import Program
from repro.sim.accelerator import SimulationReport
from repro.sim.functional import FunctionalReport
from repro.sim.params import SimulationParams
from repro.sparse.csr import CSRMatrix


@dataclass(frozen=True)
class ExecutionContext:
    """Everything a backend needs to know about the chip it runs on.

    Attributes:
        config: hardware configuration (tile counts, engine counts, ...).
        params: simulation timing parameters.
        mapping_scheme: accumulation mapping scheme name.
        mapping_seed: seed for the randomised mapping schemes.
        eviction_mode: 'rolling' or 'barrier'.
        kernel_impl: kernel implementation ('python' or 'numpy') used by
            backends that compute their output through the kernel layer.
    """

    config: NeuraChipConfig
    params: SimulationParams
    mapping_scheme: str
    mapping_seed: int = 0
    eviction_mode: str = "rolling"
    kernel_impl: str = "numpy"


@dataclass
class ExecutionResult:
    """What a backend hands back to the :class:`~repro.core.api.NeuraChip`
    facade.

    Attributes:
        backend: name of the backend that produced this result.
        output: the product matrix C in CSR.
        report: timing report; populated by the cycle backend (measured) and
            the analytic backend (predicted), ``None`` for functional.
        functional: functional-model report; ``None`` for the analytic
            backend, which bypasses the hash-accumulate replay entirely.
        output_dense: dense form of the output when the backend already
            materialised one (the functional model's accumulator); saves
            callers that need a dense result a CSR round trip.
    """

    backend: str
    output: CSRMatrix
    report: SimulationReport | None = None
    functional: FunctionalReport | None = None
    output_dense: np.ndarray | None = None

    def to_dense(self) -> np.ndarray:
        """Dense output, reusing the backend's own dense array when present."""
        if self.output_dense is not None:
            return self.output_dense
        return self.output.to_dense()


class ExecutionBackend(ABC):
    """One way of executing a compiled program on a configured chip."""

    #: Registry name; set by the @register_backend decorator.
    name: str = ""

    @abstractmethod
    def execute(self, program: Program, ctx: ExecutionContext,
                a_csr: CSRMatrix | None = None,
                b_csr: CSRMatrix | None = None,
                verify: bool = True) -> ExecutionResult:
        """Execute ``program`` and return an :class:`ExecutionResult`.

        Args:
            program: compiled MMH macro-op stream.
            ctx: chip configuration and timing parameters.
            a_csr / b_csr: the operands the program was compiled from, when
                the caller still holds them; backends that only need the
                macro-op stream may ignore them.
            verify: ask the backend to check its output against a reference
                (only meaningful for the cycle backend).
        """
