"""The functional and cycle execution backends.

Both wrap the pre-existing simulators — the untimed hash-accumulate model
and the event-driven NeuraSim — behind the
:class:`~repro.backends.base.ExecutionBackend` protocol, so every entry
point (facade, CLI, batch runner) selects them by name instead of wiring
the simulators by hand.
"""

from __future__ import annotations

from repro.backends.base import ExecutionBackend, ExecutionContext, ExecutionResult
from repro.backends.registry import register_backend
from repro.compiler.program import Program
from repro.sim.accelerator import NeuraChipAccelerator
from repro.sim.functional import FunctionalAccelerator, FunctionalReport
from repro.sparse.convert import coo_to_csr, dense_to_coo
from repro.sparse.csr import CSRMatrix


def _run_functional(program: Program, ctx: ExecutionContext) -> FunctionalReport:
    return FunctionalAccelerator(ctx.config, ctx.mapping_scheme,
                                 ctx.mapping_seed).run(program)


@register_backend("functional")
class FunctionalBackend(ExecutionBackend):
    """Untimed hash-accumulate dataflow; validates semantics quickly."""

    def execute(self, program: Program, ctx: ExecutionContext,
                a_csr: CSRMatrix | None = None,
                b_csr: CSRMatrix | None = None,
                verify: bool = True) -> ExecutionResult:
        functional = _run_functional(program, ctx)
        output = coo_to_csr(dense_to_coo(functional.output))
        return ExecutionResult(backend=self.name, output=output,
                               report=None, functional=functional,
                               output_dense=functional.output)


@register_backend("cycle")
class CycleBackend(ExecutionBackend):
    """Event-driven cycle-level NeuraSim model (highest fidelity)."""

    def execute(self, program: Program, ctx: ExecutionContext,
                a_csr: CSRMatrix | None = None,
                b_csr: CSRMatrix | None = None,
                verify: bool = True) -> ExecutionResult:
        functional = _run_functional(program, ctx)
        accelerator = NeuraChipAccelerator(ctx.config, ctx.params,
                                           eviction_mode=ctx.eviction_mode,
                                           mapping_scheme=ctx.mapping_scheme,
                                           mapping_seed=ctx.mapping_seed)
        report = accelerator.run(program, verify=verify)
        output = coo_to_csr(dense_to_coo(functional.output))
        return ExecutionResult(backend=self.name, output=output,
                               report=report, functional=functional,
                               output_dense=functional.output)
