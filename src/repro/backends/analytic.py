"""Analytic execution backend: roofline cycle prediction without events.

The cycle backend replays every HACC through an event queue, which costs
minutes of host time per thousand simulated cycles; the analytic backend
instead *predicts* the cycle count from the compiled program's op counts and
the chip's throughput ceilings, and computes the numeric output through the
vectorized kernel layer.  Large graphs that would take hours under NeuraSim
finish in milliseconds.

Model
-----
The predicted cycle count is a latency floor plus the tightest of several
aggregate throughput bounds::

    cycles = L0 + max(issue, multiply, inject, hash, ingress, request, bus)

* ``issue``    — MMH instructions over the Dispatcher's issue width;
* ``multiply`` — multiply batches over all pipelines;
* ``inject``   — HACC injections over per-core NoC send ports;
* ``hash``     — HACC lookups/accumulates plus evictions over all hash
  engines, derated by :data:`HASH_ENGINE_EFFICIENCY` for load imbalance
  (the cycle simulator sustains ~70% aggregate hash-engine utilisation on
  the calibration workloads);
* ``ingress``  — one HACC flit per NeuraMem ingress port per cycle, scaled
  by :data:`INGRESS_IMBALANCE`;
* ``request``  — operand fetches over the empirically sustained memory
  request rate (:data:`REQUESTS_PER_CHANNEL_CYCLE` per channel per cycle,
  measured from the cycle model's queueing behaviour);
* ``bus``      — DRAM line traffic over peak HBM bandwidth.

Calibration (fixed workloads, seed 3): the prediction lands within ~5% of
the cycle backend on wiki-Vote (96 nodes) and facebook (80 nodes) for both
Tile-4 and Tile-16; the documented guarantee is **±25%** on those
calibration workloads (:data:`CALIBRATED_TOLERANCE`).  Accuracy degrades to
roughly -40% (underestimation) on very sparse, latency-dominated graphs
such as the scaled-down cora, where queueing delay rather than any
throughput ceiling sets the runtime.
"""

from __future__ import annotations

import time as _time

from repro.backends.base import ExecutionBackend, ExecutionContext, ExecutionResult
from repro.backends.registry import register_backend
from repro.compiler.program import Program
from repro.sim.accelerator import SimulationReport
from repro.sim.neuracore import MMH_HIST_BINS, MMH_HIST_BIN_WIDTH
from repro.sim.neuramem import HACC_HIST_BINS, HACC_HIST_BIN_WIDTH
from repro.sim.stats import Histogram
from repro.sparse.convert import coo_to_csr, dense_to_coo
from repro.sparse.csr import CSRMatrix

#: Sustained fraction of aggregate hash-engine throughput (load imbalance
#: across NeuraMems and engines keeps the cycle model near this level).
HASH_ENGINE_EFFICIENCY = 0.7
#: Hot/mean ratio applied to the per-NeuraMem ingress-port bound.
INGRESS_IMBALANCE = 1.2
#: Sustained memory read requests per channel per cycle under load
#: (measured from the cycle model's controller queueing).
REQUESTS_PER_CHANNEL_CYCLE = 0.42
#: Documented relative tolerance versus the cycle backend on the
#: calibration workloads (wiki-Vote @ 96 nodes, facebook @ 80 nodes).
CALIBRATED_TOLERANCE = 0.25


@register_backend("analytic")
class AnalyticBackend(ExecutionBackend):
    """Roofline-style cycle prediction; output via the kernel layer."""

    def execute(self, program: Program, ctx: ExecutionContext,
                a_csr: CSRMatrix | None = None,
                b_csr: CSRMatrix | None = None,
                verify: bool = True) -> ExecutionResult:
        start = _time.perf_counter()
        output = self._compute_output(program, ctx, a_csr, b_csr)
        report = self.predict(program, ctx,
                              wall=_time.perf_counter() - start)
        return ExecutionResult(backend=self.name, output=output,
                               report=report, functional=None)

    # ------------------------------------------------------------------
    def _compute_output(self, program: Program, ctx: ExecutionContext,
                        a_csr: CSRMatrix | None,
                        b_csr: CSRMatrix | None) -> CSRMatrix:
        """Numeric product via the kernel layer (or macro-op replay)."""
        if a_csr is not None and b_csr is not None:
            from repro.sparse import kernels

            result = kernels.spgemm(a_csr, b_csr,
                                    dataflow="tiled_gustavson",
                                    impl=ctx.kernel_impl,
                                    tile_rows=program.tile_size)
            return result.matrix
        return coo_to_csr(dense_to_coo(program.reference_result()))

    # ------------------------------------------------------------------
    def predict(self, program: Program, ctx: ExecutionContext,
                wall: float = 0.0) -> SimulationReport:
        """Predict a :class:`SimulationReport` for ``program`` on ``ctx``."""
        config, params = ctx.config, ctx.params
        n_mmh = program.n_instructions
        pp = program.total_partial_products
        nnz = program.output_nnz
        ppn = pp / n_mmh if n_mmh else 0.0

        # Operand-size totals and the rolling-counter (tag) histogram come
        # straight from the columnar program arrays — one vectorized
        # reduction each, no macro-op materialization.  Legacy loop-built
        # programs fall back to a cheap pass over the macro-ops.
        arrays = getattr(program, "arrays", None)
        if arrays is not None:
            sum_na = arrays.sum_na
            sum_nb = arrays.sum_nb
            counts = arrays.out_counts
            counter_mean = float(counts.mean()) if counts.size else 0.0
            counter_max = int(counts.max()) if counts.size else 0
        else:
            sum_na = sum(len(op.a_rows) for op in program.mmh_ops)
            sum_nb = sum(len(op.b_cols) for op in program.mmh_ops)
            counter_values = list(program.counters.values())
            counter_mean = (sum(counter_values) / len(counter_values)
                            if counter_values else 0.0)
            counter_max = max(counter_values, default=0)

        cores = max(1, config.total_cores)
        mems = max(1, config.total_mems)
        engines = max(1, config.total_hash_engines)
        pipelines = max(1, config.total_pipelines)
        channels = max(1, config.memory_controllers)
        slots = cores * config.core.pipelines * max(
            1, config.core.pipeline_registers // params.registers_per_mmh)

        batches = -(-max(1.0, ppn) // max(1, config.core.multipliers))
        compute_per_mmh = batches * params.multiply_cycles
        dispatch_per_mmh = ppn / max(1, params.hacc_sends_per_cycle)

        # Throughput ceilings (cycles to stream the whole program).
        b_issue = n_mmh / max(1, params.dispatch_width)
        b_mult = n_mmh * compute_per_mmh / pipelines
        b_inject = pp / (params.hacc_sends_per_cycle * cores)
        hash_work = ((pp + nnz)
                     * (params.hash_lookup_cycles + params.hash_accumulate_cycles))
        b_hash = hash_work / engines / HASH_ENGINE_EFFICIENCY
        b_ingress = pp * INGRESS_IMBALANCE / mems
        b_request = (4.0 * n_mmh) / (REQUESTS_PER_CHANNEL_CYCLE * channels)

        line_bytes = max(1, params.coalesce_line_bytes)
        footprint_lines = -(-program.address_map.total_bytes // line_bytes)
        read_bytes = footprint_lines * line_bytes
        write_bytes = nnz * params.writeback_bytes
        traffic_bytes = int(read_bytes + write_bytes)
        b_bus = traffic_bytes / (params.hbm_bytes_per_cycle_per_channel * channels)

        # Latency floor: fill the pipeline once.
        width = max(1, round((cores + mems) ** 0.5))
        height = -(-(cores + mems) // width)
        hops = (width + height) / 4.0
        memory_rt = (4 + params.memory_controller_cycles
                     + params.hbm_row_miss_cycles
                     + line_bytes / params.hbm_bytes_per_cycle_per_channel)
        frontend = (params.decode_cycles + params.register_alloc_cycles
                    + params.address_gen_cycles)
        latency_floor = (frontend + memory_rt + compute_per_mmh
                         + dispatch_per_mmh + hops * params.router_hop_cycles)

        bounds = {
            "issue": b_issue, "multiply": b_mult, "inject": b_inject,
            "hash": b_hash, "ingress": b_ingress, "request": b_request,
            "bus": b_bus,
        }
        binding = max(bounds, key=bounds.get)
        cycles = float(-(-(latency_floor + bounds[binding]) // 1))

        seconds = cycles / (config.frequency_ghz * 1e9)
        busy = n_mmh * (compute_per_mmh + dispatch_per_mmh)
        mem_busy = hash_work
        avg_inflight = 0.3 * 4.0 * min(slots, n_mmh)
        per_mem_lines = -(-nnz // mems) if nnz else 0
        peak_occupancy = int(min(config.mem.hashlines, max(per_mem_lines, 1))
                             if nnz else 0)

        return SimulationReport(
            config_name=config.name,
            workload=program.source,
            cycles=cycles,
            mmh_instructions=n_mmh,
            hacc_instructions=pp,
            useful_flops=program.useful_flops,
            gflops=program.useful_flops / seconds / 1e9 if seconds > 0 else 0.0,
            gops=pp / seconds / 1e9 if seconds > 0 else 0.0,
            mmh_cpi_mean=latency_floor,
            hacc_cpi_mean=memory_rt,
            mmh_cpi_histogram=Histogram(bin_width=MMH_HIST_BIN_WIDTH,
                                        n_bins=MMH_HIST_BINS),
            hacc_cpi_histogram=Histogram(bin_width=HACC_HIST_BIN_WIDTH,
                                         n_bins=HACC_HIST_BINS),
            ipc=n_mmh / cycles if cycles else 0.0,
            cpi=cycles / n_mmh if n_mmh else 0.0,
            stall_cycles=n_mmh * memory_rt,
            busy_cycles=busy,
            core_utilization=min(1.0, busy / (cycles * pipelines)),
            mem_utilization=min(1.0, mem_busy / (cycles * engines)),
            avg_inflight_mem=avg_inflight,
            memory_traffic_bytes=traffic_bytes,
            evictions=nnz,
            spills=0,
            peak_hashpad_occupancy=peak_occupancy,
            hashpad_occupancy_fraction=peak_occupancy / max(1, config.mem.hashlines),
            noc_flits=pp,
            noc_avg_hops=hops,
            output_nnz=nnz,
            correct=None,
            max_abs_error=0.0,
            wall_clock_seconds=wall,
            events=0,
            eviction_mode=ctx.eviction_mode,
            mapping_scheme=ctx.mapping_scheme,
            counters={"analytic.binding_bound": binding,
                      "analytic.sum_na": sum_na,
                      "analytic.sum_nb": sum_nb,
                      "analytic.counter_mean": round(counter_mean, 3),
                      "analytic.counter_max": counter_max,
                      **{f"analytic.bound.{k}": round(v, 1)
                         for k, v in bounds.items()}},
        )
