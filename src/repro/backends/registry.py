"""Backend registry: name -> ExecutionBackend class.

Backends register themselves with :func:`register_backend`; user-facing
entry points resolve names through :func:`get_backend`, which reports the
registered alternatives when a name is unknown.
"""

from __future__ import annotations

from repro.backends.base import ExecutionBackend

_BACKENDS: dict[str, type[ExecutionBackend]] = {}


def register_backend(name: str):
    """Class decorator installing an :class:`ExecutionBackend` under ``name``."""

    def decorator(cls: type[ExecutionBackend]) -> type[ExecutionBackend]:
        cls.name = name
        _BACKENDS[name] = cls
        return cls

    return decorator


def available_backends() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_BACKENDS)


def get_backend(name: str) -> ExecutionBackend:
    """Instantiate the backend registered under ``name``.

    Raises:
        ValueError: when no backend has that name; the message lists every
            registered backend.
    """
    if name not in _BACKENDS:
        raise ValueError(f"unknown backend {name!r}; "
                         f"registered backends: {available_backends()}")
    return _BACKENDS[name]()
