"""Pluggable execution backends for the NeuraChip reproduction.

Every entry point (the :class:`~repro.core.api.NeuraChip` facade, the CLI
and the batch runner) executes compiled programs through a backend looked
up by name in this package's registry:

* ``functional`` — untimed hash-accumulate dataflow;
* ``cycle``      — event-driven cycle-level NeuraSim model;
* ``analytic``   — roofline cycle prediction + vectorized kernel output,
  for graphs too large for event simulation;
* ``multichip``  — N chip instances, one row shard each, reduced on the
  host into the single-chip product (see :class:`ChipTopology`).

Third-party backends register with :func:`register_backend`.
"""

from repro.backends.base import (
    ExecutionBackend,
    ExecutionContext,
    ExecutionResult,
)
from repro.backends.registry import (
    available_backends,
    get_backend,
    register_backend,
)

# Importing the implementation modules populates the registry.
from repro.backends.executors import CycleBackend, FunctionalBackend
from repro.backends.analytic import (
    CALIBRATED_TOLERANCE,
    AnalyticBackend,
)
from repro.backends.multichip import (
    SCALEOUT_CALIBRATION_BAND,
    ChipTopology,
    MultiChipBackend,
    MultiChipExecutionResult,
    predict_scaleout,
)

__all__ = [
    "ExecutionBackend",
    "ExecutionContext",
    "ExecutionResult",
    "register_backend",
    "get_backend",
    "available_backends",
    "FunctionalBackend",
    "CycleBackend",
    "AnalyticBackend",
    "MultiChipBackend",
    "MultiChipExecutionResult",
    "ChipTopology",
    "predict_scaleout",
    "CALIBRATED_TOLERANCE",
    "SCALEOUT_CALIBRATION_BAND",
]
