"""Multi-chip scale-out execution backend.

NeuraChip's decoupled SpGEMM pipeline and Tesseract-style hash partitioning
are designed to scale across chips: rows of A partition the partial
products of C = A @ B exactly, so each chip can own a row shard, compile
and execute it independently, and the host reduces the per-chip products
into a result identical to the single-chip run.

The ``multichip`` backend models exactly that:

* :class:`ChipTopology` describes the fleet — chip count, the per-chip
  execution backend (``analytic`` by default, ``cycle`` / ``functional``
  for fidelity), the partition strategy, and the host-reduce cost model;
* shards come from :func:`~repro.sparse.partition.plan_shards`:
  contiguous row ranges on balanced inputs, degree-aware row index sets
  (with merge-path column-range splitting of monster rows) on skewed
  power-law inputs — the ``partition`` knob picks, defaulting to an
  ``auto`` skew probe;
* every chip executes in isolation — its own compiled shard program(s)
  and its own simulator (memory / NeuraMem) state and stats, built fresh
  per chip by the inner backend — and the per-chip work fans out over any
  registered host executor (serial / thread / process);
* the aggregate timing report takes ``cycles = max over chips + host
  reduce term (+ one-time B broadcast on cold runs)``, sums
  activity-style totals (busy / stall cycles, traffic, NoC flits,
  evictions), and records per-chip cycles plus shard-skew counters;
* :func:`predict_scaleout` is the analytic fast path: it predicts
  scale-out efficiency from the per-shard partial-product histogram alone,
  without compiling or simulating anything.

Per-shard compiled programs are cached by operand fingerprint through the
session's :class:`~repro.core.runner.ProgramCache` (each shard slice has
its own content fingerprint), so repeated multi-chip runs of the same graph
skip every per-chip compile.

B is replicated on every chip (rows of A shard; all of B is potentially
touched by any shard), so a *cold* multi-chip run additionally charges a
one-time B-broadcast term — ``b_nnz`` bytes pushed over the host
interconnect at ``reduce_bytes_per_cycle`` — that makes the small-graph
break-even point visible.  The broadcast amortizes across a batch through
the program cache: when every chip's shard program is a cache hit, B is
already resident on the fleet and the term is zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.structure import require_valid_csr
from repro.backends.base import ExecutionBackend, ExecutionContext, ExecutionResult
from repro.backends.registry import get_backend, register_backend
from repro.compiler.program import Program
from repro.sim.accelerator import SimulationReport
from repro.sim.neuracore import MMH_HIST_BINS, MMH_HIST_BIN_WIDTH
from repro.sim.neuramem import HACC_HIST_BINS, HACC_HIST_BIN_WIDTH
from repro.sim.stats import Histogram
from repro.sparse.convert import csr_to_csc
from repro.sparse.csr import CSRMatrix
from repro.sparse.partition import (
    PARTITION_STRATEGIES,
    ShardAssignment,
    ShardPlan,
    ShardUnit,
    build_shard_units,
    plan_shards,
    stitch_shard_outputs,
)

#: Bytes the host reduce moves per output *row*.  Output ownership follows
#: the row shards (Tesseract-style): each chip keeps its rows of C in its
#: local HBM, so the reduce never moves values or column indices — it only
#: gathers and rebases one int64 row pointer per output row to stitch the
#: per-chip CSR blocks into one logical matrix.
REDUCE_BYTES_PER_ROW = 8


@dataclass(frozen=True)
class ChipTopology:
    """Description of a multi-chip fleet and its host interconnect.

    Attributes:
        n_chips: number of chip instances row shards are assigned to.
        chip_backend: registered backend each chip executes its shard
            program through ('analytic', 'cycle', or 'functional').
        partition: shard planning strategy — 'contiguous' row ranges,
            'degree' index sets (LPT over exact per-row weights, with
            merge-path monster-row splitting), or 'auto' (default): a
            cheap skew probe keeps contiguity unless the degree plan is
            measurably more balanced.
        reduce_bytes_per_cycle: host-interconnect gather bandwidth used by
            the reduce-cost term (row-pointer bytes per chip cycle; the
            output values stay sharded in chip-local HBM).
        reduce_latency_cycles: fixed fleet synchronisation latency added
            once to the reduce term.
    """

    n_chips: int = 1
    chip_backend: str = "analytic"
    partition: str = "auto"
    reduce_bytes_per_cycle: float = 64.0
    reduce_latency_cycles: float = 200.0

    def __post_init__(self) -> None:
        if self.n_chips < 1:
            raise ValueError(f"n_chips must be >= 1, got {self.n_chips}")
        if self.chip_backend == "multichip":
            raise ValueError("chip_backend cannot be 'multichip' "
                             "(chips do not nest)")
        if self.partition not in PARTITION_STRATEGIES:
            raise ValueError(f"unknown partition strategy "
                             f"{self.partition!r}; expected one of "
                             f"{PARTITION_STRATEGIES}")
        if self.reduce_bytes_per_cycle <= 0:
            raise ValueError("reduce_bytes_per_cycle must be > 0")

    def reduce_cycles(self, output_rows: int) -> float:
        """Host reduce term: gather and rebase the per-chip row pointers
        (the values themselves stay in the owning chip's HBM) plus one
        fleet synchronisation latency."""
        if self.n_chips == 1:
            return 0.0
        traffic = output_rows * REDUCE_BYTES_PER_ROW
        return traffic / self.reduce_bytes_per_cycle + self.reduce_latency_cycles

    def broadcast_cycles(self, b_nnz: int) -> float:
        """One-time B-broadcast term: push ``b_nnz`` bytes of the
        replicated operand over the host interconnect to every chip.

        Charged only on *cold* runs — a program-cache hit on every chip
        means B is already resident on the fleet — so the cost amortizes
        across a batch of requests touching the same graph."""
        if self.n_chips == 1:
            return 0.0
        return b_nnz / self.reduce_bytes_per_cycle


@dataclass
class ChipRun:
    """Outcome of one chip executing its shard (rows unit + fragments)."""

    chip: int
    assignment: ShardAssignment
    output: CSRMatrix | None
    fragment_outputs: list[CSRMatrix]
    report: SimulationReport | None
    mmh: int
    partial_products: int
    cache_hit: bool = False

    @property
    def cycles(self) -> float:
        return self.report.cycles if self.report is not None else 0.0

    @property
    def n_rows(self) -> int:
        """Whole rows this chip owns (split rows count via fragments)."""
        return int(self.assignment.rows.size)

    @property
    def row_range(self) -> tuple[int, int] | None:
        """The contiguous ``(lo, hi)`` row range, when the assignment is
        one — the historical shape of contiguous-plan chip runs."""
        rows = self.assignment.rows
        if rows.size == 0:
            return (0, 0) if not self.assignment.fragments else None
        lo, hi = int(rows[0]), int(rows[-1]) + 1
        return (lo, hi) if hi - lo == rows.size else None


@dataclass
class MultiChipExecutionResult(ExecutionResult):
    """Aggregate result of a multi-chip execution plus per-chip detail."""

    chip_runs: list[ChipRun] = field(default_factory=list)
    topology: ChipTopology = field(default_factory=ChipTopology)
    plan: ShardPlan | None = None
    reduce_cycles: float = 0.0
    broadcast_cycles: float = 0.0
    #: Shard-unit programs compiled fresh during this execution (0 when the
    #: whole fleet ran from cached / resident programs).
    fresh_compiles: int = 0

    @property
    def n_chips(self) -> int:
        return len(self.chip_runs)

    @property
    def cache_hit(self) -> bool:
        """True when every chip's shard program came from the cache."""
        return bool(self.chip_runs) and all(run.cache_hit
                                            for run in self.chip_runs)


def _compile_shard(shard: CSRMatrix, b_csr: CSRMatrix, tile_size: int,
                   source: str, cache) -> tuple[Program, bool]:
    """Compile one shard program, going through ``cache`` (a
    :class:`~repro.core.runner.ProgramCache`, duck-typed) when given.
    Shard slices fingerprint by content, so each shard caches separately."""
    from repro.compiler.lowering import compile_spgemm

    if cache is not None:
        key = cache.key(shard, b_csr, tile_size)
        program = cache.get(key)
        if program is not None:
            return program, True
    program = compile_spgemm(csr_to_csc(shard), b_csr, tile_size=tile_size,
                             source=source)
    if cache is not None:
        cache.put(key, program)
    return program, False


@dataclass
class ResidentGraph:
    """Per-chip shard state kept resident across the layers of a GNN stack.

    Built once per (graph, feature width) by
    :meth:`MultiChipBackend.prepare_resident`: the shard plan and the
    pre-sliced per-chip units stay in host memory, and each unit's compiled
    program is cached under a *structural* key (A-shard content + B
    structure), so every subsequent layer only re-binds feature values into
    the resident programs instead of re-planning, re-slicing and
    re-compiling.
    """

    plan: ShardPlan
    units: list[list[ShardUnit]]
    tile_size: int
    source: str
    b_rows: int
    width: int


def _resident_unit_b(unit: ShardUnit, b_csr: CSRMatrix) -> CSRMatrix:
    """This layer's B operand for one resident unit: the full matrix for
    rows units, the global-column-id range slice for fragment units."""
    if unit.fragment is None:
        return b_csr
    return b_csr.col_range(unit.fragment.col_lo, unit.fragment.col_hi)


def _resident_unit_program(unit: ShardUnit, unit_b: CSRMatrix,
                           tile_size: int, source: str,
                           cache) -> tuple[Program, bool]:
    """Structural compile-once for a resident unit.

    The cache key hashes the A shard by *content* but B only by
    *structure*: the compiled instruction stream depends on B's sparsity
    pattern alone, so a hit is re-bound to this layer's values via
    :func:`~repro.compiler.program.rebind_b_values` — exactly one compile
    per (graph shard, feature structure) no matter how deep the stack."""
    from repro.compiler.lowering import compile_spgemm
    from repro.compiler.program import rebind_b_values
    from repro.core.runner import (
        CACHE_SCHEMA_VERSION,
        matrix_fingerprint,
        matrix_structure_fingerprint,
    )

    key = None
    if cache is not None:
        key = (CACHE_SCHEMA_VERSION, "gnn-stack-unit",
               matrix_fingerprint(unit.a),
               matrix_structure_fingerprint(unit_b), tile_size)
        program = cache.get(key)
        if program is not None:
            return rebind_b_values(program, unit_b), True
    program = compile_spgemm(csr_to_csc(unit.a), unit_b, tile_size=tile_size,
                             source=source)
    if cache is not None:
        cache.put(key, program)
    return program, False


def _run_chip_resident(chip: int, assignment: ShardAssignment,
                       units: list[ShardUnit], b_csr: CSRMatrix,
                       tile_size: int, source: str, chip_backend: str,
                       ctx: ExecutionContext, verify: bool,
                       cache) -> tuple[ChipRun, int]:
    """One chip's layer over its resident units; returns the run plus the
    number of unit programs compiled fresh (0 on a warm layer)."""
    backend = get_backend(chip_backend)
    rows_output: CSRMatrix | None = None
    fragment_outputs: list[CSRMatrix] = []
    reports: list[SimulationReport | None] = []
    hits: list[bool] = []
    mmh = partial_products = 0
    fresh = 0
    for unit in units:
        if unit.fragment is None:
            unit_source = f"{source}@chip{chip}"
        else:
            unit_source = (f"{source}@chip{chip}"
                           f"[r{unit.fragment.row}:c{unit.fragment.col_lo}"
                           f"-{unit.fragment.col_hi}]")
        unit_b = _resident_unit_b(unit, b_csr)
        program, cache_hit = _resident_unit_program(unit, unit_b, tile_size,
                                                    unit_source, cache)
        if not cache_hit:
            fresh += 1
        execution = backend.execute(program, ctx, a_csr=unit.a, b_csr=unit_b,
                                    verify=verify)
        if unit.fragment is None:
            rows_output = execution.output
        else:
            fragment_outputs.append(execution.output)
        reports.append(execution.report)
        hits.append(cache_hit)
        mmh += program.n_instructions
        partial_products += program.total_partial_products
    report = None
    if reports and all(r is not None for r in reports):
        report = _combine_unit_reports(reports, ctx.config, source)
    run = ChipRun(chip=chip, assignment=assignment, output=rows_output,
                  fragment_outputs=fragment_outputs, report=report,
                  mmh=mmh, partial_products=partial_products,
                  cache_hit=bool(hits) and all(hits))
    return run, fresh


def _combine_unit_reports(reports: list[SimulationReport],
                          config, source: str) -> SimulationReport:
    """One chip's report over its units, run back to back: cycles and
    activity totals summed (sequential semantics on one chip), rates
    recomputed from the sums."""
    if len(reports) == 1:
        return reports[0]
    cycles = float(sum(r.cycles for r in reports))
    n_mmh = sum(r.mmh_instructions for r in reports)
    pp = sum(r.hacc_instructions for r in reports)
    seconds = cycles / (config.frequency_ghz * 1e9)
    useful_flops = sum(r.useful_flops for r in reports)
    busy = sum(r.busy_cycles for r in reports)
    pipelines = max(1, config.total_pipelines)
    verdicts = [r.correct for r in reports]
    return SimulationReport(
        config_name=config.name,
        workload=source,
        cycles=cycles,
        mmh_instructions=n_mmh,
        hacc_instructions=pp,
        useful_flops=useful_flops,
        gflops=useful_flops / seconds / 1e9 if seconds > 0 else 0.0,
        gops=pp / seconds / 1e9 if seconds > 0 else 0.0,
        mmh_cpi_mean=float(np.mean([r.mmh_cpi_mean for r in reports])),
        hacc_cpi_mean=float(np.mean([r.hacc_cpi_mean for r in reports])),
        mmh_cpi_histogram=Histogram(bin_width=MMH_HIST_BIN_WIDTH,
                                    n_bins=MMH_HIST_BINS),
        hacc_cpi_histogram=Histogram(bin_width=HACC_HIST_BIN_WIDTH,
                                     n_bins=HACC_HIST_BINS),
        ipc=n_mmh / cycles if cycles else 0.0,
        cpi=cycles / n_mmh if n_mmh else 0.0,
        stall_cycles=sum(r.stall_cycles for r in reports),
        busy_cycles=busy,
        core_utilization=min(1.0, busy / (cycles * pipelines))
        if cycles else 0.0,
        mem_utilization=min(1.0, sum(r.mem_utilization * r.cycles
                                     for r in reports) / cycles)
        if cycles else 0.0,
        avg_inflight_mem=float(np.mean([r.avg_inflight_mem
                                        for r in reports])),
        memory_traffic_bytes=sum(r.memory_traffic_bytes for r in reports),
        evictions=sum(r.evictions for r in reports),
        spills=sum(r.spills for r in reports),
        peak_hashpad_occupancy=max(r.peak_hashpad_occupancy
                                   for r in reports),
        hashpad_occupancy_fraction=max(r.hashpad_occupancy_fraction
                                       for r in reports),
        noc_flits=sum(r.noc_flits for r in reports),
        noc_avg_hops=float(np.mean([r.noc_avg_hops for r in reports])),
        output_nnz=sum(r.output_nnz for r in reports),
        correct=None if any(v is None for v in verdicts) else all(verdicts),
        max_abs_error=max(r.max_abs_error for r in reports),
        wall_clock_seconds=sum(r.wall_clock_seconds for r in reports),
        events=sum(r.events for r in reports),
        eviction_mode=reports[0].eviction_mode,
        mapping_scheme=reports[0].mapping_scheme,
    )


def _run_chip(chip: int, assignment: ShardAssignment,
              units: list[ShardUnit], tile_size: int, source: str,
              chip_backend: str, ctx: ExecutionContext, verify: bool,
              cache) -> ChipRun:
    """Compile and execute one chip's units on a fresh per-chip context."""
    backend = get_backend(chip_backend)
    rows_output: CSRMatrix | None = None
    fragment_outputs: list[CSRMatrix] = []
    reports: list[SimulationReport | None] = []
    hits: list[bool] = []
    mmh = partial_products = 0
    for unit in units:
        if unit.fragment is None:
            unit_source = f"{source}@chip{chip}"
        else:
            unit_source = (f"{source}@chip{chip}"
                           f"[r{unit.fragment.row}:c{unit.fragment.col_lo}"
                           f"-{unit.fragment.col_hi}]")
        program, cache_hit = _compile_shard(unit.a, unit.b, tile_size,
                                            unit_source, cache)
        # The context is immutable chip *configuration*; per-chip isolation
        # comes from the backend building fresh simulator state per execute.
        execution = backend.execute(program, ctx, a_csr=unit.a, b_csr=unit.b,
                                    verify=verify)
        if unit.fragment is None:
            rows_output = execution.output
        else:
            fragment_outputs.append(execution.output)
        reports.append(execution.report)
        hits.append(cache_hit)
        mmh += program.n_instructions
        partial_products += program.total_partial_products
    report = None
    if reports and all(r is not None for r in reports):
        report = _combine_unit_reports(reports, ctx.config, source)
    return ChipRun(chip=chip, assignment=assignment, output=rows_output,
                   fragment_outputs=fragment_outputs, report=report,
                   mmh=mmh, partial_products=partial_products,
                   cache_hit=bool(hits) and all(hits))


def _chip_worker(payload: dict) -> ChipRun:
    """Process-executor entry point: rebuild the per-chip state from a
    picklable payload (the disk program cache, when configured, is shared
    through the filesystem; in-memory caches stay per-worker)."""
    from repro.core.runner import ProgramCache

    cache = None
    if payload["cache_dir"] is not None:
        cache = ProgramCache(payload["cache_capacity"],
                             cache_dir=payload["cache_dir"],
                             max_disk_bytes=payload["cache_max_disk_bytes"])
    ctx = ExecutionContext(config=payload["config"], params=payload["params"],
                           mapping_scheme=payload["mapping_scheme"],
                           mapping_seed=payload["mapping_seed"],
                           eviction_mode=payload["eviction_mode"],
                           kernel_impl=payload["kernel_impl"])
    return _run_chip(payload["chip"], payload["assignment"],
                     payload["units"], payload["tile_size"],
                     payload["source"], payload["chip_backend"], ctx,
                     payload["verify"], cache)


@register_backend("multichip")
class MultiChipBackend(ExecutionBackend):
    """Scale one SpGEMM across N chips, one row shard per chip.

    The backend is configured through attributes after construction (the
    registry instantiates backends without arguments): ``topology`` selects
    the fleet, ``cache`` an optional program cache for the per-shard
    compiles, and ``executor`` an optional
    :class:`~repro.core.executors.Executor` the per-chip work fans out on
    (chips run serially inline when unset).
    """

    def __init__(self) -> None:
        self.topology = ChipTopology()
        self.cache = None
        self.executor = None

    # ------------------------------------------------------------------
    def execute(self, program: Program, ctx: ExecutionContext,
                a_csr: CSRMatrix | None = None,
                b_csr: CSRMatrix | None = None,
                verify: bool = True) -> ExecutionResult:
        """Protocol entry point: re-plan from the operands of an already
        compiled program (each chip compiles its own shard program; the
        whole-matrix ``program`` only contributes tile size and label)."""
        if a_csr is None:
            raise ValueError("the multichip backend shards the CSR operands; "
                             "pass a_csr (and b_csr) alongside the program")
        return self.execute_operands(a_csr, b_csr, ctx,
                                     tile_size=program.tile_size,
                                     source=program.source, verify=verify)

    def execute_operands(self, a_csr: CSRMatrix, b_csr: CSRMatrix | None,
                         ctx: ExecutionContext, tile_size: int,
                         source: str = "spgemm",
                         verify: bool = True) -> MultiChipExecutionResult:
        """Plan, compile per chip, execute per chip, reduce."""
        topology = self.topology
        effective_b = b_csr if b_csr is not None else a_csr
        plan = plan_shards(a_csr, topology.n_chips, effective_b,
                           strategy=topology.partition)
        units = build_shard_units(a_csr, effective_b, plan)
        runs = self._run_chips(plan, units, ctx, tile_size, source, verify)
        output = require_valid_csr(
            stitch_shard_outputs(
                plan, [(run.output, run.fragment_outputs) for run in runs],
                effective_b.shape[1]),
            context=f"stitch:{source}")
        reduce_cycles = (topology.reduce_cycles(output.shape[0])
                         if len(runs) > 1 else 0.0)
        # B is replicated on every chip: a cold run (any shard compiled
        # fresh) pays for broadcasting it once; cache hits mean the fleet
        # already holds B, so batches amortize the term away.
        broadcast_cycles = 0.0
        if len(runs) > 1 and not all(run.cache_hit for run in runs):
            broadcast_cycles = topology.broadcast_cycles(effective_b.nnz)
        report = None
        if all(run.report is not None for run in runs):
            report = self._aggregate_report(runs, plan, output, reduce_cycles,
                                            broadcast_cycles,
                                            effective_b.nnz, ctx, source)
        return MultiChipExecutionResult(
            backend=self.name, output=output, report=report, functional=None,
            chip_runs=runs, topology=topology, plan=plan,
            reduce_cycles=reduce_cycles, broadcast_cycles=broadcast_cycles)

    # ------------------------------------------------------------------
    def prepare_resident(self, a_csr: CSRMatrix, b_csr: CSRMatrix,
                         tile_size: int,
                         source: str = "gnn-stack") -> ResidentGraph:
        """Plan and slice the fleet's shard state once for a layer stack.

        The plan and the per-chip unit slices of A are computed from the
        stack's first feature matrix and stay resident; every layer then
        executes through :meth:`execute_resident`, which only swaps feature
        values into the resident unit programs."""
        plan = plan_shards(a_csr, self.topology.n_chips, b_csr,
                           strategy=self.topology.partition)
        units = build_shard_units(a_csr, b_csr, plan)
        return ResidentGraph(plan=plan, units=units, tile_size=tile_size,
                             source=source, b_rows=b_csr.shape[0],
                             width=b_csr.shape[1])

    def execute_resident(self, resident: ResidentGraph, b_csr: CSRMatrix,
                         ctx: ExecutionContext, verify: bool = True,
                         charge_broadcast: bool = False
                         ) -> MultiChipExecutionResult:
        """Execute one layer of a stack over the resident shard state.

        Unlike :meth:`execute_operands`, nothing is re-planned or re-sliced
        and shard programs hit the structural resident cache after the first
        layer.  ``charge_broadcast`` is set by the pipeline on layer 0 only:
        resident-operand reuse means B ships to the fleet once per *stack*,
        not once per layer (and not at all when the fleet is already warm)."""
        if b_csr.shape[0] != resident.b_rows:
            raise ValueError(
                f"resident graph expects {resident.b_rows} feature rows, "
                f"got {b_csr.shape[0]}")
        topology = self.topology
        plan = resident.plan
        executor = self.executor

        def chip_job(item) -> tuple[ChipRun, int]:
            index, (assignment, chip_units) = item
            return _run_chip_resident(index, assignment, chip_units, b_csr,
                                      resident.tile_size, resident.source,
                                      topology.chip_backend, ctx, verify,
                                      self.cache)

        items = list(enumerate(zip(plan.shards, resident.units)))
        if executor is not None and executor.name == "thread":
            pairs = executor.map(chip_job, items)
        else:
            # Residency lives in this process: shipping every resident unit
            # to a process pool per layer would re-pay exactly the operand
            # movement the resident graph exists to avoid, so chips run
            # inline for serial / process executors.
            pairs = [chip_job(item) for item in items]
        runs = [run for run, _ in pairs]
        fresh_compiles = sum(fresh for _, fresh in pairs)
        output = require_valid_csr(
            stitch_shard_outputs(
                plan, [(run.output, run.fragment_outputs) for run in runs],
                b_csr.shape[1]),
            context=f"stitch:{resident.source}")
        reduce_cycles = (topology.reduce_cycles(output.shape[0])
                         if len(runs) > 1 else 0.0)
        broadcast_cycles = 0.0
        if (charge_broadcast and len(runs) > 1
                and not all(run.cache_hit for run in runs)):
            broadcast_cycles = topology.broadcast_cycles(b_csr.nnz)
        report = None
        if all(run.report is not None for run in runs):
            report = self._aggregate_report(runs, plan, output, reduce_cycles,
                                            broadcast_cycles, b_csr.nnz, ctx,
                                            resident.source)
        return MultiChipExecutionResult(
            backend=self.name, output=output, report=report, functional=None,
            chip_runs=runs, topology=topology, plan=plan,
            reduce_cycles=reduce_cycles, broadcast_cycles=broadcast_cycles,
            fresh_compiles=fresh_compiles)

    # ------------------------------------------------------------------
    def _run_chips(self, plan: ShardPlan, units: list[list[ShardUnit]],
                   ctx: ExecutionContext, tile_size: int, source: str,
                   verify: bool) -> list[ChipRun]:
        topology = self.topology
        executor = self.executor
        if executor is not None and executor.name == "process":
            # Each payload ships its chip's pre-sliced units, including a
            # full copy of B for rows units (the executor abstraction has
            # no pool-initializer hook to broadcast B once per worker);
            # chip counts are small, so the duplicated serialization is
            # bounded at n_chips * nnz(B).
            cache_dir = getattr(self.cache, "cache_dir", None)
            payloads = [{
                "chip": index, "assignment": assignment,
                "units": chip_units,
                "tile_size": tile_size, "source": source,
                "chip_backend": topology.chip_backend, "verify": verify,
                "config": ctx.config, "params": ctx.params,
                "mapping_scheme": ctx.mapping_scheme,
                "mapping_seed": ctx.mapping_seed,
                "eviction_mode": ctx.eviction_mode,
                "kernel_impl": ctx.kernel_impl,
                "cache_dir": cache_dir,
                "cache_capacity": getattr(self.cache, "capacity", 0),
                "cache_max_disk_bytes": getattr(self.cache,
                                                "max_disk_bytes", None),
            } for index, (assignment, chip_units)
                in enumerate(zip(plan.shards, units))]
            return executor.map(_chip_worker, payloads)

        def chip_job(item) -> ChipRun:
            index, (assignment, chip_units) = item
            return _run_chip(index, assignment, chip_units, tile_size,
                             source, topology.chip_backend, ctx, verify,
                             self.cache)

        items = list(enumerate(zip(plan.shards, units)))
        if executor is None:
            return [chip_job(item) for item in items]
        return executor.map(chip_job, items)

    # ------------------------------------------------------------------
    def _aggregate_report(self, runs: list[ChipRun], plan: ShardPlan,
                          output: CSRMatrix, reduce_cycles: float,
                          broadcast_cycles: float, b_nnz: int,
                          ctx: ExecutionContext,
                          source: str) -> SimulationReport:
        """Fleet-level report: cycles = max over chips + host reduce +
        cold-run B broadcast, activity totals summed, shard-skew counters
        recorded."""
        config = ctx.config
        reports = [run.report for run in runs]
        chip_cycles = [report.cycles for report in reports]
        cycles = float(max(chip_cycles) + reduce_cycles + broadcast_cycles)
        n_mmh = sum(run.mmh for run in runs)
        pp = sum(run.partial_products for run in runs)
        pp_per_chip = [run.partial_products for run in runs]
        mean_pp = pp / len(runs) if runs else 0.0
        skew = max(pp_per_chip) / mean_pp if mean_pp else 1.0
        seconds = cycles / (config.frequency_ghz * 1e9)
        useful_flops = sum(report.useful_flops for report in reports)
        busy = sum(report.busy_cycles for report in reports)
        pipelines = max(1, config.total_pipelines)
        verdicts = [report.correct for report in reports]
        counters = {
            "multichip.n_chips": len(runs),
            "multichip.reduce_cycles": round(reduce_cycles, 1),
            "multichip.broadcast_cycles": round(broadcast_cycles, 1),
            "multichip.broadcast_bytes": 0 if broadcast_cycles == 0.0
            else b_nnz,
            "multichip.shard_skew": round(skew, 4),
            "multichip.efficiency": round(
                pp / (len(runs) * max(pp_per_chip)), 4) if pp else 1.0,
            "multichip.split_rows": len(plan.split_rows),
        }
        for run in runs:
            counters[f"multichip.chip{run.chip}.cycles"] = run.cycles
            counters[f"multichip.chip{run.chip}.rows"] = run.n_rows
            counters[f"multichip.chip{run.chip}.fragments"] = \
                len(run.assignment.fragments)
            counters[f"multichip.chip{run.chip}.partial_products"] = \
                run.partial_products
        return SimulationReport(
            config_name=f"{config.name}x{len(runs)}",
            workload=source,
            cycles=cycles,
            mmh_instructions=n_mmh,
            hacc_instructions=pp,
            useful_flops=useful_flops,
            gflops=useful_flops / seconds / 1e9 if seconds > 0 else 0.0,
            gops=pp / seconds / 1e9 if seconds > 0 else 0.0,
            mmh_cpi_mean=float(np.mean([r.mmh_cpi_mean for r in reports])),
            hacc_cpi_mean=float(np.mean([r.hacc_cpi_mean for r in reports])),
            mmh_cpi_histogram=Histogram(bin_width=MMH_HIST_BIN_WIDTH,
                                        n_bins=MMH_HIST_BINS),
            hacc_cpi_histogram=Histogram(bin_width=HACC_HIST_BIN_WIDTH,
                                         n_bins=HACC_HIST_BINS),
            ipc=n_mmh / cycles if cycles else 0.0,
            cpi=cycles / n_mmh if n_mmh else 0.0,
            stall_cycles=sum(r.stall_cycles for r in reports),
            busy_cycles=busy,
            core_utilization=min(1.0, busy / (cycles * pipelines * len(runs)))
            if cycles else 0.0,
            mem_utilization=min(1.0, sum(
                r.mem_utilization * r.cycles for r in reports)
                / (cycles * len(runs))) if cycles else 0.0,
            avg_inflight_mem=sum(r.avg_inflight_mem for r in reports),
            memory_traffic_bytes=sum(r.memory_traffic_bytes for r in reports),
            evictions=sum(r.evictions for r in reports),
            spills=sum(r.spills for r in reports),
            peak_hashpad_occupancy=max(r.peak_hashpad_occupancy
                                       for r in reports),
            hashpad_occupancy_fraction=max(r.hashpad_occupancy_fraction
                                           for r in reports),
            noc_flits=sum(r.noc_flits for r in reports),
            noc_avg_hops=float(np.mean([r.noc_avg_hops for r in reports])),
            output_nnz=output.nnz,
            correct=None if any(v is None for v in verdicts)
            else all(verdicts),
            max_abs_error=max(r.max_abs_error for r in reports),
            wall_clock_seconds=sum(r.wall_clock_seconds for r in reports),
            events=sum(r.events for r in reports),
            eviction_mode=ctx.eviction_mode,
            mapping_scheme=ctx.mapping_scheme,
            counters=counters,
        )

#: Trust band for :func:`predict_scaleout`: on the recorded scaling curve
#: (``benchmarks/results/bench_multichip.json``) the predicted speedup must
#: stay within this multiplicative factor of the measured cycle-model
#: speedup.  The prediction is an upper bound (it ignores the per-chip
#: latency floor, the host reduce term, and the cold-run B broadcast), so
#: the gap is one-sided; ``tests/test_scaleout_calibration.py`` pins it —
#: the same contract as the analytic backend's ±25% ``CALIBRATED_TOLERANCE``.
SCALEOUT_CALIBRATION_BAND = 1.25


def predict_scaleout(a_csr: CSRMatrix, n_chips: int,
                     b_csr: CSRMatrix | None = None,
                     partition: str = "auto") -> dict:
    """Analytic fast path: predict scale-out efficiency without simulating.

    Uses only the per-shard partial-product histogram the planner would
    produce: the fleet finishes when its most loaded chip does, so the
    throughput-bound speedup is ``total_pp / max_shard_pp`` and the
    efficiency is that speedup over the chip count.  The prediction is an
    *upper bound* — it ignores the per-chip latency floor and the host
    reduce term — and is trustworthy when per-chip work dominates both
    (large graphs on throughput-bound configurations); distrust it on tiny
    or extremely sparse shards where the latency floor sets the runtime.

    ``partition`` selects the planning strategy exactly like
    :class:`ChipTopology.partition`, so the predicted plan (including the
    planner's structurally-empty-product fallback, shared through
    :func:`~repro.sparse.partition.resolve_shard_weights`) is the plan
    ``execute_operands`` actually runs.

    Returns a dict with ``n_chips`` (effective, after degenerate-input
    clamping), ``strategy`` (the plan the probe chose), ``split_rows``,
    ``shard_partial_products``, ``shard_rows``, ``shard_fragments``,
    ``skew`` (max/mean shard load), ``efficiency`` and
    ``predicted_speedup``.
    """
    plan = plan_shards(a_csr, n_chips, b_csr, strategy=partition)
    loads = plan.loads
    total = int(loads.sum())
    peak = int(loads.max()) if loads.size else 0
    speedup = total / peak if peak else 1.0
    return {
        "n_chips": plan.n_shards,
        "strategy": plan.strategy,
        "split_rows": len(plan.split_rows),
        "shard_rows": [int(shard.rows.size) for shard in plan.shards],
        "shard_fragments": [len(shard.fragments) for shard in plan.shards],
        "shard_partial_products": loads.tolist(),
        "skew": round(plan.skew, 4),
        "efficiency": round(speedup / plan.n_shards, 4)
        if plan.n_shards else 1.0,
        "predicted_speedup": round(speedup, 4),
    }
