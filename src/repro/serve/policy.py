"""Micro-batch scheduling policy for multi-chip sessions.

A batch of jobs on an N-chip fleet can be scheduled two ways:

* **all chips per job** (scale *up*): every job is row-sharded across all
  N chips by the ``multichip`` backend and the batch runs job after job.
  Best when jobs are scarce relative to chips, or when shards balance
  well (high predicted scale-out efficiency).
* **whole jobs per chip** (scale *out*): each chip takes complete jobs,
  unsplit, and the batch drains in ``ceil(jobs / chips)`` waves.  Best
  when jobs outnumber chips — there is no host reduce, no B broadcast,
  and no shard skew to pay for.

:func:`choose_schedule` picks between them per micro-batch using
:func:`~repro.backends.multichip.predict_scaleout`'s per-shard
partial-product histogram — the analytic fast path, so the decision costs
one planner pass over the operand index arrays, no compilation and no
simulation.  The modelled batch makespans are::

    all-chips-per-job:  n_jobs / predicted_speedup   (job units)
    whole-jobs-per-chip: ceil(n_jobs / n_chips)      (job units)

and the smaller one wins (ties go to all-chips-per-job, which also gives
the lowest single-request latency).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.backends.multichip import ChipTopology, predict_scaleout
from repro.core.specs import SpGEMMSpec, WorkloadSpec

#: Every job is row-sharded across the whole fleet (scale up).
ALL_CHIPS_PER_JOB = "all-chips-per-job"

#: Each chip runs complete jobs, unsplit (scale out).
WHOLE_JOBS_PER_CHIP = "whole-jobs-per-chip"


@dataclass(frozen=True)
class ScheduleDecision:
    """Outcome of one per-batch scheduling decision.

    Attributes:
        mode: :data:`ALL_CHIPS_PER_JOB` or :data:`WHOLE_JOBS_PER_CHIP`.
        n_jobs: batch size the decision was made for.
        n_chips: fleet size considered.
        predicted_speedup: ``predict_scaleout``'s per-job speedup estimate
            for splitting one representative job across the fleet.
        reason: human-readable justification, surfaced in ``/stats``.
        partition: the partition strategy the predicted plan used
            ('contiguous' or 'degree'; 'contiguous' on the degenerate
            paths that never consult the planner).
    """

    mode: str
    n_jobs: int
    n_chips: int
    predicted_speedup: float
    reason: str
    partition: str = "contiguous"

    @property
    def scale_out(self) -> bool:
        return self.mode == WHOLE_JOBS_PER_CHIP


def predicted_backlog_makespan_s(queue_depth: int, max_batch: int,
                                 batch_seconds: float) -> float:
    """Predicted seconds to drain ``queue_depth`` queued requests plus
    one more (the request asking) through micro-batches of ``max_batch``,
    each predicted to take ``batch_seconds``.

    This is the serving layer's ``Retry-After`` arithmetic: the backlog
    drains in ``ceil((depth + 1) / max_batch)`` waves, and each wave's
    cost comes from the batcher's makespan EWMA (on the analytic backend,
    the model's own predicted batch cost — see
    :meth:`~repro.serve.batcher.MicroBatcher.predicted_batch_seconds`).
    """
    waves = max(1, math.ceil((max(0, queue_depth) + 1) / max(1, max_batch)))
    return waves * max(0.0, batch_seconds)


def _representative_spgemm(specs: Sequence[WorkloadSpec]) -> SpGEMMSpec | None:
    """The largest SpGEMM spec (by nnz of A) carrying a CSR-shaped operand
    — the one whose shard histogram dominates the batch makespan."""
    best = None
    best_nnz = -1
    for spec in specs:
        if not isinstance(spec, SpGEMMSpec):
            continue
        nnz = getattr(spec.a, "nnz", None)
        if nnz is not None and nnz > best_nnz:
            best, best_nnz = spec, nnz
    return best


def choose_schedule(specs: Sequence[WorkloadSpec],
                    topology: ChipTopology | None) -> ScheduleDecision:
    """Pick the batch schedule for ``specs`` on ``topology``.

    Single-chip sessions (``topology`` is ``None`` or one chip) and
    single-job batches always scale up; otherwise the modelled makespans
    of the two policies are compared (see module docstring).
    """
    n_jobs = len(specs)
    n_chips = topology.n_chips if topology is not None else 1
    if n_chips <= 1:
        return ScheduleDecision(ALL_CHIPS_PER_JOB, n_jobs, n_chips, 1.0,
                                "single-chip session")
    if n_jobs <= 1:
        return ScheduleDecision(
            ALL_CHIPS_PER_JOB, n_jobs, n_chips, float(n_chips),
            "one job in the batch: splitting it is the only parallelism")
    representative = _representative_spgemm(specs)
    if representative is None:
        return ScheduleDecision(
            ALL_CHIPS_PER_JOB, n_jobs, n_chips, float(n_chips),
            "no CSR SpGEMM operand to predict a shard histogram from")
    b = representative.b if representative.b is not None else None
    prediction = predict_scaleout(representative.a, n_chips, b,
                                  partition=topology.partition)
    strategy = prediction["strategy"]
    speedup = max(1.0, prediction["predicted_speedup"])
    scale_up_makespan = n_jobs / speedup
    scale_out_makespan = float(math.ceil(n_jobs / n_chips))
    if scale_out_makespan < scale_up_makespan:
        return ScheduleDecision(
            WHOLE_JOBS_PER_CHIP, n_jobs, n_chips, speedup,
            f"{n_jobs} jobs drain in {int(scale_out_makespan)} wave(s) on "
            f"{n_chips} chips; splitting predicts only {speedup:.2f}x/job "
            f"({strategy} plan)", partition=strategy)
    return ScheduleDecision(
        ALL_CHIPS_PER_JOB, n_jobs, n_chips, speedup,
        f"predicted {speedup:.2f}x/job split ({strategy} plan) beats "
        f"{int(scale_out_makespan)} wave(s) of whole jobs",
        partition=strategy)
