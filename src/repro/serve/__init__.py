"""Async serving subsystem: request queue -> micro-batches -> Session.

Long-lived serving for the NeuraChip reproduction.  Requests (SpGEMM or
GCN-layer specs) enter a bounded :class:`RequestQueue`, the
:class:`MicroBatcher` coalesces them into size/deadline-bounded
micro-batches dispatched through one
:class:`~repro.core.session.Session` (amortising the persistent program
cache across requests), a scheduling policy picks between splitting each
job across all chips and packing whole jobs onto individual chips on
multi-chip fleets, and :class:`ReproServer` fronts the whole stack with a
stdlib-only asyncio HTTP/1.1 + JSON server (``repro serve`` on the CLI).

The queue is multi-tenant (see :mod:`repro.serve.sched`): per-tenant
EDF lanes under weighted fair queueing, token-bucket/quota admission
control with computed ``Retry-After`` hints, and per-tenant accounting
surfaced at ``GET /v1/tenants``.

Serving results are byte-identical to a direct ``session.run`` of the
same spec; micro-batching only changes *when* and *where* work runs,
never what it computes.
"""

from repro.serve.batcher import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_DELAY_MS,
    MicroBatcher,
    ServingStats,
)
from repro.serve.http import (
    DEFAULT_REQUEST_TIMEOUT_S,
    BackgroundServer,
    ReproServer,
)
from repro.serve.policy import (
    ALL_CHIPS_PER_JOB,
    WHOLE_JOBS_PER_CHIP,
    ScheduleDecision,
    choose_schedule,
)
from repro.serve.queue import (
    DEFAULT_QUEUE_DEPTH,
    FAIR_SCHEDULING,
    FIFO_SCHEDULING,
    QueueClosed,
    QueueOverflow,
    RequestQueue,
    ServeError,
    ServeRequest,
    ServeTimeout,
)
from repro.serve.sched import (
    DEFAULT_TENANT,
    AdmissionController,
    AdmissionError,
    QuotaExceeded,
    RateLimited,
    TenantConfig,
    TenantTable,
    WFQScheduler,
)

__all__ = [
    "ReproServer",
    "BackgroundServer",
    "MicroBatcher",
    "ServingStats",
    "RequestQueue",
    "ServeRequest",
    "ServeError",
    "QueueOverflow",
    "QueueClosed",
    "ServeTimeout",
    "ScheduleDecision",
    "choose_schedule",
    "ALL_CHIPS_PER_JOB",
    "WHOLE_JOBS_PER_CHIP",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_DELAY_MS",
    "DEFAULT_QUEUE_DEPTH",
    "DEFAULT_REQUEST_TIMEOUT_S",
    "DEFAULT_TENANT",
    "FAIR_SCHEDULING",
    "FIFO_SCHEDULING",
    "AdmissionController",
    "AdmissionError",
    "RateLimited",
    "QuotaExceeded",
    "TenantConfig",
    "TenantTable",
    "WFQScheduler",
]
