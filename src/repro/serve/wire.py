"""Binary CSR wire format: ``application/x-repro-csr``.

The serving layer's JSON encoding pays for itself on small metric rows
but is ruinous for operands and products: a multi-megabyte CSR inflates
through ``json.dumps`` into one contiguous text body that the asyncio
front-end must buffer twice (arrays -> text -> socket).  This module
defines the binary alternative: an NPY-style *frame* that carries the
three CSR segments as raw little-endian buffers behind a fixed header,
plus an optional JSON metadata blob (the ``RunResult.as_row()`` payload
on response frames, free-form hints on upload frames).

Frame layout (all integers little-endian)::

    offset  size            field
    ------  --------------  ---------------------------------------------
    0       4               magic  b"RCSR"
    4       1               format version (currently 1)
    5       1               flags  (bit 0: metadata blob present)
    6       2               reserved (must be 0)
    8       8               n_rows   (int64)
    16      8               n_cols   (int64)
    24      8               nnz      (int64)
    32      4               meta_len (uint32; 0 when flags bit 0 clear)
    36      meta_len        metadata: UTF-8 JSON object
    ...     (n_rows+1)*8    indptr   (int64)
    ...     nnz*8           indices  (int64)
    ...     nnz*8           data     (float64)

The total frame length is fully determined by the header, so a receiver
can reject truncated or padded bodies before touching the payload —
every malformed frame raises :class:`WireFormatError`, which the HTTP
front-end maps to ``400``.

Encoding is zero-copy where the platform allows it:
:func:`encode_csr_frames` returns the header plus *views* of the CSR's
own array buffers (numpy int64/float64 arrays on little-endian hosts are
already wire-shaped), so the HTTP layer can stream each segment straight
into the socket — chunked — without ever materialising the whole body.
"""

from __future__ import annotations

import json
import struct
from typing import Any

import numpy as np

from repro.analysis.structure import require_valid_csr
from repro.sparse.csr import CSRMatrix

#: Content type negotiated on upload (``Content-Type``) and response
#: (``Accept``) paths of the serving HTTP front-end.
WIRE_CONTENT_TYPE = "application/x-repro-csr"

#: Frame magic and the single format version this codec speaks.
WIRE_MAGIC = b"RCSR"
WIRE_VERSION = 1

#: Flags bit 0: a JSON metadata blob follows the fixed header.
_FLAG_META = 0x01

#: ``<`` little-endian: magic, version, flags, reserved, n_rows, n_cols,
#: nnz, meta_len.
_HEADER = struct.Struct("<4sBBHqqqI")
HEADER_BYTES = _HEADER.size  # 36

_INT64 = np.dtype("<i8")
_FLOAT64 = np.dtype("<f8")


class WireFormatError(ValueError):
    """A binary frame is truncated, padded, or structurally invalid."""


def _wire_buffer(array: np.ndarray, dtype: np.dtype) -> memoryview:
    """A little-endian contiguous buffer view of ``array``.

    On little-endian hosts (every platform the repo targets) the CSR's
    own int64/float64 buffers already match the wire layout, so this is
    a view, not a copy.
    """
    wire = np.ascontiguousarray(np.asarray(array), dtype=dtype)
    return wire.data.cast("B")


def encode_csr_frames(csr: CSRMatrix,
                      meta: dict[str, Any] | None = None) -> list:
    """Encode ``csr`` as a list of wire segments (header first).

    The segments concatenate into one valid frame; keeping them separate
    lets the HTTP layer stream each as its own chunk so large products
    are never buffered twice.  ``meta`` (optional) rides along as a JSON
    blob — response frames put the flat metrics row here.
    """
    meta_blob = b"" if meta is None else json.dumps(meta).encode()
    flags = _FLAG_META if meta is not None else 0
    header = _HEADER.pack(WIRE_MAGIC, WIRE_VERSION, flags, 0,
                          csr.shape[0], csr.shape[1], csr.nnz,
                          len(meta_blob))
    return [header + meta_blob,
            _wire_buffer(csr.indptr, _INT64),
            _wire_buffer(csr.indices, _INT64),
            _wire_buffer(csr.data, _FLOAT64)]


def encode_csr(csr: CSRMatrix, meta: dict[str, Any] | None = None) -> bytes:
    """Encode ``csr`` (and optional metadata) as one contiguous frame."""
    return b"".join(encode_csr_frames(csr, meta))


def frames_nbytes(frames: list) -> int:
    """Total byte length of a segment list from :func:`encode_csr_frames`."""
    return sum(len(frame) for frame in frames)


def decode_csr(body: bytes) -> tuple[CSRMatrix, dict[str, Any] | None]:
    """Decode one frame into ``(matrix, metadata)``.

    Raises:
        WireFormatError: bad magic/version, truncated or padded body,
            inconsistent header counts, undecodable metadata, or CSR
            structural invariants violated (``indptr`` not matching
            ``nnz``, column ids out of range, ...).
    """
    body = bytes(body)
    if len(body) < HEADER_BYTES:
        raise WireFormatError(
            f"frame truncated: {len(body)} bytes is shorter than the "
            f"{HEADER_BYTES}-byte header")
    magic, version, flags, reserved, n_rows, n_cols, nnz, meta_len = \
        _HEADER.unpack_from(body)
    if magic != WIRE_MAGIC:
        raise WireFormatError(f"bad magic {magic!r}; expected {WIRE_MAGIC!r}")
    if version != WIRE_VERSION:
        raise WireFormatError(f"unsupported wire version {version}; "
                              f"this codec speaks {WIRE_VERSION}")
    if reserved != 0 or flags & ~_FLAG_META:
        raise WireFormatError("reserved header bits set; refusing frame")
    if n_rows < 0 or n_cols < 0 or nnz < 0:
        raise WireFormatError("negative dimension in frame header")
    if not flags & _FLAG_META and meta_len != 0:
        raise WireFormatError("meta_len set but metadata flag clear")
    expected = (HEADER_BYTES + meta_len
                + (n_rows + 1) * 8 + nnz * 8 + nnz * 8)
    if len(body) != expected:
        raise WireFormatError(
            f"frame length mismatch: header describes {expected} bytes, "
            f"got {len(body)} (truncated or padded body)")
    offset = HEADER_BYTES
    meta: dict[str, Any] | None = None
    if flags & _FLAG_META:
        try:
            meta = json.loads(body[offset:offset + meta_len].decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            raise WireFormatError(f"undecodable frame metadata: {err}") \
                from err
        if not isinstance(meta, dict):
            raise WireFormatError("frame metadata must be a JSON object")
        offset += meta_len
    indptr = np.frombuffer(body, dtype=_INT64, count=n_rows + 1,
                           offset=offset).copy()
    offset += (n_rows + 1) * 8
    indices = np.frombuffer(body, dtype=_INT64, count=nnz,
                            offset=offset).copy()
    offset += nnz * 8
    data = np.frombuffer(body, dtype=_FLOAT64, count=nnz,
                         offset=offset).copy()
    try:
        matrix = CSRMatrix(indptr, indices, data, (n_rows, n_cols))
        require_valid_csr(matrix, context="wire-decode")
    except ValueError as err:  # structural invariants (incl. StructureError)
        raise WireFormatError(f"frame payload is not a valid CSR: {err}") \
            from err
    return matrix, meta
