"""Asyncio HTTP/1.1 front-end for the serving subsystem (stdlib only).

:class:`ReproServer` glues the serving stack together: a bounded
:class:`~repro.serve.queue.RequestQueue`, the
:class:`~repro.serve.batcher.MicroBatcher` dispatching micro-batches
through one :class:`~repro.core.session.Session`, and an
``asyncio.start_server`` loop speaking just enough HTTP/1.1 + JSON for
clients, load balancers, and the CI smoke test.  No third-party web
framework is involved.

Endpoints::

    GET  /healthz             liveness: status, backend, config, chip
                              count, partition strategy
    GET  /stats               queue depth, batch sizes, coalescing, shed
                              count, scheduling decisions, cache hit rate,
                              p50/p95 latency, bytes in/out, registry
                              hit/eviction counters, multichip telemetry,
                              per-tenant accounting rows
    GET  /v1/tenants          per-tenant policy (weight, rate, quota),
                              admission state (in-flight, tokens), WFQ
                              accounting (vtime, charged/refunded) and
                              serving counters (admitted, rejected,
                              deadline misses, p50/p95)
    PUT  /v1/operands         register an operand (binary x-repro-csr
                              frame, inline JSON arrays, or a named
                              generator dataset) -> content-digest ref
    GET  /v1/operands         list resident operands + registry counters
    GET  /v1/operands/<ref>   operand metadata; ``Accept:
                              application/x-repro-csr`` downloads the
                              operand as a binary frame
    DELETE /v1/operands/<ref> evict one operand (409 while pinned)
    POST /v1/spgemm           one SpGEMM request -> RunResult.as_row()
    POST /v1/gcn              one GCN-layer request -> RunResult.as_row()
    POST /v1/gnn              one multi-layer GNN stack over a resident
                              graph (compile-once, layer-pipelined)
                              -> RunResult.as_row()

An SpGEMM body names a dataset (synthesised server-side and cached),
carries explicit CSR arrays, or references registered operands::

    {"dataset": "wiki-Vote", "max_nodes": 256, "seed": 0, "label": "r1"}
    {"a": {"indptr": [...], "indices": [...], "data": [...],
           "shape": [4, 4]}, "b": {...}, "include_output": true}
    {"a": {"ref": "<digest>"}, "b": {"ref": "<digest>"}}

Responses are the flat ``RunResult.as_row()`` payload (cycles, gops, op
counts, provenance, cache_hit, wall time); ``include_output`` adds the
raw CSR arrays of the product.  An SpGEMM request with ``Accept:
application/x-repro-csr`` receives the product as a **binary frame**
instead (the metrics row rides in the frame's metadata blob), streamed
with chunked transfer once it crosses :data:`CHUNKED_MIN_BYTES` so large
products are never buffered twice.

Workload requests identify their tenant with the ``X-Repro-Tenant``
header (absent -> the ``default`` tenant); scheduling, admission control
and accounting all key off it.  Admission rejections map to ``429``
(token-bucket rate limit or in-flight quota) with a ``Retry-After``
header and a ``retry_after_s`` body field derived from the predicted
backlog makespan; bounded-queue overflow maps to ``503`` (same
``Retry-After`` arithmetic); expired deadlines to a structured ``504``
``{"error": "deadline", "tenant": ..., "queued_ms": ...}``; malformed
bodies (JSON or binary frames) to ``400``; unsupported ``Content-Type``
to ``415``; dangling operand refs to ``404``; and oversized bodies to
``413`` — rejected from the ``Content-Length`` header alone, before any
body bytes are buffered.

Failure semantics worth knowing when writing a client: results are
byte-identical to a direct ``Session.run`` of the same spec, verification
defaults to *off* for serving traffic (pass ``"verify": true`` with the
``cycle`` backend to re-enable it), and a ``Connection: close`` request
header is honoured while anything else keeps the connection alive.
"""

from __future__ import annotations

import asyncio
import json
import math
import re
import signal
import threading
from collections import OrderedDict
from typing import Any

import numpy as np

from repro.core.session import Session
from repro.core.specs import (
    GCNLayerSpec,
    GNNModelSpec,
    OperandRef,
    SpGEMMSpec,
)
from repro.datasets.suite import load_dataset
from repro.serve.batcher import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_DELAY_MS,
    MicroBatcher,
    ServingStats,
)
from repro.serve.queue import (
    DEFAULT_QUEUE_DEPTH,
    FAIR_SCHEDULING,
    QueueClosed,
    QueueOverflow,
    RequestQueue,
    ServeTimeout,
)
from repro.serve.sched import (
    AdmissionController,
    AdmissionError,
    DEFAULT_TENANT,
    QuotaExceeded,
    TenantTable,
)
from repro.serve.registry import (
    DEFAULT_REGISTRY_BYTES,
    OperandPinned,
    OperandRegistry,
    RegistryFull,
    UnknownOperand,
)
from repro.serve.wire import (
    WIRE_CONTENT_TYPE,
    WireFormatError,
    decode_csr,
    encode_csr_frames,
    frames_nbytes,
)
from repro.sparse.convert import csr_to_coo
from repro.sparse.csr import CSRMatrix

#: Largest accepted request body (explicit CSR operands dominate sizing).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Default per-request deadline, queue wait + execution.
DEFAULT_REQUEST_TIMEOUT_S = 60.0

#: Binary responses at or above this size stream as chunked transfer
#: (one chunk per frame segment); smaller ones go out with
#: ``Content-Length`` to spare tiny products the chunk framing.
CHUNKED_MIN_BYTES = 64 * 1024

#: Bound on the server-side dataset cache; the key (name, max_nodes,
#: seed) is client-controlled, so the cache is LRU-swept — like every
#: other buffer in the serving layer, it must not grow with traffic.
MAX_CACHED_DATASETS = 32

#: Request content types the front-end accepts; anything else is 415.
_ACCEPTED_CONTENT_TYPES = ("", "application/json", WIRE_CONTENT_TYPE)

_STATUS_TEXT = {200: "OK", 400: "Bad Request", 404: "Not Found",
                405: "Method Not Allowed", 406: "Not Acceptable",
                409: "Conflict", 413: "Payload Too Large",
                415: "Unsupported Media Type", 429: "Too Many Requests",
                500: "Internal Server Error", 503: "Service Unavailable",
                504: "Gateway Timeout"}

#: Request header naming the calling tenant (absent -> default tenant).
TENANT_HEADER = "x-repro-tenant"

#: Accepted tenant names: short, filesystem/log-safe identifiers.
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def _jsonable(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays so json.dumps accepts
    every RunResult metrics row."""
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def _parse_csr(obj: Any, field: str) -> CSRMatrix:
    """Build a CSRMatrix from the JSON operand encoding."""
    if not isinstance(obj, dict):
        raise ValueError(f"operand {field!r} must be an object with "
                         "indptr/indices/data/shape")
    missing = [key for key in ("indptr", "indices", "data", "shape")
               if key not in obj]
    if missing:
        raise ValueError(f"operand {field!r} is missing {missing}")
    return CSRMatrix(np.asarray(obj["indptr"], dtype=np.int64),
                     np.asarray(obj["indices"], dtype=np.int64),
                     np.asarray(obj["data"], dtype=np.float64),
                     tuple(obj["shape"]))


def _parse_operand(obj: Any, field: str) -> CSRMatrix | OperandRef:
    """Parse one workload operand: a registry ref or inline CSR arrays."""
    if isinstance(obj, dict) and "ref" in obj:
        ref = obj["ref"]
        if not isinstance(ref, str) or not ref:
            raise ValueError(f"operand {field!r}: 'ref' must be a "
                             "non-empty string digest")
        return OperandRef(ref)
    return _parse_csr(obj, field)


def _content_type(headers: dict[str, str]) -> str:
    """The media type of the request body (parameters stripped)."""
    return headers.get("content-type", "").split(";")[0].strip().lower()


def _accepts_wire(headers: dict[str, str]) -> bool:
    """True when the client asked for a binary x-repro-csr response."""
    accept = headers.get("accept", "")
    return any(part.split(";")[0].strip().lower() == WIRE_CONTENT_TYPE
               for part in accept.split(","))


class _BinaryPayload:
    """A binary response: wire segments streamed instead of a JSON dict."""

    __slots__ = ("frames", "nbytes")

    def __init__(self, frames: list) -> None:
        self.frames = frames
        self.nbytes = frames_nbytes(frames)


class ReproServer:
    """The serving subsystem, assembled: queue + micro-batcher + HTTP.

    Args:
        session: configured :class:`Session` every request executes on.
        host / port: bind address; ``port=0`` picks an ephemeral port
            (read :attr:`port` after :meth:`start` for the real one).
        max_batch / max_delay_ms: micro-batch coalescing window.
        queue_depth: bounded-queue size; beyond it requests are shed (503).
        request_timeout_s: per-request deadline (queue wait + execution).
        coalesce: serve operand-identical requests from one execution.
        registry_max_bytes: byte cap on the content-addressed operand
            registry (LRU-swept beyond it).
        tenants: multi-tenant policy table (weights, rate limits,
            quotas); a fresh default table when omitted, so
            single-tenant deployments need no setup.
        scheduling: queue ordering — ``"fair"`` (WFQ across tenants, EDF
            within each; the default) or ``"fifo"`` (arrival order).
    """

    def __init__(self, session: Session, host: str = "127.0.0.1",
                 port: int = 8077, *,
                 max_batch: int = DEFAULT_MAX_BATCH,
                 max_delay_ms: float = DEFAULT_MAX_DELAY_MS,
                 queue_depth: int = DEFAULT_QUEUE_DEPTH,
                 request_timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S,
                 coalesce: bool = True,
                 registry_max_bytes: int = DEFAULT_REGISTRY_BYTES,
                 tenants: TenantTable | None = None,
                 scheduling: str = FAIR_SCHEDULING) -> None:
        self.session = session
        self.host = host
        self.port = port
        self.request_timeout_s = request_timeout_s
        self.stats = ServingStats()
        self.registry = OperandRegistry(registry_max_bytes)
        self.tenants = tenants if tenants is not None else TenantTable()
        self.admission = AdmissionController(
            self.tenants,
            makespan_fn=lambda: self.batcher.predicted_makespan_s())
        self.queue = RequestQueue(
            max_depth=queue_depth, tenants=self.tenants,
            admission=self.admission, scheduling=scheduling,
            retry_after_fn=lambda: self.batcher.predicted_makespan_s())
        self.batcher = MicroBatcher(session, self.queue,
                                    max_batch=max_batch,
                                    max_delay_ms=max_delay_ms,
                                    coalesce=coalesce, stats=self.stats)
        self._server: asyncio.base_events.Server | None = None
        self._datasets: OrderedDict = OrderedDict()  # guarded-by: _dataset_lock
        self._dataset_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "ReproServer":
        """Start the batcher thread and bind the listening socket."""
        self.batcher.start()
        self._server = await asyncio.start_server(self._handle_connection,
                                                  self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        """Stop accepting connections, drain the batcher, release the
        session's serving resources (the session itself stays open —
        the caller owns it)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await asyncio.to_thread(self.batcher.stop)

    async def run_forever(self) -> None:
        """Start, announce the bound address, and serve until SIGINT /
        SIGTERM (clean shutdown) — the ``repro serve`` entry point."""
        await self.start()
        print(f"repro serve listening on http://{self.host}:{self.port} "
              f"(backend={self.session.backend}, "
              f"config={self.session.chip.config.name}, "
              f"max_batch={self.batcher.max_batch}, "
              f"max_delay_ms={self.batcher.max_delay_s * 1e3:g})",
              flush=True)
        loop = asyncio.get_running_loop()
        stopped = loop.create_future()

        def _request_stop() -> None:
            if not stopped.done():
                stopped.set_result(None)

        try:
            loop.add_signal_handler(signal.SIGINT, _request_stop)
            loop.add_signal_handler(signal.SIGTERM, _request_stop)
        except NotImplementedError:  # pragma: no cover - non-posix loops
            pass
        try:
            await stopped
        finally:
            await self.stop()
            print("repro serve: shutdown complete", flush=True)

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                try:
                    method, target, _version = \
                        request_line.decode("latin-1").split()
                except ValueError:
                    await self._respond(writer, 400,
                                        {"error": "malformed request line"},
                                        keep_alive=False)
                    break
                headers: dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length") or 0)
                except ValueError:
                    await self._respond(writer, 400,
                                        {"error": "bad Content-Length"},
                                        keep_alive=False)
                    break
                if length < 0:
                    await self._respond(writer, 400,
                                        {"error": "negative Content-Length"},
                                        keep_alive=False)
                    break
                # Both rejections fire on the headers alone — before a
                # single body byte is read, so an oversized or mistyped
                # upload costs the server nothing to refuse.
                if length > MAX_BODY_BYTES:
                    await self._respond(writer, 413,
                                        {"error": "request body too large"},
                                        keep_alive=False)
                    break
                ctype = _content_type(headers)
                if ctype not in _ACCEPTED_CONTENT_TYPES:
                    await self._respond(
                        writer, 415,
                        {"error": f"unsupported Content-Type {ctype!r}; "
                                  "use application/json or "
                                  f"{WIRE_CONTENT_TYPE}"},
                        keep_alive=False)
                    break
                body = await reader.readexactly(length) if length else b""
                keep_alive = headers.get("connection", "").lower() != "close"
                status, payload = await self._route(method.upper(),
                                                    target, body, headers)
                await self._respond(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass  # client went away mid-request
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: "dict | _BinaryPayload",
                       keep_alive: bool) -> None:
        connection = "keep-alive" if keep_alive else "close"
        status_line = \
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        if isinstance(payload, _BinaryPayload):
            await self._respond_binary(writer, status_line, payload,
                                       connection)
            return
        retry_after = payload.pop("_retry_after", None)
        extra = ""
        if retry_after is not None:
            # The body keeps the precise float; the header is the
            # integer-seconds form proxies and clients understand.
            extra = f"Retry-After: {max(1, math.ceil(retry_after))}\r\n"
        body = json.dumps(_jsonable(payload)).encode()
        head = (f"{status_line}"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"{extra}"
                f"Connection: {connection}\r\n\r\n")
        writer.write(head.encode("latin-1") + body)
        self.stats.add("bytes_out", len(body))
        await writer.drain()

    async def _respond_binary(self, writer: asyncio.StreamWriter,
                              status_line: str, payload: _BinaryPayload,
                              connection: str) -> None:
        """Stream a binary frame: chunked (one chunk per wire segment,
        draining between chunks so a large product is never buffered a
        second time) above :data:`CHUNKED_MIN_BYTES`, plain
        ``Content-Length`` below it."""
        if payload.nbytes >= CHUNKED_MIN_BYTES:
            head = (f"{status_line}"
                    f"Content-Type: {WIRE_CONTENT_TYPE}\r\n"
                    f"Transfer-Encoding: chunked\r\n"
                    f"Connection: {connection}\r\n\r\n")
            writer.write(head.encode("latin-1"))
            for segment in payload.frames:
                if not len(segment):
                    continue
                writer.write(f"{len(segment):x}\r\n".encode("latin-1"))
                writer.write(segment)
                writer.write(b"\r\n")
                await writer.drain()
            writer.write(b"0\r\n\r\n")
        else:
            head = (f"{status_line}"
                    f"Content-Type: {WIRE_CONTENT_TYPE}\r\n"
                    f"Content-Length: {payload.nbytes}\r\n"
                    f"Connection: {connection}\r\n\r\n")
            writer.write(head.encode("latin-1"))
            for segment in payload.frames:
                writer.write(segment)
        self.stats.add("bytes_out", payload.nbytes)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(self, method: str, target: str, body: bytes,
                     headers: dict[str, str]
                     ) -> "tuple[int, dict | _BinaryPayload]":
        if body:
            self.stats.add("bytes_in", len(body))
        path = target.split("?", 1)[0]
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, {
                "status": "ok",
                "backend": self.session.backend,
                "config": self.session.chip.config.name,
                "chips": (self.session.topology.n_chips
                          if self.session.topology is not None else 1),
                "partition": (self.session.topology.partition
                              if self.session.topology is not None
                              else self.session.partition),
            }
        if path == "/stats":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, self.stats.snapshot(queue_depth=self.queue.depth,
                                            shed=self.queue.shed,
                                            cache=self.session.cache_stats(),
                                            registry=self.registry.stats())
        if path == "/v1/operands":
            if method in ("PUT", "POST"):
                return self._operand_put(body, headers)
            if method == "GET":
                return 200, {"operands": self.registry.entries(),
                             **self.registry.stats()}
            return 405, {"error": "use PUT/POST to register, GET to list"}
        if path.startswith("/v1/operands/"):
            digest = path[len("/v1/operands/"):]
            return self._operand_item(method, digest, headers)
        if path == "/v1/tenants":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, self._tenants_payload()
        if path in ("/v1/spgemm", "/v1/gcn", "/v1/gnn"):
            if method != "POST":
                return 405, {"error": "use POST"}
            raw_tenant = headers.get(TENANT_HEADER, DEFAULT_TENANT)
            if not _TENANT_RE.match(raw_tenant):
                return 400, {"error": f"invalid {TENANT_HEADER} header: "
                                      "1-64 chars, [A-Za-z0-9._-], must "
                                      "start alphanumeric"}
            tenant = self.tenants.resolve_name(raw_tenant)
            if path == "/v1/spgemm":
                return await self._serve_spgemm(body, headers, tenant)
            if path == "/v1/gcn":
                return await self._serve_gcn(body, headers, tenant)
            return await self._serve_gnn(body, headers, tenant)
        return 404, {"error": f"unknown path {path!r}; endpoints: "
                              "/healthz /stats /v1/operands /v1/tenants "
                              "/v1/spgemm /v1/gcn /v1/gnn"}

    def _tenants_payload(self) -> dict:
        """``GET /v1/tenants``: configured policies, admission state,
        WFQ accounting, and per-tenant serving counters, merged by name."""
        rows: dict[str, dict] = {}
        for name, config in self.tenants.describe().items():
            rows.setdefault(name, {})["config"] = config
        for name, state in self.admission.snapshot().items():
            rows.setdefault(name, {})["admission"] = state
        for name, account in self.queue.accounting().items():
            rows.setdefault(name, {})["scheduling"] = account
        for name, counters in self.stats.tenant_snapshot().items():
            rows.setdefault(name, {})["serving"] = counters
        return {"tenants": rows,
                "scheduling": self.queue.scheduling,
                "default_tenant": DEFAULT_TENANT}

    # ------------------------------------------------------------------
    # Operand registry endpoints
    # ------------------------------------------------------------------
    def _operand_put(self, body: bytes, headers: dict[str, str]
                     ) -> tuple[int, dict]:
        """Register one operand: a binary x-repro-csr frame, inline JSON
        CSR arrays, or a named generator dataset synthesised server-side."""
        dataset = None
        try:
            if _content_type(headers) == WIRE_CONTENT_TYPE:
                csr, _meta = decode_csr(body)
                source = "upload"
            else:
                payload = self._json(body)
                if "dataset" in payload:
                    dataset = self._dataset(str(payload["dataset"]),
                                            int(payload.get("max_nodes",
                                                            256)),
                                            int(payload.get("seed", 0)))
                    csr, source = dataset.adjacency_csr(), dataset.name
                else:
                    csr, source = _parse_csr(payload, "operand"), "upload"
        except WireFormatError as err:
            return 400, {"error": f"bad x-repro-csr frame: {err}"}
        except (ValueError, TypeError, KeyError,
                json.JSONDecodeError) as err:
            return 400, {"error": str(err)}
        try:
            entry, created = self.registry.put(csr, source=source,
                                               dataset=dataset)
        except RegistryFull as err:
            return 413, {"error": str(err)}
        row = entry.describe()
        row["created"] = created
        return 200, row

    def _operand_item(self, method: str, digest: str,
                      headers: dict[str, str]
                      ) -> "tuple[int, dict | _BinaryPayload]":
        """Metadata / binary download / delete of one registered operand."""
        if method == "GET":
            try:
                entry = self.registry.get(digest)
            except UnknownOperand as err:
                return 404, {"error": str(err)}
            if _accepts_wire(headers):
                return 200, _BinaryPayload(
                    encode_csr_frames(entry.csr, meta=entry.describe()))
            return 200, entry.describe()
        if method == "DELETE":
            try:
                self.registry.delete(digest)
            except UnknownOperand as err:
                return 404, {"error": str(err)}
            except OperandPinned as err:
                return 409, {"error": str(err)}
            return 200, {"deleted": digest}
        return 405, {"error": "use GET or DELETE"}

    # ------------------------------------------------------------------
    # Workload endpoints
    # ------------------------------------------------------------------
    def _json(self, body: bytes) -> dict:
        payload = json.loads(body.decode() or "{}")
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _dataset(self, name: str, max_nodes: int, seed: int):
        key = (name, max_nodes, seed)
        with self._dataset_lock:
            dataset = self._datasets.get(key)
            if dataset is not None:
                self._datasets.move_to_end(key)
                return dataset
        dataset = load_dataset(name, max_nodes=max_nodes, seed=seed)
        with self._dataset_lock:
            self._datasets[key] = dataset
            self._datasets.move_to_end(key)
            while len(self._datasets) > MAX_CACHED_DATASETS:
                self._datasets.popitem(last=False)
        return dataset

    async def _serve_spgemm(self, body: bytes, headers: dict[str, str],
                            tenant: str = DEFAULT_TENANT
                            ) -> "tuple[int, dict | _BinaryPayload]":
        binary = _accepts_wire(headers)
        try:
            payload = self._json(body)
            if "a" in payload:
                a = _parse_operand(payload["a"], "a")
                b = (_parse_operand(payload["b"], "b")
                     if "b" in payload else None)
                source = str(payload.get("label", "serve"))
            elif "dataset" in payload:
                dataset = self._dataset(str(payload["dataset"]),
                                        int(payload.get("max_nodes", 256)),
                                        int(payload.get("seed", 0)))
                a, b = dataset.adjacency_csr(), None
                source = dataset.name
            else:
                raise ValueError("body needs 'dataset', explicit 'a', or "
                                 "an operand ref")
            spec = SpGEMMSpec(
                a=a, b=b,
                tile_size=payload.get("tile_size"),
                verify=bool(payload.get("verify", False)),
                shards=int(payload.get("shards", 1)),
                source=source,
                label=str(payload.get("label", source)))
            timeout = float(payload.get("timeout_s",
                                        self.request_timeout_s))
        except (ValueError, TypeError, KeyError, json.JSONDecodeError) as err:
            return 400, {"error": str(err)}
        try:
            spec, pins = self.registry.resolve(spec)
        except UnknownOperand as err:
            return 404, {"error": str(err)}
        status, row = await self._submit(spec, timeout, pins, tenant)
        if status != 200:
            return status, row
        if binary:
            # Binary Accept implies include_output: the product rides as
            # raw segments, the metrics row as the frame's metadata blob.
            result = row.pop("_result")
            if not hasattr(result.output, "indptr"):
                return 406, {"error": "result output is not CSR; "
                                      "cannot encode x-repro-csr"}
            return 200, _BinaryPayload(
                encode_csr_frames(result.output, meta=_jsonable(row)))
        if payload.get("include_output"):
            result = row.pop("_result")
            row["output"] = {"indptr": result.output.indptr,
                             "indices": result.output.indices,
                             "data": result.output.data,
                             "shape": list(result.output.shape)}
        else:
            row.pop("_result", None)
        return status, row

    async def _serve_gcn(self, body: bytes, headers: dict[str, str],
                         tenant: str = DEFAULT_TENANT) -> tuple[int, dict]:
        if _accepts_wire(headers):
            return 406, {"error": "GCN layer output is dense; "
                                  f"{WIRE_CONTENT_TYPE} responses are "
                                  "SpGEMM-only"}
        pins: tuple = ()
        try:
            payload = self._json(body)
            spec_dataset = payload.get("dataset")
            if isinstance(spec_dataset, dict) and "ref" in spec_dataset:
                digest = str(spec_dataset["ref"])
                try:
                    entry = self.registry.get(digest)
                    pins = (self.registry.acquire(digest),)
                except UnknownOperand as err:
                    return 404, {"error": str(err)}
                # Dataset-backed entries replay the generator dataset —
                # byte-identical to the inline {"dataset": name} path;
                # bare CSR uploads aggregate over the matrix itself.
                dataset = (entry.dataset if entry.dataset is not None
                           else csr_to_coo(entry.csr))
                default_label = (entry.source if entry.dataset is not None
                                 else f"ref:{digest[:12]}")
            elif spec_dataset is not None:
                dataset = self._dataset(str(spec_dataset),
                                        int(payload.get("max_nodes", 128)),
                                        int(payload.get("seed", 0)))
                default_label = dataset.name
            else:
                raise ValueError("body needs a 'dataset' name or "
                                 "{'ref': <digest>}")
            spec = GCNLayerSpec(
                dataset=dataset,
                feature_dim=int(payload.get("feature_dim", 16)),
                hidden_dim=int(payload.get("hidden_dim", 8)),
                feature_density=float(payload.get("feature_density", 0.3)),
                verify=bool(payload.get("verify", False)),
                seed=int(payload.get("feature_seed", 7)),
                label=str(payload.get("label", default_label)))
            timeout = float(payload.get("timeout_s",
                                        self.request_timeout_s))
        except (ValueError, TypeError, KeyError, json.JSONDecodeError) as err:
            for pin in pins:
                pin.release()
            return 400, {"error": str(err)}
        status, row = await self._submit(spec, timeout, pins, tenant)
        row.pop("_result", None)
        return status, row

    async def _serve_gnn(self, body: bytes, headers: dict[str, str],
                         tenant: str = DEFAULT_TENANT) -> tuple[int, dict]:
        """One multi-layer GNN stack over a resident graph.

        Body: ``{"dataset": "cora" | {"ref": <digest>}, "layer_dims":
        [16, 16], ...}`` — or ``"layers": L`` + ``"hidden_dim": H`` as
        shorthand for a uniform ``[H] * L`` stack.  ``batches`` > 1
        pipelines feature batches layer-by-layer across the fleet."""
        if _accepts_wire(headers):
            return 406, {"error": "GNN stack output is dense; "
                                  f"{WIRE_CONTENT_TYPE} responses are "
                                  "SpGEMM-only"}
        pins: tuple = ()
        try:
            payload = self._json(body)
            spec_dataset = payload.get("dataset")
            if isinstance(spec_dataset, dict) and "ref" in spec_dataset:
                digest = str(spec_dataset["ref"])
                try:
                    entry = self.registry.get(digest)
                    pins = (self.registry.acquire(digest),)
                except UnknownOperand as err:
                    return 404, {"error": str(err)}
                dataset = (entry.dataset if entry.dataset is not None
                           else csr_to_coo(entry.csr))
                default_label = (entry.source if entry.dataset is not None
                                 else f"ref:{digest[:12]}")
            elif spec_dataset is not None:
                dataset = self._dataset(str(spec_dataset),
                                        int(payload.get("max_nodes", 128)),
                                        int(payload.get("seed", 0)))
                default_label = dataset.name
            else:
                raise ValueError("body needs a 'dataset' name or "
                                 "{'ref': <digest>}")
            if "layer_dims" in payload:
                layer_dims = tuple(int(dim)
                                   for dim in payload["layer_dims"])
            else:
                layer_dims = (int(payload.get("hidden_dim", 8)),) \
                    * int(payload.get("layers", 1))
            activations = payload.get("activations")
            if activations is not None and not isinstance(activations, str):
                activations = tuple(str(act) for act in activations)
            spec = GNNModelSpec(
                dataset=dataset,
                layer_dims=layer_dims,
                feature_dim=int(payload.get("feature_dim", 16)),
                feature_density=float(payload.get("feature_density", 0.3)),
                activations=activations,
                seed=int(payload.get("feature_seed", 7)),
                batches=int(payload.get("batches", 1)),
                verify=bool(payload.get("verify", False)),
                label=str(payload.get("label", default_label)))
            timeout = float(payload.get("timeout_s",
                                        self.request_timeout_s))
        except (ValueError, TypeError, KeyError, json.JSONDecodeError) as err:
            for pin in pins:
                pin.release()
            return 400, {"error": str(err)}
        status, row = await self._submit(spec, timeout, pins, tenant)
        row.pop("_result", None)
        return status, row

    async def _submit(self, spec, timeout_s: float, pins: tuple = (),
                      tenant: str = DEFAULT_TENANT) -> tuple[int, dict]:
        """Enqueue one spec and await its future; maps serving-layer
        failure modes onto HTTP status codes.  ``pins`` (operand-registry
        holds) ride on the request and release when its future resolves;
        if the queue refuses the request they are released here."""
        self.stats.add("requests")
        try:
            request = self.queue.put(spec, timeout_s=timeout_s, pins=pins,
                                     tenant=tenant)
        except AdmissionError as err:
            for pin in pins:
                pin.release()
            reason = "quota" if isinstance(err, QuotaExceeded) else "rate"
            self.stats.record_rejected(err.tenant, reason)
            return err.status, {"error": str(err), "tenant": err.tenant,
                                "retry_after_s": round(err.retry_after_s, 3),
                                "_retry_after": err.retry_after_s}
        except QueueOverflow as err:
            for pin in pins:
                pin.release()
            self.stats.record_rejected(tenant, "queue")
            body = {"error": str(err), "tenant": tenant}
            if err.retry_after_s is not None:
                body["retry_after_s"] = round(err.retry_after_s, 3)
                body["_retry_after"] = err.retry_after_s
            return 503, body
        except QueueClosed as err:
            for pin in pins:
                pin.release()
            return 503, {"error": str(err)}
        self.stats.record_admitted(request.tenant)
        try:
            # Small grace over the queue deadline so batcher-side timeouts
            # (ServeTimeout) win the race and report precisely.
            result = await asyncio.wait_for(
                asyncio.wrap_future(request.future), timeout_s + 1.0)
        except asyncio.TimeoutError:
            request.cancel()
            return 504, {"error": f"request timed out after {timeout_s}s",
                         "tenant": request.tenant}
        except ServeTimeout as err:
            return 504, {"error": "deadline",
                         "detail": str(err),
                         "tenant": err.tenant or request.tenant,
                         "queued_ms": err.queued_ms}
        except asyncio.CancelledError:
            raise
        except QueueClosed as err:
            return 503, {"error": str(err)}
        except Exception as err:  # noqa: BLE001 - execution error -> 500
            return 500, {"error": f"{type(err).__name__}: {err}"}
        row = dict(result.as_row())
        row["request_id"] = request.request_id
        row["_result"] = result  # stripped (or expanded) by the endpoint
        return 200, row


class BackgroundServer:
    """Run a :class:`ReproServer` on a dedicated asyncio thread.

    Used by tests, ``examples/serving_client.py`` (self-hosted mode), and
    ``benchmarks/bench_serving.py``::

        with BackgroundServer(ReproServer(session, port=0)) as bg:
            requests.post(f"http://127.0.0.1:{bg.port}/v1/spgemm", ...)
    """

    def __init__(self, server: ReproServer) -> None:
        self.server = server
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stopped: asyncio.Future | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(target=self._run,
                                        name="repro-serve", daemon=True)
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") \
                from self._startup_error
        if not self._ready.is_set():
            raise RuntimeError("server did not start within 30s")
        return self

    def _run(self) -> None:
        async def main() -> None:
            try:
                self._loop = asyncio.get_running_loop()
                self._stopped = self._loop.create_future()
                await self.server.start()
            except BaseException as error:  # noqa: BLE001 - re-raised in start()
                self._startup_error = error
                self._ready.set()
                return
            self._ready.set()
            await self._stopped
            await self.server.stop()

        asyncio.run(main())

    def stop(self) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._stopped is not None:
            def _finish() -> None:
                if not self._stopped.done():
                    self._stopped.set_result(None)
            self._loop.call_soon_threadsafe(_finish)
        self._thread.join(timeout=30.0)
        self._thread = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
