"""Multi-tenant scheduling for the serving layer.

The layer between admission and execution:

* :mod:`~repro.serve.sched.tenants` — tenant identity + policy
  (:class:`TenantConfig`, :class:`TenantTable`, ``tenants.json``).
* :mod:`~repro.serve.sched.edf` — earliest-deadline-first ordering
  within one tenant (:class:`EDFQueue`).
* :mod:`~repro.serve.sched.wfq` — weighted fair queueing across
  tenants with virtual-time deficit accounting (:class:`WFQScheduler`).
* :mod:`~repro.serve.sched.admission` — token-bucket rate limits and
  in-flight quotas enforced at enqueue
  (:class:`AdmissionController`, 429/503 + ``Retry-After``).

The :class:`~repro.serve.queue.RequestQueue` composes all four:
``put`` runs admission, ``get_batch`` selects in WFQ x EDF order, and
the :class:`~repro.serve.batcher.MicroBatcher` refunds coalesced
duplicates so shared executions are charged once.
"""

from repro.serve.sched.admission import (
    AdmissionController,
    AdmissionError,
    QuotaExceeded,
    RateLimited,
)
from repro.serve.sched.edf import EDFQueue, deadline_key
from repro.serve.sched.tenants import (
    DEFAULT_TENANT,
    MAX_ADHOC_TENANTS,
    TenantConfig,
    TenantTable,
)
from repro.serve.sched.wfq import REQUEST_COST, WFQScheduler

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "QuotaExceeded",
    "RateLimited",
    "EDFQueue",
    "deadline_key",
    "DEFAULT_TENANT",
    "MAX_ADHOC_TENANTS",
    "TenantConfig",
    "TenantTable",
    "WFQScheduler",
    "REQUEST_COST",
]
