"""Admission control: reject at the door, never drop accepted work.

The pre-scheduler serving layer had exactly one overload response: a
blind 503 shed once the bounded queue filled, no matter who was asking
or who caused the pressure.  Admission control moves the decision to
enqueue time and makes it per-tenant:

* **Token-bucket rate limits** (``rate_rps`` / ``burst`` on
  :class:`~repro.serve.sched.tenants.TenantConfig`): each admitted
  request takes one token; an empty bucket rejects with
  :class:`RateLimited` (HTTP 429) and a ``Retry-After`` equal to the
  time until the next token refills — the one number the client
  actually needs.
* **In-flight quotas** (``max_in_flight``): a cap on
  admitted-but-unresolved requests per tenant, so one tenant cannot own
  the whole bounded queue.  Violations reject with
  :class:`QuotaExceeded` (HTTP 429) and a ``Retry-After`` derived from
  the predicted makespan of the backlog (``makespan_fn`` — wired by
  :class:`~repro.serve.http.ReproServer` to the micro-batcher's
  analytic batch-makespan estimate).

Crucially, admission is the *only* place multi-tenant serving says no:
once a request is admitted it is never load-shed — the queue executes
or (on shutdown/deadline) explicitly fails its future, so clients can
trust a 200-accepted request to resolve.
"""

from __future__ import annotations

import math
import threading
from typing import Callable

from repro.serve.sched.tenants import TenantTable

#: Fallback Retry-After when no makespan estimate is available yet.
DEFAULT_RETRY_AFTER_S = 1.0


class AdmissionError(RuntimeError):
    """A request was rejected at admission (HTTP ``status``); the caller
    should retry after ``retry_after_s`` seconds."""

    status = 503

    def __init__(self, message: str, *, tenant: str,
                 retry_after_s: float) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.retry_after_s = max(0.0, float(retry_after_s))


class RateLimited(AdmissionError):
    """The tenant's token bucket is empty (HTTP 429)."""

    status = 429


class QuotaExceeded(AdmissionError):
    """The tenant is at its in-flight quota (HTTP 429)."""

    status = 429


class _TokenBucket:
    """Classic token bucket (externally synchronized by the controller).

    ``tokens`` refills continuously at ``rate`` per second up to
    ``capacity``; :meth:`take` consumes one token or reports how long
    until one is available.
    """

    __slots__ = ("rate", "capacity", "tokens", "stamp")

    def __init__(self, rate: float, capacity: float) -> None:
        self.rate = float(rate)
        self.capacity = float(capacity)
        self.tokens = float(capacity)
        self.stamp: float | None = None

    def take(self, now: float) -> float:  # lockcheck: holds _lock
        """Take one token; returns 0.0 on success, else the seconds
        until the next token refills (and takes nothing)."""
        if self.stamp is not None and now > self.stamp:
            self.tokens = min(self.capacity,
                              self.tokens + (now - self.stamp) * self.rate)
        self.stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


class AdmissionController:
    """Per-tenant token buckets + in-flight quotas (thread-safe).

    Args:
        table: tenant policy lookup.
        makespan_fn: zero-arg callable returning the predicted seconds to
            drain the current backlog — the ``Retry-After`` for quota
            and queue-pressure rejections.  ``None`` falls back to
            :data:`DEFAULT_RETRY_AFTER_S`.
    """

    def __init__(self, table: TenantTable,
                 makespan_fn: Callable[[], float] | None = None) -> None:
        self.table = table
        self.makespan_fn = makespan_fn
        self._lock = threading.Lock()
        self._buckets: dict[str, _TokenBucket] = {}  # guarded-by: _lock
        self._in_flight: dict[str, int] = {}  # guarded-by: _lock

    # ------------------------------------------------------------------
    def predicted_makespan_s(self) -> float:
        """Best-effort backlog-drain estimate for Retry-After hints."""
        if self.makespan_fn is None:
            return DEFAULT_RETRY_AFTER_S
        try:
            seconds = float(self.makespan_fn())
        except Exception:  # noqa: BLE001 - a hint must never fail admission
            return DEFAULT_RETRY_AFTER_S
        if not math.isfinite(seconds) or seconds <= 0:
            return DEFAULT_RETRY_AFTER_S
        return seconds

    def admit(self, tenant: str, now: float) -> None:
        """Admit one request for ``tenant`` at time ``now`` (one
        ``time.monotonic()`` hoisted by the caller), counting it
        in-flight.  Raises :class:`RateLimited` / :class:`QuotaExceeded`
        without counting anything on rejection.  Every admit must be
        paired with exactly one :meth:`release` once the request's
        future resolves."""
        config = self.table.get(tenant)
        tenant = config.name  # ad-hoc overflow may fold into default
        with self._lock:
            if config.max_in_flight is not None and \
                    self._in_flight.get(tenant, 0) >= config.max_in_flight:
                raise QuotaExceeded(
                    f"tenant {tenant!r} is at its in-flight quota "
                    f"({config.max_in_flight}); retry after the backlog "
                    "drains", tenant=tenant,
                    retry_after_s=self.predicted_makespan_s())
            if config.rate_rps is not None:
                bucket = self._buckets.get(tenant)
                if bucket is None:
                    bucket = _TokenBucket(config.rate_rps,
                                          config.bucket_capacity)
                    self._buckets[tenant] = bucket
                wait = bucket.take(now)
                if wait > 0.0:
                    raise RateLimited(
                        f"tenant {tenant!r} exceeded its rate limit "
                        f"({config.rate_rps:g} req/s)", tenant=tenant,
                        retry_after_s=wait)
            self._in_flight[tenant] = self._in_flight.get(tenant, 0) + 1

    def release(self, tenant: str) -> None:
        """Mark one admitted request resolved (idempotence is the
        caller's job — the queue releases via a future done-callback,
        which fires exactly once)."""
        tenant = self.table.get(tenant).name
        with self._lock:
            count = self._in_flight.get(tenant, 0)
            if count > 0:
                self._in_flight[tenant] = count - 1

    # ------------------------------------------------------------------
    def in_flight(self, tenant: str) -> int:
        with self._lock:
            return self._in_flight.get(tenant, 0)

    def snapshot(self) -> dict[str, dict]:
        """Per-tenant admission state for ``GET /v1/tenants``."""
        with self._lock:
            rows = {}
            for name in set(self._in_flight) | set(self._buckets):
                bucket = self._buckets.get(name)
                rows[name] = {
                    "in_flight": self._in_flight.get(name, 0),
                    "tokens": (round(bucket.tokens, 3)
                               if bucket is not None else None),
                }
            return rows
