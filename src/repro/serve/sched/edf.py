"""Earliest-deadline-first ordering within one tenant.

:class:`EDFQueue` is a deadline-ordered heap of
:class:`~repro.serve.queue.ServeRequest`: the head is always the request
whose deadline expires soonest.  Requests without a deadline sort after
every deadline-carrying request (key ``+inf``) and among themselves fall
back to arrival order via the monotonically increasing ``request_id`` —
so a single default tenant with no deadlines degrades to exactly the
FIFO order the serving layer had before scheduling existed, and two
same-tenant deadlines are never inverted (the property
``tests/test_sched.py`` checks).

The queue is *externally synchronized*: every instance lives inside a
:class:`~repro.serve.sched.wfq.WFQScheduler` lane and is only touched
under the owning :class:`~repro.serve.queue.RequestQueue`'s condition
lock (annotated ``guarded-by: _condition`` / ``lockcheck: holds`` for
the ``repro analyze --pass locks`` audit).
"""

from __future__ import annotations

import heapq
import math
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve.queue import ServeRequest

#: Sort key for requests with no deadline: after every real deadline.
_NO_DEADLINE = math.inf


def deadline_key(request: "ServeRequest") -> tuple[float, int]:
    """EDF sort key: (deadline or +inf, arrival id).  Total order — ties
    on deadline resolve by arrival, so the order is deterministic."""
    deadline = request.deadline if request.deadline is not None \
        else _NO_DEADLINE
    return (deadline, request.request_id)


class EDFQueue:
    """Deadline-ordered request heap (externally synchronized)."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, "ServeRequest"]] = []  # guarded-by: _condition

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, request: "ServeRequest") -> None:  # lockcheck: holds _condition
        deadline, request_id = deadline_key(request)
        heapq.heappush(self._heap, (deadline, request_id, request))

    def pop(self) -> "ServeRequest":  # lockcheck: holds _condition
        """Remove and return the earliest-deadline request."""
        return heapq.heappop(self._heap)[2]

    def peek(self) -> "ServeRequest":
        """The earliest-deadline request, without removing it."""
        return self._heap[0][2]

    def head_key(self) -> tuple[float, int]:
        """Sort key of the head (``(inf, inf)`` when empty, so an empty
        queue loses every tie-break)."""
        if not self._heap:
            return (_NO_DEADLINE, -1)
        deadline, request_id, _request = self._heap[0]
        return (deadline, request_id)

    def drain(self) -> list["ServeRequest"]:  # lockcheck: holds _condition
        """Remove and return every request in EDF order."""
        drained = [entry[2] for entry in sorted(self._heap)]
        self._heap.clear()
        return drained
