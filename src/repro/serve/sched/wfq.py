"""Weighted fair queueing across tenants, EDF within each tenant.

:class:`WFQScheduler` is the ordering brain of the multi-tenant request
queue.  Each tenant owns a *lane*: an
:class:`~repro.serve.sched.edf.EDFQueue` plus a **virtual time** — the
lane's cumulative charged work divided by its configured weight.
Selection always serves the backlogged lane with the smallest virtual
time (ties broken by the earliest head deadline, then arrival id), and
charges the served lane ``REQUEST_COST / weight`` of virtual time per
request.  Two properties fall out:

* **Weighted shares.**  Over any window in which two lanes stay
  backlogged, their served-request counts track their weight ratio
  (each selection advances the chosen lane's virtual time inversely to
  its weight, so a weight-4 lane is chosen 4x as often as a weight-1
  lane before their virtual times meet again).
* **Work conservation.**  Selection only ever considers backlogged
  lanes: an idle latency tenant leaves its capacity to whoever is
  backlogged, and a lane re-entering the backlog is lifted to the
  scheduler's current virtual time (it cannot bank credit while idle and
  then lock out everyone else with a burst).

Accounting is explicit so the micro-batcher can bill *coalesced* work
correctly: :meth:`select` charges every popped request to its own lane,
and the batcher then :meth:`refund`\\ s the duplicates so one shared
execution is charged exactly once — to the earliest-deadline owner
(see ``MicroBatcher._bill_coalesced``).  Cancelled and deadline-expired
requests are refunded too: virtual time only ever accounts for work
that actually executed, which is the conservation invariant the
property tests pin down.

Like :class:`EDFQueue`, the scheduler is externally synchronized by the
owning :class:`~repro.serve.queue.RequestQueue`'s condition lock
(``guarded-by: _condition`` / ``lockcheck: holds`` annotations below).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.serve.sched.edf import EDFQueue
from repro.serve.sched.tenants import TenantConfig, TenantTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve.queue import ServeRequest

#: Virtual-time cost of one request.  Requests are charged uniformly:
#: the serving layer's unit of admission is the request, and the
#: micro-batcher's coalescing refunds keep duplicates free.
REQUEST_COST = 1.0


class _Lane:
    """One tenant's scheduling state (externally synchronized)."""

    __slots__ = ("config", "queue", "vtime", "charged", "refunded")

    def __init__(self, config: TenantConfig, vtime: float) -> None:
        self.config = config
        self.queue = EDFQueue()
        self.vtime = vtime      # cumulative charged work / weight
        self.charged = 0.0      # total work charged (REQUEST_COST units)
        self.refunded = 0.0     # total work refunded (coalesced/cancelled)


class WFQScheduler:
    """Virtual-time weighted fair queueing over per-tenant EDF lanes."""

    def __init__(self, table: TenantTable | None = None) -> None:
        self.table = table if table is not None else TenantTable()
        self._lanes: dict[str, _Lane] = {}  # guarded-by: _condition
        self._vnow = 0.0  # guarded-by: _condition — scheduler virtual clock
        self._backlog = 0  # guarded-by: _condition — queued requests

    # ------------------------------------------------------------------
    def _lane(self, tenant: str) -> _Lane:  # lockcheck: holds _condition
        lane = self._lanes.get(tenant)
        if lane is None:
            lane = _Lane(self.table.get(tenant), self._vnow)
            self._lanes[tenant] = lane
        return lane

    @property
    def backlog(self) -> int:
        """Number of queued (not yet selected) requests."""
        return self._backlog

    # ------------------------------------------------------------------
    def push(self, request: "ServeRequest") -> None:  # lockcheck: holds _condition
        """Enqueue one request into its tenant's EDF lane."""
        lane = self._lane(request.tenant)
        if not lane.queue:
            # Re-entering the backlog: no banked credit from idle time.
            lane.vtime = max(lane.vtime, self._vnow)
        lane.queue.push(request)
        self._backlog += 1

    def select(self, max_n: int) -> list["ServeRequest"]:  # lockcheck: holds _condition
        """Pop up to ``max_n`` requests in WFQ x EDF order, charging each
        popped request :data:`REQUEST_COST` to its tenant's lane."""
        batch: list["ServeRequest"] = []
        while len(batch) < max_n and self._backlog:
            lane = min(
                (candidate for candidate in self._lanes.values()
                 if candidate.queue),
                key=lambda c: (c.vtime, c.queue.head_key()))
            request = lane.queue.pop()
            self._backlog -= 1
            self._vnow = max(self._vnow, lane.vtime)
            lane.vtime += REQUEST_COST / lane.config.weight
            lane.charged += REQUEST_COST
            batch.append(request)
        return batch

    def refund(self, tenant: str,  # lockcheck: holds _condition
               cost: float = REQUEST_COST) -> None:
        """Return ``cost`` of charged work to ``tenant`` — used when a
        selected request did not consume an execution (coalesced into a
        batch-mate's run, cancelled, or expired before dispatch)."""
        lane = self._lane(tenant)
        lane.vtime -= cost / lane.config.weight
        lane.refunded += cost

    def drain(self) -> list["ServeRequest"]:  # lockcheck: holds _condition
        """Remove and return every queued request (shutdown path),
        in arrival order."""
        drained: list["ServeRequest"] = []
        for lane in self._lanes.values():
            drained.extend(lane.queue.drain())
        self._backlog = 0
        drained.sort(key=lambda request: request.request_id)
        return drained

    # ------------------------------------------------------------------
    def accounting(self) -> dict[str, dict]:
        """Per-tenant accounting snapshot: charged / refunded work (in
        :data:`REQUEST_COST` units), net executed work, virtual time,
        current backlog, and weight.  The conservation invariant the
        property tests assert: ``sum(net over tenants) == executions``.
        """
        return {
            name: {
                "weight": lane.config.weight,
                "vtime": lane.vtime,
                "charged": lane.charged,
                "refunded": lane.refunded,
                "net": lane.charged - lane.refunded,
                "backlog": len(lane.queue),
            }
            for name, lane in self._lanes.items()
        }
