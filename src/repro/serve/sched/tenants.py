"""Tenant identity and policy: who is asking, and what are they owed.

A *tenant* is the unit of isolation in the multi-tenant serving layer:
requests carry a tenant name (the ``X-Repro-Tenant`` header over HTTP,
``tenant=`` on :meth:`~repro.serve.queue.RequestQueue.put`), and every
scheduling / admission / accounting decision is made per tenant.

:class:`TenantConfig` is the per-tenant policy knob set:

* ``weight`` — the weighted-fair-queueing share.  Over any window in
  which two tenants are both backlogged, their served-work ratio tracks
  their weight ratio (see :mod:`repro.serve.sched.wfq`).
* ``rate_rps`` / ``burst`` — a token-bucket rate limit enforced at
  admission (:mod:`repro.serve.sched.admission`); ``None`` = unlimited.
* ``max_in_flight`` — cap on admitted-but-unresolved requests; ``None``
  = unlimited.

:class:`TenantTable` maps names to configs.  Unknown tenants are
admitted with a default-policy config (``default_weight``, no limits) so
a new caller never needs registration — but the table memoizes at most
:data:`MAX_ADHOC_TENANTS` ad-hoc names; past that bound, unrecognised
names share the default tenant's identity so client-controlled headers
cannot grow server state without bound.
"""

from __future__ import annotations

import json
import math
import threading
from dataclasses import dataclass
from pathlib import Path

#: Tenant name used when a request does not identify itself.
DEFAULT_TENANT = "default"

#: Bound on memoized ad-hoc (not explicitly configured) tenant names.
MAX_ADHOC_TENANTS = 256


@dataclass(frozen=True)
class TenantConfig:
    """Per-tenant serving policy (immutable; see module docstring)."""

    name: str
    weight: float = 1.0
    rate_rps: float | None = None
    burst: float | None = None
    max_in_flight: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if not math.isfinite(self.weight) or self.weight <= 0:
            raise ValueError(
                f"tenant {self.name!r}: weight must be > 0, "
                f"got {self.weight}")
        if self.rate_rps is not None and self.rate_rps <= 0:
            raise ValueError(
                f"tenant {self.name!r}: rate_rps must be > 0, "
                f"got {self.rate_rps}")
        if self.burst is not None:
            if self.rate_rps is None:
                raise ValueError(
                    f"tenant {self.name!r}: burst requires rate_rps")
            if self.burst < 1:
                raise ValueError(
                    f"tenant {self.name!r}: burst must be >= 1, "
                    f"got {self.burst}")
        if self.max_in_flight is not None and self.max_in_flight < 1:
            raise ValueError(
                f"tenant {self.name!r}: max_in_flight must be >= 1, "
                f"got {self.max_in_flight}")

    @property
    def bucket_capacity(self) -> float:
        """Token-bucket capacity: explicit ``burst`` or one second of
        refill (never below one token, so a conforming tenant can always
        send at least one request)."""
        if self.burst is not None:
            return float(self.burst)
        return max(1.0, float(self.rate_rps or 1.0))

    def describe(self) -> dict:
        """Flat row for ``GET /v1/tenants``."""
        return {
            "name": self.name,
            "weight": self.weight,
            "rate_rps": self.rate_rps,
            "burst": self.burst if self.rate_rps is None
            else self.bucket_capacity,
            "max_in_flight": self.max_in_flight,
        }


class TenantTable:
    """Thread-safe name -> :class:`TenantConfig` mapping with a default
    policy for unknown tenants.

    Args:
        configs: explicitly configured tenants.
        default_weight: WFQ weight granted to tenants not in ``configs``
            (including the ``default`` tenant itself unless overridden).
    """

    def __init__(self, configs: "tuple[TenantConfig, ...] | list" = (),
                 default_weight: float = 1.0) -> None:
        if not math.isfinite(default_weight) or default_weight <= 0:
            raise ValueError(
                f"default_weight must be > 0, got {default_weight}")
        self.default_weight = float(default_weight)
        self._lock = threading.Lock()
        self._configs: dict[str, TenantConfig] = {}  # guarded-by: _lock
        self._explicit: tuple[str, ...] = ()
        for config in configs:
            if config.name in self._configs:
                raise ValueError(f"duplicate tenant {config.name!r}")
            self._configs[config.name] = config
        self._explicit = tuple(self._configs)
        self._adhoc = 0  # guarded-by: _lock

    # ------------------------------------------------------------------
    @classmethod
    def from_json(cls, payload: dict,
                  default_weight: float = 1.0) -> "TenantTable":
        """Build a table from the ``tenants.json`` document format::

            {"default_weight": 1,
             "tenants": {
                 "latency": {"weight": 4, "rate_rps": 200, "burst": 32,
                             "max_in_flight": 64},
                 "bulk": {"weight": 1}}}

        A top-level object without a ``tenants`` key is treated as the
        name -> config mapping directly.  ``default_weight`` in the file
        overrides the argument.
        """
        if not isinstance(payload, dict):
            raise ValueError("tenant config must be a JSON object")
        mapping = payload.get("tenants", payload)
        if not isinstance(mapping, dict):
            raise ValueError("'tenants' must map names to config objects")
        default_weight = float(payload.get("default_weight",
                                           default_weight))
        configs = []
        for name, row in mapping.items():
            if name == "default_weight":
                continue
            if not isinstance(row, dict):
                raise ValueError(f"tenant {name!r}: config must be an "
                                 "object")
            unknown = set(row) - {"weight", "rate_rps", "burst",
                                  "max_in_flight"}
            if unknown:
                raise ValueError(f"tenant {name!r}: unknown config keys "
                                 f"{sorted(unknown)}")
            configs.append(TenantConfig(
                name=str(name),
                weight=float(row.get("weight", default_weight)),
                rate_rps=(None if row.get("rate_rps") is None
                          else float(row["rate_rps"])),
                burst=(None if row.get("burst") is None
                       else float(row["burst"])),
                max_in_flight=(None if row.get("max_in_flight") is None
                               else int(row["max_in_flight"]))))
        return cls(configs, default_weight=default_weight)

    @classmethod
    def from_file(cls, path: "str | Path",
                  default_weight: float = 1.0) -> "TenantTable":
        """Load :meth:`from_json` from a file path."""
        text = Path(path).read_text(encoding="utf-8")
        return cls.from_json(json.loads(text),
                             default_weight=default_weight)

    # ------------------------------------------------------------------
    def resolve_name(self, name: str) -> str:
        """Canonical tenant identity for ``name``: itself while known or
        while the ad-hoc memo has room, the default tenant beyond that."""
        with self._lock:
            if name in self._configs:
                return name
            if name != DEFAULT_TENANT and self._adhoc >= MAX_ADHOC_TENANTS:
                return DEFAULT_TENANT
        return name

    def get(self, name: str) -> TenantConfig:
        """The config for ``name``, memoizing a default-policy config for
        unknown tenants (bounded; see :meth:`resolve_name`)."""
        with self._lock:
            config = self._configs.get(name)
            if config is not None:
                return config
            if name != DEFAULT_TENANT and self._adhoc >= MAX_ADHOC_TENANTS:
                name = DEFAULT_TENANT
                config = self._configs.get(name)
                if config is not None:
                    return config
            config = TenantConfig(name=name, weight=self.default_weight)
            self._configs[name] = config
            if name != DEFAULT_TENANT:
                self._adhoc += 1
            return config

    def known(self) -> tuple[str, ...]:
        """Every name seen so far (explicit first, then ad-hoc)."""
        with self._lock:
            return tuple(self._configs)

    def describe(self) -> dict[str, dict]:
        """Name -> policy row for every known tenant
        (``GET /v1/tenants``)."""
        with self._lock:
            return {name: config.describe()
                    for name, config in self._configs.items()}
