"""Scheduled request queue: the front door of the serving subsystem.

Incoming workload specs are wrapped in :class:`ServeRequest` — the spec,
a ``concurrent.futures.Future`` the caller waits on, the owning tenant,
an enqueue timestamp for latency accounting, and an optional deadline —
and buffered in a :class:`RequestQueue`.

Ordering is **not** FIFO.  The queue composes the
:mod:`repro.serve.sched` subsystem: requests land in per-tenant
earliest-deadline-first lanes and :meth:`RequestQueue.get_batch` selects
across tenants in weighted-fair-queueing order (virtual-time deficit
accounting, see :class:`~repro.serve.sched.wfq.WFQScheduler`), so a
latency-sensitive tenant's tight deadlines jump the bulk tenant's
backlog while the bulk tenant keeps its configured share.  Pass
``scheduling="fifo"`` to get the old single-lane arrival order back (the
benchmark baseline and an escape hatch).

Overload handling is **admission control**, not blind shedding:

* per-tenant token buckets and in-flight quotas (the optional
  :class:`~repro.serve.sched.admission.AdmissionController`) reject at
  ``put`` with :class:`~repro.serve.sched.admission.RateLimited` /
  :class:`~repro.serve.sched.admission.QuotaExceeded` (HTTP 429 +
  ``Retry-After``);
* the bounded queue itself rejects with :class:`QueueOverflow` (HTTP
  503) carrying a ``retry_after_s`` computed from the predicted backlog
  makespan (``retry_after_fn``).

Either way the request was never accepted — once admitted, a request is
executed or explicitly failed (deadline, shutdown), never silently
dropped.

Cancellation rides on the future: ``request.cancel()`` succeeds while
the request is still queued, and the batcher skips cancelled requests
via the standard ``Future.set_running_or_notify_cancel`` handshake.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable

from repro.core.specs import WorkloadSpec
from repro.serve.sched.admission import AdmissionController
from repro.serve.sched.tenants import DEFAULT_TENANT, TenantTable
from repro.serve.sched.wfq import WFQScheduler

#: Default bound on queued (not yet dispatched) requests.
DEFAULT_QUEUE_DEPTH = 256

#: Queue scheduling policies.
FAIR_SCHEDULING = "fair"   # WFQ across tenants, EDF within each
FIFO_SCHEDULING = "fifo"   # single lane, arrival order (pre-tenant)


class ServeError(RuntimeError):
    """Base class for serving-layer errors."""


class QueueOverflow(ServeError):
    """The bounded request queue is full; the request was rejected at
    admission (never accepted, nothing dropped).  ``retry_after_s`` is
    the predicted backlog-drain time, when the queue has an estimator."""

    def __init__(self, message: str,
                 retry_after_s: float | None = None) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class QueueClosed(ServeError):
    """The queue (or server) is shutting down; no new requests accepted."""


class ServeTimeout(ServeError):
    """The request's deadline expired before it was dispatched.

    Carries the structured fields the HTTP 504 body reports: the owning
    ``tenant`` and ``queued_ms`` — how long the request sat in the
    queue before its deadline passed."""

    def __init__(self, message: str, *, tenant: str | None = None,
                 queued_ms: float | None = None) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.queued_ms = queued_ms


@dataclass
class ServeRequest:
    """One queued unit of serving work.

    Attributes:
        spec: the workload spec to execute.
        future: resolves to the :class:`~repro.core.specs.RunResult` (or
            the execution error); cancellable while still queued.
        request_id: monotonically increasing id, for logs and ordering.
        tenant: owning tenant name (``default`` when the caller did not
            identify itself) — the unit of fairness and accounting.
        enqueued_at: ``time.monotonic()`` timestamp, for latency stats.
        deadline: optional ``time.monotonic()`` deadline; the batcher
            fails expired requests with :class:`ServeTimeout` instead of
            dispatching them.
        pins: operand-registry pins
            (:class:`~repro.serve.registry.OperandPin`) held while this
            request is in flight, so a referenced operand cannot be
            LRU-evicted before it executes.  Released automatically when
            the future resolves (result, error, or cancellation).
    """

    spec: WorkloadSpec
    future: Future = field(default_factory=Future)
    request_id: int = 0
    tenant: str = DEFAULT_TENANT
    enqueued_at: float = 0.0
    deadline: float | None = None
    pins: tuple = ()

    def expired(self, now: float | None = None) -> bool:
        """True once the deadline (when set) has passed."""
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) >= self.deadline

    def queued_ms(self, now: float) -> float:
        """Milliseconds spent waiting in the queue as of ``now``."""
        return max(0.0, (now - self.enqueued_at) * 1e3)

    def cancel(self) -> bool:
        """Cancel the request; succeeds only while it is still queued."""
        return self.future.cancel()

    def release_pins(self) -> None:
        """Release every registry pin (idempotent per pin)."""
        for pin in self.pins:
            pin.release()


class RequestQueue:
    """Thread-safe bounded scheduled queue of :class:`ServeRequest`.

    Args:
        max_depth: maximum number of waiting requests before :meth:`put`
            rejects with :class:`QueueOverflow`.
        tenants: tenant policy table (weights); a fresh default table
            when omitted, so single-tenant callers need no setup.
        admission: optional per-tenant rate-limit / quota enforcement at
            :meth:`put` (see :mod:`repro.serve.sched.admission`).
        scheduling: :data:`FAIR_SCHEDULING` (WFQ x EDF, the default) or
            :data:`FIFO_SCHEDULING` (single-lane arrival order).
        retry_after_fn: zero-arg callable returning the predicted
            backlog-drain seconds, attached to :class:`QueueOverflow`
            rejections as ``retry_after_s``.
    """

    def __init__(self, max_depth: int = DEFAULT_QUEUE_DEPTH, *,
                 tenants: TenantTable | None = None,
                 admission: AdmissionController | None = None,
                 scheduling: str = FAIR_SCHEDULING,
                 retry_after_fn: Callable[[], float] | None = None) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if scheduling not in (FAIR_SCHEDULING, FIFO_SCHEDULING):
            raise ValueError(f"scheduling must be '{FAIR_SCHEDULING}' or "
                             f"'{FIFO_SCHEDULING}', got {scheduling!r}")
        self.max_depth = max_depth
        self.scheduling = scheduling
        self.tenants = tenants if tenants is not None else TenantTable()
        self.admission = admission
        self.retry_after_fn = retry_after_fn
        self._sched = WFQScheduler(self.tenants)  # guarded-by: _condition
        self._fifo: deque[ServeRequest] = deque()  # guarded-by: _condition
        self._condition = threading.Condition()
        self._ids = itertools.count()
        self._closed = False  # guarded-by: _condition
        self.shed = 0  # guarded-by: _condition — requests rejected by backpressure, for /stats

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def put(self, spec: WorkloadSpec,
            timeout_s: float | None = None,
            pins: tuple = (),
            tenant: str = DEFAULT_TENANT) -> ServeRequest:
        """Admit and enqueue one spec, returning its :class:`ServeRequest`.

        Args:
            spec: workload to execute.
            timeout_s: optional per-request deadline, relative to now.
            pins: operand-registry pins to hold while the request is in
                flight; released when the future resolves.  On a raise
                (admission rejection / overflow / closed) the pins are
                **not** adopted — the caller still owns them.
            tenant: owning tenant name (fairness + accounting identity).

        Raises:
            RateLimited / QuotaExceeded: the tenant's admission policy
                rejected the request (HTTP 429 + Retry-After).
            QueueOverflow: the queue is at ``max_depth`` (HTTP 503 +
                Retry-After; the request was never accepted).
            QueueClosed: the queue has been closed.
        """
        now = time.monotonic()
        deadline = None if timeout_s is None else now + timeout_s
        tenant = self.tenants.resolve_name(tenant)
        admitted = False
        if self.admission is not None:
            self.admission.admit(tenant, now)  # raises on rejection
            admitted = True
        try:
            with self._condition:
                if self._closed:
                    raise QueueClosed("request queue is closed")
                if self._depth_locked() >= self.max_depth:
                    self.shed += 1
                    raise QueueOverflow(
                        f"request queue is full ({self.max_depth} "
                        "waiting); retry after the backlog drains",
                        retry_after_s=self._retry_after())
                request = ServeRequest(spec=spec,
                                       request_id=next(self._ids),
                                       tenant=tenant,
                                       enqueued_at=now, deadline=deadline,
                                       pins=tuple(pins))
                if self.scheduling == FIFO_SCHEDULING:
                    self._fifo.append(request)
                else:
                    self._sched.push(request)
                self._condition.notify()
        except BaseException:
            # The request never entered the queue: the admission slot
            # must be handed back (pins stay with the caller by contract).
            if admitted:
                self.admission.release(tenant)
            raise
        request.future.add_done_callback(self._make_releaser(request))
        return request

    def _make_releaser(self, request: ServeRequest):
        """Done-callback releasing the request's registry pins and its
        admission in-flight slot exactly once (futures fire callbacks
        once, on result, error, or cancellation)."""
        def _release(_future) -> None:
            request.release_pins()
            if self.admission is not None:
                self.admission.release(request.tenant)
        return _release

    def _retry_after(self) -> float | None:
        if self.retry_after_fn is None:
            return None
        try:
            return max(0.0, float(self.retry_after_fn()))
        except Exception:  # noqa: BLE001 - a hint must never fail a reject
            return None

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def get_batch(self, max_batch: int,
                  max_delay_s: float) -> list[ServeRequest]:
        """Collect the next micro-batch in scheduling order.

        Blocks until at least one request is waiting, then keeps
        collecting until the batch is full or a delay bound expires —
        then selects up to ``max_batch`` requests in WFQ x EDF order
        (arrival order under ``fifo`` scheduling).  One
        ``time.monotonic()`` is hoisted per collection sweep; selection
        itself never re-reads the clock.  Returns an empty list only
        when the queue is closed and drained.
        """
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        with self._condition:
            while not self._depth_locked() and not self._closed:
                self._condition.wait()
            if not self._depth_locked():
                return []  # closed and drained
            # One clock read per sweep: the collection window, deadline
            # ordering and expiry checks downstream all key off `now`.
            now = time.monotonic()
            window_ends = now + max(0.0, max_delay_s)
            while self._depth_locked() < max_batch and not self._closed:
                remaining = window_ends - time.monotonic()
                if remaining <= 0:
                    break
                self._condition.wait(remaining)
            if self.scheduling == FIFO_SCHEDULING:
                take = min(max_batch, len(self._fifo))
                return [self._fifo.popleft() for _ in range(take)]
            return self._sched.select(max_batch)

    # ------------------------------------------------------------------
    # Accounting passthroughs (fair scheduling only; no-ops under fifo)
    # ------------------------------------------------------------------
    def refund(self, tenant: str, cost: float = 1.0) -> None:
        """Return charged WFQ work to ``tenant`` — called by the batcher
        for selected requests that did not consume an execution
        (coalesced duplicates, cancellations, expired deadlines)."""
        if self.scheduling == FIFO_SCHEDULING:
            return
        with self._condition:
            self._sched.refund(tenant, cost)

    def accounting(self) -> dict[str, dict]:
        """Per-tenant WFQ accounting snapshot (empty under fifo)."""
        if self.scheduling == FIFO_SCHEDULING:
            return {}
        with self._condition:
            return self._sched.accounting()

    # ------------------------------------------------------------------
    def _depth_locked(self) -> int:  # lockcheck: holds _condition
        return (len(self._fifo) if self.scheduling == FIFO_SCHEDULING
                else self._sched.backlog)

    @property
    def depth(self) -> int:
        """Number of requests currently waiting."""
        with self._condition:
            return self._depth_locked()

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop accepting requests and wake every waiting consumer."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()

    def drain(self) -> list[ServeRequest]:
        """Remove and return every waiting request (used at shutdown so
        leftover futures can be failed instead of hanging forever)."""
        with self._condition:
            if self.scheduling == FIFO_SCHEDULING:
                leftover = list(self._fifo)
                self._fifo.clear()
                return leftover
            return self._sched.drain()
