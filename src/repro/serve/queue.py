"""Bounded request queue: the front door of the serving subsystem.

Incoming workload specs are wrapped in :class:`ServeRequest` — the spec, a
``concurrent.futures.Future`` the caller waits on, an enqueue timestamp
for latency accounting, and an optional deadline — and buffered in a
:class:`RequestQueue`.  The queue is *bounded*: once ``max_depth``
requests are waiting, :meth:`RequestQueue.put` load-sheds with a
:class:`QueueOverflow` instead of letting latency grow without bound (the
HTTP front-end maps it to ``503 Service Unavailable``).

The consumer side is shaped for micro-batching rather than item-at-a-time
work: :meth:`RequestQueue.get_batch` blocks until at least one request is
waiting, then keeps collecting until the batch is full or a delay bound
expires — the size/deadline-bounded coalescing window the
:class:`~repro.serve.batcher.MicroBatcher` dispatches through
``Session.map``.

Cancellation rides on the future: ``request.cancel()`` succeeds while the
request is still queued, and the batcher skips cancelled requests via the
standard ``Future.set_running_or_notify_cancel`` handshake.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.core.specs import WorkloadSpec

#: Default bound on queued (not yet dispatched) requests.
DEFAULT_QUEUE_DEPTH = 256


class ServeError(RuntimeError):
    """Base class for serving-layer errors."""


class QueueOverflow(ServeError):
    """The bounded request queue is full; the request was load-shed."""


class QueueClosed(ServeError):
    """The queue (or server) is shutting down; no new requests accepted."""


class ServeTimeout(ServeError):
    """The request's deadline expired before it was dispatched."""


@dataclass
class ServeRequest:
    """One queued unit of serving work.

    Attributes:
        spec: the workload spec to execute.
        future: resolves to the :class:`~repro.core.specs.RunResult` (or
            the execution error); cancellable while still queued.
        request_id: monotonically increasing id, for logs and ordering.
        enqueued_at: ``time.monotonic()`` timestamp, for latency stats.
        deadline: optional ``time.monotonic()`` deadline; the batcher
            fails expired requests with :class:`ServeTimeout` instead of
            dispatching them.
        pins: operand-registry pins
            (:class:`~repro.serve.registry.OperandPin`) held while this
            request is in flight, so a referenced operand cannot be
            LRU-evicted before it executes.  Released automatically when
            the future resolves (result, error, or cancellation).
    """

    spec: WorkloadSpec
    future: Future = field(default_factory=Future)
    request_id: int = 0
    enqueued_at: float = 0.0
    deadline: float | None = None
    pins: tuple = ()

    def expired(self, now: float | None = None) -> bool:
        """True once the deadline (when set) has passed."""
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) >= self.deadline

    def cancel(self) -> bool:
        """Cancel the request; succeeds only while it is still queued."""
        return self.future.cancel()

    def release_pins(self) -> None:
        """Release every registry pin (idempotent per pin)."""
        for pin in self.pins:
            pin.release()


class RequestQueue:
    """Thread-safe bounded FIFO of :class:`ServeRequest`, batch-oriented.

    Args:
        max_depth: maximum number of waiting requests before :meth:`put`
            load-sheds with :class:`QueueOverflow`.
    """

    def __init__(self, max_depth: int = DEFAULT_QUEUE_DEPTH) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self._items: deque[ServeRequest] = deque()  # guarded-by: _condition
        self._condition = threading.Condition()
        self._ids = itertools.count()
        self._closed = False  # guarded-by: _condition
        self.shed = 0  # guarded-by: _condition — requests rejected by backpressure, for /stats

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def put(self, spec: WorkloadSpec,
            timeout_s: float | None = None,
            pins: tuple = ()) -> ServeRequest:
        """Enqueue one spec and return its :class:`ServeRequest`.

        Args:
            spec: workload to execute.
            timeout_s: optional per-request deadline, relative to now.
            pins: operand-registry pins to hold while the request is in
                flight; released when the future resolves.  On a raise
                (overflow / closed) the pins are **not** adopted — the
                caller still owns them.

        Raises:
            QueueOverflow: the queue is at ``max_depth`` (load shed).
            QueueClosed: the queue has been closed.
        """
        now = time.monotonic()
        deadline = None if timeout_s is None else now + timeout_s
        with self._condition:
            if self._closed:
                raise QueueClosed("request queue is closed")
            if len(self._items) >= self.max_depth:
                self.shed += 1
                raise QueueOverflow(
                    f"request queue is full ({self.max_depth} waiting); "
                    "load shedding — retry later")
            request = ServeRequest(spec=spec, request_id=next(self._ids),
                                   enqueued_at=now, deadline=deadline,
                                   pins=tuple(pins))
            self._items.append(request)
            self._condition.notify()
        if request.pins:
            request.future.add_done_callback(
                lambda _future: request.release_pins())
        return request

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def get_batch(self, max_batch: int,
                  max_delay_s: float) -> list[ServeRequest]:
        """Collect the next micro-batch.

        Blocks until at least one request is waiting, then keeps
        collecting for up to ``max_delay_s`` or until ``max_batch``
        requests are buffered, whichever comes first.  Returns an empty
        list only when the queue is closed and drained.
        """
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        with self._condition:
            while not self._items and not self._closed:
                self._condition.wait()
            if not self._items:
                return []  # closed and drained
            window_ends = time.monotonic() + max(0.0, max_delay_s)
            while len(self._items) < max_batch and not self._closed:
                remaining = window_ends - time.monotonic()
                if remaining <= 0:
                    break
                self._condition.wait(remaining)
            batch = [self._items.popleft()
                     for _ in range(min(max_batch, len(self._items)))]
        return batch

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of requests currently waiting."""
        with self._condition:
            return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop accepting requests and wake every waiting consumer."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()

    def drain(self) -> list[ServeRequest]:
        """Remove and return every waiting request (used at shutdown so
        leftover futures can be failed instead of hanging forever)."""
        with self._condition:
            leftover = list(self._items)
            self._items.clear()
        return leftover
