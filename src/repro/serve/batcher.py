"""Micro-batching dispatcher: coalesce queued requests into Session.map.

The :class:`MicroBatcher` owns a background thread that repeatedly pulls a
size/deadline-bounded batch from the :class:`~repro.serve.queue.RequestQueue`
and dispatches it through the serving session:

* **Coalescing**: requests whose specs are operand-identical (same A / B
  fingerprints, tile size, verify flag, shard count) execute **once**; the
  duplicates receive the same result re-labelled per request.  Combined
  with the session's persistent program cache this is where micro-batching
  pays: a burst of requests against the same graph costs one compile and
  one execution.
* **Scheduling**: on multi-chip sessions the
  :mod:`~repro.serve.policy` layer chooses per batch between splitting
  every job across all chips (the ``multichip`` backend) and running
  whole jobs on individual chips (a single-chip twin session whose
  thread executor is as wide as the fleet) — both produce byte-identical
  outputs, so the choice is purely a throughput decision.
* **Isolation**: a failing request fails *its* future; the batch falls
  back to per-spec execution so one poison request cannot take down its
  batch-mates.
* **Tenant billing**: the queue's WFQ scheduler charges every selected
  request one unit of virtual time; the batcher refunds the requests
  that did not consume an execution — coalesced duplicates (the shared
  run is billed once, to the earliest-deadline owner, while every
  tenant is billed its own latency), cancellations, and expired
  deadlines.
* **Lifecycle**: cancelled futures are skipped through the standard
  ``set_running_or_notify_cancel`` handshake, expired deadlines fail
  with a structured :class:`~repro.serve.queue.ServeTimeout` (tenant +
  queued milliseconds, counted as a per-tenant deadline miss), and
  :meth:`MicroBatcher.stop` drains the queue, serves what is left, and
  fails anything unservable.

:class:`ServingStats` aggregates the counters the ``/stats`` endpoint
reports: queue depth, batch-size distribution, coalescing and shed
counts, scheduling decisions, cache hit rate, p50/p95 latency, and the
per-tenant accounting rows (admitted / rejected / deadline misses /
p50/p95) that ``GET /v1/tenants`` serves.

The batcher also keeps an EWMA of measured batch makespans (on the
analytic backend these are the model's predicted batch costs, since the
analytic backend *is* the execution): :meth:`MicroBatcher.\
predicted_makespan_s` turns queue depth into a backlog-drain estimate —
the ``Retry-After`` hint admission control hands rejected clients.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import deque
from dataclasses import replace as _replace_result

from repro.core.runner import matrix_fingerprint
from repro.core.session import Session
from repro.core.specs import (
    GCNLayerSpec,
    GNNModelSpec,
    RunResult,
    SpGEMMSpec,
    WorkloadSpec,
)
from repro.serve.policy import (
    ALL_CHIPS_PER_JOB,
    ScheduleDecision,
    choose_schedule,
    predicted_backlog_makespan_s,
)
from repro.serve.queue import (
    QueueClosed,
    RequestQueue,
    ServeRequest,
    ServeTimeout,
)
from repro.serve.sched.edf import deadline_key

#: Default micro-batch bounds: dispatch as soon as 8 requests are waiting,
#: or after 5 ms, whichever comes first.
DEFAULT_MAX_BATCH = 8
DEFAULT_MAX_DELAY_MS = 5.0

#: Reservoir size for the latency / batch-size distributions.
_RESERVOIR = 2048

#: Per-tenant latency reservoir size (smaller: one per tenant).
_TENANT_RESERVOIR = 512

#: Batch-makespan EWMA: seed before the first measured batch, and the
#: new-sample weight once batches are flowing.
DEFAULT_BATCH_SECONDS = 0.05
_MAKESPAN_ALPHA = 0.2


def _percentile(sample: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an unsorted sample (0.0 when empty)."""
    if not sample:
        return 0.0
    ordered = sorted(sample)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


class _TenantCounters:
    """One tenant's accounting row (guarded by the owning
    :class:`ServingStats` lock)."""

    __slots__ = ("admitted", "rejected_rate", "rejected_quota",
                 "rejected_queue", "deadline_misses", "responses",
                 "failures", "latencies")

    def __init__(self) -> None:
        self.admitted = 0          # accepted into the queue
        self.rejected_rate = 0     # 429: token bucket empty
        self.rejected_quota = 0    # 429: in-flight quota
        self.rejected_queue = 0    # 503: bounded queue full
        self.deadline_misses = 0   # 504: expired before dispatch
        self.responses = 0
        self.failures = 0
        self.latencies: deque[float] = deque(maxlen=_TENANT_RESERVOIR)

    def snapshot(self) -> dict:
        latencies = list(self.latencies)
        return {
            "admitted": self.admitted,
            "rejected": (self.rejected_rate + self.rejected_quota
                         + self.rejected_queue),
            "rejected_rate": self.rejected_rate,
            "rejected_quota": self.rejected_quota,
            "rejected_queue": self.rejected_queue,
            "deadline_misses": self.deadline_misses,
            "responses": self.responses,
            "failures": self.failures,
            "latency_p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
            "latency_p95_ms": round(_percentile(latencies, 0.95) * 1e3, 3),
        }


class ServingStats:
    """Thread-safe counters and distributions for the serving layer."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started_at = time.monotonic()
        self.requests = 0          # guarded-by: _lock — accepted into the queue
        self.responses = 0         # guarded-by: _lock — futures resolved with a result
        self.failures = 0          # guarded-by: _lock — futures resolved with an exception
        self.timeouts = 0          # guarded-by: _lock — deadline expired before dispatch
        self.cancelled = 0         # guarded-by: _lock — cancelled while queued
        self.coalesced = 0         # guarded-by: _lock — duplicates served by a batch-mate's run
        self.batches = 0           # guarded-by: _lock — micro-batches dispatched
        self.bytes_in = 0          # guarded-by: _lock — request body bytes accepted
        self.bytes_out = 0         # guarded-by: _lock — response body bytes served
        self.scale_out_batches = 0  # guarded-by: _lock — batches scheduled whole-jobs-per-chip
        self.degree_partition_runs = 0  # guarded-by: _lock — multichip runs on a degree plan
        self.gnn_stacks = 0        # guarded-by: _lock — GNNModelSpec stacks served
        self.gnn_layers = 0        # guarded-by: _lock — layers executed inside those stacks
        # Last served stack's shape and amortized per-layer cost — the
        # /stats signal that resident-graph reuse is working.
        self._gnn_last_depth: int | None = None  # guarded-by: _lock
        self._gnn_cycles_per_layer: float | None = None  # guarded-by: _lock
        self._batch_sizes: deque[int] = deque(maxlen=_RESERVOIR)  # guarded-by: _lock
        self._latencies: deque[float] = deque(maxlen=_RESERVOIR)  # guarded-by: _lock
        self._tenants: dict[str, _TenantCounters] = {}  # guarded-by: _lock
        # Last observed multichip load-balance telemetry (the autoscaler's
        # per-batch imbalance signal): shard skew, scale-out efficiency,
        # and the partition strategy the planner chose.
        self._multichip_shard_skew: float | None = None  # guarded-by: _lock
        self._multichip_efficiency: float | None = None  # guarded-by: _lock
        self._multichip_partition: str | None = None  # guarded-by: _lock

    def add(self, counter: str, n: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + n)

    def record_batch(self, size: int, decision: ScheduleDecision) -> None:
        with self._lock:
            self.batches += 1
            self._batch_sizes.append(size)
            if decision.scale_out:
                self.scale_out_batches += 1

    def record_latency(self, seconds: float) -> None:
        with self._lock:
            self._latencies.append(seconds)

    # -- per-tenant accounting -----------------------------------------
    def _tenant(self, name: str) -> _TenantCounters:  # lockcheck: holds _lock
        counters = self._tenants.get(name)
        if counters is None:
            counters = _TenantCounters()
            self._tenants[name] = counters
        return counters

    def record_admitted(self, tenant: str) -> None:
        with self._lock:
            self._tenant(tenant).admitted += 1

    def record_rejected(self, tenant: str, reason: str) -> None:
        """One admission rejection: ``reason`` is ``rate`` (429 token
        bucket), ``quota`` (429 in-flight cap) or ``queue`` (503 bounded
        queue)."""
        if reason not in ("rate", "quota", "queue"):
            raise ValueError(f"unknown rejection reason {reason!r}")
        with self._lock:
            counters = self._tenant(tenant)
            setattr(counters, f"rejected_{reason}",
                    getattr(counters, f"rejected_{reason}") + 1)

    def record_deadline_miss(self, tenant: str) -> None:
        with self._lock:
            self.timeouts += 1
            self._tenant(tenant).deadline_misses += 1

    def record_response(self, tenant: str, seconds: float) -> None:
        """One resolved request: global + per-tenant response count and
        latency sample (each coalesced duplicate is billed its *own*
        latency here; only the WFQ work charge is shared)."""
        with self._lock:
            self.responses += 1
            self._latencies.append(seconds)
            counters = self._tenant(tenant)
            counters.responses += 1
            counters.latencies.append(seconds)

    def record_failure(self, tenant: str | None = None) -> None:
        with self._lock:
            self.failures += 1
            if tenant is not None:
                self._tenant(tenant).failures += 1

    def tenant_snapshot(self) -> dict[str, dict]:
        """Per-tenant accounting rows (``GET /v1/tenants``)."""
        with self._lock:
            return {name: counters.snapshot()
                    for name, counters in self._tenants.items()}

    def record_gnn(self, metrics: dict) -> None:
        """Record one served GNN stack's per-stack metrics."""
        layers = int(metrics.get("layers", 0) or 0)
        with self._lock:
            self.gnn_stacks += 1
            self.gnn_layers += layers
            self._gnn_last_depth = layers or None
            total = metrics.get("total_cycles")
            if layers and total is not None:
                self._gnn_cycles_per_layer = round(float(total) / layers, 1)

    def record_multichip(self, shard_skew, efficiency, partition) -> None:
        """Record one multichip run's load-balance telemetry (None values
        are ignored so non-multichip results never clear the signal)."""
        with self._lock:
            if shard_skew is not None:
                self._multichip_shard_skew = float(shard_skew)
            if efficiency is not None:
                self._multichip_efficiency = float(efficiency)
            if partition is not None:
                self._multichip_partition = str(partition)
                if partition == "degree":
                    self.degree_partition_runs += 1

    def snapshot(self, queue_depth: int = 0, shed: int = 0,
                 cache: dict | None = None,
                 registry: dict | None = None) -> dict:
        """Flat dict for the ``/stats`` endpoint."""
        with self._lock:
            sizes = list(self._batch_sizes)
            latencies = list(self._latencies)
            tenants = {name: counters.snapshot()
                       for name, counters in self._tenants.items()}
            row = {
                "tenants": tenants,
                "uptime_s": round(time.monotonic() - self.started_at, 3),
                "queue_depth": queue_depth,
                "requests": self.requests,
                "responses": self.responses,
                "failures": self.failures,
                "shed": shed,
                "timeouts": self.timeouts,
                "cancelled": self.cancelled,
                "coalesced": self.coalesced,
                "batches": self.batches,
                "bytes_in": self.bytes_in,
                "bytes_out": self.bytes_out,
                "scale_out_batches": self.scale_out_batches,
                "degree_partition_runs": self.degree_partition_runs,
                "gnn_stacks": self.gnn_stacks,
                "gnn_layers": self.gnn_layers,
                "gnn_last_depth": self._gnn_last_depth,
                "gnn_cycles_per_layer": self._gnn_cycles_per_layer,
                "multichip_shard_skew": self._multichip_shard_skew,
                "multichip_efficiency": self._multichip_efficiency,
                "multichip_partition": self._multichip_partition,
            }
        row["mean_batch_size"] = (round(sum(sizes) / len(sizes), 3)
                                  if sizes else 0.0)
        row["max_batch_size"] = max(sizes) if sizes else 0
        row["latency_p50_ms"] = round(_percentile(latencies, 0.50) * 1e3, 3)
        row["latency_p95_ms"] = round(_percentile(latencies, 0.95) * 1e3, 3)
        if cache:
            lookups = cache.get("hits", 0) + cache.get("misses", 0)
            row["cache_hits"] = cache.get("hits", 0)
            row["cache_misses"] = cache.get("misses", 0)
            row["cache_hit_rate"] = (round(cache["hits"] / lookups, 4)
                                     if lookups else 0.0)
        if registry:
            row.update(registry)
        return row


def _operand_key(operand, digest: str | None) -> str | None:
    """Coalescing identity of one operand: the registry digest when the
    spec carries one (ref-resolved requests — no hashing at all), else a
    freshly computed fingerprint.  Both are ``matrix_fingerprint`` values,
    so an inline upload and a registry ref to the same matrix coalesce."""
    if digest is not None:
        return digest
    if not hasattr(operand, "indptr"):
        return None  # un-fingerprintable operand (dense ndarray, ...)
    return matrix_fingerprint(operand)


def _dataset_key(dataset) -> str | None:
    """Coalescing identity of a GNN spec's graph: a content digest of the
    raw adjacency (COO entries + shape), memoized on the dataset object so
    a burst of requests against one resident graph hashes it once."""
    cached = getattr(dataset, "_coalesce_digest", None)
    if cached is not None:
        return cached
    adjacency = getattr(dataset, "adjacency", dataset)
    rows = getattr(adjacency, "rows", None)
    if rows is None:
        return None  # not a COO-shaped adjacency
    digest = hashlib.sha1()
    digest.update(str(adjacency.shape).encode())
    for array in (adjacency.rows, adjacency.cols, adjacency.data):
        digest.update(str(array.dtype).encode())
        digest.update(array.tobytes())
    key = digest.hexdigest()
    try:
        dataset._coalesce_digest = key
    except (AttributeError, TypeError):
        pass  # frozen / slotted objects just re-hash next time
    return key


def _coalesce_key(spec: WorkloadSpec):
    """Identity key for batch-level request coalescing, or ``None`` when
    the spec kind is not coalescible.  ``label`` and ``source`` are
    deliberately excluded (the program cache key ignores ``source`` too):
    two requests for the same product under different names share one
    execution and get re-labelled copies of the result.

    GNN specs coalesce on (dataset digest + dims + seed): the synthetic
    features and weights are fully determined by the dims and seed, so two
    such requests describe bit-identical workloads.  A :class:`GCNLayerSpec`
    carrying explicit ``features`` is a chained layer with a per-request
    payload — not coalescible."""
    if isinstance(spec, GCNLayerSpec):
        if spec.features is not None:
            return None
        dataset_key = _dataset_key(spec.dataset)
        if dataset_key is None:
            return None
        return ("gcn", dataset_key, spec.feature_dim, spec.hidden_dim,
                spec.feature_density, spec.seed, spec.weight_seed,
                spec.activation, spec.verify)
    if isinstance(spec, GNNModelSpec):
        dataset_key = _dataset_key(spec.dataset)
        if dataset_key is None:
            return None
        activations = spec.activations
        if activations is not None and not isinstance(activations, str):
            activations = tuple(activations)
        return ("gnn", dataset_key, tuple(spec.layer_dims), spec.feature_dim,
                spec.feature_density, activations, spec.seed, spec.batches,
                spec.verify)
    if not isinstance(spec, SpGEMMSpec):
        return None
    a_key = _operand_key(spec.a, spec.a_digest)
    if a_key is None:
        return None
    if spec.b is None:
        b_key = None
    else:
        b_key = _operand_key(spec.b, spec.b_digest)
        if b_key is None:
            return None
    return (a_key, b_key, spec.tile_size, spec.verify, spec.shards)


class MicroBatcher:
    """Background dispatcher turning queued requests into session batches.

    Args:
        session: the serving :class:`~repro.core.session.Session`.
        queue: the bounded :class:`RequestQueue` requests arrive on.
        max_batch: dispatch as soon as this many requests are buffered.
        max_delay_ms: ... or once the oldest buffered request has waited
            this long (the latency the first request in a batch donates to
            fill the batch).
        coalesce: serve operand-identical requests from one execution.
        policy: per-batch scheduling decision function; defaults to
            :func:`~repro.serve.policy.choose_schedule` (only consulted on
            multi-chip sessions).
    """

    def __init__(self, session: Session, queue: RequestQueue, *,
                 max_batch: int = DEFAULT_MAX_BATCH,
                 max_delay_ms: float = DEFAULT_MAX_DELAY_MS,
                 coalesce: bool = True,
                 policy=choose_schedule,
                 stats: ServingStats | None = None) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_ms < 0:
            raise ValueError(f"max_delay_ms must be >= 0, got {max_delay_ms}")
        self.session = session
        self.queue = queue
        self.max_batch = max_batch
        self.max_delay_s = max_delay_ms / 1e3
        self.coalesce = coalesce
        self.policy = policy
        self.stats = stats if stats is not None else ServingStats()
        self._thread: threading.Thread | None = None
        self._scale_out_session: Session | None = None
        # EWMA of measured batch makespans; written only by the dispatch
        # thread, read racily (a float hint) by admission control.
        self._batch_seconds_ewma: float | None = None

    # ------------------------------------------------------------------
    # Backlog makespan prediction (Retry-After hints)
    # ------------------------------------------------------------------
    def predicted_batch_seconds(self) -> float:
        """Predicted makespan of one micro-batch: the EWMA of measured
        batch walls (on the analytic backend, the model's predicted
        batch cost), or a small seed before the first batch lands."""
        ewma = self._batch_seconds_ewma
        return ewma if ewma is not None else DEFAULT_BATCH_SECONDS

    def predicted_makespan_s(self) -> float:
        """Predicted seconds to drain the current backlog plus one more
        request — what admission control quotes as ``Retry-After``."""
        return predicted_backlog_makespan_s(self.queue.depth,
                                            self.max_batch,
                                            self.predicted_batch_seconds())

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "MicroBatcher":
        """Start the dispatch thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(target=self._loop,
                                            name="repro-serve-batcher",
                                            daemon=True)
            self._thread.start()
        return self

    def stop(self, timeout_s: float | None = 30.0) -> None:
        """Close the queue, serve what is already buffered, fail the rest,
        and join the dispatch thread.  Safe to call more than once."""
        self.queue.close()
        thread = self._thread
        if thread is not None:
            thread.join(timeout_s)
            self._thread = None
        for request in self.queue.drain():  # unreachable after a clean join
            if request.future.set_running_or_notify_cancel():
                request.future.set_exception(
                    QueueClosed("server shut down before dispatch"))
        if self._scale_out_session is not None:
            self._scale_out_session.close()
            self._scale_out_session = None

    def _loop(self) -> None:
        while True:
            batch = self.queue.get_batch(self.max_batch, self.max_delay_s)
            if not batch:
                return  # queue closed and drained
            try:
                self._serve_batch(batch)
            except Exception as error:  # noqa: BLE001 - thread must survive
                # Anything escaping the dispatch path (policy, coalescing,
                # result resolution) fails this batch's futures — never the
                # dispatch thread, or every later request would hang.
                self._fail_batch(batch, error)

    def _fail_batch(self, batch: list[ServeRequest],
                    error: Exception) -> None:
        for request in batch:
            future = request.future
            if future.done():
                continue
            try:
                future.set_exception(error)
            except Exception:  # noqa: BLE001 - cancelled mid-flight
                continue
            self.stats.record_failure(request.tenant)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _serve_batch(self, batch: list[ServeRequest]) -> None:
        # One clock read covers the whole admission sweep: expiry checks
        # and queued-time accounting all key off `started`.
        started = time.monotonic()
        live: list[ServeRequest] = []
        for request in batch:
            if not request.future.set_running_or_notify_cancel():
                self.stats.add("cancelled")
                self.queue.refund(request.tenant)
                continue
            if request.expired(started):
                self.stats.record_deadline_miss(request.tenant)
                self.queue.refund(request.tenant)
                queued_ms = round(request.queued_ms(started), 3)
                request.future.set_exception(ServeTimeout(
                    f"request deadline expired after {queued_ms:.0f}ms "
                    "in queue", tenant=request.tenant,
                    queued_ms=queued_ms))
                continue
            live.append(request)
        if not live:
            return
        groups = self._group(live)
        self._bill_coalesced(groups)
        try:
            decision = self.policy([group[0][0].spec for group in groups],
                                   self.session.topology)
        except Exception:  # noqa: BLE001 - a policy bug must not fail a batch
            decision = ScheduleDecision(
                ALL_CHIPS_PER_JOB, len(groups),
                self.session.topology.n_chips
                if self.session.topology is not None else 1,
                1.0, "policy raised; fell back to scale-up")
        target = (self._whole_jobs_session() if decision.scale_out
                  else self.session)
        specs = [group[0][0].spec for group in groups]
        try:
            results = target.map(specs)
        except Exception:
            # One bad spec poisons Session.map for the whole batch; fall
            # back to per-spec execution so failures stay per-request.
            results = [self._run_isolated(target, spec) for spec in specs]
        for group, result in zip(groups, results):
            self._resolve(group, result)
        self.stats.record_batch(len(live), decision)
        # Fold this batch's measured makespan into the EWMA feeding
        # admission control's Retry-After estimates.  Single writer (the
        # dispatch thread); readers treat it as a racy float hint.
        wall = time.monotonic() - started
        previous = self._batch_seconds_ewma
        if previous is None:
            self._batch_seconds_ewma = wall
        else:
            self._batch_seconds_ewma = (
                (1.0 - _MAKESPAN_ALPHA) * previous + _MAKESPAN_ALPHA * wall)

    def _bill_coalesced(
            self, groups: list[list[tuple[ServeRequest, bool]]]) -> None:
        """Refund WFQ charges for coalesced duplicates so each shared
        execution is billed exactly once — to the member with the
        earliest deadline (ties: arrival order).  Latency accounting is
        unaffected: every request still records its own response time."""
        for group in groups:
            if len(group) < 2:
                continue
            owner, _ = min(group, key=lambda pair: deadline_key(pair[0]))
            for request, _is_primary in group:
                if request is not owner:
                    self.queue.refund(request.tenant)

    def _group(self, live: list[ServeRequest]
               ) -> list[list[tuple[ServeRequest, bool]]]:
        """Partition the batch into execution groups: each group is the
        requests served by one execution, first request first."""
        if not self.coalesce:
            return [[(request, True)] for request in live]
        groups: list[list[tuple[ServeRequest, bool]]] = []
        by_key: dict = {}
        for request in live:
            key = _coalesce_key(request.spec)
            if key is not None and key in by_key:
                groups[by_key[key]].append((request, False))
                self.stats.add("coalesced")
                continue
            if key is not None:
                by_key[key] = len(groups)
            groups.append([(request, True)])
        return groups

    def _run_isolated(self, target: Session, spec: WorkloadSpec):
        """Run one spec, returning the result or the exception itself."""
        try:
            return target.run(spec)
        except Exception as error:  # noqa: BLE001 - mirrored into futures
            return error

    def _resolve(self, group: list[tuple[ServeRequest, bool]],
                 result) -> None:
        done = time.monotonic()
        if not isinstance(result, Exception):
            metrics = getattr(result, "metrics", None) or {}
            self.stats.record_multichip(metrics.get("shard_skew"),
                                        metrics.get("efficiency"),
                                        metrics.get("partition"))
            if getattr(result, "kind", None) == "gnn_model":
                self.stats.record_gnn(metrics)
        for request, is_primary in group:
            if isinstance(result, Exception):
                self.stats.record_failure(request.tenant)
                request.future.set_exception(result)
                continue
            value: RunResult = result
            if not is_primary and value.label != request.spec.label:
                # A coalesced duplicate: same execution, its own label.
                value = _replace_result(value, label=request.spec.label)
            request.future.set_result(value)
            self.stats.record_response(request.tenant,
                                       done - request.enqueued_at)

    # ------------------------------------------------------------------
    # Whole-jobs-per-chip twin session
    # ------------------------------------------------------------------
    def _whole_jobs_session(self) -> Session:
        """A single-chip twin of the multichip serving session: same chip
        and program cache, the per-chip backend, and a thread executor as
        wide as the fleet — so each chip runs complete jobs in parallel.
        Outputs are byte-identical either way (the multichip reduce
        reproduces the single-chip product exactly)."""
        if self._scale_out_session is None:
            topology = self.session.topology
            self._scale_out_session = Session(
                self.session.chip,
                backend=topology.chip_backend,
                impl=self.session.impl,
                executor="thread",
                workers=topology.n_chips,
                cache=self.session.cache)
        return self._scale_out_session
