"""Content-addressed operand registry: upload once, reference forever.

The serving layer's steady-state waste is re-shipping operands: every
JSON-inline request carries the full CSR of A (and B), and the batcher
re-fingerprints those arrays per request just to discover it already ran
the identical product.  The :class:`OperandRegistry` closes that loop:

* ``PUT /v1/operands`` stores a CSR (uploaded inline, as a binary
  :mod:`~repro.serve.wire` frame, or synthesised server-side from a named
  generator dataset) under its **content digest** — the same
  :func:`~repro.core.runner.matrix_fingerprint` the program cache and the
  coalescer key on, so a registered handle *is* the coalescing identity.
* later requests say ``{"a": {"ref": "<digest>"}}`` — a ~100-byte body —
  and :meth:`OperandRegistry.resolve` swaps the
  :class:`~repro.core.specs.OperandRef` for the resident matrix, stamping
  ``a_digest`` / ``b_digest`` on the spec so the micro-batcher's
  coalescer never re-hashes the arrays.

Residency is bounded: the registry is size-capped and LRU-swept, exactly
like every other buffer in the serving layer.  Entries referenced by
in-flight requests are *pinned* (ref-counted via :class:`OperandPin`) and
survive sweeps; the pin is released when the request's future resolves,
so a hot operand under load can never be evicted out from under the
batch that is about to execute it.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from dataclasses import replace as _replace
from typing import Any

from repro.analysis.structure import require_valid_csr
from repro.core.runner import matrix_fingerprint
from repro.core.specs import OperandRef, SpGEMMSpec, WorkloadSpec
from repro.sparse.csr import CSRMatrix

#: Default bound on resident operand bytes (indptr + indices + data).
DEFAULT_REGISTRY_BYTES = 256 * 1024 * 1024


class UnknownOperand(KeyError):
    """A dangling ref: no registered operand under that digest (404)."""

    def __str__(self) -> str:  # KeyError quotes its arg; keep it readable
        return self.args[0] if self.args else "unknown operand"


class OperandPinned(RuntimeError):
    """The operand is referenced by in-flight requests (409)."""


class RegistryFull(ValueError):
    """A single operand exceeds the registry's byte cap (413)."""


@dataclass
class OperandEntry:
    """One resident operand.

    Attributes:
        digest: content digest (``matrix_fingerprint``) — the handle.
        csr: the resident matrix.
        nbytes: resident size (the three array buffers).
        source: dataset name or ``"upload"``; label provenance only.
        dataset: the server-side :class:`~repro.datasets.suite.GraphDataset`
            when the operand was registered from a named generator — lets
            ``/v1/gcn`` serve ref requests byte-identically to the
            inline-dataset path.
        hits: resolutions served from this entry.
        refcount: in-flight requests currently pinning the entry.
    """

    digest: str
    csr: CSRMatrix
    nbytes: int
    source: str = "upload"
    dataset: Any = None
    created_at: float = field(default_factory=time.monotonic)
    hits: int = 0
    refcount: int = 0

    def describe(self) -> dict:
        """Metadata row for the ``/v1/operands`` endpoints."""
        return {
            "ref": self.digest,
            "shape": list(self.csr.shape),
            "nnz": self.csr.nnz,
            "bytes": self.nbytes,
            "source": self.source,
            "dataset_backed": self.dataset is not None,
            "hits": self.hits,
            "pinned": self.refcount,
        }


class OperandPin:
    """One in-flight use of a registered operand; release is idempotent."""

    __slots__ = ("_registry", "digest", "_released")

    def __init__(self, registry: "OperandRegistry", digest: str) -> None:
        self._registry = registry
        self.digest = digest
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._registry.release(self.digest)


class OperandRegistry:
    """Thread-safe content-addressed LRU store of CSR operands.

    Args:
        max_bytes: bound on resident operand bytes.  Inserts beyond it
            evict least-recently-used *unpinned* entries; pinned entries
            are skipped (they are about to execute), so the registry may
            transiently exceed the cap under extreme in-flight pressure
            — it re-converges as pins release.
    """

    def __init__(self, max_bytes: int = DEFAULT_REGISTRY_BYTES) -> None:
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[str, OperandEntry]" = OrderedDict()  # guarded-by: _lock
        self._lock = threading.Lock()
        self._bytes = 0  # guarded-by: _lock
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self.evictions = 0  # guarded-by: _lock

    # ------------------------------------------------------------------
    # Store / fetch
    # ------------------------------------------------------------------
    def put(self, csr: CSRMatrix, *, source: str = "upload",
            dataset: Any = None) -> tuple[OperandEntry, bool]:
        """Register ``csr``; returns ``(entry, created)``.

        Idempotent: re-uploading an already-resident operand touches the
        LRU and returns the existing entry (upgrading it with ``dataset``
        when the first registration lacked one).

        Raises:
            RegistryFull: the single operand is larger than ``max_bytes``.
        """
        require_valid_csr(csr, context="registry-put")
        digest = matrix_fingerprint(csr)
        nbytes = csr.indptr.nbytes + csr.indices.nbytes + csr.data.nbytes
        with self._lock:
            entry = self._entries.get(digest)
            if entry is not None:
                self._entries.move_to_end(digest)
                if entry.dataset is None and dataset is not None:
                    entry.dataset = dataset
                    entry.source = source
                return entry, False
            if nbytes > self.max_bytes:
                raise RegistryFull(
                    f"operand is {nbytes} bytes; registry cap is "
                    f"{self.max_bytes} bytes")
            entry = OperandEntry(digest=digest, csr=csr, nbytes=nbytes,
                                 source=source, dataset=dataset)
            self._entries[digest] = entry
            self._bytes += nbytes
            self._sweep(protect=digest)
            return entry, True

    def get(self, digest: str) -> OperandEntry:
        """Fetch a resident operand by digest (LRU touch + hit count).

        Raises:
            UnknownOperand: no entry under ``digest`` (dangling ref).
        """
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                self.misses += 1
                raise UnknownOperand(f"unknown operand ref {digest!r}; "
                                     "upload it via PUT /v1/operands")
            self._entries.move_to_end(digest)
            entry.hits += 1
            self.hits += 1
            return entry

    def delete(self, digest: str) -> None:
        """Remove an operand.

        Raises:
            UnknownOperand: nothing registered under ``digest``.
            OperandPinned: in-flight requests still reference it.
        """
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                raise UnknownOperand(f"unknown operand ref {digest!r}")
            if entry.refcount > 0:
                raise OperandPinned(
                    f"operand {digest!r} is pinned by {entry.refcount} "
                    "in-flight request(s); retry once they resolve")
            del self._entries[digest]
            self._bytes -= entry.nbytes

    # ------------------------------------------------------------------
    # Pinning
    # ------------------------------------------------------------------
    def acquire(self, digest: str) -> OperandPin:
        """Pin an entry for one in-flight use.

        Raises:
            UnknownOperand: no entry under ``digest``.
        """
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                raise UnknownOperand(f"unknown operand ref {digest!r}")
            entry.refcount += 1
        return OperandPin(self, digest)

    def release(self, digest: str) -> None:
        """Drop one pin; sweeps if the cap was exceeded while pinned."""
        with self._lock:
            entry = self._entries.get(digest)
            if entry is not None and entry.refcount > 0:
                entry.refcount -= 1
            self._sweep()

    # ------------------------------------------------------------------
    # Spec resolution
    # ------------------------------------------------------------------
    def resolve(self, spec: WorkloadSpec
                ) -> tuple[WorkloadSpec, tuple[OperandPin, ...]]:
        """Swap :class:`OperandRef` operands on a spec for resident CSRs.

        Returns the resolved spec (with ``a_digest`` / ``b_digest``
        stamped, so the coalescer keys on the digest instead of
        re-fingerprinting) plus the pins taken — the caller hands those
        to the request queue, which releases them when the request's
        future resolves.

        Raises:
            UnknownOperand: a ref does not resolve (any pins already
                taken for this spec are released first).
        """
        if not isinstance(spec, SpGEMMSpec):
            return spec, ()
        pins: list[OperandPin] = []
        updates: dict[str, Any] = {}
        try:
            for name in ("a", "b"):
                operand = getattr(spec, name)
                if not isinstance(operand, OperandRef):
                    continue
                entry = self.get(operand.ref)
                pins.append(self.acquire(operand.ref))
                updates[name] = entry.csr
                updates[f"{name}_digest"] = entry.digest
        except UnknownOperand:
            for pin in pins:
                pin.release()
            raise
        if updates:
            spec = _replace(spec, **updates)
        return spec, tuple(pins)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._entries

    def entries(self) -> list[dict]:
        """Metadata rows for every resident operand, LRU-oldest first."""
        with self._lock:
            return [entry.describe() for entry in self._entries.values()]

    def stats(self) -> dict:
        """Counter snapshot merged into the ``/stats`` endpoint."""
        with self._lock:
            return {
                "registry_entries": len(self._entries),
                "registry_bytes": self._bytes,
                "registry_max_bytes": self.max_bytes,
                "registry_hits": self.hits,
                "registry_misses": self.misses,
                "registry_evictions": self.evictions,
                "registry_pinned": sum(1 for e in self._entries.values()
                                       if e.refcount > 0),
            }

    # ------------------------------------------------------------------
    def _sweep(self, protect: str | None = None) -> None:  # lockcheck: holds _lock
        """Evict LRU unpinned entries until under the cap (lock held).

        ``protect`` shields the just-inserted digest: it is the MRU entry
        and must never be the victim of its own insertion sweep even when
        every older entry is pinned (transient overage instead).
        """
        while self._bytes > self.max_bytes:
            victim = next((digest for digest, entry in self._entries.items()
                           if entry.refcount == 0 and digest != protect),
                          None)
            if victim is None:  # everything pinned: transient overage
                return
            entry = self._entries.pop(victim)
            self._bytes -= entry.nbytes
            self.evictions += 1
