"""Area and power model (Table 4 / Table 5 of the paper)."""

from repro.power.model import (
    AreaPowerBreakdown,
    PowerModel,
    TABLE4_REFERENCE,
    area_breakdown,
    energy_efficiency_gops_per_watt,
    area_efficiency_gops_per_mm2,
    power_breakdown,
)

__all__ = [
    "AreaPowerBreakdown",
    "PowerModel",
    "TABLE4_REFERENCE",
    "area_breakdown",
    "power_breakdown",
    "energy_efficiency_gops_per_watt",
    "area_efficiency_gops_per_mm2",
]
