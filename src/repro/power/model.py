"""Analytic area / power model of NeuraChip.

The paper synthesises its RTL with Cadence Genus against the ASAP7 7 nm
library and reports per-unit area and average power (Table 4).  We cannot run
synthesis here, so the model below is calibrated directly to Table 4: each
unit type has a per-instance area and a (static + dynamic) power cost whose
constants are fitted to reproduce the three Tile configurations; dynamic
power scales with the activity factors the simulator reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.config import NeuraChipConfig, TILE16, TILE4, TILE64

#: Paper-reported Table 4 values: unit -> {config name -> (area mm^2, power W)}.
TABLE4_REFERENCE: dict[str, dict[str, tuple[float, float]]] = {
    "NeuraCore": {"Tile-4": (0.28, 1.05), "Tile-16": (2.74, 1.86),
                  "Tile-64": (9.36, 5.76)},
    "NeuraMem": {"Tile-4": (1.22, 6.85), "Tile-16": (5.10, 7.36),
                 "Tile-64": (18.64, 11.19)},
    "Router": {"Tile-4": (0.49, 2.15), "Tile-16": (1.98, 4.88),
               "Tile-64": (6.88, 4.43)},
    "Memory Controller": {"Tile-4": (0.38, 1.41), "Tile-16": (0.38, 1.96),
                          "Tile-64": (0.38, 2.84)},
    "Total": {"Tile-4": (2.37, 11.46), "Tile-16": (10.2, 16.06),
              "Tile-64": (35.26, 24.22)},
}


@dataclass
class AreaPowerBreakdown:
    """Per-unit area and power of one configuration.

    Attributes:
        config_name: the NeuraChip configuration this breakdown describes.
        area_mm2: unit name -> area in square millimetres.
        power_w: unit name -> average power in watts.
    """

    config_name: str
    area_mm2: dict[str, float] = field(default_factory=dict)
    power_w: dict[str, float] = field(default_factory=dict)

    @property
    def total_area_mm2(self) -> float:
        return sum(self.area_mm2.values())

    @property
    def total_power_w(self) -> float:
        return sum(self.power_w.values())

    def as_table_rows(self) -> list[dict[str, float | str]]:
        """Rows in the Table 4 layout (unit, area, power)."""
        rows = []
        units = list(self.area_mm2) + [u for u in self.power_w if u not in self.area_mm2]
        for unit in units:
            rows.append({"unit": unit,
                         "area_mm2": round(self.area_mm2.get(unit, 0.0), 2),
                         "power_w": round(self.power_w.get(unit, 0.0), 2)})
        rows.append({"unit": "Total",
                     "area_mm2": round(self.total_area_mm2, 2),
                     "power_w": round(self.total_power_w, 2)})
        return rows


class PowerModel:
    """Area / power estimator calibrated against Table 4.

    Per-unit area is interpolated from the reference configurations by
    component count; power is split into a static part (present whenever the
    unit is powered) and a dynamic part scaled by the unit's activity factor.
    """

    #: Fraction of the Table 4 average power treated as activity-independent.
    STATIC_FRACTION = 0.45

    _REFERENCE_CONFIGS = {"Tile-4": TILE4, "Tile-16": TILE16, "Tile-64": TILE64}

    def __init__(self) -> None:
        self._unit_counts = {
            "NeuraCore": lambda cfg: cfg.total_cores,
            "NeuraMem": lambda cfg: cfg.total_mems,
            "Router": lambda cfg: cfg.total_routers,
            "Memory Controller": lambda cfg: cfg.memory_controllers,
        }

    # ------------------------------------------------------------------
    def _nearest_reference(self, config: NeuraChipConfig) -> str:
        """Reference configuration with the closest total core count."""
        return min(self._REFERENCE_CONFIGS,
                   key=lambda name: abs(self._REFERENCE_CONFIGS[name].total_cores
                                        - config.total_cores))

    def _per_unit(self, unit: str, reference_name: str,
                  kind: int) -> float:
        """Per-instance area (kind=0) or power (kind=1) from the reference."""
        reference_config = self._REFERENCE_CONFIGS[reference_name]
        count = self._unit_counts[unit](reference_config)
        value = TABLE4_REFERENCE[unit][reference_name][kind]
        return value / max(count, 1)

    # ------------------------------------------------------------------
    def area(self, config: NeuraChipConfig) -> AreaPowerBreakdown:
        """Area breakdown for an arbitrary configuration."""
        reference = config.name if config.name in self._REFERENCE_CONFIGS \
            else self._nearest_reference(config)
        breakdown = AreaPowerBreakdown(config_name=config.name)
        for unit, count_fn in self._unit_counts.items():
            per_instance = self._per_unit(unit, reference, kind=0)
            breakdown.area_mm2[unit] = per_instance * count_fn(config)
        return breakdown

    def power(self, config: NeuraChipConfig,
              activity: dict[str, float] | None = None) -> AreaPowerBreakdown:
        """Power breakdown scaled by per-unit activity factors in [0, 1].

        Args:
            config: the NeuraChip configuration.
            activity: mapping from unit name ('NeuraCore', 'NeuraMem',
                'Router', 'Memory Controller') to an activity factor; missing
                units default to 1.0 (the Table 4 measurement conditions).
        """
        activity = activity or {}
        reference = config.name if config.name in self._REFERENCE_CONFIGS \
            else self._nearest_reference(config)
        breakdown = AreaPowerBreakdown(config_name=config.name)
        for unit, count_fn in self._unit_counts.items():
            per_instance = self._per_unit(unit, reference, kind=1)
            factor = float(activity.get(unit, 1.0))
            factor = min(max(factor, 0.0), 1.0)
            scale = self.STATIC_FRACTION + (1.0 - self.STATIC_FRACTION) * factor
            breakdown.power_w[unit] = per_instance * count_fn(config) * scale
        return breakdown

    def combined(self, config: NeuraChipConfig,
                 activity: dict[str, float] | None = None) -> AreaPowerBreakdown:
        """Area and power in one breakdown object."""
        breakdown = self.area(config)
        breakdown.power_w = self.power(config, activity).power_w
        return breakdown


# ----------------------------------------------------------------------
# Convenience functions used by the benchmark harness.
# ----------------------------------------------------------------------
def area_breakdown(config: NeuraChipConfig) -> AreaPowerBreakdown:
    """Table 4 area breakdown for a configuration."""
    return PowerModel().area(config)


def power_breakdown(config: NeuraChipConfig,
                    activity: dict[str, float] | None = None) -> AreaPowerBreakdown:
    """Table 4 power breakdown for a configuration."""
    return PowerModel().power(config, activity)


def energy_efficiency_gops_per_watt(sustained_gops: float, power_w: float) -> float:
    """Table 5 'Energy Efficiency' row."""
    return sustained_gops / power_w if power_w > 0 else 0.0


def area_efficiency_gops_per_mm2(sustained_gops: float, area_mm2: float) -> float:
    """Table 5 'Area Efficiency' row."""
    return sustained_gops / area_mm2 if area_mm2 > 0 else 0.0
