"""Command-line interface: the Dashboard / NeuraViz replacement.

Four subcommands cover the workflows the paper's WebGUI exposes::

    python -m repro datasets                      # list the dataset suites
    python -m repro bloat --datasets facebook wiki-Vote
    python -m repro run --dataset cora --config Tile-16 --max-nodes 192
    python -m repro gcn --dataset cora --feature-dim 16 --hidden-dim 8
    python -m repro sweep --dataset cora          # Tile-4/16/64 sweep (Fig. 11)

Every command prints aligned text tables and can optionally write CSV next to
them with ``--output-dir``.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.arch.config import all_spgemm_configs
from repro.core.api import NeuraChip, design_space_sweep
from repro.datasets.suite import GNN_SUITE, TABLE1_SUITE, load_dataset
from repro.sparse.bloat import bloat_report
from repro.viz.export import format_table, save_csv


def _maybe_save(rows: list[dict], output_dir: str | None, name: str) -> None:
    if output_dir:
        path = save_csv(rows, Path(output_dir) / f"{name}.csv")
        print(f"[saved {path}]")


def cmd_datasets(args: argparse.Namespace) -> int:
    """List every registered dataset with its paper metadata."""
    rows = []
    for suite_name, suite in (("Table-1", TABLE1_SUITE), ("GNN", GNN_SUITE)):
        for spec in suite.values():
            rows.append({
                "suite": suite_name,
                "dataset": spec.name,
                "family": spec.family,
                "paper_nodes": spec.paper_nodes,
                "paper_edges": spec.paper_edges,
                "paper_sparsity_pct": spec.paper_sparsity_percent,
            })
    print(format_table(rows))
    _maybe_save(rows, args.output_dir, "datasets")
    return 0


def cmd_bloat(args: argparse.Namespace) -> int:
    """Equation-1 memory-bloat analysis (Table 1) for selected datasets."""
    names = args.datasets or sorted(TABLE1_SUITE)
    rows = []
    for name in names:
        dataset = load_dataset(name, max_nodes=args.max_nodes, seed=args.seed)
        rows.append(bloat_report(name, dataset.adjacency_csr()).as_row())
    print(format_table(rows))
    _maybe_save(rows, args.output_dir, "bloat")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Run one SpGEMM (A @ A) workload on the cycle simulator."""
    dataset = load_dataset(args.dataset, max_nodes=args.max_nodes, seed=args.seed)
    chip = NeuraChip(args.config, eviction_mode=args.eviction,
                     mapping_scheme=args.mapping)
    result = chip.run_spgemm(dataset.adjacency_csr(), tile_size=args.tile_size,
                             verify=not args.no_verify, source=dataset.name)
    report = result.report
    rows = [{
        "dataset": dataset.name,
        "config": chip.config.name,
        "cycles": report.cycles,
        "gops": round(report.gops, 3),
        "mmh_cpi": round(report.mmh_cpi_mean, 1),
        "hacc_cpi": round(report.hacc_cpi_mean, 1),
        "stall_cycles": report.stall_cycles,
        "traffic_kib": round(report.memory_traffic_bytes / 1024, 1),
        "power_w": round(result.power_w, 2),
        "verified": report.correct,
        "sim_kcps": round(report.simulation_kcps, 1),
    }]
    print(format_table(rows))
    _maybe_save(rows, args.output_dir, f"run_{dataset.name}_{chip.config.name}")
    return 0 if report.correct in (True, None) else 1


def cmd_gcn(args: argparse.Namespace) -> int:
    """Run one GCN layer (aggregation on the accelerator)."""
    dataset = load_dataset(args.dataset, max_nodes=args.max_nodes, seed=args.seed)
    chip = NeuraChip(args.config)
    result = chip.run_gcn_layer(dataset, feature_dim=args.feature_dim,
                                hidden_dim=args.hidden_dim)
    rows = [{
        "dataset": dataset.name,
        "config": chip.config.name,
        "aggregation_cycles": result.aggregation.report.cycles,
        "combination_cycles": round(result.combination_cycles, 1),
        "total_cycles": round(result.total_cycles, 1),
        "aggregation_verified": result.aggregation.correct,
        "output_shape": str(result.output.shape),
    }]
    print(format_table(rows))
    _maybe_save(rows, args.output_dir, f"gcn_{dataset.name}_{chip.config.name}")
    return 0 if result.aggregation.correct in (True, None) else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    """Tile-size design-space sweep (the Figure 11 series)."""
    dataset = load_dataset(args.dataset, max_nodes=args.max_nodes, seed=args.seed)
    sweep = design_space_sweep(dataset.adjacency_csr(),
                               configs=[c.name for c in all_spgemm_configs()],
                               normalize_to=None if args.raw else "Tile-4")
    rows = [{"config": name, **{k: round(v, 3) for k, v in metrics.items()}}
            for name, metrics in sweep.items()]
    print(format_table(rows))
    _maybe_save(rows, args.output_dir, f"sweep_{dataset.name}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NeuraChip reproduction command-line interface")
    parser.add_argument("--output-dir", default=None,
                        help="write result tables as CSV into this directory")
    subparsers = parser.add_subparsers(dest="command", required=True)

    p_datasets = subparsers.add_parser("datasets", help="list the dataset suites")
    p_datasets.set_defaults(func=cmd_datasets)

    def add_common(sub):
        sub.add_argument("--max-nodes", type=int, default=256,
                         help="node-count cap for the synthetic graph")
        sub.add_argument("--seed", type=int, default=0)

    p_bloat = subparsers.add_parser("bloat", help="Table-1 memory-bloat analysis")
    p_bloat.add_argument("--datasets", nargs="*", default=None)
    add_common(p_bloat)
    p_bloat.set_defaults(func=cmd_bloat)

    p_run = subparsers.add_parser("run", help="simulate one SpGEMM workload")
    p_run.add_argument("--dataset", default="cora")
    p_run.add_argument("--config", default="Tile-16")
    p_run.add_argument("--tile-size", type=int, default=None)
    p_run.add_argument("--eviction", choices=("rolling", "barrier"),
                       default="rolling")
    p_run.add_argument("--mapping", choices=("ring", "modular", "random", "drhm"),
                       default=None)
    p_run.add_argument("--no-verify", action="store_true")
    add_common(p_run)
    p_run.set_defaults(func=cmd_run)

    p_gcn = subparsers.add_parser("gcn", help="simulate one GCN layer")
    p_gcn.add_argument("--dataset", default="cora")
    p_gcn.add_argument("--config", default="Tile-16")
    p_gcn.add_argument("--feature-dim", type=int, default=16)
    p_gcn.add_argument("--hidden-dim", type=int, default=8)
    add_common(p_gcn)
    p_gcn.set_defaults(func=cmd_gcn)

    p_sweep = subparsers.add_parser("sweep", help="tile-size design-space sweep")
    p_sweep.add_argument("--dataset", default="cora")
    p_sweep.add_argument("--raw", action="store_true",
                         help="report raw values instead of Tile-4-normalised")
    add_common(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
