"""Command-line interface: the Dashboard / NeuraViz replacement.

The subcommands cover the workflows the paper's WebGUI exposes::

    python -m repro datasets                      # list the dataset suites
    python -m repro bloat --datasets facebook wiki-Vote
    python -m repro run --dataset cora --config Tile-16 --max-nodes 192
    python -m repro run --dataset cora --backend analytic --shards 4
    python -m repro run --dataset cora --backend multichip --chips 4
    python -m repro gcn --dataset cora --feature-dim 16 --hidden-dim 8
    python -m repro gnn --dataset cora --layers 4 --batches 8
    python -m repro sweep --dataset cora          # Tile-4/16/64 sweep (Fig. 11)
    python -m repro batch --datasets cora cora wiki-Vote --backend analytic \
        --executor process --workers 4 --cache-dir ~/.cache/neurachip-repro
    python -m repro cache stats                   # on-disk program-cache tier
    python -m repro cache clear
    python -m repro analyze                       # static analysis (3 passes)
    python -m repro analyze --pass locks src/     # concurrency lint only
    python -m repro serve --backend analytic --max-batch 8 --max-delay-ms 5
    python -m repro upload --dataset cora --port 8077   # register an operand

Every workload subcommand routes through one
:class:`~repro.core.session.Session`, so they all share the same knobs:
``--backend`` / ``--impl`` select the execution backend, ``--executor`` /
``--workers`` fan jobs out on the host, and ``--cache-dir`` persists
compiled programs to disk — a second invocation against the same graph
reports ``cache_hit=True`` and skips compilation.  Every command prints
aligned text tables and can optionally write CSV next to them with
``--output-dir``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.arch.config import all_spgemm_configs
from repro.backends import available_backends
from repro.core.executors import available_executors
from repro.core.session import Session
from repro.core.specs import (
    BatchSpec,
    GCNLayerSpec,
    GNNModelSpec,
    SpGEMMSpec,
    SweepSpec,
)
from repro.datasets.suite import GNN_SUITE, TABLE1_SUITE, load_dataset
from repro.sparse.bloat import bloat_report
from repro.sparse.kernels import IMPLS
from repro.viz.export import format_table, save_csv


def _maybe_save(rows: list[dict], output_dir: str | None, name: str) -> None:
    if output_dir:
        path = save_csv(rows, Path(output_dir) / f"{name}.csv")
        print(f"[saved {path}]")


def _session(args: argparse.Namespace, default_backend: str = "cycle") -> Session:
    """One Session configured from the shared workload flags."""
    backend = getattr(args, "backend", default_backend)
    chips = getattr(args, "chips", None)
    chip_backend = getattr(args, "chip_backend", None)
    partition = getattr(args, "partition", None) or "auto"
    topology = None
    if backend == "multichip":
        from repro.core.specs import ChipTopology

        # chips=0 must reach ChipTopology's validation, not coerce to 1.
        topology = ChipTopology(n_chips=1 if chips is None else chips,
                                chip_backend=chip_backend or "analytic",
                                partition=partition)
    elif chips is not None:
        raise ValueError("--chips requires --backend multichip")
    elif chip_backend is not None:
        raise ValueError("--chip-backend requires --backend multichip")
    return Session(args.config,
                   backend=backend,
                   topology=topology,
                   partition=partition,
                   impl=getattr(args, "impl", "numpy"),
                   executor=getattr(args, "executor", "serial"),
                   workers=getattr(args, "workers", None),
                   cache_dir=getattr(args, "cache_dir", None),
                   eviction_mode=getattr(args, "eviction", "rolling"),
                   mapping_scheme=getattr(args, "mapping", None))


def cmd_datasets(args: argparse.Namespace) -> int:
    """List every registered dataset with its paper metadata."""
    rows = []
    for suite_name, suite in (("Table-1", TABLE1_SUITE), ("GNN", GNN_SUITE)):
        for spec in suite.values():
            rows.append({
                "suite": suite_name,
                "dataset": spec.name,
                "family": spec.family,
                "paper_nodes": spec.paper_nodes,
                "paper_edges": spec.paper_edges,
                "paper_sparsity_pct": spec.paper_sparsity_percent,
            })
    print(format_table(rows))
    _maybe_save(rows, args.output_dir, "datasets")
    return 0


def cmd_bloat(args: argparse.Namespace) -> int:
    """Equation-1 memory-bloat analysis (Table 1) for selected datasets."""
    names = args.datasets or sorted(TABLE1_SUITE)
    rows = []
    for name in names:
        dataset = load_dataset(name, max_nodes=args.max_nodes, seed=args.seed)
        rows.append(bloat_report(name, dataset.adjacency_csr()).as_row())
    print(format_table(rows))
    _maybe_save(rows, args.output_dir, "bloat")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Run one SpGEMM (A @ A) workload through the session."""
    dataset = load_dataset(args.dataset, max_nodes=args.max_nodes, seed=args.seed)
    with _session(args) as session:
        result = session.run(SpGEMMSpec(
            a=dataset.adjacency_csr(), tile_size=args.tile_size,
            verify=not args.no_verify, source=dataset.name,
            label=dataset.name, shards=args.shards))
    report = result.report
    row = {
        "dataset": dataset.name,
        "config": result.provenance.config,
        "backend": result.provenance.backend,
    }
    if report is not None:
        row.update({
            "cycles": report.cycles,
            "gops": round(report.gops, 3),
            "mmh_cpi": round(report.mmh_cpi_mean, 1),
            "hacc_cpi": round(report.hacc_cpi_mean, 1),
            "stall_cycles": report.stall_cycles,
            "traffic_kib": round(report.memory_traffic_bytes / 1024, 1),
            "power_w": round(result.power_w, 2),
            "verified": report.correct,
            "sim_kcps": round(report.simulation_kcps, 1),
        })
    elif args.shards > 1:
        row.update({key: result.metrics[key] for key in
                    ("cycles", "gops", "mmh", "partial_products",
                     "output_nnz")})
        row["shards"] = result.provenance.shards
    else:
        row.update({
            "mmh": result.program.n_instructions,
            "partial_products": result.program.total_partial_products,
            "output_nnz": result.output.nnz,
            "bloat_pct": round(result.program.bloat_percent, 2),
        })
    if result.provenance.chips > 1:
        row["chips"] = result.provenance.chips
        row["shard_skew"] = result.metrics.get("shard_skew")
    row["cache_hit"] = result.provenance.cache_hit
    row["wall_time_s"] = round(result.provenance.wall_time_s, 4)
    rows = [row]
    print(format_table(rows))
    _maybe_save(rows, args.output_dir,
                f"run_{dataset.name}_{result.provenance.config}")
    verified = result.metrics.get("verified")
    return 0 if verified in (True, None) else 1


def cmd_gcn(args: argparse.Namespace) -> int:
    """Run one GCN layer (aggregation on the accelerator)."""
    dataset = load_dataset(args.dataset, max_nodes=args.max_nodes, seed=args.seed)
    with _session(args) as session:
        result = session.run(GCNLayerSpec(
            dataset=dataset, feature_dim=args.feature_dim,
            hidden_dim=args.hidden_dim, label=dataset.name))
    legacy = result.legacy
    aggregation = legacy.aggregation
    rows = [{
        "dataset": dataset.name,
        "config": result.provenance.config,
        "backend": aggregation.backend,
        "aggregation_cycles": (aggregation.report.cycles
                               if aggregation.report is not None else 0.0),
        "combination_cycles": round(legacy.combination_cycles, 1),
        "total_cycles": round(legacy.total_cycles, 1),
        "aggregation_verified": aggregation.correct,
        "output_shape": str(legacy.output.shape),
        "cache_hit": result.provenance.cache_hit,
        "wall_time_s": round(result.provenance.wall_time_s, 4),
    }]
    print(format_table(rows))
    _maybe_save(rows, args.output_dir,
                f"gcn_{dataset.name}_{result.provenance.config}")
    return 0 if aggregation.correct in (True, None) else 1


def cmd_gnn(args: argparse.Namespace) -> int:
    """Run a multi-layer GNN stack over one resident graph."""
    dataset = load_dataset(args.dataset, max_nodes=args.max_nodes, seed=args.seed)
    layer_dims = tuple(args.layer_dims or [args.hidden_dim] * args.layers)
    with _session(args) as session:
        result = session.run(GNNModelSpec(
            dataset=dataset, layer_dims=layer_dims,
            feature_dim=args.feature_dim, batches=args.batches,
            label=dataset.name))
    metrics = result.metrics
    rows = [{
        "dataset": dataset.name,
        "config": result.provenance.config,
        "backend": result.provenance.backend,
        "layers": metrics["layers"],
        "batches": metrics["batches"],
        "total_cycles": metrics["total_cycles"],
        "cycles_per_layer": metrics["cycles_per_layer"],
        "pipeline_cycles": metrics["pipeline_cycles"],
        "pipeline_speedup": metrics["pipeline_speedup"],
        "compiles": metrics["compiles"],
        "output_shape": metrics["output_shape"],
        "verified": metrics["verified"],
        "cache_hit": result.provenance.cache_hit,
        "wall_time_s": round(result.provenance.wall_time_s, 4),
    }]
    if result.provenance.chips > 1:
        rows[0]["chips"] = result.provenance.chips
    print(format_table(rows))
    _maybe_save(rows, args.output_dir,
                f"gnn_{dataset.name}_{result.provenance.config}")
    return 0 if metrics["verified"] in (True, None) else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    """Tile-size design-space sweep (the Figure 11 series)."""
    dataset = load_dataset(args.dataset, max_nodes=args.max_nodes, seed=args.seed)
    with _session(args) as session:
        result = session.run(SweepSpec(
            a=dataset.adjacency_csr(),
            configs=[c.name for c in all_spgemm_configs()],
            normalize_to=None if args.raw else "Tile-4",
            label=dataset.name))
    rows = [{"config": name, **{k: round(v, 3) for k, v in metrics.items()}}
            for name, metrics in result.legacy.items()]
    print(format_table(rows))
    _maybe_save(rows, args.output_dir, f"sweep_{dataset.name}")
    return 0


def cmd_batch(args: argparse.Namespace) -> int:
    """Run a queue of SpGEMM jobs through the session with program caching."""
    names = args.datasets or ["cora"]
    adjacencies = {name: load_dataset(name, max_nodes=args.max_nodes,
                                      seed=args.seed).adjacency_csr()
                   for name in dict.fromkeys(names)}
    specs = []
    for repeat in range(args.repeat):
        for name in names:
            label = name if args.repeat == 1 else f"{name}#{repeat}"
            specs.append(SpGEMMSpec(a=adjacencies[name], label=label,
                                    source=name, verify=False))
    with _session(args, default_backend="analytic") as session:
        result = session.run(BatchSpec(specs=specs))
    report = result.legacy
    rows = report.as_rows()
    print(format_table(rows))
    print(format_table([report.summary()]))
    _maybe_save(rows, args.output_dir, f"batch_{result.provenance.config}")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or clear the persistent on-disk program cache."""
    from repro.core.runner import ProgramCache, default_cache_dir

    directory = Path(args.cache_dir).expanduser() if args.cache_dir \
        else default_cache_dir()
    if args.action == "clear":
        if not directory.exists():
            print(f"cache dir {directory} does not exist; nothing to clear")
            return 0
        removed = ProgramCache(0, cache_dir=directory).clear_disk()
        print(f"removed {removed} cached program(s) from {directory}")
        return 0
    if directory.exists():
        stats = ProgramCache(0, cache_dir=directory).disk_stats()
    else:  # a stats query must not create the directory
        from repro.core.runner import DEFAULT_DISK_CAPACITY_BYTES

        stats = {"disk_entries": 0, "disk_bytes": 0,
                 "max_disk_bytes": DEFAULT_DISK_CAPACITY_BYTES}
    rows = [{
        "cache_dir": str(directory),
        "entries": stats["disk_entries"],
        "bytes": stats["disk_bytes"],
        "kib": round(stats["disk_bytes"] / 1024, 1),
        "max_bytes": stats["max_disk_bytes"],
    }]
    print(format_table(rows))
    _maybe_save(rows, args.output_dir, "cache_stats")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Run the static-analysis passes; nonzero exit on any finding."""
    import repro
    from repro.analysis.lockcheck import lint_paths
    from repro.analysis.selfcheck import ir_selfcheck, structure_selfcheck

    wanted = args.passes
    findings = []
    ran = []
    if wanted in ("ir", "all"):
        ran.append("ir")
        findings += ir_selfcheck(max_nodes=args.max_nodes, seed=args.seed)
    if wanted in ("structure", "all"):
        ran.append("structure")
        findings += structure_selfcheck(max_nodes=args.max_nodes,
                                        seed=args.seed)
    if wanted in ("locks", "all"):
        ran.append("locks")
        paths = ([Path(p) for p in args.paths] if args.paths
                 else [Path(repro.__file__).parent])
        findings += lint_paths(paths)
    for finding in findings:
        print(finding.format())
    print(f"analyze: {len(findings)} finding(s) across "
          f"{'/'.join(ran)} pass(es)")
    return 1 if findings else 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve SpGEMM / GCN requests over HTTP with micro-batching."""
    import asyncio

    from repro.serve import ReproServer, TenantTable

    if args.tenants is not None:
        try:
            tenants = TenantTable.from_file(args.tenants)
        except (OSError, ValueError) as err:
            print(f"error: bad --tenants file: {err}", file=sys.stderr)
            return 2
    else:
        tenants = TenantTable(default_weight=args.default_weight)
    session = _session(args, default_backend="analytic")
    server = ReproServer(session, host=args.host, port=args.port,
                         max_batch=args.max_batch,
                         max_delay_ms=args.max_delay_ms,
                         queue_depth=args.queue_depth,
                         request_timeout_s=args.request_timeout,
                         coalesce=not args.no_coalesce,
                         registry_max_bytes=args.registry_max_mib
                         * 1024 * 1024,
                         tenants=tenants,
                         scheduling=args.scheduling)
    try:
        asyncio.run(server.run_forever())
    except KeyboardInterrupt:
        pass  # run_forever's signal handler normally wins; this is backup
    finally:
        session.close()
    return 0


def cmd_upload(args: argparse.Namespace) -> int:
    """Register a dataset's adjacency in a running server's operand
    registry and print the content-digest ref to use in later requests."""
    import http.client
    import json

    if args.server_side:
        # The server synthesises (and caches) the generator dataset
        # itself: the cheapest upload, and the entry becomes
        # dataset-backed so /v1/gcn can take the ref too.
        body = json.dumps({"dataset": args.dataset,
                           "max_nodes": args.max_nodes,
                           "seed": args.seed}).encode()
        content_type = "application/json"
    else:
        csr = load_dataset(args.dataset, max_nodes=args.max_nodes,
                           seed=args.seed).adjacency_csr()
        if args.json:
            body = json.dumps({"indptr": csr.indptr.tolist(),
                               "indices": csr.indices.tolist(),
                               "data": csr.data.tolist(),
                               "shape": list(csr.shape)}).encode()
            content_type = "application/json"
        else:
            from repro.serve.wire import WIRE_CONTENT_TYPE, encode_csr

            body = encode_csr(csr)
            content_type = WIRE_CONTENT_TYPE
    connection = http.client.HTTPConnection(args.host, args.port,
                                            timeout=args.timeout)
    try:
        connection.request("PUT", "/v1/operands", body=body,
                           headers={"Content-Type": content_type})
        response = connection.getresponse()
        payload = json.loads(response.read() or b"{}")
    except (ConnectionError, OSError) as error:
        print(f"error: cannot reach {args.host}:{args.port} ({error})",
              file=sys.stderr)
        return 2
    finally:
        connection.close()
    if response.status != 200:
        print(f"error: server returned {response.status}: "
              f"{payload.get('error', payload)}", file=sys.stderr)
        return 1
    rows = [{
        "ref": payload["ref"],
        "dataset": args.dataset,
        "shape": "x".join(str(n) for n in payload["shape"]),
        "nnz": payload["nnz"],
        "bytes": payload["bytes"],
        "upload_bytes": len(body),
        "encoding": content_type,
        "created": payload["created"],
    }]
    print(format_table(rows))
    _maybe_save(rows, args.output_dir, f"upload_{args.dataset}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NeuraChip reproduction command-line interface")
    parser.add_argument("--output-dir", default=None,
                        help="write result tables as CSV into this directory")
    subparsers = parser.add_subparsers(dest="command", required=True)

    p_datasets = subparsers.add_parser("datasets", help="list the dataset suites")
    p_datasets.set_defaults(func=cmd_datasets)

    def add_common(sub):
        sub.add_argument("--max-nodes", type=int, default=256,
                         help="node-count cap for the synthetic graph")
        sub.add_argument("--seed", type=int, default=0)

    def add_session(sub, default="cycle"):
        sub.add_argument("--backend", choices=available_backends(),
                         default=default,
                         help="execution backend (default: %(default)s)")
        sub.add_argument("--impl", choices=IMPLS, default="numpy",
                         help="kernel implementation used by the analytic "
                              "backend (default: %(default)s)")
        sub.add_argument("--executor", choices=available_executors(),
                         default="serial",
                         help="host-side executor jobs fan out on "
                              "(default: %(default)s)")
        sub.add_argument("--workers", type=int, default=None,
                         help="worker count for the thread/process executors")
        sub.add_argument("--cache-dir", default=None,
                         help="persist compiled programs to this directory; "
                              "warm caches skip compilation entirely")
        sub.add_argument("--chips", type=int, default=None,
                         help="chip count for the multichip backend (each "
                              "chip owns one row shard and its own context)")
        sub.add_argument("--chip-backend",
                         choices=("functional", "cycle", "analytic"),
                         default=None,
                         help="backend each chip of a multichip run executes "
                              "its shard through (default: analytic)")
        sub.add_argument("--partition",
                         choices=("auto", "contiguous", "degree"),
                         default=None,
                         help="shard planning strategy for --shards and the "
                              "multichip backend: contiguous row ranges, "
                              "degree-aware index sets with monster-row "
                              "splitting, or auto skew probe (default: auto)")

    p_bloat = subparsers.add_parser("bloat", help="Table-1 memory-bloat analysis")
    p_bloat.add_argument("--datasets", nargs="*", default=None)
    add_common(p_bloat)
    p_bloat.set_defaults(func=cmd_bloat)

    p_run = subparsers.add_parser("run", help="simulate one SpGEMM workload")
    p_run.add_argument("--dataset", default="cora")
    p_run.add_argument("--config", default="Tile-16")
    p_run.add_argument("--tile-size", type=int, default=None)
    p_run.add_argument("--eviction", choices=("rolling", "barrier"),
                       default="rolling")
    p_run.add_argument("--mapping", choices=("ring", "modular", "random", "drhm"),
                       default=None)
    p_run.add_argument("--no-verify", action="store_true")
    p_run.add_argument("--shards", type=int, default=1,
                       help="split the SpGEMM into this many row-group "
                            "shards fanned out over the executor")
    add_session(p_run)
    add_common(p_run)
    p_run.set_defaults(func=cmd_run)

    p_gcn = subparsers.add_parser("gcn", help="simulate one GCN layer")
    p_gcn.add_argument("--dataset", default="cora")
    p_gcn.add_argument("--config", default="Tile-16")
    p_gcn.add_argument("--feature-dim", type=int, default=16)
    p_gcn.add_argument("--hidden-dim", type=int, default=8)
    add_session(p_gcn)
    add_common(p_gcn)
    p_gcn.set_defaults(func=cmd_gcn)

    p_gnn = subparsers.add_parser(
        "gnn", help="simulate a multi-layer GNN stack (resident graph)")
    p_gnn.add_argument("--dataset", default="cora")
    p_gnn.add_argument("--config", default="Tile-16")
    p_gnn.add_argument("--feature-dim", type=int, default=16)
    p_gnn.add_argument("--hidden-dim", type=int, default=8,
                       help="output width of every layer when --layer-dims "
                            "is not given")
    p_gnn.add_argument("--layers", type=int, default=2,
                       help="stack depth (ignored when --layer-dims is given)")
    p_gnn.add_argument("--layer-dims", type=int, nargs="*", default=None,
                       help="explicit per-layer output widths, e.g. 32 32 16")
    p_gnn.add_argument("--batches", type=int, default=1,
                       help="batches pipelined through the resident stack")
    add_session(p_gnn)
    add_common(p_gnn)
    p_gnn.set_defaults(func=cmd_gnn)

    p_sweep = subparsers.add_parser("sweep", help="tile-size design-space sweep")
    p_sweep.add_argument("--dataset", default="cora")
    p_sweep.add_argument("--config", default="Tile-16",
                         help=argparse.SUPPRESS)  # sweep spans all configs
    p_sweep.add_argument("--raw", action="store_true",
                         help="report raw values instead of Tile-4-normalised")
    add_session(p_sweep)
    add_common(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_batch = subparsers.add_parser(
        "batch", help="run a queue of SpGEMM jobs with program caching")
    p_batch.add_argument("--datasets", nargs="*", default=None,
                         help="dataset names; repeats share the compile cache")
    p_batch.add_argument("--config", default="Tile-16")
    p_batch.add_argument("--repeat", type=int, default=1,
                         help="enqueue the dataset list this many times")
    add_session(p_batch, default="analytic")
    add_common(p_batch)
    p_batch.set_defaults(func=cmd_batch)

    p_cache = subparsers.add_parser(
        "cache", help="inspect or clear the persistent program cache")
    p_cache.add_argument("action", choices=("stats", "clear"),
                         help="'stats' reports entry/byte totals, 'clear' "
                              "removes every cached program")
    p_cache.add_argument("--cache-dir", default=None,
                         help="cache directory (default: the versioned "
                              "per-user cache dir)")
    p_cache.set_defaults(func=cmd_cache)

    p_analyze = subparsers.add_parser(
        "analyze", help="static analysis: IR verifier, structural checker "
                        "and concurrency lint")
    p_analyze.add_argument("--pass", dest="passes", default="all",
                           choices=["ir", "structure", "locks", "all"],
                           help="which pass to run (default: all three)")
    p_analyze.add_argument("paths", nargs="*",
                           help="files/directories for the locks pass "
                                "(default: the installed repro package)")
    p_analyze.add_argument("--max-nodes", type=int, default=192,
                           help="dataset scale for the ir/structure "
                                "self-checks")
    p_analyze.add_argument("--seed", type=int, default=0)
    p_analyze.add_argument("--output-dir", default=None,
                           help=argparse.SUPPRESS)
    p_analyze.set_defaults(func=cmd_analyze)

    p_serve = subparsers.add_parser(
        "serve", help="serve SpGEMM/GCN requests over HTTP with "
                      "micro-batching")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8077,
                         help="listen port; 0 picks an ephemeral port "
                              "(printed on startup)")
    p_serve.add_argument("--config", default="Tile-16")
    p_serve.add_argument("--max-batch", type=int, default=8,
                         help="dispatch a micro-batch once this many "
                              "requests are waiting (default: %(default)s)")
    p_serve.add_argument("--max-delay-ms", type=float, default=5.0,
                         help="... or once the oldest waiting request has "
                              "aged this long (default: %(default)s)")
    p_serve.add_argument("--queue-depth", type=int, default=256,
                         help="bounded request queue; beyond it requests "
                              "are load-shed with 503 (default: %(default)s)")
    p_serve.add_argument("--request-timeout", type=float, default=60.0,
                         help="per-request deadline in seconds, queue wait "
                              "+ execution (default: %(default)s)")
    p_serve.add_argument("--no-coalesce", action="store_true",
                         help="disable serving operand-identical requests "
                              "from a single execution")
    p_serve.add_argument("--registry-max-mib", type=int, default=256,
                         help="byte cap (MiB) on the content-addressed "
                              "operand registry; beyond it LRU operands "
                              "are evicted (default: %(default)s)")
    p_serve.add_argument("--tenants", default=None, metavar="FILE",
                         help="tenant policy JSON: {\"default_weight\": N, "
                              "\"tenants\": {name: {weight, rate_rps, "
                              "burst, max_in_flight}}}")
    p_serve.add_argument("--default-weight", type=float, default=1.0,
                         help="WFQ weight for tenants not named in "
                              "--tenants (default: %(default)s)")
    p_serve.add_argument("--scheduling", choices=("fair", "fifo"),
                         default="fair",
                         help="queue order: 'fair' (WFQ across tenants, "
                              "EDF within each) or 'fifo' (arrival "
                              "order) (default: %(default)s)")
    add_session(p_serve, default="analytic")
    p_serve.set_defaults(func=cmd_serve)

    p_upload = subparsers.add_parser(
        "upload", help="register a dataset adjacency in a running "
                       "server's operand registry")
    p_upload.add_argument("--dataset", default="cora")
    p_upload.add_argument("--host", default="127.0.0.1")
    p_upload.add_argument("--port", type=int, default=8077)
    p_upload.add_argument("--timeout", type=float, default=30.0,
                          help="HTTP timeout in seconds")
    p_upload.add_argument("--json", action="store_true",
                          help="upload as inline JSON arrays instead of "
                               "the binary x-repro-csr frame")
    p_upload.add_argument("--server-side", action="store_true",
                          help="send only the dataset name; the server "
                               "synthesises it (dataset-backed entry, "
                               "usable by /v1/gcn refs)")
    add_common(p_upload)
    p_upload.set_defaults(func=cmd_upload)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, KeyError) as error:
        # Session construction fails fast on bad names / cache dirs, and
        # config/dataset lookups raise KeyError on unknown names; turn both
        # into a clean CLI error instead of a traceback.
        message = error.args[0] if error.args else error
        print(f"error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
