"""Named dataset suite matching the paper's evaluation matrices.

Every entry of the paper's Table 1 (and the GNN datasets of Section 5.4) is
registered here with its *paper-reported* node count, edge count, sparsity
and bloat percentage, together with the structural family used to generate a
synthetic stand-in.  ``load_dataset(name, scale=...)`` instantiates the
synthetic graph at ``scale`` times the paper size (default heavily scaled
down so the Python cycle simulator finishes quickly).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets import generators
from repro.sparse.convert import coo_to_csc, coo_to_csr
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata for one named dataset.

    Attributes:
        name: dataset name as it appears in the paper.
        family: structural generator family.
        paper_nodes: node count reported in Table 1 (or the GNN literature).
        paper_edges: edge count reported in Table 1.
        paper_sparsity_percent: sparsity percentage reported in Table 1.
        paper_bloat_percent: bloat percentage reported in Table 1 (None for
            datasets that do not appear in Table 1).
        feature_dim: node-feature width used for GCN workloads.
        generator_kwargs: extra arguments forwarded to the generator.
    """

    name: str
    family: str
    paper_nodes: int
    paper_edges: int
    paper_sparsity_percent: float = 0.0
    paper_bloat_percent: float | None = None
    feature_dim: int = 64
    generator_kwargs: dict = field(default_factory=dict)


@dataclass
class GraphDataset:
    """A loaded (synthetic) graph dataset.

    Attributes:
        spec: the dataset specification this graph was generated from.
        adjacency: adjacency matrix in COO.
        scale: fraction of the paper's node count that was materialised.
    """

    spec: DatasetSpec
    adjacency: COOMatrix
    scale: float

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def n_nodes(self) -> int:
        return self.adjacency.shape[0]

    @property
    def n_edges(self) -> int:
        return self.adjacency.nnz

    def adjacency_csr(self) -> CSRMatrix:
        """Adjacency in CSR."""
        return coo_to_csr(self.adjacency)

    def adjacency_csc(self) -> CSCMatrix:
        """Adjacency in CSC (the storage NeuraChip uses for operand A)."""
        return coo_to_csc(self.adjacency)

    def features(self, dim: int | None = None, density: float = 0.3,
                 seed: int = 7) -> CSRMatrix:
        """Node feature matrix in CSR (operand B of the aggregation phase)."""
        from repro.datasets.features import feature_matrix

        return feature_matrix(self.n_nodes, dim or self.spec.feature_dim,
                              density=density, seed=seed)


# ----------------------------------------------------------------------
# Table 1 suite (SpGEMM workloads) — values transcribed from the paper.
# ----------------------------------------------------------------------
TABLE1_SUITE: dict[str, DatasetSpec] = {
    spec.name: spec for spec in [
        DatasetSpec("2cubes_sphere", "mesh3d", 101492, 1647264, 99.9840, 205.87),
        DatasetSpec("ca-CondMat", "power_law", 23133, 186936, 99.9651, 75.23),
        DatasetSpec("cit-Patents", "power_law", 3774768, 16518948, 99.9999, 19.32),
        DatasetSpec("email-Enron", "power_law", 36692, 367662, 99.9727, 68.90),
        DatasetSpec("filter3D", "mesh3d", 106437, 2707179, 99.9761, 326.34),
        DatasetSpec("mario002", "mesh2d", 389874, 2101242, 99.9986, 99.43),
        DatasetSpec("p2p-Gnutella31", "small_world", 62586, 147892, 99.9962, 10.21),
        DatasetSpec("poisson3Da", "mesh3d", 13514, 352762, 99.8068, 297.92),
        DatasetSpec("scircuit", "circuit", 170998, 958936, 99.9967, 66.13),
        DatasetSpec("web-Google", "rmat", 916428, 5105039, 99.9994, 104.27),
        DatasetSpec("amazon0312", "rmat", 400727, 3200440, 99.9980, 97.21),
        DatasetSpec("cage12", "mesh3d", 130228, 2032536, 99.9880, 127.23),
        DatasetSpec("cop20k_A", "mesh3d", 121192, 2624331, 99.9821, 327.07),
        DatasetSpec("facebook", "power_law", 4039, 60050, 99.1519, 2872.80),
        DatasetSpec("m133-b3", "mesh2d", 200200, 800800, 99.9980, 26.93),
        DatasetSpec("offshore", "mesh3d", 259789, 4242673, 99.9937, 205.45),
        DatasetSpec("patents_main", "circuit", 240547, 560943, 99.9990, 14.18),
        DatasetSpec("roadNet-CA", "road", 1971281, 5533214, 99.9999, 35.75),
        DatasetSpec("webbase-1M", "rmat", 1000005, 3105536, 99.9997, 36.02),
        DatasetSpec("wiki-Vote", "power_law", 8297, 103689, 99.8494, 148.09),
    ]
}

# ----------------------------------------------------------------------
# GNN suite (Section 5.4 / Figure 11 & 17). Cora is the DSE workload.
# ----------------------------------------------------------------------
GNN_SUITE: dict[str, DatasetSpec] = {
    spec.name: spec for spec in [
        DatasetSpec("cora", "power_law", 2708, 10556, 99.856, None, feature_dim=1433),
        DatasetSpec("citeseer", "power_law", 3327, 9104, 99.918, None, feature_dim=3703),
        DatasetSpec("pubmed", "power_law", 19717, 88648, 99.977, None, feature_dim=500),
        DatasetSpec("flickr", "rmat", 89250, 899756, 99.989, None, feature_dim=500),
        DatasetSpec("reddit", "rmat", 232965, 11606919, 99.979, None, feature_dim=602),
        DatasetSpec("amazon-computers", "power_law", 13752, 491722, 99.740, None,
                    feature_dim=767),
    ]
}

_ALL_SPECS = {**TABLE1_SUITE, **GNN_SUITE}

# Default scale keeps the largest synthetic graph near ~2k nodes so that a
# full cycle simulation completes in a few seconds of pure Python.
DEFAULT_MAX_NODES = 2048


def available_datasets() -> list[str]:
    """Names of every registered dataset (Table 1 + GNN suite)."""
    return sorted(_ALL_SPECS)


def _generate(family: str, n: int, m: int, seed: int, **kwargs) -> COOMatrix:
    """Dispatch to the structural generator for ``family``."""
    avg_degree = max(1, int(round(m / max(n, 1))))
    if family == "mesh2d":
        return generators.mesh_graph_2d(n, bandwidth=max(1, avg_degree // 4), seed=seed)
    if family == "mesh3d":
        return generators.mesh_graph_3d(n, seed=seed)
    if family == "power_law":
        return generators.barabasi_albert_graph(n, attach=max(1, avg_degree // 2),
                                                seed=seed)
    if family == "rmat":
        return generators.kronecker_power_law_graph(n, m, seed=seed, symmetric=True)
    if family == "road":
        return generators.road_network_graph(n, seed=seed)
    if family == "small_world":
        return generators.small_world_graph(n, k=max(2, avg_degree), seed=seed)
    if family == "circuit":
        return generators.circuit_graph(n, fill_per_row=max(1.0, avg_degree - 3.0),
                                        seed=seed)
    if family == "random":
        return generators.erdos_renyi_graph(n, m, seed=seed)
    if family == "dense":
        return generators.dense_matrix(n, seed=seed)
    raise ValueError(f"unknown dataset family: {family!r}")


def load_dataset(name: str, scale: float | None = None,
                 max_nodes: int = DEFAULT_MAX_NODES, seed: int = 0) -> GraphDataset:
    """Instantiate a synthetic stand-in for a named dataset.

    Args:
        name: dataset name (see :func:`available_datasets`), or ``"dense"``
            for the dense matrix of Figure 13.
        scale: fraction of the paper's node count to materialise.  When
            omitted, the scale is chosen so the graph has at most
            ``max_nodes`` nodes.
        max_nodes: node-count cap used when ``scale`` is None.
        seed: RNG seed so repeated loads are identical.

    Returns:
        A :class:`GraphDataset`.

    Raises:
        KeyError: if the dataset name is unknown.
    """
    if name == "dense":
        n = min(max_nodes, 256)
        spec = DatasetSpec("dense", "dense", n, n * n, 0.0, None)
        return GraphDataset(spec, generators.dense_matrix(n, seed=seed), 1.0)
    if name not in _ALL_SPECS:
        raise KeyError(f"unknown dataset {name!r}; see available_datasets()")
    spec = _ALL_SPECS[name]
    if scale is None:
        scale = min(1.0, max_nodes / spec.paper_nodes)
    n = max(16, int(round(spec.paper_nodes * scale)))
    m = max(n, int(round(spec.paper_edges * scale)))
    adjacency = _generate(spec.family, n, m, seed, **spec.generator_kwargs)
    return GraphDataset(spec=spec, adjacency=adjacency, scale=scale)


def load_table1_suite(max_nodes: int = 512, seed: int = 0) -> list[GraphDataset]:
    """Load every Table-1 dataset at a small scale (for sweeps and benches)."""
    return [load_dataset(name, max_nodes=max_nodes, seed=seed)
            for name in sorted(TABLE1_SUITE)]


def degree_statistics(adjacency: COOMatrix) -> dict[str, float]:
    """Degree distribution summary used by the analytic bloat estimate."""
    csr = coo_to_csr(adjacency)
    degrees = csr.row_nnz_counts().astype(np.float64)
    mean = float(degrees.mean()) if degrees.size else 0.0
    std = float(degrees.std()) if degrees.size else 0.0
    return {
        "mean_degree": mean,
        "std_degree": std,
        "max_degree": float(degrees.max()) if degrees.size else 0.0,
        "degree_cv": std / mean if mean > 0 else 0.0,
    }
