"""Node feature and weight matrix generation for GNN workloads.

The aggregation phase multiplies the adjacency matrix by the node feature
matrix X (Equation 2).  Real GNN feature matrices (e.g. Cora's 1433-wide
bag-of-words features) are themselves sparse; the generator exposes the
density so both sparse-feature and dense-feature regimes can be exercised.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.convert import coo_to_csr
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix


def feature_matrix(n_nodes: int, dim: int, density: float = 0.3,
                   seed: int = 7) -> CSRMatrix:
    """Generate a sparse node-feature matrix X of shape (n_nodes, dim).

    Args:
        n_nodes: number of graph nodes (rows).
        dim: feature width (columns).
        density: fraction of non-zero entries per row, in (0, 1].
        seed: RNG seed.

    Returns:
        CSR feature matrix with values drawn uniformly from (0, 1].
    """
    if n_nodes <= 0 or dim <= 0:
        raise ValueError("n_nodes and dim must be positive")
    density = float(np.clip(density, 1.0 / dim, 1.0))
    rng = np.random.default_rng(seed)
    nnz_per_row = max(1, int(round(dim * density)))
    rows = np.repeat(np.arange(n_nodes, dtype=np.int64), nnz_per_row)
    cols = np.concatenate([
        rng.choice(dim, size=nnz_per_row, replace=False) for _ in range(n_nodes)
    ]).astype(np.int64)
    data = rng.random(rows.size) + 1e-3
    return coo_to_csr(COOMatrix(rows, cols, data, (n_nodes, dim)))


def dense_feature_matrix(n_nodes: int, dim: int, seed: int = 7) -> np.ndarray:
    """Dense feature matrix used by the combination-phase reference."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n_nodes, dim))


def gcn_weight_matrix(in_dim: int, out_dim: int, seed: int = 11) -> np.ndarray:
    """Glorot-initialised GCN layer weight matrix W of shape (in_dim, out_dim)."""
    if in_dim <= 0 or out_dim <= 0:
        raise ValueError("dimensions must be positive")
    rng = np.random.default_rng(seed)
    limit = np.sqrt(6.0 / (in_dim + out_dim))
    return rng.uniform(-limit, limit, size=(in_dim, out_dim))
