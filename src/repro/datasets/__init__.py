"""Synthetic graph dataset suite.

The paper evaluates on SNAP / SuiteSparse matrices (Table 1) and on GNN
datasets such as Cora.  Those files cannot be downloaded in this offline
environment, so this subpackage generates *family-matched* synthetic graphs:
each named dataset is produced by a structural generator (mesh, power-law,
road, circuit, ...) whose parameters are derived from the paper's reported
node count, edge count and sparsity, optionally scaled down so that the
pure-Python cycle simulator remains fast.
"""

from repro.datasets.generators import (
    barabasi_albert_graph,
    circuit_graph,
    erdos_renyi_graph,
    kronecker_power_law_graph,
    mesh_graph_2d,
    mesh_graph_3d,
    road_network_graph,
    small_world_graph,
)
from repro.datasets.suite import (
    DatasetSpec,
    GraphDataset,
    GNN_SUITE,
    TABLE1_SUITE,
    available_datasets,
    load_dataset,
)
from repro.datasets.features import feature_matrix, gcn_weight_matrix

__all__ = [
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "kronecker_power_law_graph",
    "mesh_graph_2d",
    "mesh_graph_3d",
    "road_network_graph",
    "small_world_graph",
    "circuit_graph",
    "DatasetSpec",
    "GraphDataset",
    "TABLE1_SUITE",
    "GNN_SUITE",
    "available_datasets",
    "load_dataset",
    "feature_matrix",
    "gcn_weight_matrix",
]
