"""Structural graph generators.

Each generator returns a :class:`~repro.sparse.coo.COOMatrix` adjacency of
the requested size.  The generators cover the structural families present in
the paper's Table 1 suite:

* ``mesh_graph_2d`` / ``mesh_graph_3d`` — FEM / discretisation matrices
  (2cubes_sphere, filter3D, poisson3Da, offshore, m133-b3, mario002);
  banded, near-regular degree.
* ``barabasi_albert_graph`` / ``kronecker_power_law_graph`` — social and web
  graphs (facebook, wiki-Vote, email-Enron, web-Google, amazon0312,
  ca-CondMat); heavy-tailed degree distributions.
* ``road_network_graph`` — roadNet-CA; planar, low and nearly uniform degree.
* ``small_world_graph`` — p2p-Gnutella31; random with local clustering.
* ``circuit_graph`` — scircuit, patents_main; strong diagonal plus sparse
  random fill.
* ``erdos_renyi_graph`` — uniform random baseline.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix


def _dedupe_edges(src: np.ndarray, dst: np.ndarray, n: int,
                  remove_self_loops: bool = True) -> np.ndarray:
    """Return unique (src, dst) pairs as an (m, 2) array."""
    keep = np.ones(src.size, dtype=bool)
    if remove_self_loops:
        keep &= src != dst
    src, dst = src[keep], dst[keep]
    keys = src.astype(np.int64) * n + dst.astype(np.int64)
    unique = np.unique(keys)
    return np.stack([unique // n, unique % n], axis=1)


def _edges_to_coo(edges: np.ndarray, n: int, symmetric: bool,
                  rng: np.random.Generator) -> COOMatrix:
    """Convert an (m, 2) edge array to a weighted COO adjacency."""
    if symmetric and edges.size:
        edges = np.concatenate([edges, edges[:, ::-1]], axis=0)
        edges = _dedupe_edges(edges[:, 0], edges[:, 1], n)
    values = np.ones(len(edges), dtype=np.float64)
    return COOMatrix.from_edges(edges, (n, n), values)


def erdos_renyi_graph(n: int, m: int, seed: int = 0,
                      symmetric: bool = True) -> COOMatrix:
    """Uniform random graph with ~``m`` directed edges over ``n`` nodes."""
    if n <= 1 or m <= 0:
        return COOMatrix.empty((max(n, 1), max(n, 1)))
    rng = np.random.default_rng(seed)
    # Oversample to compensate for duplicates and self loops.
    src = rng.integers(0, n, size=int(m * 1.3) + 8)
    dst = rng.integers(0, n, size=src.size)
    edges = _dedupe_edges(src, dst, n)[:m]
    return _edges_to_coo(edges, n, symmetric, rng)


def barabasi_albert_graph(n: int, attach: int, seed: int = 0,
                          symmetric: bool = True) -> COOMatrix:
    """Preferential-attachment graph (heavy-tailed degree distribution).

    Each new node attaches to ``attach`` existing nodes chosen with
    probability proportional to their current degree.
    """
    if n <= 1:
        return COOMatrix.empty((max(n, 1), max(n, 1)))
    attach = max(1, min(attach, n - 1))
    rng = np.random.default_rng(seed)
    targets = list(range(attach))
    repeated: list[int] = list(range(attach))
    edges: list[tuple[int, int]] = []
    for v in range(attach, n):
        chosen = rng.choice(repeated, size=attach, replace=True)
        chosen = np.unique(chosen)
        for t in chosen.tolist():
            edges.append((v, t))
            repeated.append(t)
            repeated.append(v)
    edge_arr = _dedupe_edges(np.array([e[0] for e in edges], dtype=np.int64),
                             np.array([e[1] for e in edges], dtype=np.int64), n)
    del targets
    return _edges_to_coo(edge_arr, n, symmetric, rng)


def kronecker_power_law_graph(n: int, m: int, seed: int = 0,
                              a: float = 0.57, b: float = 0.19,
                              c: float = 0.19, symmetric: bool = False) -> COOMatrix:
    """R-MAT / Kronecker-style generator used for web-scale power-law graphs."""
    if n <= 1 or m <= 0:
        return COOMatrix.empty((max(n, 1), max(n, 1)))
    rng = np.random.default_rng(seed)
    levels = int(np.ceil(np.log2(n)))
    size = 1 << levels
    d = 1.0 - a - b - c
    probs = np.array([a, b, c, d])
    n_samples = int(m * 1.4) + 8
    src = np.zeros(n_samples, dtype=np.int64)
    dst = np.zeros(n_samples, dtype=np.int64)
    for level in range(levels):
        quadrant = rng.choice(4, size=n_samples, p=probs)
        bit = 1 << (levels - level - 1)
        src += np.where((quadrant == 2) | (quadrant == 3), bit, 0)
        dst += np.where((quadrant == 1) | (quadrant == 3), bit, 0)
    keep = (src < n) & (dst < n)
    edges = _dedupe_edges(src[keep], dst[keep], n)[:m]
    del size
    return _edges_to_coo(edges, n, symmetric, rng)


def mesh_graph_2d(n: int, bandwidth: int = 1, seed: int = 0) -> COOMatrix:
    """2-D five-point-stencil mesh (FEM-style banded matrix).

    Nodes are laid out on a near-square grid; each node connects to its grid
    neighbours within ``bandwidth`` steps along each axis.
    """
    if n <= 1:
        return COOMatrix.empty((max(n, 1), max(n, 1)))
    side = int(np.ceil(np.sqrt(n)))
    rng = np.random.default_rng(seed)
    edges: list[tuple[int, int]] = []
    for node in range(n):
        r, c = divmod(node, side)
        for dr in range(-bandwidth, bandwidth + 1):
            for dc in range(-bandwidth, bandwidth + 1):
                if dr == 0 and dc == 0:
                    continue
                nr, nc = r + dr, c + dc
                if 0 <= nr < side and 0 <= nc < side:
                    neighbour = nr * side + nc
                    if neighbour < n:
                        edges.append((node, neighbour))
    edge_arr = _dedupe_edges(np.array([e[0] for e in edges], dtype=np.int64),
                             np.array([e[1] for e in edges], dtype=np.int64), n)
    return _edges_to_coo(edge_arr, n, True, rng)


def mesh_graph_3d(n: int, seed: int = 0) -> COOMatrix:
    """3-D seven-point-stencil mesh (volumetric FEM discretisation)."""
    if n <= 1:
        return COOMatrix.empty((max(n, 1), max(n, 1)))
    side = int(np.ceil(n ** (1.0 / 3.0)))
    rng = np.random.default_rng(seed)
    edges: list[tuple[int, int]] = []
    for node in range(n):
        z, rem = divmod(node, side * side)
        y, x = divmod(rem, side)
        for dz, dy, dx in ((1, 0, 0), (-1, 0, 0), (0, 1, 0),
                           (0, -1, 0), (0, 0, 1), (0, 0, -1)):
            nz, ny, nx = z + dz, y + dy, x + dx
            if 0 <= nz < side and 0 <= ny < side and 0 <= nx < side:
                neighbour = nz * side * side + ny * side + nx
                if neighbour < n:
                    edges.append((node, neighbour))
    edge_arr = _dedupe_edges(np.array([e[0] for e in edges], dtype=np.int64),
                             np.array([e[1] for e in edges], dtype=np.int64), n)
    return _edges_to_coo(edge_arr, n, True, rng)


def road_network_graph(n: int, rewire_fraction: float = 0.02,
                       seed: int = 0) -> COOMatrix:
    """Planar-like road network: 4-neighbour grid with a few random shortcuts.

    Road networks have very low, near-uniform degree (roadNet-CA averages
    about 2.8), so only the orthogonal grid neighbours are connected.
    """
    if n <= 1:
        return COOMatrix.empty((max(n, 1), max(n, 1)))
    side = int(np.ceil(np.sqrt(n)))
    rng = np.random.default_rng(seed)
    edges: list[tuple[int, int]] = []
    for node in range(n):
        r, c = divmod(node, side)
        for dr, dc in ((0, 1), (1, 0)):
            nr, nc = r + dr, c + dc
            if 0 <= nr < side and 0 <= nc < side:
                neighbour = nr * side + nc
                if neighbour < n:
                    edges.append((node, neighbour))
    edge_arr = np.array(edges, dtype=np.int64) if edges else np.zeros((0, 2), np.int64)
    if n > 4 and rewire_fraction > 0:
        n_extra = max(1, int(len(edges) * rewire_fraction))
        src = rng.integers(0, n, size=n_extra)
        dst = rng.integers(0, n, size=n_extra)
        extra = _dedupe_edges(src, dst, n)
        edge_arr = np.concatenate([edge_arr, extra], axis=0)
    edge_arr = _dedupe_edges(edge_arr[:, 0], edge_arr[:, 1], n)
    return _edges_to_coo(edge_arr, n, True, rng)


def small_world_graph(n: int, k: int = 4, rewire_prob: float = 0.3,
                      seed: int = 0) -> COOMatrix:
    """Watts-Strogatz-style small-world graph (peer-to-peer topology)."""
    if n <= 1:
        return COOMatrix.empty((max(n, 1), max(n, 1)))
    k = max(2, min(k, n - 1))
    rng = np.random.default_rng(seed)
    edges: list[tuple[int, int]] = []
    for node in range(n):
        for offset in range(1, k // 2 + 1):
            neighbour = (node + offset) % n
            if rng.random() < rewire_prob:
                neighbour = int(rng.integers(0, n))
            if neighbour != node:
                edges.append((node, neighbour))
    edge_arr = _dedupe_edges(np.array([e[0] for e in edges], dtype=np.int64),
                             np.array([e[1] for e in edges], dtype=np.int64), n)
    return _edges_to_coo(edge_arr, n, True, rng)


def circuit_graph(n: int, fill_per_row: float = 2.5, seed: int = 0) -> COOMatrix:
    """Circuit / netlist-style matrix: dense-ish diagonal band plus random fill."""
    if n <= 1:
        return COOMatrix.empty((max(n, 1), max(n, 1)))
    rng = np.random.default_rng(seed)
    edges: list[tuple[int, int]] = []
    for node in range(n):
        edges.append((node, node))
        if node + 1 < n:
            edges.append((node, node + 1))
            edges.append((node + 1, node))
    n_fill = int(n * fill_per_row)
    src = rng.integers(0, n, size=n_fill)
    dst = rng.integers(0, n, size=n_fill)
    fill = np.stack([src, dst], axis=1)
    all_edges = np.concatenate([np.array(edges, dtype=np.int64), fill], axis=0)
    edge_arr = _dedupe_edges(all_edges[:, 0], all_edges[:, 1], n,
                             remove_self_loops=False)
    return COOMatrix.from_edges(edge_arr, (n, n))


def dense_matrix(n: int, seed: int = 0) -> COOMatrix:
    """Fully dense matrix, used for the dense column of Figure 13."""
    rng = np.random.default_rng(seed)
    dense = rng.random((n, n)) + 0.01
    return COOMatrix.from_dense(dense)
