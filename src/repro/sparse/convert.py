"""Conversions between the COO, CSR and CSC sparse formats.

All conversions sum duplicate coordinates (the behaviour graph adjacency
construction expects when an edge list contains repeated edges) and produce
indices sorted within each compressed row/column.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix


def dense_to_coo(dense: np.ndarray) -> COOMatrix:
    """Build a COO matrix from a dense array (alias of COOMatrix.from_dense)."""
    return COOMatrix.from_dense(dense)


def _compress(major: np.ndarray, minor: np.ndarray, data: np.ndarray,
              n_major: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compress (major, minor, data) triplets along the major axis.

    Returns (indptr, indices, values) with duplicates summed and minor
    indices sorted within each major slice.
    """
    if data.size == 0:
        return (np.zeros(n_major + 1, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.float64))
    n_minor = int(minor.max()) + 1 if minor.size else 1
    keys = major * n_minor + minor
    order = np.argsort(keys, kind="stable")
    keys_sorted = keys[order]
    data_sorted = data[order]
    unique_keys, start = np.unique(keys_sorted, return_index=True)
    summed = np.add.reduceat(data_sorted, start)
    major_u = unique_keys // n_minor
    minor_u = unique_keys % n_minor
    counts = np.bincount(major_u, minlength=n_major)
    indptr = np.zeros(n_major + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, minor_u.astype(np.int64), summed.astype(np.float64)


def coo_to_csr(coo: COOMatrix) -> CSRMatrix:
    """Convert COO to CSR, summing duplicate coordinates."""
    indptr, indices, data = _compress(coo.rows, coo.cols, coo.data, coo.shape[0])
    return CSRMatrix(indptr, indices, data, coo.shape)


def coo_to_csc(coo: COOMatrix) -> CSCMatrix:
    """Convert COO to CSC, summing duplicate coordinates."""
    indptr, indices, data = _compress(coo.cols, coo.rows, coo.data, coo.shape[1])
    return CSCMatrix(indptr, indices, data, coo.shape)


def csr_to_coo(csr: CSRMatrix) -> COOMatrix:
    """Convert CSR to COO."""
    rows = np.repeat(np.arange(csr.shape[0], dtype=np.int64), csr.row_nnz_counts())
    return COOMatrix(rows, csr.indices.copy(), csr.data.copy(), csr.shape)


def csc_to_coo(csc: CSCMatrix) -> COOMatrix:
    """Convert CSC to COO."""
    cols = np.repeat(np.arange(csc.shape[1], dtype=np.int64), csc.col_nnz_counts())
    return COOMatrix(csc.indices.copy(), cols, csc.data.copy(), csc.shape)


def csr_to_csc(csr: CSRMatrix) -> CSCMatrix:
    """Convert CSR to CSC of the *same* matrix."""
    return coo_to_csc(csr_to_coo(csr))


def csc_to_csr(csc: CSCMatrix) -> CSRMatrix:
    """Convert CSC to CSR of the *same* matrix."""
    return coo_to_csr(csc_to_coo(csc))


def csr_vstack(blocks: list[CSRMatrix]) -> CSRMatrix:
    """Stack CSR matrices vertically (shared column dimension).

    The inverse of :meth:`CSRMatrix.row_slice`: stacking the row slices of a
    matrix in order reproduces it exactly, which lets the sharding planner
    reduce per-shard SpGEMM outputs into the unsharded product.
    """
    if not blocks:
        raise ValueError("csr_vstack requires at least one block")
    n_cols = blocks[0].shape[1]
    for block in blocks[1:]:
        if block.shape[1] != n_cols:
            raise ValueError("csr_vstack blocks must share the column "
                             f"dimension; got {block.shape[1]} != {n_cols}")
    indptrs = [blocks[0].indptr]
    offset = blocks[0].indptr[-1]
    for block in blocks[1:]:
        indptrs.append(block.indptr[1:] + offset)
        offset += block.indptr[-1]
    return CSRMatrix(np.concatenate(indptrs),
                     np.concatenate([b.indices for b in blocks]),
                     np.concatenate([b.data for b in blocks]),
                     (sum(b.shape[0] for b in blocks), n_cols))
