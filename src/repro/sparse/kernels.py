"""SpGEMM kernel layer: one dispatch table, two implementations per dataflow.

The reference dataflows in :mod:`repro.sparse.spgemm` are written as
triple-nested Python loops so they can be read next to Figure 2 of the paper.
That makes them the ground truth — and makes them far too slow for graphs
beyond a few hundred nodes.  This module adds a *kernel registry* that pairs
every dataflow with two interchangeable implementations:

* ``impl="python"`` — thin wrappers around the reference loops (unchanged);
* ``impl="numpy"`` — vectorized versions built on ``np.repeat`` /
  cumulative-offset expansion (the same block-expansion idea the Accel-GCN
  style SpMM kernels use on GPUs), producing **identical op counts**
  (``partial_products``, ``accumulations``, ``output_nnz``,
  ``mmh_instructions``) and numerically equivalent output matrices
  (same structure; values may differ by a few ulp where the merge
  associates additions differently than a reference accumulator).

Every kernel has the canonical signature::

    kernel(a_csr: CSRMatrix, b_csr: CSRMatrix, *, tile_rows: int = 4)
        -> SpGEMMResult

Format conversions (CSR -> CSC where a dataflow wants column access) happen
inside the kernel, so callers only ever hold CSR operands.

The vectorized expansion works per shared inner index ``k``:  every non-zero
``A[i, k]`` pairs with every non-zero ``B[k, j]``.  With ``na[k]`` and
``nb[k]`` the per-``k`` operand counts, each A entry is repeated ``nb[k]``
times and the matching B slice is gathered through a cumulative-offset index
— no Python-level loop touches a partial product.  Because all four
dataflows enumerate exactly the set ``{(i, k, j)}`` and merge duplicates by
output coordinate, their op counts collapse to closed forms over ``na`` and
``nb``; the reference loops are retained to prove those closed forms right.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.sparse.convert import csr_to_csc
from repro.sparse.csr import CSRMatrix
from repro.sparse.spgemm import (
    SpGEMMResult,
    _check_dims,
    spgemm_inner_product,
    spgemm_outer_product,
    spgemm_row_wise,
    spgemm_tiled_gustavson,
)

#: Canonical kernel signature: (A in CSR, B in CSR, tile_rows) -> SpGEMMResult.
KernelFn = Callable[..., SpGEMMResult]

#: Kernel registry keyed by (dataflow, impl).
_KERNELS: dict[tuple[str, str], KernelFn] = {}

DATAFLOWS = ("inner", "outer", "row_wise", "tiled_gustavson")
IMPLS = ("python", "numpy")


def register_kernel(dataflow: str, impl: str):
    """Class of decorators that install a kernel into the dispatch table."""

    def decorator(fn: KernelFn) -> KernelFn:
        _KERNELS[(dataflow, impl)] = fn
        return fn

    return decorator


def available_kernels() -> list[tuple[str, str]]:
    """Registered (dataflow, impl) pairs in registration order."""
    return list(_KERNELS)


def available_impls(dataflow: str) -> list[str]:
    """Implementations registered for one dataflow."""
    return [impl for (flow, impl) in _KERNELS if flow == dataflow]


def get_kernel(dataflow: str, impl: str = "numpy") -> KernelFn:
    """Look up a kernel; raise ValueError naming the registered options."""
    key = (dataflow, impl)
    if key not in _KERNELS:
        flows = sorted({flow for flow, _ in _KERNELS})
        impls = sorted({i for _, i in _KERNELS})
        raise ValueError(
            f"no kernel for dataflow={dataflow!r} impl={impl!r}; "
            f"dataflows: {flows}; impls: {impls}")
    return _KERNELS[key]


def spgemm(a_csr: CSRMatrix, b_csr: CSRMatrix,
           dataflow: str = "tiled_gustavson", impl: str = "numpy",
           tile_rows: int = 4) -> SpGEMMResult:
    """Run C = A @ B through the selected dataflow/implementation kernel."""
    return get_kernel(dataflow, impl)(a_csr, b_csr, tile_rows=tile_rows)


# ----------------------------------------------------------------------
# python impls: wrappers around the reference loops (the ground truth).
# ----------------------------------------------------------------------
@register_kernel("inner", "python")
def _inner_python(a_csr: CSRMatrix, b_csr: CSRMatrix, *,
                  tile_rows: int = 4) -> SpGEMMResult:
    return spgemm_inner_product(a_csr, csr_to_csc(b_csr))


@register_kernel("outer", "python")
def _outer_python(a_csr: CSRMatrix, b_csr: CSRMatrix, *,
                  tile_rows: int = 4) -> SpGEMMResult:
    return spgemm_outer_product(csr_to_csc(a_csr), b_csr)


@register_kernel("row_wise", "python")
def _row_wise_python(a_csr: CSRMatrix, b_csr: CSRMatrix, *,
                     tile_rows: int = 4) -> SpGEMMResult:
    return spgemm_row_wise(a_csr, b_csr)


@register_kernel("tiled_gustavson", "python")
def _tiled_python(a_csr: CSRMatrix, b_csr: CSRMatrix, *,
                  tile_rows: int = 4) -> SpGEMMResult:
    return spgemm_tiled_gustavson(csr_to_csc(a_csr), b_csr,
                                  tile_rows=tile_rows)


# ----------------------------------------------------------------------
# numpy impls: vectorized partial-product expansion.
# ----------------------------------------------------------------------
def _expand_partial_products(a_csr: CSRMatrix, b_csr: CSRMatrix
                             ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Materialise every partial product of C = A @ B without Python loops.

    Walks A's entries in row-major (CSR) order; each entry ``A[i, k]``
    pairs with the whole row ``k`` of B, gathered through a cumulative-
    offset index.  Within one A row, entries are sorted by ``k``, so the
    partial products of each output coordinate appear in ascending-``k``
    order — the same order in which every reference loop accumulates
    them, which keeps the floating-point sums equivalent to within
    association error (a few ulp).

    Returns ``(keys, vals, row_ptr)`` where ``keys[p] = i * n_cols + j`` is
    the flattened output coordinate of partial product ``p`` and
    ``row_ptr`` delimits each output row's contiguous run of partial
    products (CSR-style, length ``n_rows + 1``).
    """
    nb = b_csr.row_nnz_counts()
    n_cols = b_csr.shape[1]
    # Row index and inner index of every A entry, in CSR order.
    row_of_a = np.repeat(np.arange(a_csr.shape[0], dtype=np.int64),
                         a_csr.row_nnz_counts())
    k_of_a = a_csr.indices
    # Each A entry generates one partial product per B entry of row k.
    rep = nb[k_of_a]
    total = int(rep.sum())
    if total == 0:
        return (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.float64),
                np.zeros(a_csr.shape[0] + 1, dtype=np.int64))
    # Partial products of output row r occupy keys[row_ptr[r]:row_ptr[r+1]].
    row_ptr = np.zeros(a_csr.shape[0] + 1, dtype=np.int64)
    np.cumsum(np.bincount(row_of_a, weights=rep,
                          minlength=a_csr.shape[0]).astype(np.int64),
              out=row_ptr[1:])
    # Gather the B slice of row k for every A entry: slice start offset
    # rebased by the cumulative repeat counts, plus a running position.
    ends = np.cumsum(rep)
    b_index = np.arange(total, dtype=np.int64)
    b_index += np.repeat(b_csr.indptr[k_of_a] - ends + rep, rep)
    keys = np.repeat(row_of_a * n_cols, rep)
    keys += b_csr.indices[b_index]
    vals = np.repeat(a_csr.data, rep)
    vals *= b_csr.data[b_index]
    return keys, vals, row_ptr


#: Use the dense-bin merge when the flattened output space is at most this
#: many times the partial-product count (bounds its transient memory to a
#: small multiple of the expansion itself) ...
_DENSE_MERGE_EXPANSION_LIMIT = 8
#: ... or when the output space is outright small.
_DENSE_MERGE_ABSOLUTE_LIMIT = 1 << 22
#: Row-block size target for the dense merge: bins per block, sized to keep
#: the per-block scatter arrays cache-resident.
_DENSE_MERGE_BLOCK_BINS = 1 << 19


def _merge_dense_blocked(keys: np.ndarray, vals: np.ndarray,
                         row_ptr: np.ndarray,
                         shape: tuple[int, int]) -> tuple[CSRMatrix, int]:
    """Dense-bin merge: scatter partial products straight into row blocks.

    Processes blocks of output rows (whose partial products are contiguous
    in ``keys`` thanks to the row-major expansion) so each ``np.bincount``
    scatter stays within a cache-resident bin array.  ``np.bincount`` adds
    over its input in encounter (ascending-``k``) order per output element,
    so the sums match the reference loops up to summation-association
    error (a few ulp — the reference merge reduces with
    ``np.add.reduceat``, which may associate additions differently).
    """
    n_rows, n_cols = shape
    block_rows = max(1, min(n_rows, _DENSE_MERGE_BLOCK_BINS // max(1, n_cols)))
    minor_parts: list[np.ndarray] = []
    data_parts: list[np.ndarray] = []
    counts_per_row = np.zeros(n_rows, dtype=np.int64)
    for row0 in range(0, n_rows, block_rows):
        row1 = min(row0 + block_rows, n_rows)
        lo, hi = int(row_ptr[row0]), int(row_ptr[row1])
        if lo == hi:
            continue
        block_keys = keys[lo:hi] - row0 * n_cols
        bins = (row1 - row0) * n_cols
        sums = np.bincount(block_keys, weights=vals[lo:hi], minlength=bins)
        counts = np.bincount(block_keys, minlength=bins)
        unique = np.flatnonzero(counts > 0)
        data_parts.append(sums[unique])
        local_major = unique // n_cols
        counts_per_row[row0:row1] = np.bincount(local_major,
                                                minlength=row1 - row0)
        minor_parts.append(unique - local_major * n_cols)
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(counts_per_row, out=indptr[1:])
    indices = (np.concatenate(minor_parts) if minor_parts
               else np.zeros(0, dtype=np.int64))
    data = (np.concatenate(data_parts) if data_parts
            else np.zeros(0, dtype=np.float64))
    matrix = CSRMatrix(indptr, indices, data, shape)
    return matrix, int(keys.size - indices.size)


def _merge_sorted(keys: np.ndarray, vals: np.ndarray,
                  shape: tuple[int, int]) -> tuple[CSRMatrix, int]:
    """Sort-based merge: stable sort by coordinate + ``np.add.reduceat``.

    Memory scales with the partial products only, so this is the fallback
    when the flattened output space is too large for dense bins.  The
    stable sort preserves encounter (ascending-``k``) order per output
    coordinate, keeping the sums equivalent to the reference loops
    (within a few ulp of association error).
    """
    order = np.argsort(keys, kind="stable")
    keys_sorted = keys[order]
    vals_sorted = vals[order]
    boundaries = np.empty(keys_sorted.size, dtype=bool)
    boundaries[0] = True
    np.not_equal(keys_sorted[1:], keys_sorted[:-1], out=boundaries[1:])
    starts = np.flatnonzero(boundaries)
    summed = np.add.reduceat(vals_sorted, starts)
    unique_keys = keys_sorted[starts]
    major = unique_keys // shape[1]
    minor = unique_keys - major * shape[1]
    counts_per_row = np.bincount(major, minlength=shape[0])
    indptr = np.zeros(shape[0] + 1, dtype=np.int64)
    np.cumsum(counts_per_row, out=indptr[1:])
    matrix = CSRMatrix(indptr, minor, summed, shape)
    return matrix, int(keys.size - unique_keys.size)


def _merge_partials(keys: np.ndarray, vals: np.ndarray,
                    row_ptr: np.ndarray,
                    shape: tuple[int, int]) -> tuple[CSRMatrix, int]:
    """Merge flattened-coordinate partial products into CSR.

    Picks the dense-bin strategy when the flattened output space is small
    relative to the partial-product count, the sort strategy otherwise.
    Both accumulate each output element's partial products in expansion
    (ascending-``k``) order, so the floating-point sums agree with the
    reference loops to within a few ulp (the reduction primitives may
    associate additions differently).  Returns ``(matrix, accumulations)``
    with the
    accumulation count defined as in the reference loops: every partial
    product beyond the first per output coordinate is one scalar addition.
    """
    if keys.size == 0:
        return CSRMatrix.empty(shape), 0
    flat_space = shape[0] * shape[1]
    if (flat_space <= _DENSE_MERGE_EXPANSION_LIMIT * keys.size
            or flat_space <= _DENSE_MERGE_ABSOLUTE_LIMIT):
        return _merge_dense_blocked(keys, vals, row_ptr, shape)
    return _merge_sorted(keys, vals, shape)


def _merged(a_csr: CSRMatrix, b_csr: CSRMatrix
            ) -> tuple[CSRMatrix, int, int, np.ndarray, np.ndarray]:
    """Shared numpy path: expand, merge, and count.

    Returns ``(matrix, partial_products, accumulations, na, nb)`` where
    ``na[k]`` / ``nb[k]`` are the per-inner-index operand counts the
    closed-form op counts are derived from.  The accumulation count is
    ``partial_products - output_nnz`` for every dataflow: the first partial
    product landing on an output coordinate is an insert, every later one
    is a scalar addition — exactly what the reference loops count with
    their per-key accumulators.
    """
    _check_dims(a_csr.shape, b_csr.shape)
    keys, vals, row_ptr = _expand_partial_products(a_csr, b_csr)
    matrix, accumulations = _merge_partials(
        keys, vals, row_ptr, (a_csr.shape[0], b_csr.shape[1]))
    na = np.bincount(a_csr.indices, minlength=a_csr.shape[1])
    nb = b_csr.row_nnz_counts()
    return matrix, int(keys.size), accumulations, na, nb


@register_kernel("inner", "numpy")
def _inner_numpy(a_csr: CSRMatrix, b_csr: CSRMatrix, *,
                 tile_rows: int = 4) -> SpGEMMResult:
    matrix, pp, acc, _na, _nb = _merged(a_csr, b_csr)
    return SpGEMMResult(matrix=matrix, dataflow="inner",
                        partial_products=pp,
                        accumulations=max(acc, 0),
                        output_nnz=matrix.nnz,
                        multiply_ops=pp)


@register_kernel("outer", "numpy")
def _outer_numpy(a_csr: CSRMatrix, b_csr: CSRMatrix, *,
                 tile_rows: int = 4) -> SpGEMMResult:
    matrix, pp, acc, na, nb = _merged(a_csr, b_csr)
    batches = int(np.count_nonzero((na > 0) & (nb > 0)))
    return SpGEMMResult(matrix=matrix, dataflow="outer",
                        partial_products=pp,
                        accumulations=acc,
                        output_nnz=matrix.nnz,
                        multiply_ops=pp,
                        intermediate_batches=batches)


@register_kernel("row_wise", "numpy")
def _row_wise_numpy(a_csr: CSRMatrix, b_csr: CSRMatrix, *,
                    tile_rows: int = 4) -> SpGEMMResult:
    matrix, pp, acc, _na, _nb = _merged(a_csr, b_csr)
    return SpGEMMResult(matrix=matrix, dataflow="row_wise",
                        partial_products=pp,
                        accumulations=acc,
                        output_nnz=matrix.nnz,
                        multiply_ops=pp)


@register_kernel("tiled_gustavson", "numpy")
def _tiled_numpy(a_csr: CSRMatrix, b_csr: CSRMatrix, *,
                 tile_rows: int = 4) -> SpGEMMResult:
    if tile_rows < 1:
        raise ValueError("tile_rows must be >= 1")
    matrix, pp, acc, na, nb = _merged(a_csr, b_csr)
    # One MMH instruction per (A-tile, B-tile) pair of each inner index k.
    a_tiles = -(-na // tile_rows)
    b_tiles = -(-nb // tile_rows)
    mmh_instructions = int((a_tiles * b_tiles)[(na > 0) & (nb > 0)].sum())
    return SpGEMMResult(matrix=matrix, dataflow="tiled_gustavson",
                        partial_products=pp,
                        accumulations=acc,
                        output_nnz=matrix.nnz,
                        multiply_ops=pp,
                        extra={"mmh_instructions": mmh_instructions,
                               "tile_rows": tile_rows})
