"""Symbolic (structure-only) SpGEMM.

The rolling-eviction mechanism of NeuraChip (Section 3.4) relies on a
per-output-element counter: the number of partial products that will be
accumulated into each non-zero of C = A @ B.  The NeuraCompiler obtains
these counters with a symbolic pass over the operand structures, which is
exactly what this module implements.

The pass is *columnar*: its result is a CSR-shaped structure-of-arrays
(``indptr`` / ``indices`` / ``counts``) rather than a ``(row, col) -> count``
dict, computed with the same ``np.repeat`` / cumulative-offset expansion the
vectorized SpGEMM kernels use (:mod:`repro.sparse.kernels`), so no Python
loop ever touches a partial product.  Dict-style accessors are kept as thin
lazy views for compatibility with existing callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix

#: Cap on partial products expanded per reduction chunk (~256 MiB of int64
#: keys); above this the pass reduces chunk-by-chunk so peak memory stays
#: bounded by the chunk size plus the accumulated per-chunk unique sets,
#: instead of the full O(total_partial_products) expansion.
SYMBOLIC_CHUNK_PARTIAL_PRODUCTS = 1 << 25


def row_per_slot(indptr: np.ndarray, n_rows: int) -> np.ndarray:
    """Output row index of every slot (CSR indptr run-length expansion).

    This is *the* slot-order convention of the compile pipeline: counters,
    rolling-counter addresses and output write-back addresses are all laid
    out in the ascending ``row * n_cols + col`` order this expansion
    induces.  Every consumer (symbolic views, ``ProgramArrays`` flat keys,
    lazy dict views) must derive it from this one helper.
    """
    return np.repeat(np.arange(n_rows, dtype=np.int64), np.diff(indptr))


@dataclass
class SymbolicProduct:
    """Structure of C = A @ B without numeric values, in CSR-shaped arrays.

    Attributes:
        shape: shape of C.
        indptr: int64 array of length ``n_rows + 1``; output row ``i``
            occupies the half-open slice ``indices[indptr[i]:indptr[i+1]]``.
        indices: int64 column index per output non-zero, sorted within each
            row — the canonical (row, col) slot order the compiler lays
            counters and output elements out in.
        counts: int64 rolling counter per output non-zero (number of partial
            products accumulated into that element), aligned with
            ``indices``.
        total_partial_products: total count of scalar multiply results
            produced by the multiplication phase (the ``pp_interim`` of
            Equation 1).
    """

    shape: tuple[int, int]
    indptr: np.ndarray
    indices: np.ndarray
    counts: np.ndarray
    total_partial_products: int
    _entries: dict | None = field(default=None, repr=False, compare=False)

    @property
    def nnz(self) -> int:
        """Number of non-zeros in the output matrix."""
        return int(self.indices.size)

    def _row_per_slot(self) -> np.ndarray:
        """Output row index of every slot (indptr run-length expansion)."""
        return row_per_slot(self.indptr, self.shape[0])

    @property
    def entries(self) -> dict[tuple[int, int], int]:
        """Dict view mapping (row, col) -> rolling counter (lazily built).

        Kept for compatibility; the arrays are the primary representation.
        """
        if self._entries is None:
            rows = self._row_per_slot()
            self._entries = dict(zip(zip(rows.tolist(), self.indices.tolist()),
                                     self.counts.tolist()))
        return self._entries

    def counter(self, row: int, col: int) -> int:
        """Rolling counter for output element (row, col); 0 if structurally zero."""
        if not 0 <= row < self.shape[0]:
            return 0
        lo, hi = int(self.indptr[row]), int(self.indptr[row + 1])
        hit = lo + int(np.searchsorted(self.indices[lo:hi], col))
        if hit < hi and self.indices[hit] == col:
            return int(self.counts[hit])
        return 0

    def counters_for_row(self, row: int) -> dict[int, int]:
        """All column -> counter pairs for one output row ({} if out of range)."""
        if not 0 <= row < self.shape[0]:
            return {}
        lo, hi = int(self.indptr[row]), int(self.indptr[row + 1])
        return dict(zip(self.indices[lo:hi].tolist(),
                        self.counts[lo:hi].tolist()))

    def row_nnz_counts(self) -> np.ndarray:
        """Per-row output non-zero counts."""
        return np.diff(self.indptr)

    def flat_keys(self) -> np.ndarray:
        """Flattened output coordinates ``row * n_cols + col`` per slot,
        ascending — the compiler's slot-lookup index."""
        return self._row_per_slot() * self.shape[1] + self.indices


def _expand_and_count(row_of_a: np.ndarray, k_of_a: np.ndarray,
                      rep: np.ndarray, ends: np.ndarray, b_csr: CSRMatrix,
                      n_cols: int, lo: int, hi: int
                      ) -> tuple[np.ndarray, np.ndarray]:
    """Expand A entries ``[lo, hi)`` into flattened output coordinates and
    reduce them to (sorted unique keys, per-key counts).

    The gather rebases each B slice by the cumulative repeat counts plus a
    running position (the kernel layer's cumulative-offset expansion).
    """
    rep_c = rep[lo:hi]
    base = int(ends[lo - 1]) if lo else 0
    total_c = int(ends[hi - 1]) - base
    b_index = np.arange(total_c, dtype=np.int64) + base
    b_index += np.repeat(b_csr.indptr[k_of_a[lo:hi]] - ends[lo:hi] + rep_c,
                         rep_c)
    keys = np.repeat(row_of_a[lo:hi] * n_cols, rep_c)
    keys += b_csr.indices[b_index]
    return np.unique(keys, return_counts=True)


def _merge_unique_counts(parts: list[tuple[np.ndarray, np.ndarray]]
                         ) -> tuple[np.ndarray, np.ndarray]:
    """Merge per-chunk (unique keys, counts) pairs, summing counts of keys
    that appear in several chunks."""
    keys = np.concatenate([part[0] for part in parts])
    counts = np.concatenate([part[1] for part in parts])
    order = np.argsort(keys, kind="stable")
    keys, counts = keys[order], counts[order]
    boundaries = np.empty(keys.size, dtype=bool)
    boundaries[0] = True
    np.not_equal(keys[1:], keys[:-1], out=boundaries[1:])
    starts = np.flatnonzero(boundaries)
    return keys[starts], np.add.reduceat(counts, starts)


def _symbolic_from_pairs(row_of_a: np.ndarray, k_of_a: np.ndarray,
                         b_csr: CSRMatrix,
                         shape: tuple[int, int]) -> SymbolicProduct:
    """Shared vectorized core: expand every (A-entry, B-entry) pairing into
    a flattened output coordinate, then reduce to per-coordinate counts.

    ``row_of_a[e]`` / ``k_of_a[e]`` give the output row and inner index of
    A entry ``e`` (any entry order works — the reduction sorts).  Very
    high-bloat workloads (partial products far above
    :data:`SYMBOLIC_CHUNK_PARTIAL_PRODUCTS`) are reduced chunk by chunk so
    the transient expansion never materialises all partial products at
    once.
    """
    n_rows, n_cols = shape
    nb = b_csr.row_nnz_counts()
    rep = nb[k_of_a] if k_of_a.size else np.zeros(0, dtype=np.int64)
    total = int(rep.sum())
    if total == 0:
        return SymbolicProduct(shape=shape,
                               indptr=np.zeros(n_rows + 1, dtype=np.int64),
                               indices=np.zeros(0, dtype=np.int64),
                               counts=np.zeros(0, dtype=np.int64),
                               total_partial_products=0)
    ends = np.cumsum(rep)
    if total <= SYMBOLIC_CHUNK_PARTIAL_PRODUCTS:
        unique, counts = _expand_and_count(row_of_a, k_of_a, rep, ends,
                                           b_csr, n_cols, 0, rep.size)
    else:
        # Split on A-entry boundaries so each chunk expands at most about
        # one chunk's worth of partial products (single entries may exceed
        # the cap; a chunk always advances by at least one entry).
        targets = np.arange(SYMBOLIC_CHUNK_PARTIAL_PRODUCTS, total,
                            SYMBOLIC_CHUNK_PARTIAL_PRODUCTS, dtype=np.int64)
        cuts = [0, *np.searchsorted(ends, targets, side="left") + 1, rep.size]
        parts = [_expand_and_count(row_of_a, k_of_a, rep, ends, b_csr,
                                   n_cols, lo, hi)
                 for lo, hi in zip(cuts[:-1], cuts[1:]) if hi > lo]
        unique, counts = _merge_unique_counts(parts)
    major = unique // n_cols
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(np.bincount(major, minlength=n_rows), out=indptr[1:])
    return SymbolicProduct(shape=shape, indptr=indptr,
                           indices=unique - major * n_cols,
                           counts=counts.astype(np.int64),
                           total_partial_products=total)


def symbolic_spgemm(a_csr: CSRMatrix, b_csr: CSRMatrix) -> SymbolicProduct:
    """Compute the structure and rolling counters of C = A @ B.

    Both operands are given row-major; the expansion enumerates exactly the
    (i, k, j) triples Gustavson's row order would touch and counts, for
    every output coordinate, how many of them land on it.

    Args:
        a_csr: left operand in CSR.
        b_csr: right operand in CSR.

    Returns:
        A :class:`SymbolicProduct` describing the output structure.

    Raises:
        ValueError: if the inner dimensions do not match.
    """
    if a_csr.shape[1] != b_csr.shape[0]:
        raise ValueError(
            f"dimension mismatch: A is {a_csr.shape}, B is {b_csr.shape}")
    row_of_a = np.repeat(np.arange(a_csr.shape[0], dtype=np.int64),
                         a_csr.row_nnz_counts())
    return _symbolic_from_pairs(row_of_a, a_csr.indices, b_csr,
                                (a_csr.shape[0], b_csr.shape[1]))


def symbolic_spgemm_from_csc(a_csc: CSCMatrix, b_csr: CSRMatrix) -> SymbolicProduct:
    """Symbolic SpGEMM with A in CSC (the storage NeuraChip actually uses).

    Pairs the columns of A with the rows of B — the outer-product order in
    which the MMH instructions are generated — and produces the same
    counters as :func:`symbolic_spgemm` (the reduction is order-insensitive).
    """
    if a_csc.shape[1] != b_csr.shape[0]:
        raise ValueError(
            f"dimension mismatch: A is {a_csc.shape}, B is {b_csr.shape}")
    k_of_a = np.repeat(np.arange(a_csc.shape[1], dtype=np.int64),
                       a_csc.col_nnz_counts())
    return _symbolic_from_pairs(a_csc.indices, k_of_a, b_csr,
                                (a_csc.shape[0], b_csr.shape[1]))
