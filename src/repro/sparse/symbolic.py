"""Symbolic (structure-only) SpGEMM.

The rolling-eviction mechanism of NeuraChip (Section 3.4) relies on a
per-output-element counter: the number of partial products that will be
accumulated into each non-zero of C = A @ B.  The NeuraCompiler obtains
these counters with a symbolic pass over the operand structures, which is
exactly what this module implements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix


@dataclass
class SymbolicProduct:
    """Structure of C = A @ B without numeric values.

    Attributes:
        shape: shape of C.
        entries: dict mapping (row, col) -> number of partial products that
            contribute to that output element (the rolling counter value).
        total_partial_products: total count of scalar multiply results
            produced by the multiplication phase (the ``pp_interim`` of
            Equation 1).
    """

    shape: tuple[int, int]
    entries: dict[tuple[int, int], int]
    total_partial_products: int

    @property
    def nnz(self) -> int:
        """Number of non-zeros in the output matrix."""
        return len(self.entries)

    def counter(self, row: int, col: int) -> int:
        """Rolling counter for output element (row, col); 0 if structurally zero."""
        return self.entries.get((row, col), 0)

    def counters_for_row(self, row: int) -> dict[int, int]:
        """All column -> counter pairs for one output row."""
        return {c: n for (r, c), n in self.entries.items() if r == row}

    def row_nnz_counts(self) -> np.ndarray:
        """Per-row output non-zero counts."""
        counts = np.zeros(self.shape[0], dtype=np.int64)
        for (r, _c) in self.entries:
            counts[r] += 1
        return counts


def symbolic_spgemm(a_csr: CSRMatrix, b_csr: CSRMatrix) -> SymbolicProduct:
    """Compute the structure and rolling counters of C = A @ B.

    Both operands are given row-major; the pass walks A row by row
    (Gustavson order) and counts, for every output coordinate, how many
    (i, k, j) triples touch it.

    Args:
        a_csr: left operand in CSR.
        b_csr: right operand in CSR.

    Returns:
        A :class:`SymbolicProduct` describing the output structure.

    Raises:
        ValueError: if the inner dimensions do not match.
    """
    if a_csr.shape[1] != b_csr.shape[0]:
        raise ValueError(
            f"dimension mismatch: A is {a_csr.shape}, B is {b_csr.shape}")
    entries: dict[tuple[int, int], int] = {}
    total = 0
    for i in range(a_csr.shape[0]):
        a_cols, _a_vals = a_csr.row(i)
        for k in a_cols:
            b_cols, _b_vals = b_csr.row(int(k))
            total += int(b_cols.size)
            for j in b_cols:
                key = (i, int(j))
                entries[key] = entries.get(key, 0) + 1
    return SymbolicProduct(shape=(a_csr.shape[0], b_csr.shape[1]),
                           entries=entries,
                           total_partial_products=total)


def symbolic_spgemm_from_csc(a_csc: CSCMatrix, b_csr: CSRMatrix) -> SymbolicProduct:
    """Symbolic SpGEMM with A in CSC (the storage NeuraChip actually uses).

    Walks the columns of A paired with the rows of B — the outer-product
    order in which the MMH instructions are generated — and produces the
    same counters as :func:`symbolic_spgemm`.
    """
    if a_csc.shape[1] != b_csr.shape[0]:
        raise ValueError(
            f"dimension mismatch: A is {a_csc.shape}, B is {b_csr.shape}")
    entries: dict[tuple[int, int], int] = {}
    total = 0
    for k in range(a_csc.shape[1]):
        a_rows, _a_vals = a_csc.col(k)
        if a_rows.size == 0:
            continue
        b_cols, _b_vals = b_csr.row(k)
        if b_cols.size == 0:
            continue
        total += int(a_rows.size) * int(b_cols.size)
        for i in a_rows:
            for j in b_cols:
                key = (int(i), int(j))
                entries[key] = entries.get(key, 0) + 1
    return SymbolicProduct(shape=(a_csc.shape[0], b_csr.shape[1]),
                           entries=entries,
                           total_partial_products=total)
