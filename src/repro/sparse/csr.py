"""Compressed Sparse Row (CSR) matrix.

The feature matrix B of the aggregation phase is stored in CSR in the paper
(Section 3.1): Gustavson's algorithm walks a row of A and, for each non-zero
A[i, k], streams the entire row k of B.  CSR gives O(1) access to that row.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class CSRMatrix:
    """A sparse matrix in compressed sparse row format.

    Attributes:
        indptr: int64 array of length ``n_rows + 1``; row i occupies the
            half-open slice ``indices[indptr[i]:indptr[i + 1]]``.
        indices: int64 array of column indices, sorted within each row.
        data: float64 array of values aligned with ``indices``.
        shape: (n_rows, n_cols).
    """

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    shape: tuple[int, int]
    _validated: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        self.indices = np.asarray(self.indices, dtype=np.int64)
        self.data = np.asarray(self.data, dtype=np.float64)
        self.shape = (int(self.shape[0]), int(self.shape[1]))
        self.validate()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, shape: tuple[int, int]) -> "CSRMatrix":
        """Return an all-zero matrix of the given shape."""
        return cls(np.zeros(shape[0] + 1, dtype=np.int64),
                   np.zeros(0, dtype=np.int64),
                   np.zeros(0, dtype=np.float64),
                   shape)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        """Build a CSR matrix from a dense 2-D numpy array."""
        from repro.sparse.convert import coo_to_csr
        from repro.sparse.coo import COOMatrix

        return coo_to_csr(COOMatrix.from_dense(dense))

    @classmethod
    def from_coo(cls, coo) -> "CSRMatrix":
        """Build a CSR matrix from a :class:`~repro.sparse.coo.COOMatrix`."""
        from repro.sparse.convert import coo_to_csr

        return coo_to_csr(coo)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored non-zero entries."""
        return int(self.data.size)

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    @property
    def sparsity(self) -> float:
        """Fraction of zero entries, in [0, 1]."""
        total = self.shape[0] * self.shape[1]
        if total == 0:
            return 0.0
        return 1.0 - self.nnz / total

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Return (column indices, values) of row ``i``."""
        if not 0 <= i < self.shape[0]:
            raise IndexError(f"row {i} out of range for {self.shape[0]} rows")
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def row_nnz(self, i: int) -> int:
        """Number of non-zeros in row ``i``."""
        return int(self.indptr[i + 1] - self.indptr[i])

    def row_nnz_counts(self) -> np.ndarray:
        """Per-row non-zero counts as an int64 array of length ``n_rows``."""
        return np.diff(self.indptr)

    def row_slice(self, start: int, stop: int) -> "CSRMatrix":
        """Return rows ``[start, stop)`` as a new CSR matrix.

        The slice keeps the full column dimension, so the product of a row
        slice of A with B is exactly the matching row block of A @ B — the
        property the sharding planner relies on.
        """
        if not 0 <= start <= stop <= self.shape[0]:
            raise IndexError(f"row slice [{start}, {stop}) out of range for "
                             f"{self.shape[0]} rows")
        lo, hi = int(self.indptr[start]), int(self.indptr[stop])
        return CSRMatrix(self.indptr[start:stop + 1] - self.indptr[start],
                         self.indices[lo:hi].copy(),
                         self.data[lo:hi].copy(),
                         (stop - start, self.shape[1]))

    def row_select(self, rows: np.ndarray) -> "CSRMatrix":
        """Return the given rows, in the given order, as a new CSR matrix.

        The fancy-index generalisation of :meth:`row_slice`: the result
        keeps the full column dimension, so the product of a row
        selection of A with B is exactly the matching rows of A @ B —
        what the degree-aware shard planner's index-set shards rely on.
        Implemented as one gather (prefix sums + ``np.repeat``), no
        per-row Python loop.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size and (rows.min() < 0 or rows.max() >= self.shape[0]):
            raise IndexError(f"row selection out of range for "
                             f"{self.shape[0]} rows")
        counts = self.row_nnz_counts()[rows]
        indptr = np.zeros(rows.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        source = np.arange(int(indptr[-1]), dtype=np.int64) + np.repeat(
            self.indptr[rows] - indptr[:-1], counts)
        return CSRMatrix(indptr, self.indices[source], self.data[source],
                         (int(rows.size), self.shape[1]))

    def col_range(self, start: int, stop: int) -> "CSRMatrix":
        """Return only the entries with column in ``[start, stop)``,
        *keeping the full shape* so column ids stay global.

        This is the operand slice behind monster-row fragment execution:
        ``A @ B.col_range(lo, hi)`` equals the column range ``[lo, hi)``
        of A @ B exactly (every partial product landing in that range
        comes from exactly these B entries, encountered in the same
        order), so fragment outputs concatenate back byte-identically.
        """
        if not 0 <= start <= stop <= self.shape[1]:
            raise IndexError(f"column range [{start}, {stop}) out of range "
                             f"for {self.shape[1]} columns")
        mask = (self.indices >= start) & (self.indices < stop)
        kept = np.zeros(self.nnz + 1, dtype=np.int64)
        np.cumsum(mask, out=kept[1:])
        return CSRMatrix(kept[self.indptr], self.indices[mask],
                         self.data[mask], self.shape)

    def get(self, i: int, j: int) -> float:
        """Return the value at (i, j), or 0.0 if the entry is not stored."""
        cols, vals = self.row(i)
        hit = np.searchsorted(cols, j)
        if hit < cols.size and cols[hit] == j:
            return float(vals[hit])
        return 0.0

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise ValueError if violated."""
        if self.indptr.size != self.shape[0] + 1:
            raise ValueError("indptr length must be n_rows + 1")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.size != self.data.size:
            raise ValueError("indices and data must have equal lengths")
        if self.indices.size and (self.indices.min() < 0
                                  or self.indices.max() >= self.shape[1]):
            raise ValueError("column index out of bounds")
        if self.indices.size > 1:
            # Per-row canonical order: sorted, duplicate-free column
            # indices.  One diff over the whole indices array with the
            # positions that straddle a row boundary masked out.
            diffs = np.diff(self.indices)
            same_row = np.ones(self.indices.size - 1, dtype=bool)
            boundaries = self.indptr[1:-1]
            boundaries = boundaries[(boundaries > 0)
                                    & (boundaries < self.indices.size)]
            same_row[boundaries - 1] = False
            if np.any(same_row & (diffs < 0)):
                raise ValueError("column indices must be sorted within "
                                 "each row")
            if np.any(same_row & (diffs == 0)):
                raise ValueError("duplicate column index within a row")
        self._validated = True

    def to_dense(self) -> np.ndarray:
        """Materialise the matrix as a dense numpy array."""
        dense = np.zeros(self.shape, dtype=np.float64)
        for i in range(self.shape[0]):
            cols, vals = self.row(i)
            dense[i, cols] = vals
        return dense

    def to_coo(self):
        """Convert to :class:`~repro.sparse.coo.COOMatrix`."""
        from repro.sparse.convert import csr_to_coo

        return csr_to_coo(self)

    def transpose(self):
        """Return the transpose as a :class:`~repro.sparse.csc.CSCMatrix`.

        A CSR matrix reinterpreted with rows-as-columns is exactly the CSC
        representation of its transpose, so this is free.
        """
        from repro.sparse.csc import CSCMatrix

        return CSCMatrix(self.indptr.copy(), self.indices.copy(), self.data.copy(),
                         (self.shape[1], self.shape[0]))

    def scale_rows(self, factors: np.ndarray) -> "CSRMatrix":
        """Return a copy with row i multiplied by ``factors[i]``."""
        factors = np.asarray(factors, dtype=np.float64)
        if factors.shape != (self.shape[0],):
            raise ValueError("factors must have one entry per row")
        data = self.data * np.repeat(factors, self.row_nnz_counts())
        return CSRMatrix(self.indptr.copy(), self.indices.copy(), data, self.shape)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Sparse matrix-vector product ``A @ x``."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape[0] != self.shape[1]:
            raise ValueError("dimension mismatch in matvec")
        out = np.zeros(self.shape[0], dtype=np.float64)
        for i in range(self.shape[0]):
            cols, vals = self.row(i)
            if cols.size:
                out[i] = float(vals @ x[cols])
        return out

    def copy(self) -> "CSRMatrix":
        """Return a deep copy."""
        return CSRMatrix(self.indptr.copy(), self.indices.copy(),
                         self.data.copy(), self.shape)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRMatrix):
            return NotImplemented
        return (self.shape == other.shape
                and np.array_equal(self.indptr, other.indptr)
                and np.array_equal(self.indices, other.indices)
                and np.allclose(self.data, other.data))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, "
                f"sparsity={self.sparsity:.4f})")
