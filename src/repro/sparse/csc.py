"""Compressed Sparse Column (CSC) matrix.

The adjacency matrix A of the aggregation phase is stored in CSC in the
paper (Section 3.1): the tiled Gustavson / MMH4 dataflow walks a *column*
of A (four elements at a time) and pairs it with the matching row of B.
CSC gives O(1) access to that column.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class CSCMatrix:
    """A sparse matrix in compressed sparse column format.

    Attributes:
        indptr: int64 array of length ``n_cols + 1``; column j occupies the
            half-open slice ``indices[indptr[j]:indptr[j + 1]]``.
        indices: int64 array of row indices, sorted within each column.
        data: float64 array of values aligned with ``indices``.
        shape: (n_rows, n_cols).
    """

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    shape: tuple[int, int]
    _validated: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        self.indices = np.asarray(self.indices, dtype=np.int64)
        self.data = np.asarray(self.data, dtype=np.float64)
        self.shape = (int(self.shape[0]), int(self.shape[1]))
        self.validate()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, shape: tuple[int, int]) -> "CSCMatrix":
        """Return an all-zero matrix of the given shape."""
        return cls(np.zeros(shape[1] + 1, dtype=np.int64),
                   np.zeros(0, dtype=np.int64),
                   np.zeros(0, dtype=np.float64),
                   shape)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSCMatrix":
        """Build a CSC matrix from a dense 2-D numpy array."""
        from repro.sparse.convert import coo_to_csc
        from repro.sparse.coo import COOMatrix

        return coo_to_csc(COOMatrix.from_dense(dense))

    @classmethod
    def from_coo(cls, coo) -> "CSCMatrix":
        """Build a CSC matrix from a :class:`~repro.sparse.coo.COOMatrix`."""
        from repro.sparse.convert import coo_to_csc

        return coo_to_csc(coo)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored non-zero entries."""
        return int(self.data.size)

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    @property
    def sparsity(self) -> float:
        """Fraction of zero entries, in [0, 1]."""
        total = self.shape[0] * self.shape[1]
        if total == 0:
            return 0.0
        return 1.0 - self.nnz / total

    # ------------------------------------------------------------------
    # Column access
    # ------------------------------------------------------------------
    def col(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """Return (row indices, values) of column ``j``."""
        if not 0 <= j < self.shape[1]:
            raise IndexError(f"column {j} out of range for {self.shape[1]} columns")
        lo, hi = self.indptr[j], self.indptr[j + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def col_nnz(self, j: int) -> int:
        """Number of non-zeros in column ``j``."""
        return int(self.indptr[j + 1] - self.indptr[j])

    def col_nnz_counts(self) -> np.ndarray:
        """Per-column non-zero counts as an int64 array of length ``n_cols``."""
        return np.diff(self.indptr)

    def get(self, i: int, j: int) -> float:
        """Return the value at (i, j), or 0.0 if the entry is not stored."""
        rows, vals = self.col(j)
        hit = np.searchsorted(rows, i)
        if hit < rows.size and rows[hit] == i:
            return float(vals[hit])
        return 0.0

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise ValueError if violated."""
        if self.indptr.size != self.shape[1] + 1:
            raise ValueError("indptr length must be n_cols + 1")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.size != self.data.size:
            raise ValueError("indices and data must have equal lengths")
        if self.indices.size and (self.indices.min() < 0
                                  or self.indices.max() >= self.shape[0]):
            raise ValueError("row index out of bounds")
        self._validated = True

    def to_dense(self) -> np.ndarray:
        """Materialise the matrix as a dense numpy array."""
        dense = np.zeros(self.shape, dtype=np.float64)
        for j in range(self.shape[1]):
            rows, vals = self.col(j)
            dense[rows, j] = vals
        return dense

    def to_coo(self):
        """Convert to :class:`~repro.sparse.coo.COOMatrix`."""
        from repro.sparse.convert import csc_to_coo

        return csc_to_coo(self)

    def transpose(self):
        """Return the transpose as a :class:`~repro.sparse.csr.CSRMatrix`."""
        from repro.sparse.csr import CSRMatrix

        return CSRMatrix(self.indptr.copy(), self.indices.copy(), self.data.copy(),
                         (self.shape[1], self.shape[0]))

    def copy(self) -> "CSCMatrix":
        """Return a deep copy."""
        return CSCMatrix(self.indptr.copy(), self.indices.copy(),
                         self.data.copy(), self.shape)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSCMatrix):
            return NotImplemented
        return (self.shape == other.shape
                and np.array_equal(self.indptr, other.indptr)
                and np.array_equal(self.indices, other.indices)
                and np.allclose(self.data, other.data))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CSCMatrix(shape={self.shape}, nnz={self.nnz}, "
                f"sparsity={self.sparsity:.4f})")
