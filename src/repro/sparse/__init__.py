"""Sparse matrix substrate used by the NeuraChip reproduction.

This subpackage implements, from scratch, the three compressed storage
formats the paper relies on (COO, CSR, CSC), the four SpGEMM dataflows of
Figure 2 (inner product, outer product, row-wise/Gustavson and the tiled
Gustavson variant used by NeuraChip), a symbolic (structure-only) SpGEMM
pass used to derive the rolling-eviction counters, and the memory-bloat
analysis of Table 1.
"""

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.convert import (
    coo_to_csc,
    coo_to_csr,
    csc_to_coo,
    csc_to_csr,
    csr_to_coo,
    csr_to_csc,
    dense_to_coo,
)
from repro.sparse.spgemm import (
    SpGEMMResult,
    spgemm_inner_product,
    spgemm_outer_product,
    spgemm_row_wise,
    spgemm_tiled_gustavson,
)
from repro.sparse.kernels import (
    available_impls,
    available_kernels,
    get_kernel,
    register_kernel,
)
from repro.sparse.kernels import spgemm as spgemm_kernel
from repro.sparse.symbolic import SymbolicProduct, symbolic_spgemm
from repro.sparse.bloat import BloatReport, bloat_percent, bloat_report

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "coo_to_csr",
    "coo_to_csc",
    "csr_to_coo",
    "csc_to_coo",
    "csr_to_csc",
    "csc_to_csr",
    "dense_to_coo",
    "SpGEMMResult",
    "spgemm_inner_product",
    "spgemm_outer_product",
    "spgemm_row_wise",
    "spgemm_tiled_gustavson",
    "spgemm_kernel",
    "get_kernel",
    "register_kernel",
    "available_kernels",
    "available_impls",
    "SymbolicProduct",
    "symbolic_spgemm",
    "BloatReport",
    "bloat_percent",
    "bloat_report",
]
