"""Coordinate-format (COO) sparse matrix.

COO is the interchange format of the reproduction: dataset generators emit
COO, and the compressed formats (CSR/CSC) are built from it.  The class is
a thin, validated container around three parallel numpy arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class COOMatrix:
    """A sparse matrix in coordinate (triplet) format.

    Attributes:
        rows: int64 array of row indices, one per stored entry.
        cols: int64 array of column indices, one per stored entry.
        data: float64 array of values, one per stored entry.
        shape: (n_rows, n_cols) of the logical dense matrix.
    """

    rows: np.ndarray
    cols: np.ndarray
    data: np.ndarray
    shape: tuple[int, int]
    _validated: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.rows = np.asarray(self.rows, dtype=np.int64)
        self.cols = np.asarray(self.cols, dtype=np.int64)
        self.data = np.asarray(self.data, dtype=np.float64)
        self.shape = (int(self.shape[0]), int(self.shape[1]))
        self.validate()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, shape: tuple[int, int]) -> "COOMatrix":
        """Return an all-zero matrix of the given shape."""
        zeros = np.zeros(0, dtype=np.int64)
        return cls(zeros, zeros.copy(), np.zeros(0, dtype=np.float64), shape)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "COOMatrix":
        """Build a COO matrix from a dense 2-D numpy array."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError(f"expected a 2-D array, got ndim={dense.ndim}")
        rows, cols = np.nonzero(dense)
        return cls(rows, cols, dense[rows, cols], dense.shape)

    @classmethod
    def from_edges(
        cls,
        edges: list[tuple[int, int]] | np.ndarray,
        shape: tuple[int, int],
        values: np.ndarray | None = None,
    ) -> "COOMatrix":
        """Build a COO matrix from an edge list (e.g. a graph adjacency)."""
        edges = np.asarray(edges, dtype=np.int64)
        if edges.size == 0:
            return cls.empty(shape)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError("edges must be an (n, 2) array of (row, col) pairs")
        if values is None:
            values = np.ones(len(edges), dtype=np.float64)
        return cls(edges[:, 0], edges[:, 1], values, shape)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries (before duplicate summation)."""
        return int(self.data.size)

    @property
    def sparsity(self) -> float:
        """Fraction of zero entries in the logical dense matrix, in [0, 1]."""
        total = self.shape[0] * self.shape[1]
        if total == 0:
            return 0.0
        return 1.0 - self.nnz / total

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check index bounds and array lengths; raise ValueError on errors."""
        if not (self.rows.size == self.cols.size == self.data.size):
            raise ValueError("rows, cols and data must have equal lengths")
        if self.rows.size:
            if self.rows.min() < 0 or self.rows.max() >= self.shape[0]:
                raise ValueError("row index out of bounds")
            if self.cols.min() < 0 or self.cols.max() >= self.shape[1]:
                raise ValueError("column index out of bounds")
        self._validated = True

    def sum_duplicates(self) -> "COOMatrix":
        """Return a copy with duplicate (row, col) entries summed together."""
        if self.nnz == 0:
            return COOMatrix.empty(self.shape)
        keys = self.rows * self.shape[1] + self.cols
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        data = self.data[order]
        unique_keys, start = np.unique(keys, return_index=True)
        summed = np.add.reduceat(data, start)
        rows = unique_keys // self.shape[1]
        cols = unique_keys % self.shape[1]
        return COOMatrix(rows, cols, summed, self.shape)

    def prune(self, tol: float = 0.0) -> "COOMatrix":
        """Return a copy with entries whose magnitude is <= ``tol`` removed."""
        keep = np.abs(self.data) > tol
        return COOMatrix(self.rows[keep], self.cols[keep], self.data[keep], self.shape)

    def transpose(self) -> "COOMatrix":
        """Return the transposed matrix (rows and cols swapped)."""
        return COOMatrix(self.cols.copy(), self.rows.copy(), self.data.copy(),
                         (self.shape[1], self.shape[0]))

    def to_dense(self) -> np.ndarray:
        """Materialise the matrix as a dense numpy array (sums duplicates)."""
        dense = np.zeros(self.shape, dtype=np.float64)
        np.add.at(dense, (self.rows, self.cols), self.data)
        return dense

    def copy(self) -> "COOMatrix":
        """Return a deep copy."""
        return COOMatrix(self.rows.copy(), self.cols.copy(), self.data.copy(), self.shape)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, COOMatrix):
            return NotImplemented
        if self.shape != other.shape:
            return False
        return bool(np.array_equal(self.sum_duplicates().to_dense(),
                                   other.sum_duplicates().to_dense()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"COOMatrix(shape={self.shape}, nnz={self.nnz}, "
                f"sparsity={self.sparsity:.4f})")
