"""Memory-bloat analysis (Table 1 / Equation 1 of the paper).

Bloat percent is defined as::

    bloat = (pp_interim - nnz_output) / nnz_output * 100

where ``pp_interim`` is the number of intermediate partial products produced
by the multiplication phase and ``nnz_output`` is the number of non-zeros in
the result matrix.  For C = A @ B, ``pp_interim`` depends only on the operand
structures: sum over k of nnz(A[:, k]) * nnz(B[k, :]).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.symbolic import symbolic_spgemm


@dataclass
class BloatReport:
    """Bloat analysis of a single SpGEMM workload.

    Attributes:
        name: workload name (dataset name for Table 1).
        node_count: number of rows of the (square) operand.
        edge_count: number of stored non-zeros of the operand.
        sparsity_percent: percentage of zero entries in the operand.
        partial_products: intermediate partial products of A @ A.
        output_nnz: non-zeros of the product.
        bloat_percent: Equation 1 value.
    """

    name: str
    node_count: int
    edge_count: int
    sparsity_percent: float
    partial_products: int
    output_nnz: int
    bloat_percent: float

    def as_row(self) -> dict[str, float | int | str]:
        """Flatten to a Table-1-style row."""
        return {
            "dataset": self.name,
            "node_count": self.node_count,
            "edge_count": self.edge_count,
            "sparsity_percent": round(self.sparsity_percent, 4),
            "bloat_percent": round(self.bloat_percent, 2),
        }


def partial_product_count(a_csr: CSRMatrix, b_csr: CSRMatrix) -> int:
    """Number of intermediate partial products of A @ B.

    Computed structurally as sum_k nnz(A[:, k]) * nnz(B[k, :]) which equals
    sum over non-zeros A[i, k] of nnz(B[k, :]).
    """
    if a_csr.shape[1] != b_csr.shape[0]:
        raise ValueError("dimension mismatch")
    b_row_nnz = b_csr.row_nnz_counts()
    # For each non-zero of A with column index k we emit nnz(B[k, :]) products.
    return int(b_row_nnz[a_csr.indices].sum())


def bloat_percent(a_csr: CSRMatrix, b_csr: CSRMatrix | None = None) -> float:
    """Equation 1 bloat percentage for A @ B (defaults to A @ A)."""
    if b_csr is None:
        b_csr = a_csr
    pp = partial_product_count(a_csr, b_csr)
    nnz_out = symbolic_spgemm(a_csr, b_csr).nnz
    if nnz_out == 0:
        return 0.0
    return (pp - nnz_out) / nnz_out * 100.0


def bloat_report(name: str, a_csr: CSRMatrix,
                 b_csr: CSRMatrix | None = None) -> BloatReport:
    """Full bloat report for one workload (a Table-1 row)."""
    if b_csr is None:
        b_csr = a_csr
    pp = partial_product_count(a_csr, b_csr)
    nnz_out = symbolic_spgemm(a_csr, b_csr).nnz
    bloat = 0.0 if nnz_out == 0 else (pp - nnz_out) / nnz_out * 100.0
    return BloatReport(
        name=name,
        node_count=a_csr.shape[0],
        edge_count=a_csr.nnz,
        sparsity_percent=a_csr.sparsity * 100.0,
        partial_products=pp,
        output_nnz=nnz_out,
        bloat_percent=bloat,
    )


def analytic_bloat_estimate(node_count: int, edge_count: int,
                            degree_cv: float = 1.0) -> float:
    """Closed-form bloat estimate from dataset summary statistics.

    Used to sanity-check Table 1 at the paper's original (unscaled) dataset
    sizes, where materialising the matrix would be too slow in pure Python.
    With average degree d = edge_count / node_count and squared coefficient
    of variation ``degree_cv**2`` of the degree distribution, the expected
    partial-product count of A @ A is ``edge_count * d * (1 + cv^2)`` and the
    expected output nnz is approximately ``min(pp, node_count**2)`` discounted
    by collision probability.  The estimate is deliberately coarse; it is only
    used to show that bloat grows with density and degree skew.
    """
    if node_count <= 0 or edge_count <= 0:
        return 0.0
    avg_degree = edge_count / node_count
    pp = edge_count * avg_degree * (1.0 + degree_cv ** 2)
    # Expected distinct outputs under random collision model.
    cells = float(node_count) * float(node_count)
    expected_out = cells * (1.0 - np.exp(-pp / cells))
    if expected_out <= 0:
        return 0.0
    return (pp - expected_out) / expected_out * 100.0
