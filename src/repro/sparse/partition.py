"""Row-shard planning: split one SpGEMM into balanced row-group partitions.

Rows of A partition the partial products of C = A @ B exactly — each row of
C accumulates only products of the matching A row — so row groups of A are
the unit of both host-side sharded execution
(:class:`~repro.core.session.Session` with ``shards > 1``) and multi-chip
scale-out (:mod:`repro.backends.multichip`): per-group products reduce into
a result identical to the unsharded product.

Two planners share that contract:

* **contiguous** (:func:`plan_row_shards`) — balanced contiguous row
  *ranges*, reduced with :func:`~repro.sparse.convert.csr_vstack`.  Cheap
  and cache-friendly, but a single hub row on a power-law graph puts a
  hard floor under shard skew: the shard owning the hub cannot shed work
  without breaking contiguity.
* **degree-aware** (:func:`plan_shards` with ``strategy="degree"``) —
  drops the contiguity constraint.  Rows are bucketed by partial-product
  weight into log2 degree classes; the heavy head is placed by exact LPT
  (least-loaded shard first), the light tail class by class with a
  deficit-proportional fill; and any single row whose weight exceeds the
  per-shard budget is *merge-path split* into output-column-range
  fragments, each a full-width 1-row product over a column slice of B.
  Shards become sorted row-id index sets plus fragments, and
  :func:`stitch_shard_outputs` reassembles the exact unsharded CSR.

Column-range fragments are the load-bearing design choice: every output
coordinate of a split row is produced entirely inside exactly one
fragment, with its partial products encountered in the same ascending-k
order as the unsharded kernel — so the stitched result is byte-identical
for arbitrary float data (splitting the *A entries* of a row instead
would re-associate the floating-point sums).  Stitching is therefore pure
concatenation: no fragment ever contributes to the same output entry as
another.

The planner lives in the sparse layer (below both the session and the
backends) because it only ever touches operand structure; the historical
import path ``repro.core.session.plan_row_shards`` re-exports it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.sparse.csr import CSRMatrix

#: Partition strategies accepted by :func:`plan_shards` (and the
#: ``partition=`` knob on sessions / chip topologies).
PARTITION_STRATEGIES = ("auto", "contiguous", "degree")

#: Auto-select probe: when the contiguous plan's skew (max/mean shard
#: load) stays at or below this, contiguity is kept — the degree-aware
#: planner only takes over where the contiguous planner is measurably
#: imbalanced (hub rows, power-law tails).
DEGREE_AUTO_SKEW_THRESHOLD = 1.1

#: Modeled fixed cost, in partial-product units, of each independent
#: product a shard compiles and executes.  Contiguous shards run exactly
#: one product; degree plans add one per monster-row fragment, and that
#: compile/dispatch latency is real — a plan that shaves a few partial
#: products of load by splitting a row into many fragments can lose on
#: wall clock.  The auto probe charges this overhead to both candidate
#: plans before comparing them (:func:`modeled_makespan`).
UNIT_OVERHEAD_PP = 32

#: Heaviest items per shard that get exact heapq LPT placement; the
#: remaining light tail is filled class by class with one vectorized
#: deficit-proportional pass per degree class.
LPT_HEAD_PER_SHARD = 8


def estimate_row_partial_products(a_csr: CSRMatrix,
                                  b_csr: CSRMatrix) -> np.ndarray:
    """Exact partial products each row of A contributes to A @ B.

    Row ``i`` of C accumulates ``sum(nnz(B[k, :]) for k in A[i, :])``
    partial products — the same per-inner-index counts the columnar
    symbolic pass reduces over, computed here with one gather and a
    prefix sum (no symbolic pass, no Python loop).
    """
    if a_csr.shape[1] != b_csr.shape[0]:
        raise ValueError(f"dimension mismatch: A is {a_csr.shape}, "
                         f"B is {b_csr.shape}")
    entry_weights = b_csr.row_nnz_counts()[a_csr.indices]
    prefix = np.zeros(a_csr.nnz + 1, dtype=np.int64)
    np.cumsum(entry_weights, out=prefix[1:])
    return prefix[a_csr.indptr[1:]] - prefix[a_csr.indptr[:-1]]


def resolve_shard_weights(a_csr: CSRMatrix,
                          b_csr: CSRMatrix | None = None,
                          weights: np.ndarray | None = None) -> np.ndarray:
    """Per-row planning weights with the shared degenerate-input fallback.

    With ``b_csr`` given the weight is the exact partial-product count
    (:func:`estimate_row_partial_products`); when that sum is zero — a
    structurally empty product — the planner falls back to nnz-of-A so
    rows with entries still spread across shards.  Without ``b_csr`` the
    nnz-of-A proxy is used directly.  ``weights`` short-circuits both
    (a caller that already computed the array shares it unchanged).

    Both :func:`plan_row_shards` / :func:`plan_shards` and the analytic
    fast path :func:`~repro.backends.multichip.predict_scaleout` resolve
    their weights here, so predicted plans always match executed plans.
    """
    if weights is not None:
        return np.asarray(weights)
    if b_csr is not None:
        weights = estimate_row_partial_products(a_csr, b_csr)
        if int(weights.sum()) == 0:  # structurally empty product
            weights = a_csr.row_nnz_counts()
        return weights
    return a_csr.row_nnz_counts()


def plan_row_shards(a_csr: CSRMatrix, n_shards: int,
                    b_csr: CSRMatrix | None = None,
                    weights: np.ndarray | None = None
                    ) -> list[tuple[int, int]]:
    """Split the rows of A into up to ``n_shards`` contiguous groups
    balanced by per-shard work.

    With ``b_csr`` given, rows are weighted by their *exact* partial-product
    count (nnz of each A row weighted by the matching B-row sizes — see
    :func:`estimate_row_partial_products`), which is the quantity that
    actually determines per-shard compile and execute cost; power-law graphs
    shard far more evenly this way than under the older nnz-of-A proxy,
    which remains the fallback when ``b_csr`` is omitted.  Row slices
    partition the partial products of A @ B exactly, so the reduced result
    is identical either way.

    Returns half-open ``(start, stop)`` row ranges that cover every row
    exactly once.  Degenerate requests return *fewer* shards instead of
    producing empty-work shards that would flow into compile /
    ``csr_vstack``:

    * more shards than rows — clamped to the row count;
    * leading/trailing/interior runs of all-zero-weight rows — every
      planned shard carries at least one unit of work (zero-weight rows
      are absorbed into a neighbouring shard);
    * a structurally empty A (or empty product) — one shard spanning all
      rows;
    * a zero-row A — the single degenerate range ``[(0, 0)]``, which
      callers reduce exactly like an unsharded run.

    ``weights`` lets a caller that already computed the per-row weight
    array (e.g. :func:`estimate_row_partial_products`) share it instead of
    paying the gather again.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    n_rows = a_csr.shape[0]
    if n_rows == 0:
        return [(0, 0)]
    weights = resolve_shard_weights(a_csr, b_csr, weights)
    # Plan over the rows that actually carry work: shard boundaries land
    # on positive-weight rows only, so no shard can be all-empty (the old
    # planner emitted zero-work slices that flowed into compile and
    # csr_vstack on sparse or empty inputs).
    positive = np.flatnonzero(weights > 0)
    if positive.size == 0:  # all rows empty: one shard, no empty programs
        return [(0, n_rows)]
    n_shards = min(n_shards, int(positive.size))
    if n_shards == 1:
        return [(0, n_rows)]
    cumulative = np.cumsum(weights[positive])
    total = int(cumulative[-1])
    cuts = [0]  # indices into the positive-row list
    for shard in range(1, n_shards):
        cut = int(np.searchsorted(cumulative, total * shard / n_shards,
                                  side="left")) + 1
        # Keep every shard non-empty even on pathological distributions.
        cut = min(max(cut, cuts[-1] + 1),
                  int(positive.size) - (n_shards - shard))
        cuts.append(cut)
    # Each interior boundary starts its shard at that positive row; the
    # zero-weight rows before it ride along with the preceding shard.
    bounds = [0, *(int(positive[c]) for c in cuts[1:]), n_rows]
    return list(zip(bounds[:-1], bounds[1:]))


# ----------------------------------------------------------------------
# Degree-aware index-set plans
# ----------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class RowFragment:
    """One column-range fragment of a split (monster) row.

    The fragment computes ``A[row, :] @ B[:, col_lo:col_hi]`` — the full
    1-row A slice against a column slice of B that keeps B's shape, so
    column ids stay global and the fragment's output is exactly the
    matching column range of the unsharded output row.
    """

    row: int
    col_lo: int
    col_hi: int
    weight: int


@dataclass(frozen=True, eq=False)
class ShardAssignment:
    """The work one shard owns: a sorted row-id index set plus fragments."""

    rows: np.ndarray
    fragments: tuple[RowFragment, ...] = ()

    @property
    def n_units(self) -> int:
        """Independent SpGEMM products this shard compiles and executes."""
        return (1 if self.rows.size or not self.fragments else 0) \
            + len(self.fragments)


@dataclass(frozen=True, eq=False)
class ShardPlan:
    """A full partitioning of one SpGEMM across shards.

    ``ranges`` is set for contiguous plans (the historical range list,
    enabling the ``row_slice`` / ``csr_vstack`` fast path); degree-aware
    plans leave it ``None`` and carry index sets + fragments instead.
    ``loads`` is the per-shard partial-product histogram the plan was
    balanced over — the quantity skew and efficiency are defined on.
    """

    n_rows: int
    strategy: str
    shards: tuple[ShardAssignment, ...]
    loads: np.ndarray
    split_rows: tuple[int, ...] = ()
    ranges: tuple[tuple[int, int], ...] | None = None

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def contiguous(self) -> bool:
        return self.ranges is not None

    @property
    def skew(self) -> float:
        """Max/mean shard load; 1.0 for empty or single-shard plans."""
        if self.loads.size == 0:
            return 1.0
        mean = float(self.loads.sum()) / self.loads.size
        return float(self.loads.max()) / mean if mean else 1.0

    @property
    def efficiency(self) -> float:
        """Predicted scale-out efficiency: total / (n_shards * max load)."""
        peak = int(self.loads.max()) if self.loads.size else 0
        if not peak:
            return 1.0
        return float(self.loads.sum()) / (self.loads.size * peak)


def _contiguous_plan(a_csr: CSRMatrix, n_shards: int,
                     weights: np.ndarray) -> ShardPlan:
    ranges = plan_row_shards(a_csr, n_shards, weights=weights)
    loads = shard_partial_products(a_csr, ranges, weights=weights)
    shards = tuple(ShardAssignment(rows=np.arange(lo, hi, dtype=np.int64))
                   for lo, hi in ranges)
    return ShardPlan(n_rows=a_csr.shape[0], strategy="contiguous",
                     shards=shards, loads=loads,
                     ranges=tuple((int(lo), int(hi)) for lo, hi in ranges))


def _split_monster_row(a_csr: CSRMatrix, b_csr: CSRMatrix, row: int,
                       budget: float,
                       n_shards: int) -> tuple[RowFragment, ...] | None:
    """Merge-path split of one row's product into column-range fragments.

    The row's partial products are, one each, the entries of the B rows
    its A entries select; sorting that column multiset and cutting at
    equal-count quantiles yields column ranges with near-equal
    partial-product weight — the merge-path construction, applied to the
    output columns so each fragment owns its output entries outright.
    Returns ``None`` when no non-trivial split exists (empty product row,
    or all weight on one column).
    """
    k_cols = a_csr.indices[a_csr.indptr[row]:a_csr.indptr[row + 1]]
    counts = b_csr.row_nnz_counts()[k_cols]
    total = int(counts.sum())
    if total <= 1:
        return None
    starts = b_csr.indptr[k_cols]
    offsets = np.zeros(k_cols.size + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    gather = np.arange(total, dtype=np.int64) \
        + np.repeat(starts - offsets[:-1], counts)
    cols = np.sort(b_csr.indices[gather])
    n_frags = min(int(np.ceil(total / max(budget, 1.0))), n_shards, total)
    if n_frags <= 1:
        return None
    quantiles = (np.arange(1, n_frags) * total) // n_frags
    bound_cols = np.unique(cols[quantiles])
    # Keep only boundaries that separate weight: each kept edge strictly
    # advances the position in the sorted column multiset, so every
    # fragment is non-empty and the edges still cover [0, n_cols).
    positions = np.searchsorted(cols, bound_cols, side="left")
    edges = [0]
    last_position = 0
    for bound, position in zip(bound_cols.tolist(), positions.tolist()):
        if last_position < position < total:
            edges.append(int(bound))
            last_position = int(position)
    edges.append(b_csr.shape[1])
    if len(edges) < 3:
        return None
    bounds = np.asarray(edges, dtype=np.int64)
    frag_weights = (np.searchsorted(cols, bounds[1:], side="left")
                    - np.searchsorted(cols, bounds[:-1], side="left"))
    return tuple(RowFragment(row=int(row), col_lo=int(lo), col_hi=int(hi),
                             weight=int(w))
                 for lo, hi, w in zip(bounds[:-1], bounds[1:], frag_weights))


def _fill_bucket(loads: np.ndarray, item_weights: np.ndarray,
                 items: np.ndarray, shard_of: np.ndarray) -> None:
    """Assign one degree class of light items in a single vectorized pass.

    Each shard gets a contiguous chunk of the (weight-descending) class
    sized proportionally to its load deficit against the post-class mean,
    so light classes flow to whichever shards the heavy head left behind.
    """
    w = item_weights[items]
    class_total = int(w.sum())
    n = loads.size
    target = (float(loads.sum()) + class_total) / n
    deficit = np.maximum(target - loads, 0.0)
    if deficit.sum() <= 0.0:  # every shard already above target
        deficit = np.ones(n)
    order = np.argsort(-deficit, kind="stable")
    cumulative_share = np.cumsum(deficit[order] / deficit.sum() * class_total)
    midpoints = np.cumsum(w) - w * 0.5
    chunk = np.minimum(np.searchsorted(cumulative_share, midpoints,
                                       side="left"), n - 1)
    shards = order[chunk]
    shard_of[items] = shards
    np.add.at(loads, shards, w)


def _degree_plan(a_csr: CSRMatrix, n_shards: int,
                 b_csr: CSRMatrix | None,
                 weights: np.ndarray) -> ShardPlan | None:
    """Degree-bucketed LPT plan with monster-row splitting; ``None`` when
    the input is too degenerate for more than one shard."""
    n_rows = a_csr.shape[0]
    positive = np.flatnonzero(weights > 0)
    if positive.size == 0 or n_shards < 2:
        return None
    total = int(weights[positive].sum())
    budget = max(total / n_shards, 1.0)

    # (c) merge-path split: any single row heavier than the per-shard
    # budget becomes column-range fragments no shard has to swallow whole.
    fragments_of: dict[int, tuple[RowFragment, ...]] = {}
    if b_csr is not None:
        for row in positive[weights[positive] > budget].tolist():
            fragments = _split_monster_row(a_csr, b_csr, int(row), budget,
                                           n_shards)
            if fragments is not None:
                fragments_of[int(row)] = fragments
    split_rows = tuple(sorted(fragments_of))
    is_split = np.isin(positive, np.asarray(split_rows, dtype=np.int64))
    whole_rows = positive[~is_split]
    fragment_list = [fragment for row in split_rows
                     for fragment in fragments_of[row]]
    item_weights = np.concatenate([
        weights[whole_rows].astype(np.int64),
        np.array([f.weight for f in fragment_list], dtype=np.int64),
    ])
    n_items = int(item_weights.size)
    n_effective = min(n_shards, n_items)
    if n_effective < 2:
        return None

    # (a) bucket by weight into log2 degree classes; (b) LPT the heavy
    # head exactly, then fill each remaining class deficit-proportionally.
    order = np.argsort(-item_weights, kind="stable")
    head_n = min(n_items, LPT_HEAD_PER_SHARD * n_effective)
    loads = np.zeros(n_effective, dtype=np.int64)
    shard_of = np.empty(n_items, dtype=np.int64)
    heap = [(0, shard) for shard in range(n_effective)]
    for item in order[:head_n].tolist():
        load, shard = heapq.heappop(heap)
        shard_of[item] = shard
        heapq.heappush(heap, (load + int(item_weights[item]), shard))
    for load, shard in heap:
        loads[shard] = load
    tail = order[head_n:]
    if tail.size:
        classes = np.floor(np.log2(item_weights[tail])).astype(np.int64)
        run_starts = np.concatenate(
            ([0], np.flatnonzero(np.diff(classes) != 0) + 1, [tail.size]))
        for lo, hi in zip(run_starts[:-1], run_starts[1:]):
            _fill_bucket(loads, item_weights, tail[lo:hi], shard_of)

    # Coverage: zero-weight rows produce empty output rows wherever they
    # run; spread them evenly so every row is owned exactly once.
    zero_chunks = np.array_split(np.flatnonzero(weights == 0), n_effective)
    whole_shard = shard_of[:whole_rows.size]
    fragment_shard = shard_of[whole_rows.size:]
    shards = []
    for shard in range(n_effective):
        rows = np.sort(np.concatenate([whole_rows[whole_shard == shard],
                                       zero_chunks[shard]])).astype(np.int64)
        fragments = tuple(sorted(
            (fragment for fragment, owner in zip(fragment_list, fragment_shard)
             if owner == shard),
            key=lambda fragment: (fragment.row, fragment.col_lo)))
        shards.append(ShardAssignment(rows=rows, fragments=fragments))
    return ShardPlan(n_rows=n_rows, strategy="degree", shards=tuple(shards),
                     loads=loads, split_rows=split_rows)


def modeled_makespan(plan: ShardPlan,
                     unit_overhead_pp: float = UNIT_OVERHEAD_PP) -> float:
    """Modeled parallel completion time of a plan, in partial products.

    Each shard finishes after its balanced load plus a fixed
    ``unit_overhead_pp`` charge per independent product it compiles and
    executes (:attr:`ShardAssignment.n_units`: one for the whole-row
    index set, plus one per monster-row fragment); the plan completes
    when its slowest shard does.  With zero overhead this reduces to the
    max shard load — the pure skew comparison the auto probe used before
    fragment counts existed.
    """
    if plan.loads.size == 0:
        return 0.0
    units = np.array([shard.n_units for shard in plan.shards],
                     dtype=np.float64)
    return float(np.max(plan.loads + unit_overhead_pp * units))


def plan_shards(a_csr: CSRMatrix, n_shards: int,
                b_csr: CSRMatrix | None = None, *,
                strategy: str = "auto",
                weights: np.ndarray | None = None,
                unit_overhead_pp: float = UNIT_OVERHEAD_PP) -> ShardPlan:
    """Plan one SpGEMM across ``n_shards`` under the chosen strategy.

    ``strategy="contiguous"`` wraps :func:`plan_row_shards`;
    ``"degree"`` forces the degree-aware index-set planner (falling back
    to contiguous only on inputs with fewer than two work items); and
    ``"auto"`` — the default — runs a cheap skew probe: it keeps the
    contiguous plan when its skew is at most
    :data:`DEGREE_AUTO_SKEW_THRESHOLD` and otherwise takes the degree
    plan if (and only if) it wins on :func:`modeled_makespan` — max
    shard load *plus* ``unit_overhead_pp`` per compiled unit, so a
    degree plan that buys marginal balance with many monster-row
    fragments (each a separate compile + dispatch) no longer wins on a
    load comparison its fragment overhead would lose on wall clock.
    """
    if strategy not in PARTITION_STRATEGIES:
        raise ValueError(f"unknown partition strategy {strategy!r}; "
                         f"expected one of {PARTITION_STRATEGIES}")
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if unit_overhead_pp < 0:
        raise ValueError(f"unit_overhead_pp must be >= 0, "
                         f"got {unit_overhead_pp}")
    if a_csr.shape[0] == 0:
        return _contiguous_plan(a_csr, 1, np.zeros(0, dtype=np.int64))
    weights = resolve_shard_weights(a_csr, b_csr, weights)
    contiguous = _contiguous_plan(a_csr, n_shards, weights)
    if strategy == "contiguous":
        return contiguous
    if strategy == "auto" and contiguous.skew <= DEGREE_AUTO_SKEW_THRESHOLD:
        return contiguous
    degree = _degree_plan(a_csr, n_shards, b_csr, weights)
    if degree is None:
        return contiguous
    if strategy == "auto" \
            and modeled_makespan(degree, unit_overhead_pp) \
            >= modeled_makespan(contiguous, unit_overhead_pp):
        return contiguous
    return degree


def shard_partial_products(a_csr: CSRMatrix,
                           ranges: "list[tuple[int, int]] | ShardPlan",
                           b_csr: CSRMatrix | None = None,
                           weights: np.ndarray | None = None) -> np.ndarray:
    """Per-shard partial-product totals for a planned partition — the
    histogram the multi-chip analytic fast path predicts efficiency from.

    Accepts either the contiguous range list of :func:`plan_row_shards`
    (summed with one prefix-sum gather, no Python loop) or a
    :class:`ShardPlan` (whose balanced loads are returned directly).
    Pass ``weights`` to reuse an already-computed per-row weight array.
    """
    if isinstance(ranges, ShardPlan):
        return ranges.loads.copy()
    if weights is None:
        weights = estimate_row_partial_products(
            a_csr, b_csr if b_csr is not None else a_csr)
    prefix = np.zeros(weights.size + 1, dtype=np.int64)
    np.cumsum(weights, out=prefix[1:])
    bounds = np.asarray(list(ranges), dtype=np.int64).reshape(-1, 2)
    return prefix[bounds[:, 1]] - prefix[bounds[:, 0]]


# ----------------------------------------------------------------------
# Plan execution support: operand slicing and the exact reduce
# ----------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class ShardUnit:
    """One independently compilable product a shard executes: either the
    shard's whole-row index set (``fragment is None``; ``rows`` holds the
    global row ids, ``b`` the full replicated operand) or one monster-row
    fragment (``a`` is the 1-row slice, ``b`` the column-range slice)."""

    a: CSRMatrix
    b: CSRMatrix
    rows: np.ndarray | None = None
    fragment: RowFragment | None = None


def build_shard_units(a_csr: CSRMatrix, b_csr: CSRMatrix,
                      plan: ShardPlan) -> list[list[ShardUnit]]:
    """Slice the operands into per-shard execution units.

    Contiguous plans slice with ``row_slice`` (pure range copy); degree
    plans gather with ``row_select``.  A shard that owns only fragments
    emits no rows unit; a shard with no work at all (degenerate plans)
    still emits its empty rows unit so reduce shapes stay exact.
    """
    units: list[list[ShardUnit]] = []
    for index, assignment in enumerate(plan.shards):
        shard_units: list[ShardUnit] = []
        if assignment.rows.size or not assignment.fragments:
            if plan.ranges is not None:
                lo, hi = plan.ranges[index]
                rows_a = a_csr.row_slice(lo, hi)
            else:
                rows_a = a_csr.row_select(assignment.rows)
            shard_units.append(ShardUnit(a=rows_a, b=b_csr,
                                         rows=assignment.rows))
        for fragment in assignment.fragments:
            shard_units.append(ShardUnit(
                a=a_csr.row_slice(fragment.row, fragment.row + 1),
                b=b_csr.col_range(fragment.col_lo, fragment.col_hi),
                fragment=fragment))
        units.append(shard_units)
    return units


def stitch_shard_outputs(plan: ShardPlan,
                         shard_outputs: "list[tuple[CSRMatrix | None, list[CSRMatrix]]]",
                         n_cols: int) -> CSRMatrix:
    """Reassemble per-shard products into the exact unsharded CSR.

    ``shard_outputs`` aligns with ``plan.shards``: per shard, the rows
    unit's product (``None`` for fragment-only shards) and the fragment
    products in ``assignment.fragments`` order.  Whole rows scatter by a
    vectorized gather; a split row concatenates its fragments in
    ascending column-range order — no additions anywhere, so the output
    is byte-identical to the unsharded product.
    """
    counts = np.zeros(plan.n_rows, dtype=np.int64)
    fragment_pieces: dict[int, list[tuple[int, CSRMatrix]]] = {}
    for assignment, (rows_out, frag_outs) in zip(plan.shards, shard_outputs):
        if assignment.rows.size:
            counts[assignment.rows] = rows_out.row_nnz_counts()
        for fragment, out in zip(assignment.fragments, frag_outs):
            counts[fragment.row] += out.nnz
            fragment_pieces.setdefault(fragment.row, []).append(
                (fragment.col_lo, out))
    indptr = np.zeros(plan.n_rows + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    total = int(indptr[-1])
    indices = np.empty(total, dtype=np.int64)
    data = np.empty(total, dtype=np.float64)
    for assignment, (rows_out, _) in zip(plan.shards, shard_outputs):
        if not assignment.rows.size or not rows_out.nnz:
            continue
        destination = np.arange(rows_out.nnz, dtype=np.int64) + np.repeat(
            indptr[assignment.rows] - rows_out.indptr[:-1],
            rows_out.row_nnz_counts())
        indices[destination] = rows_out.indices
        data[destination] = rows_out.data
    for row, pieces in fragment_pieces.items():
        pieces.sort(key=lambda piece: piece[0])
        cursor = int(indptr[row])
        for _, out in pieces:
            indices[cursor:cursor + out.nnz] = out.indices
            data[cursor:cursor + out.nnz] = out.data
            cursor += out.nnz
    return CSRMatrix(indptr, indices, data, (plan.n_rows, n_cols))
