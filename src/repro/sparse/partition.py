"""Row-shard planning: split one SpGEMM into balanced row-group partitions.

Rows of A partition the partial products of C = A @ B exactly — each row of
C accumulates only products of the matching A row — so contiguous row
ranges of A are the unit of both host-side sharded execution
(:class:`~repro.core.session.Session` with ``shards > 1``) and multi-chip
scale-out (:mod:`repro.backends.multichip`): per-range products reduce with
:func:`~repro.sparse.convert.csr_vstack` into a result identical to the
unsharded product.

The planner lives in the sparse layer (below both the session and the
backends) because it only ever touches operand structure; the historical
import path ``repro.core.session.plan_row_shards`` re-exports it.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix


def estimate_row_partial_products(a_csr: CSRMatrix,
                                  b_csr: CSRMatrix) -> np.ndarray:
    """Exact partial products each row of A contributes to A @ B.

    Row ``i`` of C accumulates ``sum(nnz(B[k, :]) for k in A[i, :])``
    partial products — the same per-inner-index counts the columnar
    symbolic pass reduces over, computed here with one gather and a
    prefix sum (no symbolic pass, no Python loop).
    """
    if a_csr.shape[1] != b_csr.shape[0]:
        raise ValueError(f"dimension mismatch: A is {a_csr.shape}, "
                         f"B is {b_csr.shape}")
    entry_weights = b_csr.row_nnz_counts()[a_csr.indices]
    prefix = np.zeros(a_csr.nnz + 1, dtype=np.int64)
    np.cumsum(entry_weights, out=prefix[1:])
    return prefix[a_csr.indptr[1:]] - prefix[a_csr.indptr[:-1]]


def plan_row_shards(a_csr: CSRMatrix, n_shards: int,
                    b_csr: CSRMatrix | None = None,
                    weights: np.ndarray | None = None
                    ) -> list[tuple[int, int]]:
    """Split the rows of A into up to ``n_shards`` contiguous groups
    balanced by per-shard work.

    With ``b_csr`` given, rows are weighted by their *exact* partial-product
    count (nnz of each A row weighted by the matching B-row sizes — see
    :func:`estimate_row_partial_products`), which is the quantity that
    actually determines per-shard compile and execute cost; power-law graphs
    shard far more evenly this way than under the older nnz-of-A proxy,
    which remains the fallback when ``b_csr`` is omitted.  Row slices
    partition the partial products of A @ B exactly, so the reduced result
    is identical either way.

    Returns half-open ``(start, stop)`` row ranges that cover every row
    exactly once.  Degenerate requests return *fewer* shards instead of
    producing empty-work shards that would flow into compile /
    ``csr_vstack``:

    * more shards than rows — clamped to the row count;
    * leading/trailing/interior runs of all-zero-weight rows — every
      planned shard carries at least one unit of work (zero-weight rows
      are absorbed into a neighbouring shard);
    * a structurally empty A (or empty product) — one shard spanning all
      rows;
    * a zero-row A — the single degenerate range ``[(0, 0)]``, which
      callers reduce exactly like an unsharded run.

    ``weights`` lets a caller that already computed the per-row weight
    array (e.g. :func:`estimate_row_partial_products`) share it instead of
    paying the gather again.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    n_rows = a_csr.shape[0]
    if n_rows == 0:
        return [(0, 0)]
    if weights is None:
        if b_csr is not None:
            weights = estimate_row_partial_products(a_csr, b_csr)
            if int(weights.sum()) == 0:  # structurally empty product
                weights = a_csr.row_nnz_counts()
        else:
            weights = a_csr.row_nnz_counts()
    # Plan over the rows that actually carry work: shard boundaries land
    # on positive-weight rows only, so no shard can be all-empty (the old
    # planner emitted zero-work slices that flowed into compile and
    # csr_vstack on sparse or empty inputs).
    positive = np.flatnonzero(weights > 0)
    if positive.size == 0:  # all rows empty: one shard, no empty programs
        return [(0, n_rows)]
    n_shards = min(n_shards, int(positive.size))
    if n_shards == 1:
        return [(0, n_rows)]
    cumulative = np.cumsum(weights[positive])
    total = int(cumulative[-1])
    cuts = [0]  # indices into the positive-row list
    for shard in range(1, n_shards):
        cut = int(np.searchsorted(cumulative, total * shard / n_shards,
                                  side="left")) + 1
        # Keep every shard non-empty even on pathological distributions.
        cut = min(max(cut, cuts[-1] + 1),
                  int(positive.size) - (n_shards - shard))
        cuts.append(cut)
    # Each interior boundary starts its shard at that positive row; the
    # zero-weight rows before it ride along with the preceding shard.
    bounds = [0, *(int(positive[c]) for c in cuts[1:]), n_rows]
    return list(zip(bounds[:-1], bounds[1:]))


def shard_partial_products(a_csr: CSRMatrix,
                           ranges: list[tuple[int, int]],
                           b_csr: CSRMatrix | None = None,
                           weights: np.ndarray | None = None) -> np.ndarray:
    """Per-shard partial-product totals for a planned range list — the
    histogram the multi-chip analytic fast path predicts efficiency from.
    Pass ``weights`` to reuse an already-computed per-row weight array."""
    if weights is None:
        weights = estimate_row_partial_products(
            a_csr, b_csr if b_csr is not None else a_csr)
    return np.array([int(weights[lo:hi].sum()) for lo, hi in ranges],
                    dtype=np.int64)
