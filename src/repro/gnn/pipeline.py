"""Resident-graph multi-layer GNN pipelines: compile once, run L layers.

A real GNN inference is a *chain* of aggregation + combination layers over
one resident graph, but the layer-at-a-time path pays L× adjacency
normalisation, L× compiler entry and L× operand shipping for an L-layer
model even though the aggregation operand ``A_hat`` — and therefore the
compiled program's symbolic structure — is identical across every layer.

:func:`run_gnn_model` executes a whole
:class:`~repro.core.specs.GNNModelSpec` stack as one workload:

* the adjacency is normalised **once** (through the bounded
  :func:`~repro.gnn.gcn.normalize_adjacency_cached` memo, so repeated
  stacks over a resident graph skip even that);
* the aggregation program is compiled **once** per resident graph and
  feature width, cached under a *structural* key (A content + B structure
  + tile), and re-bound to each layer's feature values with
  :func:`~repro.compiler.program.rebind_b_values` — the symbolic pass and
  lowering depend only on operand sparsity, never on the dense values, so
  the re-bound program is byte-identical to a fresh compile;
* dense features flow through the **full-structure operand encoding**
  (:func:`full_structure_csr`): every (row, column) slot is an explicit
  CSR entry, so the operand structure is fully determined by its shape and
  every layer of a fixed-width stack shares one compiled program;
* on the multichip backend the per-chip shard programs stay **resident**
  across layers (:meth:`~repro.backends.multichip.MultiChipBackend.
  prepare_resident` / ``execute_resident``) and the one-time B broadcast
  is charged once per *stack* instead of once per layer;
* ``batches > 1`` models cross-chip layer pipelining: once the stack is
  resident, layer i of batch j runs while layer i+1 processes batch j-1,
  so the makespan is ``sum(layer_cycles) + (batches-1) * max(layer_cycles)``
  instead of ``batches * sum(layer_cycles)``.

Byte-identity contract: a stacked run equals the layer-by-layer
``Session.run(GCNLayerSpec)`` chain (layer i+1 fed layer i's output via
``GCNLayerSpec.features``) bit for bit on every backend, because the
chained path executes the same full-structure operands through the same
kernels — the stack only amortizes the work around them.
"""

from __future__ import annotations

import time

import numpy as np

from repro.backends.registry import get_backend
from repro.compiler.lowering import compile_spgemm
from repro.compiler.program import Program, rebind_b_values
from repro.core.runner import (
    CACHE_SCHEMA_VERSION,
    matrix_fingerprint,
    matrix_structure_fingerprint,
)
from repro.core.specs import GNNModelSpec, RunResult
from repro.datasets.features import feature_matrix
from repro.datasets.suite import DatasetSpec, GraphDataset
from repro.gnn.gcn import GCNLayer, GCNWorkload, normalize_adjacency_cached
from repro.sparse.convert import csc_to_csr, csr_to_csc
from repro.sparse.csr import CSRMatrix


def full_structure_csr(x: np.ndarray) -> CSRMatrix:
    """Encode a dense matrix as a CSR with *every* slot explicit.

    The encoding is the pipeline's keystone: its sparsity pattern is fully
    determined by the shape, so two feature matrices of the same shape are
    structurally identical and one compiled aggregation program serves both
    after a value re-bind.  Explicit zeros are kept deliberately — dropping
    them would make the structure value-dependent again.
    """
    dense = np.ascontiguousarray(x, dtype=np.float64)
    if dense.ndim != 2:
        raise ValueError(f"expected a 2-D feature matrix, got shape "
                         f"{dense.shape}")
    n, width = dense.shape
    indptr = np.arange(n + 1, dtype=np.int64) * width
    indices = np.tile(np.arange(width, dtype=np.int64), max(n, 0))
    return CSRMatrix(indptr, indices, dense.reshape(-1), (n, width))


def stack_program_key(a_fingerprint: str, b_structure: str,
                      tile_size: int) -> tuple:
    """Structural cache key for a resident stack's aggregation program:
    A by content, B by structure only — the program IR never reads B's
    values, they are re-bound per layer."""
    return (CACHE_SCHEMA_VERSION, "gnn-stack", a_fingerprint, b_structure,
            tile_size)


def resident_stack_program(cache, a_csc, a_fingerprint: str,
                           b_full: CSRMatrix, tile_size: int,
                           source: str) -> tuple[Program, bool]:
    """Fetch-or-compile the single-chip stack program; returns
    ``(program, cache_hit)``.  A hit is re-bound to this layer's values —
    byte-identical to recompiling, at none of the cost."""
    key = stack_program_key(a_fingerprint,
                            matrix_structure_fingerprint(b_full), tile_size)
    program = cache.get(key)
    if program is not None:
        return rebind_b_values(program, b_full), True
    program = compile_spgemm(a_csc, b_full, tile_size=tile_size,
                             source=source)
    cache.put(key, program)
    return program, False


def _resolve_activations(spec: GNNModelSpec, depth: int) -> list:
    if spec.activations is None:
        return ["relu"] * depth
    if isinstance(spec.activations, str):
        return [spec.activations] * depth
    return list(spec.activations)


def run_gnn_model(session, spec: GNNModelSpec) -> RunResult:
    """Execute a whole GNN layer stack over one resident graph.

    This is ``Session.run``'s executor for :class:`GNNModelSpec`; see the
    module docstring for the resident-graph semantics.
    """
    start = time.perf_counter()
    dataset = spec.dataset
    if not isinstance(dataset, GraphDataset):
        dataset_spec = DatasetSpec("custom", "custom", dataset.shape[0],
                                   dataset.nnz, 0.0, None,
                                   feature_dim=spec.feature_dim)
        dataset = GraphDataset(dataset_spec, dataset, 1.0)
    dims = list(spec.layer_dims)
    depth = len(dims)
    activations = _resolve_activations(spec, depth)

    # --- resident graph state: built exactly once for the whole stack ---
    a_hat = normalize_adjacency_cached(dataset.adjacency)
    a_csc = csr_to_csc(a_hat)
    a_csr = csc_to_csr(a_csc)  # canonical CSR, same object chain as a layer run
    a_fingerprint = matrix_fingerprint(a_csr)
    tile = session.chip.config.mmh_tile_size
    ctx = session.chip._context(session.impl)
    label = f"gnn-stack:{dataset.name}"
    multichip = session.backend == "multichip"
    backend = (session._multichip_backend() if multichip
               else get_backend(session.backend))

    layers = []
    in_dim = spec.feature_dim
    for index, out_dim in enumerate(dims):
        layers.append(GCNLayer.create(in_dim, out_dim,
                                      seed=spec.seed + 1 + index,
                                      activation=activations[index]))
        in_dim = out_dim
    x = feature_matrix(dataset.n_nodes, spec.feature_dim,
                       density=spec.feature_density,
                       seed=spec.seed).to_dense()

    resident = None
    compiles = 0
    all_hits = True
    chips = 1
    layer_cycles: list[float] = []
    aggregation_total = combination_total = 0.0
    verdicts = []
    power_w = energy_j = 0.0
    for index, layer in enumerate(layers):
        b_full = full_structure_csr(x)
        if multichip:
            if resident is None or resident.width != b_full.shape[1]:
                resident = backend.prepare_resident(a_csr, b_full, tile,
                                                    source=label)
            execution = backend.execute_resident(
                resident, b_full, ctx, verify=spec.verify,
                charge_broadcast=(index == 0))
            compiles += execution.fresh_compiles
            hit = execution.fresh_compiles == 0
            chips = max(chips, execution.n_chips)
            layer_power, layer_energy, _ = session._multichip_power_and_digest(
                execution, tile, a_csr.nnz, b_full.nnz, label)
        else:
            program, hit = resident_stack_program(
                session.cache, a_csc, a_fingerprint, b_full, tile,
                source=f"{label}[layer{index}]")
            if not hit:
                compiles += 1
            execution = backend.execute(program, ctx, a_csr=a_csr,
                                        b_csr=b_full, verify=spec.verify)
            layer_power, layer_energy = \
                session.chip._estimate_power(execution.report)
        all_hits = all_hits and hit
        report = execution.report
        workload = GCNWorkload(dataset=dataset, a_hat=a_hat, features=b_full,
                               layer=layer)
        combination_cycles = session.chip._combination_cycles(workload)
        aggregation_cycles = report.cycles if report is not None else 0.0
        aggregation_total += aggregation_cycles
        combination_total += combination_cycles
        layer_cycles.append(aggregation_cycles + combination_cycles)
        verdicts.append(report.correct if report is not None else None)
        power_w = max(power_w, layer_power)
        energy_j += layer_energy
        x = layer.combination(execution.to_dense())

    # One batch flows the stack serially; with the graph resident, further
    # batches pipeline layer-by-layer across the fleet, so the incremental
    # cost per batch is the slowest stage, not the whole stack.
    stack_cycles = float(sum(layer_cycles))
    bottleneck = float(max(layer_cycles)) if layer_cycles else 0.0
    pipeline_cycles = stack_cycles + (spec.batches - 1) * bottleneck
    wall = time.perf_counter() - start
    verified = (None if any(verdict is None for verdict in verdicts)
                else all(verdicts))
    metrics = {
        "layers": depth,
        "batches": spec.batches,
        "aggregation_cycles": round(aggregation_total, 1),
        "combination_cycles": round(combination_total, 1),
        "total_cycles": round(stack_cycles, 1),
        "cycles_per_layer": round(stack_cycles / depth, 1),
        "pipeline_cycles": round(pipeline_cycles, 1),
        "pipeline_speedup": round(
            spec.batches * stack_cycles / pipeline_cycles, 3)
        if pipeline_cycles > 0 else 1.0,
        "compiles": compiles,
        "output_shape": str(x.shape),
        "verified": verified,
    }
    provenance = session._provenance(cache_hit=all_hits, wall=wall)
    provenance.chips = chips
    return RunResult(kind="gnn_model", label=spec.label, metrics=metrics,
                     provenance=provenance, output=x,
                     power_w=power_w, energy_j=energy_j)
