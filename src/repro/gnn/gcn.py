"""Graph Convolutional Network layer reference (Equation 2).

A GCN layer computes ``X' = sigma(A_hat @ X @ W)``: the *aggregation* phase is
the sparse product ``A_hat @ X`` (lowered onto NeuraChip via the compiler) and
the *combination* phase is the dense product with the weight matrix followed
by the non-linearity.  The reference implementation here is used to validate
the accelerator output and to size the combination-phase work for the GNN
baseline models.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.datasets.features import feature_matrix, gcn_weight_matrix
from repro.datasets.suite import GraphDataset
from repro.sparse.convert import coo_to_csr, csr_to_csc
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def normalize_adjacency(adjacency: COOMatrix, add_self_loops: bool = True) -> CSRMatrix:
    """Symmetrically normalised adjacency A_hat = D^-1/2 (A + I) D^-1/2.

    This is the propagation matrix of Kipf & Welling's GCN; the paper's
    aggregation phase multiplies it with the feature matrix.
    """
    n = adjacency.shape[0]
    rows = adjacency.rows
    cols = adjacency.cols
    data = adjacency.data
    if add_self_loops:
        eye = np.arange(n, dtype=np.int64)
        rows = np.concatenate([rows, eye])
        cols = np.concatenate([cols, eye])
        data = np.concatenate([data, np.ones(n)])
    combined = COOMatrix(rows, cols, data, (n, n)).sum_duplicates()
    csr = coo_to_csr(combined)
    degrees = csr.row_nnz_counts().astype(np.float64)
    degrees[degrees == 0] = 1.0
    inv_sqrt = 1.0 / np.sqrt(degrees)
    # A_hat[i, j] = inv_sqrt[i] * A[i, j] * inv_sqrt[j]
    scaled = csr.copy()
    row_factors = np.repeat(inv_sqrt, scaled.row_nnz_counts())
    scaled.data = scaled.data * row_factors * inv_sqrt[scaled.indices]
    return scaled


#: Bound on memoized normalised adjacencies (LRU).  Entries are the size of
#: the graph's CSR, so the cap is deliberately small: 32 resident graphs
#: comfortably covers a serving host's hot set without unbounded growth.
ADJACENCY_CACHE_CAPACITY = 32

_adjacency_cache: OrderedDict[str, CSRMatrix] = OrderedDict()  # guarded-by: _adjacency_cache_lock
_adjacency_cache_lock = threading.Lock()
_adjacency_cache_hits = 0  # guarded-by: _adjacency_cache_lock
_adjacency_cache_misses = 0  # guarded-by: _adjacency_cache_lock


def _adjacency_digest(adjacency: COOMatrix, add_self_loops: bool) -> str:
    """Content digest of a raw adjacency, keyed for the normalisation memo."""
    digest = hashlib.sha1()
    digest.update(f"self-loops={bool(add_self_loops)}".encode())
    digest.update(str(adjacency.shape).encode())
    for array in (adjacency.rows, adjacency.cols, adjacency.data):
        digest.update(str(array.dtype).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


def normalize_adjacency_cached(adjacency: COOMatrix,
                               add_self_loops: bool = True) -> CSRMatrix:
    """Memoized :func:`normalize_adjacency` (bounded, LRU, thread-safe).

    Serving traffic hits the same resident graphs over and over; hashing the
    raw COO (one pass over the entries) is far cheaper than re-running the
    duplicate merge + sort + degree scaling per request.  The returned CSR
    is shared between callers and must be treated as read-only — every
    consumer in the repository only reads it.
    """
    global _adjacency_cache_hits, _adjacency_cache_misses
    key = _adjacency_digest(adjacency, add_self_loops)
    with _adjacency_cache_lock:
        cached = _adjacency_cache.get(key)
        if cached is not None:
            _adjacency_cache.move_to_end(key)
            _adjacency_cache_hits += 1
            return cached
        _adjacency_cache_misses += 1
    a_hat = normalize_adjacency(adjacency, add_self_loops=add_self_loops)
    with _adjacency_cache_lock:
        _adjacency_cache[key] = a_hat
        _adjacency_cache.move_to_end(key)
        while len(_adjacency_cache) > ADJACENCY_CACHE_CAPACITY:
            _adjacency_cache.popitem(last=False)
    return a_hat


def adjacency_cache_stats() -> dict:
    """Hit / miss / size counters for the normalised-adjacency memo."""
    with _adjacency_cache_lock:
        return {"entries": len(_adjacency_cache),
                "capacity": ADJACENCY_CACHE_CAPACITY,
                "hits": _adjacency_cache_hits,
                "misses": _adjacency_cache_misses}


def clear_adjacency_cache() -> None:
    """Drop every memoized adjacency and reset the counters (benchmarks
    use this to measure cold-path normalisation honestly)."""
    global _adjacency_cache_hits, _adjacency_cache_misses
    with _adjacency_cache_lock:
        _adjacency_cache.clear()
        _adjacency_cache_hits = 0
        _adjacency_cache_misses = 0


@dataclass
class GCNLayer:
    """One GCN layer: holds the weight matrix and applies Equation 2."""

    weight: np.ndarray
    activation: str = "relu"

    @classmethod
    def create(cls, in_dim: int, out_dim: int, seed: int = 11,
               activation: str = "relu") -> "GCNLayer":
        """Glorot-initialised layer."""
        return cls(weight=gcn_weight_matrix(in_dim, out_dim, seed=seed),
                   activation=activation)

    @property
    def in_dim(self) -> int:
        return self.weight.shape[0]

    @property
    def out_dim(self) -> int:
        return self.weight.shape[1]

    def _activate(self, x: np.ndarray) -> np.ndarray:
        if self.activation == "relu":
            return relu(x)
        if self.activation in (None, "none", "identity"):
            return x
        raise ValueError(f"unknown activation {self.activation!r}")

    def forward(self, a_hat: CSRMatrix, features: np.ndarray) -> np.ndarray:
        """Full layer forward pass on dense features."""
        aggregated = a_hat.to_dense() @ features
        return self._activate(aggregated @ self.weight)

    def aggregation(self, a_hat: CSRMatrix, features: np.ndarray) -> np.ndarray:
        """Aggregation phase only (the part NeuraChip accelerates as SpGEMM)."""
        return a_hat.to_dense() @ features

    def combination(self, aggregated: np.ndarray) -> np.ndarray:
        """Combination phase: dense GEMM with W plus the non-linearity."""
        return self._activate(aggregated @ self.weight)


@dataclass
class GCNWorkload:
    """A GCN-layer workload bound to a dataset.

    Attributes:
        dataset: the graph dataset.
        a_hat: normalised adjacency (CSR).
        features: sparse node features (CSR) used by the aggregation phase.
        layer: the GCN layer (weights).
    """

    dataset: GraphDataset
    a_hat: CSRMatrix
    features: CSRMatrix
    layer: GCNLayer

    @classmethod
    def build(cls, dataset: GraphDataset, feature_dim: int = 32,
              hidden_dim: int = 16, feature_density: float = 0.3,
              seed: int = 7, weight_seed: int | None = None,
              activation: str | None = "relu") -> "GCNWorkload":
        """Construct a layer workload with synthetic features and weights.

        ``feature_dim`` defaults to a reduced width so the cycle simulator can
        execute the aggregation phase quickly; the paper-scale width is kept in
        the dataset spec for the analytic models.  The normalised adjacency
        comes from the bounded :func:`normalize_adjacency_cached` memo, so
        repeated requests against a resident graph skip the rebuild.
        """
        a_hat = normalize_adjacency_cached(dataset.adjacency)
        features = feature_matrix(dataset.n_nodes, feature_dim,
                                  density=feature_density, seed=seed)
        layer = GCNLayer.create(
            feature_dim, hidden_dim,
            seed=seed + 1 if weight_seed is None else weight_seed,
            activation=activation)
        return cls(dataset=dataset, a_hat=a_hat, features=features, layer=layer)

    @property
    def adjacency_csc(self) -> CSCMatrix:
        """Normalised adjacency in CSC (operand A of the accelerator)."""
        return csr_to_csc(self.a_hat)

    def aggregation_flops(self) -> int:
        """Multiply-accumulate FLOPs of the aggregation phase."""
        from repro.sparse.bloat import partial_product_count

        return 2 * partial_product_count(self.a_hat, self.features)

    def combination_flops(self) -> int:
        """Multiply-accumulate FLOPs of the combination phase."""
        return 2 * self.dataset.n_nodes * self.layer.in_dim * self.layer.out_dim

    def reference_output(self) -> np.ndarray:
        """Dense reference of the full layer output."""
        return self.layer.forward(self.a_hat, self.features.to_dense())


def gcn_forward_reference(adjacency: COOMatrix, features: np.ndarray,
                          weights: list[np.ndarray]) -> np.ndarray:
    """Multi-layer GCN forward pass in numpy (used as an end-to-end oracle)."""
    a_hat = normalize_adjacency(adjacency)
    x = np.asarray(features, dtype=np.float64)
    dense_a = a_hat.to_dense()
    for index, weight in enumerate(weights):
        x = dense_a @ x @ weight
        if index < len(weights) - 1:
            x = relu(x)
    return x
