"""Graph neural network workloads: the GCN reference layer (Equation 2 of
the paper) and the resident-graph multi-layer pipeline executor."""

from repro.gnn.gcn import (
    GCNLayer,
    GCNWorkload,
    adjacency_cache_stats,
    clear_adjacency_cache,
    gcn_forward_reference,
    normalize_adjacency,
    normalize_adjacency_cached,
    relu,
)
from repro.gnn.pipeline import (
    full_structure_csr,
    run_gnn_model,
    stack_program_key,
)

__all__ = [
    "GCNLayer",
    "GCNWorkload",
    "adjacency_cache_stats",
    "clear_adjacency_cache",
    "full_structure_csr",
    "gcn_forward_reference",
    "normalize_adjacency",
    "normalize_adjacency_cached",
    "relu",
    "run_gnn_model",
    "stack_program_key",
]
