"""Graph neural network reference layer (GCN, Equation 2 of the paper)."""

from repro.gnn.gcn import (
    GCNLayer,
    GCNWorkload,
    gcn_forward_reference,
    normalize_adjacency,
    relu,
)

__all__ = [
    "GCNLayer",
    "GCNWorkload",
    "gcn_forward_reference",
    "normalize_adjacency",
    "relu",
]
