"""Lowering: SpGEMM / GCN aggregation -> MMH macro-op stream.

The lowering follows Section 3.1 of the paper: the adjacency matrix is taken
in CSC, the feature matrix in CSR, and the output is produced one group of
``tile_size`` rows at a time (the paper's enhancement of Gustavson's
row-stationary order).  Within a row group, each column k of A that has
non-zeros in those rows contributes up to ``tile_size`` A-elements, which are
paired with up to ``tile_size`` elements of row k of B — one MMH instruction
per pairing, dispatching up to ``tile_size**2`` HACC instructions.

Processing whole row groups before moving on is what keeps hash lines short
lived: every contribution to an output element arrives while its row group is
being processed, so the rolling-eviction counter reaches zero quickly and the
HashPad stays small.  A symbolic pass provides the rolling counters placed in
memory for the NeuraCores to read (Algorithm 1, line 6).
"""

from __future__ import annotations

import numpy as np

from repro.arch.isa import MMHInstruction, Opcode
from repro.compiler.program import AddressMap, ELEMENT_BYTES, MMHMacroOp, Program
from repro.sparse.convert import csc_to_csr
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.symbolic import symbolic_spgemm_from_csc

#: 22-bit register fields of the MMH instruction limit the per-instruction
#: operand offsets; the compiler re-bases against the 32-bit base address.
_OFFSET_LIMIT = (1 << 22) - 1


def _clamp_offset(offset: int) -> int:
    """Fit an operand offset into the 22-bit MMH register field."""
    return offset & _OFFSET_LIMIT


def compile_spgemm(a_csc: CSCMatrix, b_csr: CSRMatrix, tile_size: int = 4,
                   source: str = "spgemm") -> Program:
    """Compile C = A @ B into a NeuraChip program.

    Args:
        a_csc: left operand (adjacency matrix) in CSC.
        b_csr: right operand (feature matrix) in CSR.
        tile_size: MMH tile size; must be 1, 2, 4 or 8.
        source: workload label stored in the program metadata.

    Returns:
        A :class:`~repro.compiler.program.Program`.

    Raises:
        ValueError: on dimension mismatch or unsupported tile size.
    """
    if a_csc.shape[1] != b_csr.shape[0]:
        raise ValueError(f"dimension mismatch: A is {a_csc.shape}, B is {b_csr.shape}")
    opcode = Opcode.mmh_for_tile(tile_size)

    symbolic = symbolic_spgemm_from_csc(a_csc, b_csr)
    address_map = AddressMap.layout(a_csc.nnz, b_csr.nnz, symbolic.nnz)

    # Output elements are laid out in deterministic (row, col) order.
    output_addrs: dict[tuple[int, int], int] = {}
    for slot, key in enumerate(sorted(symbolic.entries)):
        output_addrs[key] = address_map.output_base + slot * ELEMENT_BYTES
    counter_addrs = {key: address_map.roll_counter_base + slot * ELEMENT_BYTES
                     for slot, key in enumerate(sorted(symbolic.entries))}

    a_csr = csc_to_csr(a_csc)
    mmh_ops: list[MMHMacroOp] = []
    sequence = 0
    n_rows = a_csc.shape[0]
    n_row_groups = 0
    for group_start in range(0, n_rows, tile_size):
        group_rows = range(group_start, min(group_start + tile_size, n_rows))
        # Column index k -> list of (row, value) elements of A within the group.
        column_segments: dict[int, list[tuple[int, float]]] = {}
        for i in group_rows:
            cols, vals = a_csr.row(i)
            for k, v in zip(cols.tolist(), vals.tolist()):
                column_segments.setdefault(k, []).append((i, float(v)))
        group_ops: list[MMHMacroOp] = []
        for k in sorted(column_segments):
            b_cols, b_vals = b_csr.row(k)
            if b_cols.size == 0:
                continue
            segment = column_segments[k]
            a_tile_rows = tuple(row for row, _val in segment)
            a_tile_vals = tuple(val for _row, val in segment)
            # The group's A elements occupy a contiguous run of column k in CSC.
            col_rows, _ = a_csc.col(k)
            a_offset_in_col = int(np.searchsorted(col_rows, a_tile_rows[0]))
            a_base_offset = (int(a_csc.indptr[k]) + a_offset_in_col) * ELEMENT_BYTES
            b_base_offset = int(b_csr.indptr[k]) * ELEMENT_BYTES
            for b_start in range(0, b_cols.size, tile_size):
                b_tile_cols = tuple(int(c) for c in b_cols[b_start:b_start + tile_size])
                b_tile_vals = tuple(float(v) for v in b_vals[b_start:b_start + tile_size])
                first_key = (a_tile_rows[0], b_tile_cols[0])
                instruction = MMHInstruction(
                    opcode=opcode,
                    base_addr=0,
                    a_data_addr=_clamp_offset(address_map.a_data_base + a_base_offset),
                    b_col_ind_addr=_clamp_offset(address_map.b_col_ind_base
                                                 + b_base_offset
                                                 + b_start * ELEMENT_BYTES),
                    b_data_addr=_clamp_offset(address_map.b_data_base + b_base_offset
                                              + b_start * ELEMENT_BYTES),
                    roll_counter_addr=_clamp_offset(counter_addrs[first_key]),
                )
                group_ops.append(MMHMacroOp(
                    opcode=opcode, k=k,
                    a_rows=a_tile_rows, a_values=a_tile_vals,
                    b_cols=b_tile_cols, b_values=b_tile_vals,
                    instruction=instruction, sequence=sequence,
                ))
                sequence += 1
        if group_ops:
            n_row_groups += 1
            # Mark the DRHM reseed boundary on the last op of the row group.
            last = group_ops[-1]
            group_ops[-1] = MMHMacroOp(
                opcode=last.opcode, k=last.k, a_rows=last.a_rows,
                a_values=last.a_values, b_cols=last.b_cols,
                b_values=last.b_values, instruction=last.instruction,
                reseed_after=True, sequence=last.sequence,
            )
            mmh_ops.extend(group_ops)

    return Program(
        mmh_ops=mmh_ops,
        counters=dict(symbolic.entries),
        output_addrs=output_addrs,
        address_map=address_map,
        shape=symbolic.shape,
        tile_size=tile_size,
        a_nnz=a_csc.nnz,
        b_nnz=b_csr.nnz,
        total_partial_products=symbolic.total_partial_products,
        source=source,
        metadata={"n_row_groups": n_row_groups},
    )


def compile_gcn_aggregation(adjacency_csc: CSCMatrix, features_csr: CSRMatrix,
                            tile_size: int = 4, dataset: str = "") -> Program:
    """Compile the aggregation phase of a GCN layer (A @ X) onto NeuraChip."""
    label = f"gcn-aggregation:{dataset}" if dataset else "gcn-aggregation"
    return compile_spgemm(adjacency_csc, features_csr, tile_size=tile_size,
                          source=label)
