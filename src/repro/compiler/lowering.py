"""Lowering: SpGEMM / GCN aggregation -> MMH macro-op stream.

The lowering follows Section 3.1 of the paper: the adjacency matrix is taken
in CSC, the feature matrix in CSR, and the output is produced one group of
``tile_size`` rows at a time (the paper's enhancement of Gustavson's
row-stationary order).  Within a row group, each column k of A that has
non-zeros in those rows contributes up to ``tile_size`` A-elements, which are
paired with up to ``tile_size`` elements of row k of B — one MMH instruction
per pairing, dispatching up to ``tile_size**2`` HACC instructions.

Processing whole row groups before moving on is what keeps hash lines short
lived: every contribution to an output element arrives while its row group is
being processed, so the rolling-eviction counter reaches zero quickly and the
HashPad stays small.  A symbolic pass provides the rolling counters placed in
memory for the NeuraCores to read (Algorithm 1, line 6).

Two compilers share this lowering contract:

* :func:`compile_spgemm` — the production path.  Row-group/tile expansion,
  operand offsets, output-slot assignment and rolling-counter addresses are
  all computed with ``np.repeat`` / ``cumsum`` / ``searchsorted`` over the
  CSR/CSC index arrays (no per-nonzero Python loop), emitting a columnar
  :class:`~repro.compiler.program.ProgramArrays` payload whose macro-ops
  materialize lazily.
* :func:`compile_spgemm_loop` — the original per-row-group Python loops,
  kept as the executable specification: the columnar compiler must produce
  byte-identical instruction encodings and identical macro-op streams
  (asserted by the equivalence test suite and the compiler benchmark).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.verifier import (
    OFFSET_LIMIT as _OFFSET_LIMIT,  # noqa: F401  (historical import surface)
    check_offset_arrays as _check_offset_arrays,
    require_offset as _require_offset,
)
from repro.arch.isa import MMHInstruction, Opcode
from repro.compiler.program import (
    AddressMap,
    ELEMENT_BYTES,
    MMHMacroOp,
    Program,
    ProgramArrays,
)
from repro.sparse.convert import csc_to_csr
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.symbolic import SymbolicProduct, symbolic_spgemm_from_csc

# The 22-bit MMH offset limit and its compile-time checks live in
# repro.analysis.verifier so the compiler and the static IR verifier can
# never drift apart; the private aliases keep this module's call sites
# and its historical import surface stable.


def _lower_columnar(a_csc: CSCMatrix, b_csr: CSRMatrix,
                    symbolic: SymbolicProduct, address_map: AddressMap,
                    tile_size: int, opcode: Opcode) -> ProgramArrays:
    """Vectorized row-group/tile expansion onto the columnar program IR.

    Works entirely on the operand index arrays:

    1. Every A entry (CSC order) is keyed by ``(row_group, k)``; a stable
       sort groups the entries into *segments* — the contiguous run of
       column ``k`` that falls inside one row group, exactly the A-tile the
       loop lowering builds row by row.
    2. Each segment fans out into ``ceil(nb[k] / tile_size)`` ops via
       ``np.repeat`` with a cumulative-offset tile index (the same
       expansion the SpGEMM kernels use for partial products).
    3. Rolling-counter addresses resolve through one ``searchsorted`` of
       each op's first (row, col) pair against the symbolic slot order.
    """
    n_inner = a_csc.shape[1]
    n_cols = b_csr.shape[1]
    a_nnz = a_csc.nnz
    int_like = np.int64

    # --- 1. (row_group, k) segments of A ------------------------------
    e_k = np.repeat(np.arange(n_inner, dtype=int_like),
                    a_csc.col_nnz_counts())
    e_group = a_csc.indices // tile_size
    order = np.argsort(e_group * n_inner + e_k, kind="stable")
    sorted_key = (e_group * n_inner + e_k)[order]
    if a_nnz:
        boundaries = np.empty(a_nnz, dtype=bool)
        boundaries[0] = True
        np.not_equal(sorted_key[1:], sorted_key[:-1], out=boundaries[1:])
        seg_starts = np.flatnonzero(boundaries)
    else:
        seg_starts = np.zeros(0, dtype=int_like)
    seg_lens = np.diff(np.append(seg_starts, a_nnz))
    # Within a column the rows are sorted, so a (group, k) segment is a
    # contiguous run of the CSC column; its first sorted element's original
    # position IS the operand offset of the whole A-tile.
    seg_pos = order[seg_starts]
    seg_k = e_k[seg_pos]
    seg_group = e_group[seg_pos]

    # --- 2. fan segments out into B tiles -----------------------------
    nb = b_csr.row_nnz_counts()
    seg_nb = nb[seg_k]
    keep = seg_nb > 0
    seg_pos, seg_lens = seg_pos[keep], seg_lens[keep]
    seg_k, seg_group, seg_nb = seg_k[keep], seg_group[keep], seg_nb[keep]
    n_b_tiles = -(-seg_nb // tile_size)
    total_ops = int(n_b_tiles.sum())

    cum_tiles = np.cumsum(n_b_tiles)
    op_seg = np.repeat(np.arange(seg_k.size, dtype=int_like), n_b_tiles)
    tile_in_seg = (np.arange(total_ops, dtype=int_like)
                   - np.repeat(cum_tiles - n_b_tiles, n_b_tiles))
    op_k = seg_k[op_seg]
    op_b_lo = b_csr.indptr[op_k] + tile_in_seg * tile_size
    op_b_hi = np.minimum(op_b_lo + tile_size, b_csr.indptr[op_k + 1])
    op_a_lo = seg_pos[op_seg]
    op_a_hi = op_a_lo + seg_lens[op_seg]
    op_group = seg_group[op_seg]

    op_reseed = np.zeros(total_ops, dtype=bool)
    if total_ops:
        np.not_equal(op_group[1:], op_group[:-1], out=op_reseed[:-1])
        op_reseed[-1] = True

    # --- 3. rolling-counter slots and operand addresses ----------------
    flat_keys = symbolic.flat_keys()
    first_flat = a_csc.indices[op_a_lo] * n_cols + b_csr.indices[op_b_lo]
    op_slot = np.searchsorted(flat_keys, first_flat).astype(int_like)
    op_a_addr = address_map.a_data_base + op_a_lo * ELEMENT_BYTES
    op_b_col_addr = address_map.b_col_ind_base + op_b_lo * ELEMENT_BYTES
    op_b_data_addr = address_map.b_data_base + op_b_lo * ELEMENT_BYTES
    op_counter_addr = address_map.roll_counter_base + op_slot * ELEMENT_BYTES
    _check_offset_arrays(a_data=op_a_addr, b_col_ind=op_b_col_addr,
                         b_data=op_b_data_addr, roll_counter=op_counter_addr)

    # Everything stored per-op or per-nonzero fits comfortably in 32 bits
    # (indices are matrix dimensions, addresses passed the 22-bit check),
    # so the persisted payload is downcast to halve spill/ship size.
    narrow = np.int32
    arrays = ProgramArrays(
        opcode=opcode, tile_size=tile_size, shape=symbolic.shape,
        out_indptr=symbolic.indptr,
        out_indices=symbolic.indices.astype(narrow),
        out_counts=symbolic.counts.astype(narrow),
        a_rows=a_csc.indices.astype(narrow), a_values=a_csc.data.copy(),
        b_cols=b_csr.indices.astype(narrow), b_values=b_csr.data.copy(),
        op_k=op_k.astype(narrow), op_group=op_group.astype(narrow),
        op_a_lo=op_a_lo.astype(narrow), op_a_hi=op_a_hi.astype(narrow),
        op_b_lo=op_b_lo.astype(narrow), op_b_hi=op_b_hi.astype(narrow),
        op_slot=op_slot.astype(narrow), op_reseed=op_reseed,
        op_a_addr=op_a_addr.astype(narrow),
        op_b_col_addr=op_b_col_addr.astype(narrow),
        op_b_data_addr=op_b_data_addr.astype(narrow),
        op_counter_addr=op_counter_addr.astype(narrow))
    # The symbolic pass already built the ascending slot-key index; hand it
    # to the arrays so the first HACC expansion doesn't rebuild it.
    arrays.__dict__["_flat_cache"] = flat_keys
    return arrays


def compile_spgemm(a_csc: CSCMatrix, b_csr: CSRMatrix, tile_size: int = 4,
                   source: str = "spgemm") -> Program:
    """Compile C = A @ B into a NeuraChip program (columnar IR).

    Args:
        a_csc: left operand (adjacency matrix) in CSC.
        b_csr: right operand (feature matrix) in CSR.
        tile_size: MMH tile size; must be 1, 2, 4 or 8.
        source: workload label stored in the program metadata.

    Returns:
        A :class:`~repro.compiler.program.Program` backed by a
        :class:`~repro.compiler.program.ProgramArrays` payload; macro-ops
        materialize lazily when a simulator iterates them.

    Raises:
        ValueError: on dimension mismatch, unsupported tile size, or
            operand offsets overflowing the 22-bit MMH register fields.
    """
    if a_csc.shape[1] != b_csr.shape[0]:
        raise ValueError(f"dimension mismatch: A is {a_csc.shape}, B is {b_csr.shape}")
    opcode = Opcode.mmh_for_tile(tile_size)

    symbolic = symbolic_spgemm_from_csc(a_csc, b_csr)
    address_map = AddressMap.layout(a_csc.nnz, b_csr.nnz, symbolic.nnz)
    arrays = _lower_columnar(a_csc, b_csr, symbolic, address_map,
                             tile_size, opcode)

    return Program(
        arrays=arrays,
        address_map=address_map,
        shape=symbolic.shape,
        tile_size=tile_size,
        a_nnz=a_csc.nnz,
        b_nnz=b_csr.nnz,
        total_partial_products=symbolic.total_partial_products,
        source=source,
        metadata={"n_row_groups": arrays.n_row_groups},
    )


def compile_spgemm_loop(a_csc: CSCMatrix, b_csr: CSRMatrix, tile_size: int = 4,
                        source: str = "spgemm") -> Program:
    """Reference loop compiler (the original per-row-group Python loops).

    Produces a fully materialized program that must match
    :func:`compile_spgemm` macro-op for macro-op and byte for byte; kept as
    the executable specification of the lowering and as the baseline of
    ``benchmarks/bench_compiler.py``.
    """
    if a_csc.shape[1] != b_csr.shape[0]:
        raise ValueError(f"dimension mismatch: A is {a_csc.shape}, B is {b_csr.shape}")
    opcode = Opcode.mmh_for_tile(tile_size)

    symbolic = symbolic_spgemm_from_csc(a_csc, b_csr)
    address_map = AddressMap.layout(a_csc.nnz, b_csr.nnz, symbolic.nnz)

    # Output elements are laid out in deterministic (row, col) order.
    output_addrs: dict[tuple[int, int], int] = {}
    for slot, key in enumerate(sorted(symbolic.entries)):
        output_addrs[key] = address_map.output_base + slot * ELEMENT_BYTES
    counter_addrs = {key: address_map.roll_counter_base + slot * ELEMENT_BYTES
                     for slot, key in enumerate(sorted(symbolic.entries))}

    a_csr = csc_to_csr(a_csc)
    mmh_ops: list[MMHMacroOp] = []
    sequence = 0
    n_rows = a_csc.shape[0]
    n_row_groups = 0
    for group_start in range(0, n_rows, tile_size):
        group_rows = range(group_start, min(group_start + tile_size, n_rows))
        # Column index k -> list of (row, value) elements of A within the group.
        column_segments: dict[int, list[tuple[int, float]]] = {}
        for i in group_rows:
            cols, vals = a_csr.row(i)
            for k, v in zip(cols.tolist(), vals.tolist()):
                column_segments.setdefault(k, []).append((i, float(v)))
        group_ops: list[MMHMacroOp] = []
        for k in sorted(column_segments):
            b_cols, b_vals = b_csr.row(k)
            if b_cols.size == 0:
                continue
            segment = column_segments[k]
            a_tile_rows = tuple(row for row, _val in segment)
            a_tile_vals = tuple(val for _row, val in segment)
            # The group's A elements occupy a contiguous run of column k in CSC.
            col_rows, _ = a_csc.col(k)
            a_offset_in_col = int(np.searchsorted(col_rows, a_tile_rows[0]))
            a_base_offset = (int(a_csc.indptr[k]) + a_offset_in_col) * ELEMENT_BYTES
            b_base_offset = int(b_csr.indptr[k]) * ELEMENT_BYTES
            for b_start in range(0, b_cols.size, tile_size):
                b_tile_cols = tuple(int(c) for c in b_cols[b_start:b_start + tile_size])
                b_tile_vals = tuple(float(v) for v in b_vals[b_start:b_start + tile_size])
                first_key = (a_tile_rows[0], b_tile_cols[0])
                instruction = MMHInstruction(
                    opcode=opcode,
                    base_addr=0,
                    a_data_addr=_require_offset(
                        address_map.a_data_base + a_base_offset, "a_data"),
                    b_col_ind_addr=_require_offset(
                        address_map.b_col_ind_base + b_base_offset
                        + b_start * ELEMENT_BYTES, "b_col_ind"),
                    b_data_addr=_require_offset(
                        address_map.b_data_base + b_base_offset
                        + b_start * ELEMENT_BYTES, "b_data"),
                    roll_counter_addr=_require_offset(
                        counter_addrs[first_key], "roll_counter"),
                )
                group_ops.append(MMHMacroOp(
                    opcode=opcode, k=k,
                    a_rows=a_tile_rows, a_values=a_tile_vals,
                    b_cols=b_tile_cols, b_values=b_tile_vals,
                    instruction=instruction, sequence=sequence,
                ))
                sequence += 1
        if group_ops:
            n_row_groups += 1
            # Mark the DRHM reseed boundary on the last op of the row group.
            last = group_ops[-1]
            group_ops[-1] = MMHMacroOp(
                opcode=last.opcode, k=last.k, a_rows=last.a_rows,
                a_values=last.a_values, b_cols=last.b_cols,
                b_values=last.b_values, instruction=last.instruction,
                reseed_after=True, sequence=last.sequence,
            )
            mmh_ops.extend(group_ops)

    return Program(
        mmh_ops=mmh_ops,
        counters=dict(symbolic.entries),
        output_addrs=output_addrs,
        address_map=address_map,
        shape=symbolic.shape,
        tile_size=tile_size,
        a_nnz=a_csc.nnz,
        b_nnz=b_csr.nnz,
        total_partial_products=symbolic.total_partial_products,
        source=source,
        metadata={"n_row_groups": n_row_groups},
    )


def compile_gcn_aggregation(adjacency_csc: CSCMatrix, features_csr: CSRMatrix,
                            tile_size: int = 4, dataset: str = "") -> Program:
    """Compile the aggregation phase of a GCN layer (A @ X) onto NeuraChip."""
    label = f"gcn-aggregation:{dataset}" if dataset else "gcn-aggregation"
    return compile_spgemm(adjacency_csc, features_csr, tile_size=tile_size,
                          source=label)
