"""NeuraCompiler: lowers SpGEMM / GCN aggregation onto the NeuraChip ISA.

The compiler mirrors the paper's NeuraCompiler module: it takes the adjacency
matrix (CSC) and the feature matrix (CSR), runs a symbolic pass to obtain the
rolling-eviction counters, lays the operands out in a virtual HBM address
space, and emits a stream of MMH macro-operations, each of which expands to up
to ``tile_size**2`` HACC operations at execution time.
"""

from repro.compiler.program import (
    AddressMap,
    HACCMacroOp,
    MMHMacroOp,
    Program,
)
from repro.compiler.lowering import compile_spgemm, compile_gcn_aggregation

__all__ = [
    "AddressMap",
    "MMHMacroOp",
    "HACCMacroOp",
    "Program",
    "compile_spgemm",
    "compile_gcn_aggregation",
]
