"""NeuraCompiler: lowers SpGEMM / GCN aggregation onto the NeuraChip ISA.

The compiler mirrors the paper's NeuraCompiler module: it takes the adjacency
matrix (CSC) and the feature matrix (CSR), runs a symbolic pass to obtain the
rolling-eviction counters, lays the operands out in a virtual HBM address
space, and emits a stream of MMH macro-operations, each of which expands to up
to ``tile_size**2`` HACC operations at execution time.

The production pipeline is columnar end to end: the symbolic pass yields
CSR-shaped counter arrays, the lowering computes every tile expansion and
operand address with vectorized index arithmetic, and the resulting
:class:`~repro.compiler.program.ProgramArrays` payload materializes
:class:`~repro.compiler.program.MMHMacroOp` objects lazily.  The original
loop lowering survives as :func:`~repro.compiler.lowering.compile_spgemm_loop`,
the executable specification the columnar path is tested byte-for-byte
against.
"""

from repro.compiler.program import (
    AddressMap,
    HACCMacroOp,
    MMHMacroOp,
    Program,
    ProgramArrays,
    ProgramDigest,
)
from repro.compiler.lowering import (
    compile_gcn_aggregation,
    compile_spgemm,
    compile_spgemm_loop,
)

__all__ = [
    "AddressMap",
    "MMHMacroOp",
    "HACCMacroOp",
    "Program",
    "ProgramArrays",
    "ProgramDigest",
    "compile_spgemm",
    "compile_spgemm_loop",
    "compile_gcn_aggregation",
]
