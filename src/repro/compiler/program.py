"""Program representation: MMH / HACC macro-operations and the address map.

The cycle simulator consumes *macro-ops*: decoded instructions that carry both
the architectural fields (operand addresses, as encoded by
:mod:`repro.arch.isa`) and the semantic payload (the actual operand values)
so that the simulation can verify numerical correctness of the accelerator
output against a software reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.isa import (
    HACCInstruction,
    MMHInstruction,
    Opcode,
    encode_hacc,
    encode_mmh,
)

#: Bytes per matrix element in the virtual HBM layout (fp32 value or int32 index).
ELEMENT_BYTES = 4


@dataclass(frozen=True)
class AddressMap:
    """Byte layout of the operands in the accelerator's HBM address space.

    The regions are laid out back to back: A values, A row indices, B column
    indices, B values, rolling counters, and the output C region.
    """

    a_data_base: int
    a_indices_base: int
    b_col_ind_base: int
    b_data_base: int
    roll_counter_base: int
    output_base: int
    total_bytes: int

    @classmethod
    def layout(cls, a_nnz: int, b_nnz: int, output_nnz: int) -> "AddressMap":
        """Assign contiguous regions for the operand arrays."""
        cursor = 0
        a_data_base = cursor
        cursor += a_nnz * ELEMENT_BYTES
        a_indices_base = cursor
        cursor += a_nnz * ELEMENT_BYTES
        b_col_ind_base = cursor
        cursor += b_nnz * ELEMENT_BYTES
        b_data_base = cursor
        cursor += b_nnz * ELEMENT_BYTES
        roll_counter_base = cursor
        cursor += output_nnz * ELEMENT_BYTES
        output_base = cursor
        cursor += output_nnz * ELEMENT_BYTES
        return cls(a_data_base=a_data_base, a_indices_base=a_indices_base,
                   b_col_ind_base=b_col_ind_base, b_data_base=b_data_base,
                   roll_counter_base=roll_counter_base, output_base=output_base,
                   total_bytes=cursor)


@dataclass(frozen=True)
class HACCMacroOp:
    """A hash_accumulate operation with its semantic payload.

    Attributes:
        tag: 32-bit output-element identifier hashed by NeuraMem.
        value: partial-product value to accumulate.
        counter: rolling-eviction counter (total contributions to this tag).
        out_row / out_col: coordinates of the output element.
        writeback_addr: HBM address the evicted result is written to.
    """

    tag: int
    value: float
    counter: int
    out_row: int
    out_col: int
    writeback_addr: int

    def encode(self) -> int:
        """Architectural 128-bit encoding (Figure 9)."""
        return encode_hacc(HACCInstruction(tag=self.tag, data=self.value,
                                           writeback_addr=self.writeback_addr,
                                           counter=min(self.counter, 0xFFFF)))


@dataclass(frozen=True)
class MMHMacroOp:
    """A matrix_mult_hash operation with its semantic payload.

    One MMH pairs up to ``tile_size`` elements of a column of A with up to
    ``tile_size`` elements of the matching row of B (Section 3.1), producing
    up to ``tile_size**2`` partial products.

    Attributes:
        opcode: MMH variant (MMH1/2/4/8).
        k: the shared inner index (column of A == row of B).
        a_rows: output-row indices of the A-tile elements.
        a_values: values of the A-tile elements.
        b_cols: output-column indices of the B-tile elements.
        b_values: values of the B-tile elements.
        instruction: architectural address-form instruction (Figure 7).
        reseed_after: True when this is the last MMH of an input column, i.e.
            the point at which DRHM draws a new seed.
        sequence: position in program order.
    """

    opcode: Opcode
    k: int
    a_rows: tuple[int, ...]
    a_values: tuple[float, ...]
    b_cols: tuple[int, ...]
    b_values: tuple[float, ...]
    instruction: MMHInstruction
    reseed_after: bool = False
    sequence: int = 0

    @property
    def tile_size(self) -> int:
        return self.opcode.mmh_tile_size

    @property
    def n_partial_products(self) -> int:
        """Actual number of HACC operations this MMH dispatches."""
        return len(self.a_rows) * len(self.b_cols)

    @property
    def memory_requests(self) -> int:
        """Distinct operand fetches issued (A data, B col indices, B data, counters)."""
        return 4

    def operand_addresses(self) -> dict[str, tuple[int, int]]:
        """(address, bytes) per operand fetch, for the memory model."""
        n_a = len(self.a_rows)
        n_b = len(self.b_cols)
        instr = self.instruction
        return {
            "a_data": (instr.base_addr + instr.a_data_addr, n_a * ELEMENT_BYTES),
            "b_col_ind": (instr.base_addr + instr.b_col_ind_addr, n_b * ELEMENT_BYTES),
            "b_data": (instr.base_addr + instr.b_data_addr, n_b * ELEMENT_BYTES),
            "roll_counter": (instr.base_addr + instr.roll_counter_addr,
                             n_a * n_b * ELEMENT_BYTES),
        }

    def expand(self, counters: dict[tuple[int, int], int], n_out_cols: int,
               output_addrs: dict[tuple[int, int], int]) -> list[HACCMacroOp]:
        """Expand into HACC macro-ops (Algorithm 1's dispatch loop)."""
        haccs = []
        for i, av in zip(self.a_rows, self.a_values):
            for j, bv in zip(self.b_cols, self.b_values):
                tag = (i * n_out_cols + j) & 0xFFFFFFFF
                haccs.append(HACCMacroOp(
                    tag=tag,
                    value=av * bv,
                    counter=counters[(i, j)],
                    out_row=i,
                    out_col=j,
                    writeback_addr=output_addrs[(i, j)],
                ))
        return haccs

    def encode(self) -> int:
        """Architectural 128-bit encoding (Figure 7)."""
        return encode_mmh(self.instruction)


@dataclass(frozen=True)
class ProgramDigest:
    """Count-level summary of a compiled program.

    Carries every aggregate a report row needs (instruction counts, partial
    products, bloat) at a fraction of a :class:`Program`'s pickled size, so
    results shipped back from executor worker processes don't pay to
    serialise the full macro-op stream.
    """

    n_instructions: int
    total_partial_products: int
    output_nnz: int
    shape: tuple[int, int]
    tile_size: int
    a_nnz: int
    b_nnz: int
    source: str = ""

    @property
    def bloat_percent(self) -> float:
        """Equation 1 bloat for this program's workload."""
        if self.output_nnz == 0:
            return 0.0
        return (self.total_partial_products - self.output_nnz) / self.output_nnz * 100.0

    @property
    def useful_flops(self) -> int:
        return 2 * self.total_partial_products

    def digest(self) -> "ProgramDigest":
        return self


@dataclass
class Program:
    """A compiled NeuraChip program.

    Attributes:
        mmh_ops: the MMH macro-op stream in program order.
        counters: rolling counter per output coordinate.
        output_addrs: HBM write-back address per output coordinate.
        address_map: operand layout in HBM.
        shape: shape of the output matrix C.
        tile_size: MMH tile size the program was compiled for.
        a_nnz / b_nnz: operand non-zero counts (for traffic accounting).
        total_partial_products: total HACC operations the program dispatches.
        source: human-readable description of the workload.
    """

    mmh_ops: list[MMHMacroOp]
    counters: dict[tuple[int, int], int]
    output_addrs: dict[tuple[int, int], int]
    address_map: AddressMap
    shape: tuple[int, int]
    tile_size: int
    a_nnz: int
    b_nnz: int
    total_partial_products: int
    source: str = ""
    metadata: dict = field(default_factory=dict)

    @property
    def n_instructions(self) -> int:
        """Number of MMH instructions."""
        return len(self.mmh_ops)

    @property
    def output_nnz(self) -> int:
        """Number of non-zeros in the output matrix."""
        return len(self.counters)

    @property
    def bloat_percent(self) -> float:
        """Equation 1 bloat for this program's workload."""
        if self.output_nnz == 0:
            return 0.0
        return (self.total_partial_products - self.output_nnz) / self.output_nnz * 100.0

    @property
    def useful_flops(self) -> int:
        """Useful floating-point operations (multiply + add per partial product)."""
        return 2 * self.total_partial_products

    def digest(self) -> ProgramDigest:
        """Count-level summary suitable for cross-process result transfer."""
        return ProgramDigest(
            n_instructions=self.n_instructions,
            total_partial_products=self.total_partial_products,
            output_nnz=self.output_nnz,
            shape=self.shape,
            tile_size=self.tile_size,
            a_nnz=self.a_nnz,
            b_nnz=self.b_nnz,
            source=self.source)

    def expand_haccs(self, mmh: MMHMacroOp) -> list[HACCMacroOp]:
        """Expand one MMH of this program into its HACC macro-ops."""
        return mmh.expand(self.counters, self.shape[1], self.output_addrs)

    def reference_result(self) -> np.ndarray:
        """Dense reference of the output computed from the macro-op stream."""
        dense = np.zeros(self.shape, dtype=np.float64)
        for mmh in self.mmh_ops:
            for hacc in self.expand_haccs(mmh):
                dense[hacc.out_row, hacc.out_col] += hacc.value
        return dense

    def encode_binary(self) -> bytes:
        """Serialise the MMH stream to the 128-bit binary format."""
        blob = bytearray()
        for op in self.mmh_ops:
            blob.extend(op.encode().to_bytes(16, "little"))
        return bytes(blob)

    def validate(self) -> None:
        """Check program invariants; raise AssertionError when violated.

        * every expanded HACC's counter matches the symbolic counter;
        * the per-tag number of HACCs equals that counter;
        * bloat accounting is consistent.
        """
        per_tag_counts: dict[tuple[int, int], int] = {}
        total = 0
        for mmh in self.mmh_ops:
            for hacc in self.expand_haccs(mmh):
                key = (hacc.out_row, hacc.out_col)
                per_tag_counts[key] = per_tag_counts.get(key, 0) + 1
                total += 1
        if total != self.total_partial_products:
            raise AssertionError("partial product count mismatch")
        if set(per_tag_counts) != set(self.counters):
            raise AssertionError("output structure mismatch")
        for key, count in per_tag_counts.items():
            if count != self.counters[key]:
                raise AssertionError(f"counter mismatch at {key}: "
                                     f"{count} != {self.counters[key]}")
