"""Program representation: MMH / HACC macro-operations and the address map.

The cycle simulator consumes *macro-ops*: decoded instructions that carry both
the architectural fields (operand addresses, as encoded by
:mod:`repro.arch.isa`) and the semantic payload (the actual operand values)
so that the simulation can verify numerical correctness of the accelerator
output against a software reference.

Programs are stored *columnar*: the compiler emits a
:class:`ProgramArrays` structure-of-arrays payload (per-op operand slices,
addresses and output-slot indices, plus the CSR-shaped symbolic output
structure), and the familiar :class:`MMHMacroOp` objects are materialized
lazily — only when the cycle/functional simulators actually iterate them.
Count-only consumers (the analytic backend, report rows, cache
fingerprints) read the arrays directly and never pay for materialization;
pickling a columnar program (disk cache spill, cross-process shipping)
serialises only the arrays.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.arch.isa import (
    HACCInstruction,
    MMHInstruction,
    Opcode,
    encode_hacc,
    encode_mmh,
)
from repro.sparse.symbolic import row_per_slot

#: Bytes per matrix element in the virtual HBM layout (fp32 value or int32 index).
ELEMENT_BYTES = 4


@dataclass(frozen=True)
class AddressMap:
    """Byte layout of the operands in the accelerator's HBM address space.

    The regions are laid out back to back: A values, A row indices, B column
    indices, B values, rolling counters, and the output C region.
    """

    a_data_base: int
    a_indices_base: int
    b_col_ind_base: int
    b_data_base: int
    roll_counter_base: int
    output_base: int
    total_bytes: int

    @classmethod
    def layout(cls, a_nnz: int, b_nnz: int, output_nnz: int) -> "AddressMap":
        """Assign contiguous regions for the operand arrays."""
        cursor = 0
        a_data_base = cursor
        cursor += a_nnz * ELEMENT_BYTES
        a_indices_base = cursor
        cursor += a_nnz * ELEMENT_BYTES
        b_col_ind_base = cursor
        cursor += b_nnz * ELEMENT_BYTES
        b_data_base = cursor
        cursor += b_nnz * ELEMENT_BYTES
        roll_counter_base = cursor
        cursor += output_nnz * ELEMENT_BYTES
        output_base = cursor
        cursor += output_nnz * ELEMENT_BYTES
        return cls(a_data_base=a_data_base, a_indices_base=a_indices_base,
                   b_col_ind_base=b_col_ind_base, b_data_base=b_data_base,
                   roll_counter_base=roll_counter_base, output_base=output_base,
                   total_bytes=cursor)

    def regions(self) -> dict[str, tuple[int, int]]:
        """Per-region ``[start, end)`` byte bounds, in layout order.

        The regions are back to back, so each region ends where the next
        one begins and the last ends at ``total_bytes``.  This is the
        bounds oracle the static IR verifier checks operand offsets
        against.
        """
        bases = [("a_data", self.a_data_base),
                 ("a_indices", self.a_indices_base),
                 ("b_col_ind", self.b_col_ind_base),
                 ("b_data", self.b_data_base),
                 ("roll_counter", self.roll_counter_base),
                 ("output", self.output_base)]
        ends = [base for _, base in bases[1:]] + [self.total_bytes]
        return {name: (base, end)
                for (name, base), end in zip(bases, ends)}


@dataclass(frozen=True)
class HACCMacroOp:
    """A hash_accumulate operation with its semantic payload.

    Attributes:
        tag: 32-bit output-element identifier hashed by NeuraMem.
        value: partial-product value to accumulate.
        counter: rolling-eviction counter (total contributions to this tag).
        out_row / out_col: coordinates of the output element.
        writeback_addr: HBM address the evicted result is written to.
    """

    tag: int
    value: float
    counter: int
    out_row: int
    out_col: int
    writeback_addr: int

    def encode(self) -> int:
        """Architectural 128-bit encoding (Figure 9)."""
        return encode_hacc(HACCInstruction(tag=self.tag, data=self.value,
                                           writeback_addr=self.writeback_addr,
                                           counter=min(self.counter, 0xFFFF)))


@dataclass(frozen=True)
class MMHMacroOp:
    """A matrix_mult_hash operation with its semantic payload.

    One MMH pairs up to ``tile_size`` elements of a column of A with up to
    ``tile_size`` elements of the matching row of B (Section 3.1), producing
    up to ``tile_size**2`` partial products.

    Attributes:
        opcode: MMH variant (MMH1/2/4/8).
        k: the shared inner index (column of A == row of B).
        a_rows: output-row indices of the A-tile elements.
        a_values: values of the A-tile elements.
        b_cols: output-column indices of the B-tile elements.
        b_values: values of the B-tile elements.
        instruction: architectural address-form instruction (Figure 7).
        reseed_after: True when this is the last MMH of an input column, i.e.
            the point at which DRHM draws a new seed.
        sequence: position in program order.
    """

    opcode: Opcode
    k: int
    a_rows: tuple[int, ...]
    a_values: tuple[float, ...]
    b_cols: tuple[int, ...]
    b_values: tuple[float, ...]
    instruction: MMHInstruction
    reseed_after: bool = False
    sequence: int = 0

    @property
    def tile_size(self) -> int:
        return self.opcode.mmh_tile_size

    @property
    def n_partial_products(self) -> int:
        """Actual number of HACC operations this MMH dispatches."""
        return len(self.a_rows) * len(self.b_cols)

    @property
    def memory_requests(self) -> int:
        """Distinct operand fetches issued (A data, B col indices, B data, counters)."""
        return 4

    def operand_addresses(self) -> dict[str, tuple[int, int]]:
        """(address, bytes) per operand fetch, for the memory model."""
        n_a = len(self.a_rows)
        n_b = len(self.b_cols)
        instr = self.instruction
        return {
            "a_data": (instr.base_addr + instr.a_data_addr, n_a * ELEMENT_BYTES),
            "b_col_ind": (instr.base_addr + instr.b_col_ind_addr, n_b * ELEMENT_BYTES),
            "b_data": (instr.base_addr + instr.b_data_addr, n_b * ELEMENT_BYTES),
            "roll_counter": (instr.base_addr + instr.roll_counter_addr,
                             n_a * n_b * ELEMENT_BYTES),
        }

    def expand(self, counters: dict[tuple[int, int], int], n_out_cols: int,
               output_addrs: dict[tuple[int, int], int]) -> list[HACCMacroOp]:
        """Expand into HACC macro-ops (Algorithm 1's dispatch loop)."""
        haccs = []
        for i, av in zip(self.a_rows, self.a_values):
            for j, bv in zip(self.b_cols, self.b_values):
                tag = (i * n_out_cols + j) & 0xFFFFFFFF
                haccs.append(HACCMacroOp(
                    tag=tag,
                    value=av * bv,
                    counter=counters[(i, j)],
                    out_row=i,
                    out_col=j,
                    writeback_addr=output_addrs[(i, j)],
                ))
        return haccs

    def encode(self) -> int:
        """Architectural 128-bit encoding (Figure 7)."""
        return encode_mmh(self.instruction)


@dataclass
class ProgramArrays:
    """Columnar (structure-of-arrays) payload of a compiled program.

    All per-op columns have length ``n_ops`` and are aligned with program
    order; operand payloads are stored once as flat arrays that the ops
    slice into, so the whole program costs O(a_nnz + b_nnz + output_nnz +
    n_ops) memory, pickles as a handful of numpy buffers, and every
    aggregate a consumer needs (op counts, operand sizes, tag/counter
    histograms) is one vectorized reduction away.

    Attributes:
        opcode: MMH opcode variant shared by every op.
        tile_size: MMH tile size the program was compiled for.
        shape: shape of the output matrix C.
        out_indptr / out_indices / out_counts: CSR-shaped symbolic output
            structure (canonical row-major slot order; slot ``s`` is output
            element ``(row, out_indices[s])`` with rolling counter
            ``out_counts[s]``).
        a_rows / a_values: A operand entries in CSC order (row index and
            value per non-zero).
        b_cols / b_values: B operand entries in CSR order (column index and
            value per non-zero).
        op_k: shared inner index per op.
        op_group: row-group index per op (``min(a_rows) // tile_size``).
        op_a_lo / op_a_hi: per-op A-tile slice into ``a_rows`` / ``a_values``.
        op_b_lo / op_b_hi: per-op B-tile slice into ``b_cols`` / ``b_values``.
        op_slot: output slot of the op's first (row, col) pair — the slot
            its rolling-counter address points at.
        op_reseed: True on the last op of each row group (DRHM reseed).
        op_a_addr / op_b_col_addr / op_b_data_addr / op_counter_addr:
            architectural operand addresses per op (Figure 7 register
            fields, already validated against the 22-bit limit).
    """

    opcode: Opcode
    tile_size: int
    shape: tuple[int, int]
    out_indptr: np.ndarray
    out_indices: np.ndarray
    out_counts: np.ndarray
    a_rows: np.ndarray
    a_values: np.ndarray
    b_cols: np.ndarray
    b_values: np.ndarray
    op_k: np.ndarray
    op_group: np.ndarray
    op_a_lo: np.ndarray
    op_a_hi: np.ndarray
    op_b_lo: np.ndarray
    op_b_hi: np.ndarray
    op_slot: np.ndarray
    op_reseed: np.ndarray
    op_a_addr: np.ndarray
    op_b_col_addr: np.ndarray
    op_b_data_addr: np.ndarray
    op_counter_addr: np.ndarray

    # ------------------------------------------------------------------
    # Aggregates (no materialization)
    # ------------------------------------------------------------------
    @property
    def n_ops(self) -> int:
        return int(self.op_k.size)

    @property
    def output_nnz(self) -> int:
        return int(self.out_indices.size)

    @property
    def n_row_groups(self) -> int:
        """Row groups that issued at least one op (reseed boundaries)."""
        return int(np.count_nonzero(self.op_reseed))

    @property
    def sum_na(self) -> int:
        """Total A-tile elements across ops (operand fetch accounting)."""
        return int((self.op_a_hi - self.op_a_lo).sum())

    @property
    def sum_nb(self) -> int:
        """Total B-tile elements across ops (operand fetch accounting)."""
        return int((self.op_b_hi - self.op_b_lo).sum())

    @property
    def partial_products_per_op(self) -> np.ndarray:
        """HACCs each op dispatches (``n_a * n_b``), as an array."""
        return (self.op_a_hi - self.op_a_lo) * (self.op_b_hi - self.op_b_lo)

    def counter_histogram(self) -> np.ndarray:
        """Histogram of rolling-counter values across output tags
        (``hist[c]`` = tags that accumulate exactly ``c`` partial
        products) — the per-tag work distribution, straight from the
        symbolic arrays."""
        if self.out_counts.size == 0:
            return np.zeros(1, dtype=np.int64)
        return np.bincount(self.out_counts)

    def row_tag_counts(self) -> np.ndarray:
        """Output tags per output row (the tag histogram across rows)."""
        return np.diff(self.out_indptr)

    # ------------------------------------------------------------------
    # Slot lookup
    # ------------------------------------------------------------------
    def _flat_keys(self) -> np.ndarray:
        """Ascending flattened output coordinates, cached per instance
        (the lowering seeds this cache with the symbolic pass's array)."""
        cached = self.__dict__.get("_flat_cache")
        if cached is None:
            cached = (row_per_slot(self.out_indptr, self.shape[0])
                      * self.shape[1] + self.out_indices)
            self.__dict__["_flat_cache"] = cached
        return cached

    # ------------------------------------------------------------------
    # Lazy materialization
    # ------------------------------------------------------------------
    def materialize(self, index: int) -> MMHMacroOp:
        """Build the :class:`MMHMacroOp` object for one program position."""
        a_lo, a_hi = int(self.op_a_lo[index]), int(self.op_a_hi[index])
        b_lo, b_hi = int(self.op_b_lo[index]), int(self.op_b_hi[index])
        instruction = MMHInstruction(
            opcode=self.opcode,
            base_addr=0,
            a_data_addr=int(self.op_a_addr[index]),
            b_col_ind_addr=int(self.op_b_col_addr[index]),
            b_data_addr=int(self.op_b_data_addr[index]),
            roll_counter_addr=int(self.op_counter_addr[index]),
        )
        return MMHMacroOp(
            opcode=self.opcode,
            k=int(self.op_k[index]),
            a_rows=tuple(self.a_rows[a_lo:a_hi].tolist()),
            a_values=tuple(self.a_values[a_lo:a_hi].tolist()),
            b_cols=tuple(self.b_cols[b_lo:b_hi].tolist()),
            b_values=tuple(self.b_values[b_lo:b_hi].tolist()),
            instruction=instruction,
            reseed_after=bool(self.op_reseed[index]),
            sequence=index,
        )

    def iter_ops(self) -> Iterator[MMHMacroOp]:
        """Generate macro-ops in program order without retaining them."""
        for index in range(self.n_ops):
            yield self.materialize(index)

    def expand_haccs(self, mmh: MMHMacroOp,
                     address_map: AddressMap) -> list[HACCMacroOp]:
        """Expand one MMH into HACC macro-ops, resolving counters and
        write-back addresses through the symbolic arrays (no dict views)."""
        n_cols = self.shape[1]
        a_rows = np.asarray(mmh.a_rows, dtype=np.int64)
        b_cols = np.asarray(mmh.b_cols, dtype=np.int64)
        flat = (a_rows[:, None] * n_cols + b_cols[None, :]).ravel()
        slots = np.searchsorted(self._flat_keys(), flat)
        counters = self.out_counts[slots].tolist()
        writebacks = (address_map.output_base
                      + slots * ELEMENT_BYTES).tolist()
        haccs = []
        position = 0
        for i, av in zip(mmh.a_rows, mmh.a_values):
            for j, bv in zip(mmh.b_cols, mmh.b_values):
                haccs.append(HACCMacroOp(
                    tag=(i * n_cols + j) & 0xFFFFFFFF,
                    value=av * bv,
                    counter=counters[position],
                    out_row=i,
                    out_col=j,
                    writeback_addr=writebacks[position],
                ))
                position += 1
        return haccs

    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_flat_cache", None)
        return state


@dataclass(frozen=True)
class ProgramDigest:
    """Count-level summary of a compiled program.

    Carries every aggregate a report row needs (instruction counts, partial
    products, bloat) at a fraction of a :class:`Program`'s pickled size, so
    results shipped back from executor worker processes don't pay to
    serialise the full macro-op stream.
    """

    n_instructions: int
    total_partial_products: int
    output_nnz: int
    shape: tuple[int, int]
    tile_size: int
    a_nnz: int
    b_nnz: int
    source: str = ""

    @property
    def bloat_percent(self) -> float:
        """Equation 1 bloat for this program's workload."""
        if self.output_nnz == 0:
            return 0.0
        return (self.total_partial_products - self.output_nnz) / self.output_nnz * 100.0

    @property
    def useful_flops(self) -> int:
        return 2 * self.total_partial_products

    def digest(self) -> "ProgramDigest":
        return self


class Program:
    """A compiled NeuraChip program.

    Holds either a columnar :class:`ProgramArrays` payload (the compiler's
    native output — macro-ops, counter dicts and address dicts are
    materialized lazily, and only on demand) or the fully materialized
    legacy representation (macro-op list plus counter / address dicts, as
    the reference loop compiler produces).

    Attributes:
        arrays: columnar payload, or ``None`` for legacy programs.
        address_map: operand layout in HBM.
        shape: shape of the output matrix C.
        tile_size: MMH tile size the program was compiled for.
        a_nnz / b_nnz: operand non-zero counts (for traffic accounting).
        total_partial_products: total HACC operations the program dispatches.
        source: human-readable description of the workload.
    """

    def __init__(self, mmh_ops: list[MMHMacroOp] | None = None,
                 counters: dict[tuple[int, int], int] | None = None,
                 output_addrs: dict[tuple[int, int], int] | None = None,
                 address_map: AddressMap | None = None,
                 shape: tuple[int, int] = (0, 0),
                 tile_size: int = 4,
                 a_nnz: int = 0,
                 b_nnz: int = 0,
                 total_partial_products: int = 0,
                 source: str = "",
                 metadata: dict | None = None,
                 arrays: ProgramArrays | None = None) -> None:
        if arrays is None and (mmh_ops is None or counters is None
                               or output_addrs is None):
            raise ValueError("Program needs either a columnar `arrays` "
                             "payload or the fully materialized legacy "
                             "triple (`mmh_ops` + `counters` + "
                             "`output_addrs`)")
        if arrays is not None and address_map is None:
            raise ValueError("a columnar Program needs its `address_map` "
                             "to resolve write-back addresses")
        self.arrays = arrays
        self.address_map = address_map
        self.shape = (int(shape[0]), int(shape[1]))
        self.tile_size = tile_size
        self.a_nnz = a_nnz
        self.b_nnz = b_nnz
        self.total_partial_products = total_partial_products
        self.source = source
        self.metadata = dict(metadata) if metadata else {}
        self._mmh_ops: list[MMHMacroOp] | None = \
            list(mmh_ops) if mmh_ops is not None else None
        self._counters: dict[tuple[int, int], int] | None = \
            dict(counters) if counters is not None else None
        self._output_addrs: dict[tuple[int, int], int] | None = \
            dict(output_addrs) if output_addrs is not None else None

    # ------------------------------------------------------------------
    # Lazy views over the columnar payload
    # ------------------------------------------------------------------
    @property
    def mmh_ops(self) -> list[MMHMacroOp]:
        """The MMH macro-op stream in program order (materialized on first
        access for columnar programs, then cached)."""
        if self._mmh_ops is None:
            self._mmh_ops = list(self.arrays.iter_ops())
        return self._mmh_ops

    def iter_mmh_ops(self) -> Iterator[MMHMacroOp]:
        """Iterate macro-ops in program order without caching the list —
        the view the simulators consume."""
        if self._mmh_ops is not None:
            yield from self._mmh_ops
        elif self.arrays is not None:
            yield from self.arrays.iter_ops()

    @property
    def counters(self) -> dict[tuple[int, int], int]:
        """Rolling counter per output coordinate (lazy dict view)."""
        if self._counters is None:
            arrays = self.arrays
            rows = row_per_slot(arrays.out_indptr, arrays.shape[0])
            self._counters = dict(zip(
                zip(rows.tolist(), arrays.out_indices.tolist()),
                arrays.out_counts.tolist()))
        return self._counters

    @property
    def output_addrs(self) -> dict[tuple[int, int], int]:
        """HBM write-back address per output coordinate (lazy dict view)."""
        if self._output_addrs is None:
            arrays = self.arrays
            rows = row_per_slot(arrays.out_indptr, arrays.shape[0])
            base = self.address_map.output_base
            addrs = base + np.arange(arrays.output_nnz,
                                     dtype=np.int64) * ELEMENT_BYTES
            self._output_addrs = dict(zip(
                zip(rows.tolist(), arrays.out_indices.tolist()),
                addrs.tolist()))
        return self._output_addrs

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def n_instructions(self) -> int:
        """Number of MMH instructions."""
        if self.arrays is not None:
            return self.arrays.n_ops
        return len(self._mmh_ops)

    @property
    def output_nnz(self) -> int:
        """Number of non-zeros in the output matrix."""
        if self.arrays is not None:
            return self.arrays.output_nnz
        return len(self._counters)

    @property
    def bloat_percent(self) -> float:
        """Equation 1 bloat for this program's workload."""
        if self.output_nnz == 0:
            return 0.0
        return (self.total_partial_products - self.output_nnz) / self.output_nnz * 100.0

    @property
    def useful_flops(self) -> int:
        """Useful floating-point operations (multiply + add per partial product)."""
        return 2 * self.total_partial_products

    def digest(self) -> ProgramDigest:
        """Count-level summary suitable for cross-process result transfer."""
        return ProgramDigest(
            n_instructions=self.n_instructions,
            total_partial_products=self.total_partial_products,
            output_nnz=self.output_nnz,
            shape=self.shape,
            tile_size=self.tile_size,
            a_nnz=self.a_nnz,
            b_nnz=self.b_nnz,
            source=self.source)

    # ------------------------------------------------------------------
    # Expansion and reference semantics
    # ------------------------------------------------------------------
    def expand_haccs(self, mmh: MMHMacroOp) -> list[HACCMacroOp]:
        """Expand one MMH of this program into its HACC macro-ops."""
        if self.arrays is not None:
            return self.arrays.expand_haccs(mmh, self.address_map)
        return mmh.expand(self._counters, self.shape[1], self._output_addrs)

    def reference_result(self) -> np.ndarray:
        """Dense reference of the output computed from the macro-op stream."""
        dense = np.zeros(self.shape, dtype=np.float64)
        for mmh in self.iter_mmh_ops():
            for hacc in self.expand_haccs(mmh):
                dense[hacc.out_row, hacc.out_col] += hacc.value
        return dense

    def encode_binary(self) -> bytes:
        """Serialise the MMH stream to the 128-bit binary format."""
        blob = bytearray()
        for op in self.iter_mmh_ops():
            blob.extend(op.encode().to_bytes(16, "little"))
        return bytes(blob)

    def validate(self) -> None:
        """Check program invariants; raise AssertionError when violated.

        * every expanded HACC's counter matches the symbolic counter;
        * the per-tag number of HACCs equals that counter;
        * bloat accounting is consistent.
        """
        per_tag_counts: dict[tuple[int, int], int] = {}
        total = 0
        for mmh in self.iter_mmh_ops():
            for hacc in self.expand_haccs(mmh):
                key = (hacc.out_row, hacc.out_col)
                per_tag_counts[key] = per_tag_counts.get(key, 0) + 1
                total += 1
        if total != self.total_partial_products:
            raise AssertionError("partial product count mismatch")
        if set(per_tag_counts) != set(self.counters):
            raise AssertionError("output structure mismatch")
        for key, count in per_tag_counts.items():
            if count != self.counters[key]:
                raise AssertionError(f"counter mismatch at {key}: "
                                     f"{count} != {self.counters[key]}")

    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle columnar programs as arrays only: the materialized
        macro-op / dict caches are dropped (they rebuild lazily), so disk
        spills and cross-process shipments stay operand-sized."""
        state = self.__dict__.copy()
        if state.get("arrays") is not None:
            state["_mmh_ops"] = None
            state["_counters"] = None
            state["_output_addrs"] = None
        return state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        layout = "columnar" if self.arrays is not None else "materialized"
        return (f"Program(source={self.source!r}, shape={self.shape}, "
                f"tile_size={self.tile_size}, "
                f"n_instructions={self.n_instructions}, "
                f"partial_products={self.total_partial_products}, "
                f"layout={layout})")


def rebind_b_values(program: Program, b_csr) -> Program:
    """A copy of a columnar ``program`` with the B operand's *values*
    swapped for ``b_csr.data`` — structure, instruction stream and
    addressing untouched.

    This is the resident-graph fast path: the compiler's symbolic pass and
    lowering depend only on operand sparsity, so one compiled aggregation
    program serves every layer of a GNN stack as long as the feature
    matrices share a structure.  The cached program is never mutated — the
    caller gets a fresh :class:`Program` wrapping a shallow
    :class:`ProgramArrays` copy whose ``b_values`` (the only value-bearing
    B array) point at the new data.

    Raises:
        ValueError: for legacy (non-columnar) programs or when ``b_csr``'s
            nnz does not match the structure the program was compiled for.
    """
    arrays = program.arrays
    if arrays is None:
        raise ValueError("rebind_b_values needs a columnar program")
    values = np.ascontiguousarray(b_csr.data, dtype=np.float64)
    if values.size != arrays.b_values.size:
        raise ValueError(
            f"operand structure mismatch: program was compiled for "
            f"{arrays.b_values.size} B non-zeros, got {values.size}")
    new_arrays = dataclasses.replace(arrays, b_values=values)
    flat_cache = arrays.__dict__.get("_flat_cache")
    if flat_cache is not None:
        # Structure-only: safe to share with the rebound copy.
        new_arrays.__dict__["_flat_cache"] = flat_cache
    return Program(arrays=new_arrays,
                   address_map=program.address_map,
                   shape=program.shape,
                   tile_size=program.tile_size,
                   a_nnz=program.a_nnz,
                   b_nnz=program.b_nnz,
                   total_partial_products=program.total_partial_products,
                   source=program.source,
                   metadata=program.metadata)
