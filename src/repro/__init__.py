"""NeuraChip reproduction library.

A from-scratch Python implementation of the NeuraChip hash-based decoupled
spatial GNN accelerator (Shivdikar et al., ISCA 2024) together with every
substrate its evaluation depends on: sparse formats and SpGEMM dataflows,
synthetic dataset generators, mapping algorithms, the NeuraCompiler, the
NeuraSim cycle-level simulator, analytic baseline models, and the power/area
model.  See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured comparison of every table and figure.
"""

from repro.arch import (
    GNN_TILE16,
    NeuraChipConfig,
    TILE16,
    TILE4,
    TILE64,
    get_config,
)
from repro.backends import (
    ChipTopology,
    available_backends,
    get_backend,
    predict_scaleout,
    register_backend,
)
from repro.core import (
    BatchReport,
    BatchSpec,
    GCNLayerSpec,
    GCNRunResult,
    GNNModelSpec,
    NeuraChip,
    Provenance,
    RunResult,
    Session,
    SpGEMMRunResult,
    SpGEMMSpec,
    SweepSpec,
    WorkloadJob,
    WorkloadQueue,
    available_executors,
    design_space_sweep,
    get_executor,
    register_executor,
)
from repro.compiler import Program, compile_gcn_aggregation, compile_spgemm
from repro.datasets import GraphDataset, available_datasets, load_dataset
from repro.sim import (
    FunctionalAccelerator,
    NeuraChipAccelerator,
    SimulationParams,
    SimulationReport,
)
from repro.sparse import COOMatrix, CSCMatrix, CSRMatrix

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Session",
    "SpGEMMSpec",
    "GCNLayerSpec",
    "GNNModelSpec",
    "SweepSpec",
    "BatchSpec",
    "RunResult",
    "Provenance",
    "register_executor",
    "get_executor",
    "available_executors",
    "NeuraChip",
    "SpGEMMRunResult",
    "GCNRunResult",
    "design_space_sweep",
    "WorkloadJob",
    "WorkloadQueue",
    "BatchReport",
    "register_backend",
    "get_backend",
    "available_backends",
    "ChipTopology",
    "predict_scaleout",
    "NeuraChipConfig",
    "TILE4",
    "TILE16",
    "TILE64",
    "GNN_TILE16",
    "get_config",
    "Program",
    "compile_spgemm",
    "compile_gcn_aggregation",
    "GraphDataset",
    "load_dataset",
    "available_datasets",
    "NeuraChipAccelerator",
    "FunctionalAccelerator",
    "SimulationReport",
    "SimulationParams",
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
]
