"""Exporters for the benchmark harness (the NeuraViz replacement).

The paper's NeuraViz renders plots from a MongoDB metrics store; here the
benchmarks print the same data series as aligned text tables and can persist
them as CSV/JSON files for external plotting.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.sim.stats import Histogram


def format_table(rows: list[dict], columns: list[str] | None = None,
                 float_format: str = "{:.3f}") -> str:
    """Render a list of row dicts as an aligned, pipe-separated text table."""
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered))
              for i, col in enumerate(columns)]
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "-+-".join("-" * w for w in widths)
    body = "\n".join(" | ".join(r[i].ljust(widths[i]) for i in range(len(columns)))
                     for r in rendered)
    return f"{header}\n{separator}\n{body}"


def histogram_to_rows(histogram: Histogram, label: str = "cpi") -> list[dict]:
    """Convert a CPI histogram into Figure 14/15-style rows."""
    return [{"bin": bin_label, f"{label}_percent": round(percent, 2)}
            for bin_label, percent in zip(histogram.labels(),
                                          histogram.percentages().tolist())]


def heatmap_to_text(heatmap: np.ndarray, max_width: int = 64) -> str:
    """Render a mapping heat map as ASCII shading (Figures 12/13)."""
    heatmap = np.asarray(heatmap, dtype=np.float64)
    if heatmap.size == 0:
        return "(empty heatmap)"
    shades = " .:-=+*#%@"
    peak = heatmap.max() if heatmap.max() > 0 else 1.0
    lines = []
    for row in heatmap[:, :max_width]:
        indices = np.minimum((row / peak * (len(shades) - 1)).astype(int),
                             len(shades) - 1)
        lines.append("".join(shades[i] for i in indices))
    return "\n".join(lines)


def speedup_table_to_rows(table: dict[str, dict[str, float]]) -> list[dict]:
    """Flatten a {platform: {dataset: speedup}} table into printable rows."""
    rows = []
    for platform, per_dataset in table.items():
        for dataset, speedup in per_dataset.items():
            rows.append({"platform": platform, "dataset": dataset,
                         "speedup": round(float(speedup), 3)})
    return rows


def results_to_rows(results) -> list[dict]:
    """Flatten :class:`~repro.core.specs.RunResult` envelopes (or anything
    exposing ``as_row``) into printable / CSV-ready rows."""
    return [result.as_row() for result in results]


def save_csv(rows: list[dict], path: str | Path) -> Path:
    """Write row dicts to a CSV file; returns the path.

    The header is the union of every row's keys (first-seen order), so rows
    that dropped ``None``-valued fields still export rectangularly — missing
    cells are left empty rather than raising or shifting columns.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not rows:
        path.write_text("")
        return path
    fieldnames: list[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames, restval="")
        writer.writeheader()
        writer.writerows(rows)
    return path


def save_json(payload, path: str | Path) -> Path:
    """Write a JSON-serialisable payload; numpy types are converted."""
    def convert(value):
        if isinstance(value, (np.integer,)):
            return int(value)
        if isinstance(value, (np.floating,)):
            return float(value)
        if isinstance(value, np.ndarray):
            return value.tolist()
        raise TypeError(f"unserialisable type {type(value)!r}")

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, default=convert))
    return path
