"""NeuraViz-style exporters: turn benchmark results into tables, CSV and JSON."""

from repro.viz.export import (
    format_table,
    heatmap_to_text,
    histogram_to_rows,
    save_csv,
    save_json,
    speedup_table_to_rows,
)

__all__ = [
    "format_table",
    "heatmap_to_text",
    "histogram_to_rows",
    "save_csv",
    "save_json",
    "speedup_table_to_rows",
]
