"""Pass 1 — the IR verifier: prove a compiled program well-formed.

Every check here is a vectorized numpy reduction over the columnar
:class:`~repro.compiler.program.ProgramArrays` payload — no macro-op is
ever materialized and nothing executes.  The invariants:

* **column alignment / dtypes** — every per-op column has length
  ``n_ops`` with the persisted narrow dtype; operand payloads agree.
* **operand slices** — every op's A/B tile slice is in-bounds, non-empty
  and no wider than the tile size.
* **operand offsets** — the architectural address columns land inside
  the operand regions of the :class:`~repro.compiler.program.AddressMap`
  layout *and* fit the 22-bit MMH register fields (Figure 7).  The
  22-bit limit lives here — the compiler's lowering imports it, so the
  compile-time check and the verifier can never drift apart.
* **row-group order** — ``(op_group, op_k)`` is lexicographically
  non-decreasing (the paper's row-stationary issue order) and the DRHM
  reseed flags sit exactly on the group boundaries.
* **output structure** — the symbolic CSR triple is canonical: monotone
  ``out_indptr``, strictly increasing flat slot keys, in-range columns,
  positive rolling counters.
* **counter histogram** — the rolling counters account for exactly the
  partial products the ops dispatch (total at ``level="quick"``,
  per-slot exact at ``level="full"``).
* **address exclusivity** — each HACC accumulation address is written
  only by ops sharing its ``(row, col)`` key: slot keys are unique,
  every op's counter address derives from its first pair's slot, and
  (at ``level="full"``) every expanded partial product lands on an
  existing slot.  This is the static race detector for the
  eviction-counter dataflow: two lanes can only collide on an
  accumulation address if they accumulate into the same output element,
  which is precisely what the rolling-eviction counter arbitrates.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.findings import Finding, VerificationError
from repro.compiler.program import ELEMENT_BYTES, AddressMap, Program, ProgramArrays

#: 22-bit register fields of the MMH instruction limit the per-instruction
#: operand offsets (Figure 7).  Shared by the compiler's lowering and the
#: verifier so the two checks can never disagree.
OFFSET_LIMIT = (1 << 22) - 1

#: Cap on partial products expanded per verification chunk at
#: ``level="full"`` (~128 MiB of int64 keys), mirroring the symbolic
#: pass's chunked reduction so verification never doubles peak memory.
VERIFY_CHUNK_PARTIAL_PRODUCTS = 1 << 24

#: Output shapes with ``rows * cols`` at or below this take the dense
#: histogram path in the full-level scatter (one ``bincount`` over the
#: flattened key space, ~64 MiB of int64 at the cap); larger shapes use
#: a searchsorted scatter against the sorted output keys instead.
_DENSE_SCATTER_KEYS = 1 << 23

#: The two verification depths: ``"quick"`` is O(n_ops + nnz) and skips
#: the partial-product expansion; ``"full"`` additionally scatters every
#: partial product onto its output slot and proves the per-slot counters
#: exact.
VERIFY_LEVELS = ("quick", "full")


def require_offset(offset: int, operand: str = "operand") -> int:
    """Validate an operand offset against the 22-bit MMH register field.

    Offsets used to be silently masked (``offset & OFFSET_LIMIT``), which
    aliased addresses on operands larger than 4 MiB of laid-out data; an
    overflowing offset is an error with a remediation hint.
    """
    if offset > OFFSET_LIMIT:
        raise ValueError(
            f"{operand} offset {offset} exceeds the 22-bit MMH register "
            f"field (max {OFFSET_LIMIT}); the laid-out operands are too "
            "large for one program's address space.  Row-sharding the "
            "workload (e.g. SpGEMMSpec(shards=N)) helps when the A/output "
            "regions dominate the layout; a large B operand is replicated "
            "into every shard and must be shrunk (fewer columns / sparser "
            "features) instead")
    return offset


def check_offset_arrays(**named_arrays: np.ndarray) -> None:
    """Vectorized overflow check over per-op address columns; raises
    ``ValueError`` (via :func:`require_offset`) on the first overflow."""
    for operand, addresses in named_arrays.items():
        if addresses.size and int(addresses.max()) > OFFSET_LIMIT:
            require_offset(int(addresses.max()), operand)


# ----------------------------------------------------------------------
# Finding helpers
# ----------------------------------------------------------------------
def _finding(check: str, source: str, message: str) -> Finding:
    return Finding(pass_name="ir", check=check, location=source or "program",
                   message=message)


def _first_bad(mask: np.ndarray) -> int:
    """Index of the first True in a violation mask."""
    return int(np.flatnonzero(mask)[0])


# ----------------------------------------------------------------------
# Stage A: shape / dtype / slice sanity (later stages index through these)
# ----------------------------------------------------------------------
_OP_COLUMNS = ("op_k", "op_group", "op_a_lo", "op_a_hi", "op_b_lo",
               "op_b_hi", "op_slot", "op_a_addr", "op_b_col_addr",
               "op_b_data_addr", "op_counter_addr")


def _check_layout(arrays: ProgramArrays, source: str) -> list[Finding]:
    findings: list[Finding] = []
    n_ops = int(arrays.op_k.size)
    for name in _OP_COLUMNS:
        column = getattr(arrays, name)
        if column.size != n_ops:
            findings.append(_finding(
                "column-alignment", source,
                f"per-op column {name} has {column.size} entries; "
                f"program order has {n_ops} ops"))
        elif column.dtype != np.int32:
            findings.append(_finding(
                "column-dtype", source,
                f"per-op column {name} is {column.dtype}; the persisted "
                "payload must be int32"))
    if arrays.op_reseed.size != n_ops:
        findings.append(_finding(
            "column-alignment", source,
            f"op_reseed has {arrays.op_reseed.size} entries for {n_ops} ops"))
    elif arrays.op_reseed.dtype != np.bool_:
        findings.append(_finding(
            "column-dtype", source,
            f"op_reseed is {arrays.op_reseed.dtype}; expected bool"))
    if arrays.out_indices.size != arrays.out_counts.size:
        findings.append(_finding(
            "column-alignment", source,
            f"out_indices ({arrays.out_indices.size}) and out_counts "
            f"({arrays.out_counts.size}) disagree on output nnz"))
    if arrays.out_indptr.size != arrays.shape[0] + 1:
        findings.append(_finding(
            "column-alignment", source,
            f"out_indptr has {arrays.out_indptr.size} entries for "
            f"{arrays.shape[0]} output rows"))
    if arrays.a_rows.size != arrays.a_values.size:
        findings.append(_finding(
            "column-alignment", source,
            f"a_rows ({arrays.a_rows.size}) and a_values "
            f"({arrays.a_values.size}) disagree on A nnz"))
    if arrays.b_cols.size != arrays.b_values.size:
        findings.append(_finding(
            "column-alignment", source,
            f"b_cols ({arrays.b_cols.size}) and b_values "
            f"({arrays.b_values.size}) disagree on B nnz"))
    return findings


def _check_slices(arrays: ProgramArrays, source: str) -> list[Finding]:
    findings: list[Finding] = []
    tile = int(arrays.tile_size)
    for name, lo, hi, size in (
            ("A", arrays.op_a_lo, arrays.op_a_hi, arrays.a_rows.size),
            ("B", arrays.op_b_lo, arrays.op_b_hi, arrays.b_cols.size)):
        # int32 throughout: hi - lo can only wrap when lo < 0 or
        # hi > size, and either already sets `bad` through the or-chain.
        bad = (lo < 0) | (hi > size) | (hi <= lo) | (hi - lo > tile)
        if np.any(bad):
            index = _first_bad(bad)
            findings.append(_finding(
                "operand-slices", source,
                f"op {index}: {name}-tile slice [{int(lo[index])}, "
                f"{int(hi[index])}) violates 0 <= lo < hi <= {size} with "
                f"width <= tile_size={tile}"))
    return findings


# ----------------------------------------------------------------------
# Stage B: addresses, ordering, output structure, counters, exclusivity
# ----------------------------------------------------------------------
def _check_offsets(arrays: ProgramArrays, address_map: AddressMap,
                   source: str) -> list[Finding]:
    findings: list[Finding] = []
    regions = address_map.regions()
    # Address arithmetic stays in the columns' native int32 when the whole
    # address map plus one tile provably fits (stage A bounded lo within
    # [0, operand size], so start + lo * 4 cannot wrap under this gate);
    # oversized maps fall back to int64.
    max_nnz = max(arrays.a_rows.size, arrays.b_cols.size)
    narrow = (int(address_map.total_bytes) + (max_nnz + 8) * ELEMENT_BYTES
              < np.iinfo(np.int32).max)
    work = np.int32 if narrow else np.int64
    columns = (
        ("op_a_addr", arrays.op_a_addr, arrays.op_a_lo, arrays.op_a_hi,
         "a_data"),
        ("op_b_col_addr", arrays.op_b_col_addr, arrays.op_b_lo,
         arrays.op_b_hi, "b_col_ind"),
        ("op_b_data_addr", arrays.op_b_data_addr, arrays.op_b_lo,
         arrays.op_b_hi, "b_data"),
    )
    # Fast path: one stacked comparison across all three operand columns;
    # the per-column loop below only runs to name the failing column.
    # Wraparound in tile_end when addr exceeds OFFSET_LIMIT is harmless:
    # the field-width clause already marks that op bad.
    addr3 = np.stack([c[1] for c in columns])
    lo3 = np.stack([c[2] for c in columns]).astype(work, copy=False)
    hi3 = np.stack([c[3] for c in columns]).astype(work, copy=False)
    start3 = np.array([[regions[c[4]][0]] for c in columns], dtype=work)
    end3 = np.array([[regions[c[4]][1]] for c in columns], dtype=work)
    bad3 = ((addr3 < 0) | (addr3 > OFFSET_LIMIT)
            | (addr3 != start3 + lo3 * ELEMENT_BYTES)
            | (addr3.astype(work, copy=False)
               + (hi3 - lo3) * ELEMENT_BYTES > end3))
    clean = not bad3.any()
    for name, addr, lo, hi, region in () if clean else columns:
        over = (addr < 0) | (addr > OFFSET_LIMIT)
        if np.any(over):
            index = _first_bad(over)
            findings.append(_finding(
                "offset-field-width", source,
                f"op {index}: {name}={int(addr[index])} does not fit "
                f"the 22-bit MMH register field (max {OFFSET_LIMIT})"))
            continue
        start, end = regions[region]
        lo = lo.astype(work, copy=False)
        expected = start + lo * ELEMENT_BYTES
        tile_end = (addr.astype(work, copy=False)
                    + (hi.astype(work, copy=False) - lo) * ELEMENT_BYTES)
        bad = (addr != expected) | (tile_end > end)
        if np.any(bad):
            index = _first_bad(bad)
            findings.append(_finding(
                "operand-offsets", source,
                f"op {index}: {name}={int(addr[index])} does not match "
                f"the {region} region [{start}, {end}) of the address map "
                f"(expected {int(expected[index])}, tile ends at "
                f"{int(tile_end[index])})"))
    counter = arrays.op_counter_addr.astype(work, copy=False)
    over = (counter < 0) | (counter > OFFSET_LIMIT)
    if np.any(over):
        index = _first_bad(over)
        findings.append(_finding(
            "offset-field-width", source,
            f"op {index}: op_counter_addr={int(counter[index])} does not "
            f"fit the 22-bit MMH register field (max {OFFSET_LIMIT})"))
    else:
        start, end = regions["roll_counter"]
        bad = (counter < start) | (counter + ELEMENT_BYTES > end)
        if np.any(bad):
            index = _first_bad(bad)
            findings.append(_finding(
                "operand-offsets", source,
                f"op {index}: op_counter_addr={int(counter[index])} lies "
                f"outside the roll_counter region [{start}, {end})"))
    return findings


def _check_row_groups(arrays: ProgramArrays, source: str) -> list[Finding]:
    findings: list[Finding] = []
    if arrays.n_ops < 1:
        return findings
    group = arrays.op_group.astype(np.int64)
    k = arrays.op_k.astype(np.int64)
    group_step = np.diff(group)
    bad = (group_step < 0) | ((group_step == 0) & (np.diff(k) < 0))
    if np.any(bad):
        index = _first_bad(bad)
        findings.append(_finding(
            "row-group-order", source,
            f"ops {index}->{index + 1}: row-group keys "
            f"({int(group[index])}, {int(k[index])}) -> "
            f"({int(group[index + 1])}, {int(k[index + 1])}) are not "
            "lexicographically non-decreasing"))
    expected_reseed = np.empty(arrays.n_ops, dtype=bool)
    expected_reseed[-1] = True
    np.not_equal(group[1:], group[:-1], out=expected_reseed[:-1])
    mismatch = arrays.op_reseed != expected_reseed
    if np.any(mismatch):
        index = _first_bad(mismatch)
        findings.append(_finding(
            "reseed-boundaries", source,
            f"op {index}: op_reseed={bool(arrays.op_reseed[index])} but the "
            f"row-group boundary mask says {bool(expected_reseed[index])}"))
    return findings


def _check_output_structure(arrays: ProgramArrays,
                            source: str) -> list[Finding]:
    findings: list[Finding] = []
    indptr = arrays.out_indptr
    nnz = arrays.out_indices.size
    if int(indptr[0]) != 0 or int(indptr[-1]) != nnz:
        findings.append(_finding(
            "output-structure", source,
            f"out_indptr spans [{int(indptr[0])}, {int(indptr[-1])}] for "
            f"{nnz} output slots (must span [0, nnz])"))
        return findings
    if np.any(np.diff(indptr) < 0):
        findings.append(_finding(
            "output-structure", source, "out_indptr is not non-decreasing"))
        return findings
    indices = arrays.out_indices.astype(np.int64)
    n_cols = arrays.shape[1]
    if nnz and (int(indices.min()) < 0 or int(indices.max()) >= n_cols):
        findings.append(_finding(
            "output-structure", source,
            f"out_indices outside [0, {n_cols}) for shape {arrays.shape}"))
        return findings
    flat = arrays._flat_keys()
    if nnz > 1 and np.any(np.diff(flat) <= 0):
        index = _first_bad(np.diff(flat) <= 0)
        findings.append(_finding(
            "output-structure", source,
            f"slots {index}->{index + 1}: flat output keys "
            f"{int(flat[index])} -> {int(flat[index + 1])} are not "
            "strictly increasing (duplicate or unsorted output slot)"))
    if nnz and int(arrays.out_counts.min()) < 1:
        index = _first_bad(arrays.out_counts < 1)
        findings.append(_finding(
            "counter-histogram", source,
            f"slot {index}: rolling counter "
            f"{int(arrays.out_counts[index])} < 1 (every stored output "
            "element accumulates at least one partial product)"))
    return findings


def _op_chunks(pp_per_op: np.ndarray) -> list[tuple[int, int]]:
    """Cut ``[0, n_ops)`` into ranges of at most roughly
    :data:`VERIFY_CHUNK_PARTIAL_PRODUCTS` expanded partial products."""
    total = int(pp_per_op.sum())
    n_ops = int(pp_per_op.size)
    if total <= VERIFY_CHUNK_PARTIAL_PRODUCTS or n_ops == 0:
        return [(0, n_ops)] if n_ops else []
    ends = np.cumsum(pp_per_op)
    targets = np.arange(VERIFY_CHUNK_PARTIAL_PRODUCTS, total,
                        VERIFY_CHUNK_PARTIAL_PRODUCTS, dtype=np.int64)
    cuts = [0, *(np.searchsorted(ends, targets, side="left") + 1), n_ops]
    return [(lo, hi) for lo, hi in zip(cuts[:-1], cuts[1:]) if hi > lo]


def _expanded_flat_keys(arrays: ProgramArrays, op_lo: int,
                        op_hi: int) -> np.ndarray:
    """Flattened output coordinates of every partial product dispatched by
    ops ``[op_lo, op_hi)`` — the same cumulative-offset expansion the
    SpGEMM kernels and the symbolic pass use.  Index/key arithmetic stays
    in int32 when the flattened key space provably fits (the common case),
    halving the memory traffic of the repeats below."""
    n_cols = arrays.shape[1]
    key_space = int(arrays.shape[0]) * int(n_cols)
    dtype = np.int32 if key_space < np.iinfo(np.int32).max else np.int64
    a_lo = arrays.op_a_lo[op_lo:op_hi]
    n_a = arrays.op_a_hi[op_lo:op_hi] - a_lo
    b_lo = arrays.op_b_lo[op_lo:op_hi]
    n_b = arrays.op_b_hi[op_lo:op_hi] - b_lo
    total_a = int(n_a.sum(dtype=np.int64))
    ends_a = np.cumsum(n_a, dtype=dtype)
    a_index = (np.arange(total_a, dtype=dtype)
               + np.repeat(a_lo - ends_a + n_a, n_a))
    rows = arrays.a_rows[a_index].astype(dtype, copy=False)
    rep = np.repeat(n_b, n_a)
    total = int(rep.sum(dtype=np.int64))
    ends = np.cumsum(rep, dtype=dtype)
    b_index = (np.arange(total, dtype=dtype)
               + np.repeat(np.repeat(b_lo, n_a) - ends + rep, rep))
    return (np.repeat(rows * dtype(n_cols), rep)
            + arrays.b_cols[b_index].astype(dtype, copy=False))


def _check_counters_and_exclusivity(arrays: ProgramArrays,
                                    address_map: AddressMap, source: str,
                                    total_partial_products: int | None,
                                    level: str) -> list[Finding]:
    findings: list[Finding] = []
    nnz = arrays.output_nnz
    flat = arrays._flat_keys()
    # Stage A bounded tile widths to (0, tile_size], so the per-op product
    # fits int32; the sums still reduce in int64.
    pp_per_op = ((arrays.op_a_hi - arrays.op_a_lo)
                 * (arrays.op_b_hi - arrays.op_b_lo))
    dispatched = int(pp_per_op.sum(dtype=np.int64))
    counted = int(arrays.out_counts.sum(dtype=np.int64))
    if dispatched != counted:
        findings.append(_finding(
            "counter-histogram", source,
            f"ops dispatch {dispatched} partial products but the rolling "
            f"counters account for {counted}"))
    if total_partial_products is not None \
            and dispatched != total_partial_products:
        findings.append(_finding(
            "counter-histogram", source,
            f"ops dispatch {dispatched} partial products; the program "
            f"header claims {total_partial_products}"))

    # First-pair slot derivation: every op's counter address must point at
    # the slot of its first (row, col) pair.
    slot = arrays.op_slot
    bad_slot = (slot < 0) | (slot >= max(nnz, 1))
    if arrays.n_ops and np.any(bad_slot):
        index = _first_bad(bad_slot)
        findings.append(_finding(
            "address-exclusivity", source,
            f"op {index}: op_slot={int(slot[index])} outside the "
            f"{nnz}-slot output structure"))
        return findings
    if arrays.n_ops:
        key_space = int(arrays.shape[0]) * int(arrays.shape[1])
        key_dtype = (np.int32 if key_space < np.iinfo(np.int32).max
                     else np.int64)
        first_key = (arrays.a_rows[arrays.op_a_lo].astype(key_dtype,
                                                          copy=False)
                     * key_dtype(arrays.shape[1])
                     + arrays.b_cols[arrays.op_b_lo].astype(key_dtype,
                                                            copy=False))
        mismatch = flat[slot] != first_key
        if np.any(mismatch):
            index = _first_bad(mismatch)
            findings.append(_finding(
                "address-exclusivity", source,
                f"op {index}: op_slot={int(slot[index])} holds output key "
                f"{int(flat[slot[index]])} but the op's first (row, col) "
                f"pair is key {int(first_key[index])} — the counter "
                "address would be shared across distinct output elements"))
        expected_addr = (address_map.roll_counter_base
                         + slot.astype(np.int64) * ELEMENT_BYTES)
        bad_addr = arrays.op_counter_addr != expected_addr
        if np.any(bad_addr):
            index = _first_bad(bad_addr)
            findings.append(_finding(
                "address-exclusivity", source,
                f"op {index}: op_counter_addr="
                f"{int(arrays.op_counter_addr[index])} does not derive "
                f"from its slot (expected {int(expected_addr[index])}) — "
                "two ops could accumulate at one address without sharing "
                "an output key"))
    if level != "full" or findings:
        return findings

    # Full level: scatter every partial product onto its slot and prove
    # the per-slot counters exact (and every pair's address resolvable).
    # Small key spaces take the dense-histogram path (one bincount over
    # row*n_cols+col, no per-key binary search); larger shapes fall back
    # to searchsorted against the sorted output keys so the verifier
    # never allocates more than _DENSE_SCATTER_KEYS histogram entries.
    key_space = int(arrays.shape[0]) * int(arrays.shape[1])
    if key_space <= _DENSE_SCATTER_KEYS:
        chunks = _op_chunks(pp_per_op)
        if len(chunks) == 1:
            keys = _expanded_flat_keys(arrays, *chunks[0])
            histogram = np.bincount(keys, minlength=key_space)
        else:
            histogram = np.zeros(key_space, dtype=np.int64)
            for op_lo, op_hi in chunks:
                keys = _expanded_flat_keys(arrays, op_lo, op_hi)
                histogram += np.bincount(keys, minlength=key_space)
        accumulated = histogram[flat]
        # Every expanded key landed in the histogram, so mass missing
        # from the owned slots is mass on unowned keys.
        stray = dispatched - int(accumulated.sum())
        if stray:
            owned = np.zeros(key_space, dtype=bool)
            owned[flat] = True
            key = int(np.argmax((histogram > 0) & ~owned))
            findings.append(_finding(
                "address-exclusivity", source,
                f"a partial product targets output key {key} "
                f"(row {key // arrays.shape[1]}, "
                f"col {key % arrays.shape[1]}) which has no slot in the "
                "symbolic output structure — its accumulation address is "
                "unowned"))
            return findings
    else:
        accumulated = np.zeros(max(nnz, 1), dtype=np.int64)
        for op_lo, op_hi in _op_chunks(pp_per_op):
            keys = _expanded_flat_keys(arrays, op_lo, op_hi)
            slots = np.searchsorted(flat, keys)
            valid = (slots < nnz)
            valid &= flat[np.minimum(slots, max(nnz - 1, 0))] == keys
            if not np.all(valid):
                key = int(keys[_first_bad(~valid)])
                findings.append(_finding(
                    "address-exclusivity", source,
                    f"a partial product targets output key {key} "
                    f"(row {key // arrays.shape[1]}, "
                    f"col {key % arrays.shape[1]}) which has no slot in "
                    "the symbolic output structure — its accumulation "
                    "address is unowned"))
                return findings
            np.add.at(accumulated, slots, 1)
        accumulated = accumulated[:nnz]
    mismatch = accumulated != arrays.out_counts
    if np.any(mismatch):
        index = _first_bad(mismatch)
        findings.append(_finding(
            "counter-histogram", source,
            f"slot {index} (key {int(flat[index])}): ops dispatch "
            f"{int(accumulated[index])} partial products but the rolling "
            f"counter says {int(arrays.out_counts[index])} — the eviction "
            "countdown would fire early or never"))
    return findings


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def verify_arrays(arrays: ProgramArrays, address_map: AddressMap,
                  source: str = "program",
                  total_partial_products: int | None = None,
                  level: str = "full") -> list[Finding]:
    """Verify one columnar payload; returns findings (empty == proven)."""
    if level not in VERIFY_LEVELS:
        raise ValueError(f"unknown verify level {level!r}; expected one of "
                         f"{VERIFY_LEVELS}")
    findings = _check_layout(arrays, source)
    if findings:
        return findings  # later stages index through the columns
    findings = _check_slices(arrays, source)
    findings += _check_output_structure(arrays, source)
    if findings:
        return findings  # slot lookups below need sane slices/structure
    findings += _check_offsets(arrays, address_map, source)
    findings += _check_row_groups(arrays, source)
    findings += _check_counters_and_exclusivity(
        arrays, address_map, source, total_partial_products, level)
    return findings


def verify_program(program: Program, level: str = "full") -> list[Finding]:
    """Verify a compiled :class:`Program` without executing it.

    Columnar programs get the vectorized pass; legacy (materialized)
    programs fall back to :meth:`Program.validate`, reported through the
    same finding model.
    """
    if program.arrays is not None:
        return verify_arrays(program.arrays, program.address_map,
                             source=program.source or "program",
                             total_partial_products=(
                                 program.total_partial_products),
                             level=level)
    try:
        program.validate()
    except AssertionError as error:
        return [_finding("legacy-program", program.source or "program",
                         str(error))]
    return []


def assert_program_valid(program: Program, level: str = "full") -> Program:
    """Raise :class:`VerificationError` unless ``program`` verifies clean."""
    findings = verify_program(program, level=level)
    if findings:
        raise VerificationError(
            f"program {program.source!r} failed IR verification: "
            + "; ".join(f.format() for f in findings[:3]),
            findings)
    return program
