"""Shared finding model of the static-analysis subsystem.

Every pass — the IR verifier, the structural checker and the concurrency
lint — reports through the same :class:`Finding` record so the CLI, the
CI gate, and the fault-injection tests can treat "which invariant failed
where" uniformly.  A pass that returns an empty list proved its
invariants; a non-empty list is machine-readable evidence and makes
``repro analyze`` exit non-zero.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Finding:
    """One violated invariant.

    Attributes:
        pass_name: which pass produced it: ``"ir"``, ``"structure"`` or
            ``"locks"``.
        check: stable slug of the invariant that failed (e.g.
            ``"counter-histogram"``, ``"guard-violation"``) — what the
            fault-injection tests assert on.
        location: where: ``file.py:line`` for the lint, the program's
            ``source`` label for the IR verifier, a context string for
            the structural checker.
        message: human-readable explanation with the offending values.
    """

    pass_name: str
    check: str
    location: str
    message: str

    def format(self) -> str:
        """One-line rendering for CLI / CI output."""
        return f"[{self.pass_name}:{self.check}] {self.location}: {self.message}"


class AnalysisError(ValueError):
    """Raised when a pass is asked to *enforce* (not just report) its
    invariants and at least one finding survived.

    Attributes:
        findings: the findings that triggered the error.
    """

    def __init__(self, message: str, findings: list[Finding]) -> None:
        super().__init__(message)
        self.findings = list(findings)


class VerificationError(AnalysisError):
    """An IR-verifier (pass 1) invariant failed on a compiled program."""


class StructureError(AnalysisError):
    """A structural (pass 2) invariant failed on a CSR/operand payload."""
