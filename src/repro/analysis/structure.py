"""Pass 2 — the structural checker: hardened CSR/operand validation.

:class:`~repro.sparse.csr.CSRMatrix` validates itself on construction,
but data that crosses a trust boundary — binary wire frames from
clients, registry uploads, programs unpickled from the disk cache,
stitched shard outputs — deserves an explicit, reportable check rather
than an ``AssertionError`` from deep inside a kernel.  ``check_csr``
duck-types anything with ``indptr / indices / data / shape`` and proves
the canonical-CSR invariants:

* ``indptr`` has ``n_rows + 1`` entries, starts at 0, ends at nnz and is
  non-decreasing;
* ``indices`` and ``data`` agree on nnz;
* column indices are in ``[0, n_cols)`` and, per row, strictly
  increasing (sorted, duplicate-free);
* dtypes are the canonical int64/int64/float64 triple.

All checks are vectorized; the sorted/duplicate check is a single
``diff`` with the row boundaries masked out.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.analysis.findings import Finding, StructureError


def _finding(check: str, context: str, message: str) -> Finding:
    return Finding(pass_name="structure", check=check, location=context,
                   message=message)


def check_csr(matrix: Any, context: str = "csr") -> list[Finding]:
    """Structural findings for one CSR-shaped object (empty == canonical)."""
    findings: list[Finding] = []
    indptr = np.asarray(matrix.indptr)
    indices = np.asarray(matrix.indices)
    data = np.asarray(matrix.data)
    n_rows, n_cols = (int(matrix.shape[0]), int(matrix.shape[1]))

    if indptr.ndim != 1 or indices.ndim != 1 or data.ndim != 1:
        findings.append(_finding(
            "shape-agreement", context,
            f"indptr/indices/data must be 1-D (got {indptr.ndim}-D, "
            f"{indices.ndim}-D, {data.ndim}-D)"))
        return findings
    if indptr.size != n_rows + 1:
        findings.append(_finding(
            "shape-agreement", context,
            f"indptr has {indptr.size} entries for {n_rows} rows "
            f"(expected {n_rows + 1})"))
        return findings
    if indices.size != data.size:
        findings.append(_finding(
            "shape-agreement", context,
            f"indices ({indices.size}) and data ({data.size}) disagree "
            "on nnz"))
        return findings
    for name, array, expected in (("indptr", indptr, np.int64),
                                  ("indices", indices, np.int64),
                                  ("data", data, np.float64)):
        if array.dtype != expected:
            findings.append(_finding(
                "dtype-agreement", context,
                f"{name} is {array.dtype}; canonical CSR uses "
                f"{np.dtype(expected).name}"))

    nnz = indices.size
    if int(indptr[0]) != 0 or int(indptr[-1]) != nnz:
        findings.append(_finding(
            "indptr-monotone", context,
            f"indptr spans [{int(indptr[0])}, {int(indptr[-1])}] for "
            f"{nnz} stored entries (must span [0, nnz])"))
        return findings
    if np.any(np.diff(indptr) < 0):
        row = int(np.flatnonzero(np.diff(indptr) < 0)[0])
        findings.append(_finding(
            "indptr-monotone", context,
            f"indptr decreases at row {row} "
            f"({int(indptr[row])} -> {int(indptr[row + 1])})"))
        return findings

    if nnz:
        low, high = int(indices.min()), int(indices.max())
        if low < 0 or high >= n_cols:
            findings.append(_finding(
                "column-bounds", context,
                f"column indices span [{low}, {high}] outside "
                f"[0, {n_cols}) for shape ({n_rows}, {n_cols})"))
            return findings
    if nnz > 1:
        # Per-row sortedness: a negative diff inside a row is unsorted, a
        # zero diff is a duplicate.  Positions where a row boundary falls
        # between indices[i] and indices[i + 1] are exempt.
        diffs = np.diff(indices)
        same_row = np.ones(nnz - 1, dtype=bool)
        boundaries = indptr[1:-1]
        boundaries = boundaries[(boundaries > 0) & (boundaries < nnz)]
        same_row[np.asarray(boundaries, dtype=np.int64) - 1] = False
        unsorted = same_row & (diffs < 0)
        duplicate = same_row & (diffs == 0)
        if np.any(unsorted):
            at = int(np.flatnonzero(unsorted)[0])
            row = int(np.searchsorted(indptr, at, side="right")) - 1
            findings.append(_finding(
                "sorted-indices", context,
                f"row {row}: column indices are unsorted "
                f"({int(indices[at])} followed by {int(indices[at + 1])})"))
        if np.any(duplicate):
            at = int(np.flatnonzero(duplicate)[0])
            row = int(np.searchsorted(indptr, at, side="right")) - 1
            findings.append(_finding(
                "duplicate-indices", context,
                f"row {row}: column index {int(indices[at])} appears "
                "more than once"))
    return findings


def require_valid_csr(matrix: Any, context: str = "csr") -> Any:
    """Raise :class:`StructureError` unless ``matrix`` is canonical CSR."""
    findings = check_csr(matrix, context=context)
    if findings:
        raise StructureError(
            f"{context}: CSR payload failed structural validation: "
            + "; ".join(f.format() for f in findings[:3]),
            findings)
    return matrix
