"""Pass 3 — the concurrency lint: lock discipline from annotations.

The serving layer's thread-shared state is guarded by convention: the
queue's condition, the batcher's stats lock, the registry and program
caches, the adjacency memo.  This pass turns the convention into a
checked contract.  Attributes (or module globals) annotated

.. code-block:: python

    self._entries = {}  # guarded-by: _lock

must only be *mutated* inside a ``with <lock>:`` block naming that lock
(reads stay unchecked — lock-free reads of monotonic counters are a
deliberate idiom here).  Three checks:

* ``guard-violation`` — a guarded name is assigned, augmented, deleted,
  subscript-written, or hit with a mutating method call (``append``,
  ``pop``, ``update``, …) outside a ``with`` on its lock;
* ``bare-acquire`` — an explicit ``.acquire()`` call that is not inside
  a ``try`` whose ``finally`` releases (``with`` is the house style);
* ``unjoined-thread`` — a non-daemon ``threading.Thread`` constructed in
  a file that never calls ``.join()`` (shutdown would hang).

Escape hatches: ``__init__`` / ``__post_init__`` bodies and module-level
statements are exempt (construction precedes sharing); a function whose
``def`` line carries ``# lockcheck: holds <lock>`` is analyzed as if
that lock were held (for helpers documented as called-with-lock-held);
a statement line carrying ``# lockcheck: ignore`` is skipped.

Everything is stdlib ``ast`` — no third-party linter involved.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.findings import Finding

_GUARD_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_]\w*)")
_HOLDS_RE = re.compile(r"#\s*lockcheck:\s*holds\s+([A-Za-z_]\w*)")
_IGNORE_RE = re.compile(r"#\s*lockcheck:\s*ignore")

#: Method calls treated as mutations of their receiver.
_MUTATORS = frozenset({
    "append", "appendleft", "add", "clear", "discard", "extend", "insert",
    "move_to_end", "pop", "popleft", "popitem", "remove", "setdefault",
    "sort", "update",
})

_EXEMPT_FUNCTIONS = frozenset({"__init__", "__post_init__"})


def _finding(check: str, path: Path, line: int, message: str) -> Finding:
    return Finding(pass_name="locks", check=check,
                   location=f"{path}:{line}", message=message)


def _last_name(node: ast.expr) -> str | None:
    """Trailing identifier of a Name / Attribute chain (``self._lock`` ->
    ``_lock``), or None for anything else."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _mutation_root(node: ast.expr) -> str | None:
    """Name being mutated by an assignment target, seen through any
    number of subscripts (``self._entries[key]`` -> ``_entries``)."""
    while isinstance(node, ast.Subscript):
        node = node.value
    return _last_name(node)


def _line_annotations(source: str) -> tuple[dict[int, str], dict[int, str],
                                            set[int]]:
    """Per-line ``guarded-by`` locks, ``holds`` locks and ignore lines."""
    guards: dict[int, str] = {}
    holds: dict[int, str] = {}
    ignores: set[int] = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        if match := _GUARD_RE.search(text):
            guards[lineno] = match.group(1)
        if match := _HOLDS_RE.search(text):
            holds[lineno] = match.group(1)
        if _IGNORE_RE.search(text):
            ignores.add(lineno)
    return guards, holds, ignores


def _collect_guarded(tree: ast.Module,
                     guards: dict[int, str]) -> dict[str, str]:
    """Map attribute/global name -> lock name, from annotated assignments.

    An annotation binds to the assignment statement on its line: the
    targets' roots (``self._entries`` -> ``_entries``, a bare module
    global -> its name) become guarded names.
    """
    guarded: dict[str, str] = {}
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            continue
        lock = None
        for lineno in range(node.lineno, (node.end_lineno or node.lineno) + 1):
            if lineno in guards:
                lock = guards[lineno]
                break
        if lock is None:
            continue
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        for target in targets:
            name = _mutation_root(target)
            if name is not None:
                guarded[name] = lock
    return guarded


def _with_locks(node: ast.With) -> set[str]:
    """Lock names entered by a ``with`` statement."""
    names = set()
    for item in node.items:
        expr = item.context_expr
        # ``with lock:`` / ``with self._lock:`` / ``with a, b:``; a call
        # like ``with lock_for(x):`` contributes its function name.
        if isinstance(expr, ast.Call):
            expr = expr.func
        name = _last_name(expr)
        if name is not None:
            names.add(name)
    return names


class _FileLint:
    def __init__(self, path: Path, source: str) -> None:
        self.path = path
        self.tree = ast.parse(source, filename=str(path))
        self.guards, self.holds, self.ignores = _line_annotations(source)
        self.guarded = _collect_guarded(self.tree, self.guards)
        self.findings: list[Finding] = []

    # -- statement walk with a held-lock set ---------------------------
    def run(self) -> list[Finding]:
        for node in self.tree.body:
            self._visit_toplevel(node)
        self._check_threads()
        self._check_acquires()
        return self.findings

    def _visit_toplevel(self, node: ast.stmt) -> None:
        # Module-level statements are exempt (import-time construction);
        # descend into defs looking for function bodies.
        if isinstance(node, ast.ClassDef):
            for child in node.body:
                self._visit_toplevel(child)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._enter_function(node)

    def _enter_function(self, node: ast.FunctionDef
                        | ast.AsyncFunctionDef) -> None:
        if node.name in _EXEMPT_FUNCTIONS:
            return
        held: set[str] = set()
        if (lock := self.holds.get(node.lineno)) is not None:
            held.add(lock)
        for statement in node.body:
            self._visit(statement, held)

    def _visit(self, node: ast.stmt, held: set[str]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def does not run under the enclosing with.
            self._enter_function(node)
            return
        if isinstance(node, ast.With):
            inner = held | _with_locks(node)
            for statement in node.body:
                self._visit(statement, inner)
            return
        self._check_statement(node, held)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self._visit(child, held)
            elif isinstance(child, ast.expr):
                self._check_expression_calls(child, held)

    # -- mutation detection --------------------------------------------
    def _check_statement(self, node: ast.stmt, held: set[str]) -> None:
        if node.lineno in self.ignores:
            return
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        for target in targets:
            name = _mutation_root(target)
            self._report_if_unguarded(name, node.lineno, held, "assigned")

    def _check_expression_calls(self, node: ast.expr,
                                held: set[str]) -> None:
        for call in (n for n in ast.walk(node) if isinstance(n, ast.Call)):
            if call.lineno in self.ignores:
                continue
            func = call.func
            if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                name = _mutation_root(func.value)
                self._report_if_unguarded(
                    name, call.lineno, held, f"mutated via .{func.attr}()")

    def _report_if_unguarded(self, name: str | None, lineno: int,
                             held: set[str], action: str) -> None:
        if name is None or name not in self.guarded:
            return
        lock = self.guarded[name]
        if lock not in held:
            self.findings.append(_finding(
                "guard-violation", self.path, lineno,
                f"{name} is {action} outside 'with {lock}:' "
                f"(declared guarded-by: {lock})"))

    # -- whole-file checks ---------------------------------------------
    def _check_threads(self) -> None:
        joins = any(isinstance(n, ast.Call)
                    and isinstance(n.func, ast.Attribute)
                    and n.func.attr == "join"
                    for n in ast.walk(self.tree))
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Call):
                continue
            if _last_name(node.func) != "Thread":
                continue
            if node.lineno in self.ignores:
                continue
            daemon = next((kw.value for kw in node.keywords
                           if kw.arg == "daemon"), None)
            is_daemon = (isinstance(daemon, ast.Constant)
                         and daemon.value is True)
            if not is_daemon and not joins:
                self.findings.append(_finding(
                    "unjoined-thread", self.path, node.lineno,
                    "non-daemon Thread constructed but no .join() call "
                    "appears in this file — shutdown would hang"))

    def _check_acquires(self) -> None:
        # try/finally ranges whose finally releases a lock.
        safe_ranges: list[tuple[int, int]] = []
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Try) and any(
                    isinstance(n, ast.Call)
                    and isinstance(n.func, ast.Attribute)
                    and n.func.attr == "release"
                    for stmt in node.finalbody for n in ast.walk(stmt)):
                # The idiom acquires on the line *before* the try, so the
                # safe range starts one line early.
                safe_ranges.append((node.lineno - 1, node.end_lineno
                                    or node.lineno))
        for node in ast.walk(self.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "acquire"):
                continue
            # Only lock-like receivers: plenty of APIs (refcount pins,
            # resource pools) also spell their verb "acquire".
            receiver = (_last_name(node.func.value) or "").lower()
            if not any(hint in receiver for hint in
                       ("lock", "condition", "cond", "sem", "mutex")):
                continue
            if node.lineno in self.ignores:
                continue
            if any(lo <= node.lineno <= hi for lo, hi in safe_ranges):
                continue
            self.findings.append(_finding(
                "bare-acquire", self.path, node.lineno,
                ".acquire() without a with-statement or a releasing "
                "try/finally — a raised exception would leak the lock"))


def _python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_file(path: Path) -> list[Finding]:
    """Lint one Python file; syntax errors are reported, not raised."""
    try:
        source = path.read_text(encoding="utf-8")
        return _FileLint(path, source).run()
    except (SyntaxError, UnicodeDecodeError, OSError) as error:
        return [_finding("unparseable", path, getattr(error, "lineno", 0)
                         or 0, f"could not analyze: {error}")]


def lint_paths(paths: Iterable[Path]) -> list[Finding]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    findings: list[Finding] = []
    for path in _python_files(paths):
        findings.extend(lint_file(path))
    return findings
