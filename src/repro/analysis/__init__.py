"""Static-analysis subsystem: IR verifier, structural checker, lock lint.

Three passes, one finding model (see :mod:`repro.analysis.findings`):

* pass 1, ``ir`` — :mod:`repro.analysis.verifier` proves compiled
  programs well-formed without executing them;
* pass 2, ``structure`` — :mod:`repro.analysis.structure` proves CSR
  payloads canonical at the trust boundaries;
* pass 3, ``locks`` — :mod:`repro.analysis.lockcheck` enforces the
  ``# guarded-by:`` lock-discipline annotations.

Surfaced as ``repro analyze`` (CI gate) and ``Session(verify=...)``
(runtime verification, memoized per program digest).
"""

from repro.analysis.findings import (AnalysisError, Finding, StructureError,
                                     VerificationError)
from repro.analysis.lockcheck import lint_file, lint_paths
from repro.analysis.structure import check_csr, require_valid_csr
from repro.analysis.verifier import (OFFSET_LIMIT, assert_program_valid,
                                     check_offset_arrays, require_offset,
                                     verify_arrays, verify_program)

__all__ = [
    "AnalysisError",
    "Finding",
    "StructureError",
    "VerificationError",
    "OFFSET_LIMIT",
    "assert_program_valid",
    "check_csr",
    "check_offset_arrays",
    "lint_file",
    "lint_paths",
    "require_offset",
    "require_valid_csr",
    "verify_arrays",
    "verify_program",
]
