"""Self-check drivers behind ``repro analyze --pass ir|structure``.

The IR verifier and the structural checker are *data* passes — they need
programs and matrices to look at.  For the CLI / CI gate we exercise
them against representative workloads built from the synthetic dataset
suite: the ir pass compiles SpGEMM programs at several tile sizes and
proves every invariant (including the full partial-product scatter); the
structure pass pushes matrices through the conversion, slicing and wire
round-trip paths and proves each result canonical.  A clean repo yields
zero findings; any regression in the compiler or the CSR plumbing shows
up as a named invariant failure.
"""

from __future__ import annotations

from repro.analysis.findings import Finding
from repro.analysis.structure import check_csr
from repro.analysis.verifier import verify_program
from repro.compiler.lowering import compile_spgemm
from repro.datasets.suite import load_dataset
from repro.sparse.convert import csr_to_csc

#: Datasets exercised by the self-checks — one power-law graph (monster
#: rows) and one near-regular mesh.
SELFCHECK_DATASETS = ("wiki-Vote", "poisson3Da")

#: MMH tile sizes exercised by the ir self-check.
SELFCHECK_TILES = (2, 8)


def ir_selfcheck(max_nodes: int = 192, seed: int = 0) -> list[Finding]:
    """Compile representative programs and run the full IR verifier."""
    findings: list[Finding] = []
    for name in SELFCHECK_DATASETS:
        dataset = load_dataset(name, max_nodes=max_nodes, seed=seed)
        a_csc = dataset.adjacency_csc()
        features = dataset.features(seed=seed + 7)
        for tile in SELFCHECK_TILES:
            program = compile_spgemm(a_csc, features, tile_size=tile,
                                     source=f"analyze:{name}:t{tile}")
            findings.extend(verify_program(program, level="full"))
    return findings


def structure_selfcheck(max_nodes: int = 192, seed: int = 0) -> list[Finding]:
    """Prove the CSR plumbing produces canonical structure end to end."""
    from repro.serve.wire import decode_csr, encode_csr

    findings: list[Finding] = []
    for name in SELFCHECK_DATASETS:
        dataset = load_dataset(name, max_nodes=max_nodes, seed=seed)
        adjacency = dataset.adjacency_csr()
        features = dataset.features(seed=seed + 7)
        findings.extend(check_csr(adjacency, f"{name}:adjacency"))
        findings.extend(check_csr(features, f"{name}:features"))

        # Conversion round trip (CSR -> CSC -> transpose-of-transpose).
        findings.extend(check_csr(
            csr_to_csc(adjacency).transpose(), f"{name}:csc-roundtrip"))

        # Shard-style slicing along both axes.
        half_rows = adjacency.shape[0] // 2
        findings.extend(check_csr(
            adjacency.row_slice(0, half_rows), f"{name}:row-slice"))
        half_cols = features.shape[1] // 2
        findings.extend(check_csr(
            features.col_range(0, max(half_cols, 1)), f"{name}:col-range"))

        # Wire-format round trip (the client trust boundary).
        decoded, _meta = decode_csr(encode_csr(features))
        findings.extend(check_csr(decoded, f"{name}:wire-roundtrip"))
    return findings
