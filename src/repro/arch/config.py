"""NeuraChip hardware configurations (Tables 2 and 3 of the paper).

Three SpGEMM configurations are defined — Tile-4, Tile-16 and Tile-64 — plus
the GNN-mode Tile-16 variant used for the Section 5.4 comparison against GNN
accelerators.  The values are transcribed from the paper; derived quantities
(total component counts) are exposed as properties so the benchmark harness
can regenerate both tables.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class NeuraCoreConfig:
    """Per-NeuraCore resources (Table 2, upper half).

    Attributes:
        pipeline_registers: architected registers per pipeline.
        pipelines: multiply pipelines per NeuraCore (Figure 6 shows the
            quad-pipeline layout used by the simulator).
        multipliers: scalar multipliers per NeuraCore.
        address_generators: address generation units per NeuraCore.
        ports: router ports per NeuraCore.
        register_file_bits: total register file capacity per pipeline in bits
            (Table 3, "Pipeline Register File").
    """

    pipeline_registers: int
    pipelines: int
    multipliers: int
    address_generators: int
    ports: int
    register_file_bits: int


@dataclass(frozen=True)
class NeuraMemConfig:
    """Per-NeuraMem resources (Table 2, lower half).

    Attributes:
        comparators: TAG comparators per hash engine comparator array.
        hash_engines: hash engines per NeuraMem (Figure 8 shows four).
        hashlines: hash lines (TAG/DATA/COUNTER triples) in the HashPad.
        accumulators: scalar accumulators per NeuraMem.
        ports: router ports per NeuraMem.
    """

    comparators: int
    hash_engines: int
    hashlines: int
    accumulators: int
    ports: int


@dataclass(frozen=True)
class NeuraChipConfig:
    """Chip-level configuration (Table 3).

    Attributes:
        name: configuration name ("Tile-4", "Tile-16", "Tile-64", ...).
        tile_count: number of tiles (each tile owns one HBM channel).
        cores_per_tile: NeuraCores per tile.
        mems_per_tile: NeuraMems per tile.
        routers_per_tile: on-chip routers per tile.
        memory_controllers: memory controllers (one per HBM channel).
        core: per-NeuraCore configuration.
        mem: per-NeuraMem configuration.
        frequency_ghz: chip clock frequency.
        hbm_bandwidth_gb_s: aggregate peak DRAM bandwidth in GB/s.
        hashpad_total_mb: total HashPad capacity (Table 3).
        peak_gflops: peak compute throughput (Table 5).
        mmh_tile_size: rows processed per MMH instruction (4 == MMH4).
        mapping_scheme: accumulation mapping scheme name.
        technology_nm: process node used for the area/power model.
    """

    name: str
    tile_count: int
    cores_per_tile: int
    mems_per_tile: int
    routers_per_tile: int
    memory_controllers: int
    core: NeuraCoreConfig
    mem: NeuraMemConfig
    frequency_ghz: float = 1.0
    hbm_bandwidth_gb_s: float = 128.0
    hashpad_total_mb: float = 0.0
    peak_gflops: float = 0.0
    mmh_tile_size: int = 4
    mapping_scheme: str = "drhm"
    technology_nm: int = 7
    notes: str = ""

    # ------------------------------------------------------------------
    # Derived totals (Table 3 rows)
    # ------------------------------------------------------------------
    @property
    def total_cores(self) -> int:
        """Total NeuraCores on the chip."""
        return self.tile_count * self.cores_per_tile

    @property
    def total_mems(self) -> int:
        """Total NeuraMems on the chip."""
        return self.tile_count * self.mems_per_tile

    @property
    def total_routers(self) -> int:
        """Total on-chip routers."""
        return self.tile_count * self.routers_per_tile

    @property
    def total_pipelines(self) -> int:
        """Total multiply pipelines across all NeuraCores."""
        return self.total_cores * self.core.pipelines

    @property
    def total_hash_engines(self) -> int:
        """Total hash engines across all NeuraMems."""
        return self.total_mems * self.mem.hash_engines

    @property
    def total_tag_comparators(self) -> int:
        """Total TAG comparators across all hash engines."""
        return self.total_hash_engines * self.mem.comparators

    @property
    def total_hashlines(self) -> int:
        """Total hash lines across all HashPads."""
        return self.total_mems * self.mem.hashlines

    @property
    def peak_bandwidth_bytes_per_cycle(self) -> float:
        """Aggregate HBM bandwidth expressed in bytes per clock cycle."""
        return self.hbm_bandwidth_gb_s * 1e9 / (self.frequency_ghz * 1e9)

    def with_mapping(self, scheme: str) -> "NeuraChipConfig":
        """Copy of this configuration with a different mapping scheme."""
        return replace(self, mapping_scheme=scheme)

    def with_mmh_tile(self, tile_size: int) -> "NeuraChipConfig":
        """Copy of this configuration with a different MMH tile size."""
        return replace(self, mmh_tile_size=tile_size)

    def table2_rows(self) -> dict[str, int]:
        """Per-component configuration rows (Table 2) for this tile size."""
        return {
            "NeuraCore/Pipeline Registers": self.core.pipeline_registers,
            "NeuraCore/Pipelines": self.core.pipelines,
            "NeuraCore/Multipliers": self.core.multipliers,
            "NeuraCore/Addr. Generators": self.core.address_generators,
            "NeuraCore/Ports": self.core.ports,
            "NeuraMem/Comparators": self.mem.comparators,
            "NeuraMem/Hash-Engines": self.mem.hash_engines,
            "NeuraMem/Hashlines": self.mem.hashlines,
            "NeuraMem/Accumulators": self.mem.accumulators,
            "NeuraMem/Ports": self.mem.ports,
        }

    def table3_rows(self) -> dict[str, float]:
        """Chip-level configuration rows (Table 3) for this tile size."""
        return {
            "Tile Count": self.tile_count,
            "NeuraCores per tile": self.cores_per_tile,
            "Total NeuraCores": self.total_cores,
            "NeuraMems per tile": self.mems_per_tile,
            "Total NeuraMems": self.total_mems,
            "Memory Controller Count": self.memory_controllers,
            "Routers per tile": self.routers_per_tile,
            "Total Routers": self.total_routers,
            "Total Pipelines": self.total_pipelines,
            "Pipeline Register File (bits)": self.core.register_file_bits,
            "Total Hash-Engines": self.total_hash_engines,
            "Hash-Engine comparators": self.mem.comparators,
            "Total TAG comparators": self.total_tag_comparators,
            "Total HashPad Size (MB)": self.hashpad_total_mb,
            "Max frequency (GHz)": self.frequency_ghz,
        }


# ----------------------------------------------------------------------
# Paper configurations.  The per-core pipeline count follows the Table 3
# "Total Pipelines" row (4 pipelines per NeuraCore — the quad-pipeline layout
# of Figure 6) rather than the Table 2 "Pipelines" row, which counts active
# multiply lanes; both values are retained (pipelines vs multipliers).
# ----------------------------------------------------------------------
TILE4 = NeuraChipConfig(
    name="Tile-4",
    tile_count=8,
    cores_per_tile=1,
    mems_per_tile=1,
    routers_per_tile=4,
    memory_controllers=8,
    core=NeuraCoreConfig(pipeline_registers=4, pipelines=4, multipliers=2,
                         address_generators=1, ports=4, register_file_bits=512),
    mem=NeuraMemConfig(comparators=2, hash_engines=2, hashlines=4096,
                       accumulators=128, ports=4),
    hashpad_total_mb=0.75,
    peak_gflops=8.0,
)

TILE16 = NeuraChipConfig(
    name="Tile-16",
    tile_count=8,
    cores_per_tile=4,
    mems_per_tile=4,
    routers_per_tile=8,
    memory_controllers=8,
    core=NeuraCoreConfig(pipeline_registers=8, pipelines=4, multipliers=4,
                         address_generators=2, ports=4, register_file_bits=1024),
    mem=NeuraMemConfig(comparators=4, hash_engines=4, hashlines=2048,
                       accumulators=256, ports=4),
    hashpad_total_mb=3.0,
    peak_gflops=32.0,
)

TILE64 = NeuraChipConfig(
    name="Tile-64",
    tile_count=8,
    cores_per_tile=16,
    mems_per_tile=16,
    routers_per_tile=32,
    memory_controllers=8,
    core=NeuraCoreConfig(pipeline_registers=16, pipelines=4, multipliers=8,
                         address_generators=2, ports=4, register_file_bits=2048),
    mem=NeuraMemConfig(comparators=8, hash_engines=8, hashlines=2048,
                       accumulators=512, ports=4),
    hashpad_total_mb=12.0,
    peak_gflops=128.0,
)

# Section 5.4: the GNN-comparison configuration uses 8 tiles of a 16x16
# NeuraCore grid with quad pipelines, fewer TAG comparators and port buffers,
# the same HashPad sizes, 8192 GFLOPs peak and 4.3 W average power.
GNN_TILE16 = NeuraChipConfig(
    name="GNN-Tile-16",
    tile_count=8,
    cores_per_tile=256,
    mems_per_tile=4,
    routers_per_tile=8,
    memory_controllers=8,
    core=NeuraCoreConfig(pipeline_registers=8, pipelines=4, multipliers=4,
                         address_generators=2, ports=4, register_file_bits=1024),
    mem=NeuraMemConfig(comparators=2, hash_engines=4, hashlines=2048,
                       accumulators=256, ports=2),
    hashpad_total_mb=3.0,
    peak_gflops=8192.0,
    notes="GNN accelerator comparison configuration (Section 5.4)",
)

_CONFIGS = {
    "tile-4": TILE4,
    "tile-16": TILE16,
    "tile-64": TILE64,
    "gnn-tile-16": GNN_TILE16,
}


def get_config(name: str) -> NeuraChipConfig:
    """Look up a configuration by name ('Tile-4', 'Tile-16', 'Tile-64', 'GNN-Tile-16')."""
    key = name.strip().lower()
    if key not in _CONFIGS:
        raise KeyError(f"unknown configuration {name!r}; "
                       f"choose from {sorted(_CONFIGS)}")
    return _CONFIGS[key]


def all_spgemm_configs() -> list[NeuraChipConfig]:
    """The three SpGEMM configurations in tile-size order."""
    return [TILE4, TILE16, TILE64]
