"""Architecture description: NeuraChip configurations and the MMH/HACC ISA."""

from repro.arch.config import (
    GNN_TILE16,
    NeuraChipConfig,
    NeuraCoreConfig,
    NeuraMemConfig,
    TILE4,
    TILE16,
    TILE64,
    get_config,
)
from repro.arch.isa import (
    HACCInstruction,
    MMHInstruction,
    Opcode,
    decode_hacc,
    decode_mmh,
    encode_hacc,
    encode_mmh,
)

__all__ = [
    "NeuraCoreConfig",
    "NeuraMemConfig",
    "NeuraChipConfig",
    "TILE4",
    "TILE16",
    "TILE64",
    "GNN_TILE16",
    "get_config",
    "Opcode",
    "MMHInstruction",
    "HACCInstruction",
    "encode_mmh",
    "decode_mmh",
    "encode_hacc",
    "decode_hacc",
]
