"""NeuraChip instruction set: MMH and HACC encode/decode.

Bit layouts follow Figures 7 and 9 of the paper.  Both instructions are 128
bits wide:

``MMH`` (matrix_mult_hash, Figure 7)::

    | opcode (8) | Reg0 (32) | Reg1 (22) | Reg2 (22) | Reg3 (22) | Reg4 (22) |

    Reg0 = base address, Reg1 = A data address, Reg2 = B column-index
    address, Reg3 = B data address, Reg4 = rolling-counter address
    (operand meanings from Algorithm 1).

``HACC`` (hash_accumulate, Figure 9)::

    | opcode (8) | Reg0 (32) | Reg1 (32) | Reg2 (32) | Reg3 (16) | unused (8) |

    Reg0 = TAG, Reg1 = DATA (raw float32 bits), Reg2 = write-back address,
    Reg3 = rolling-eviction COUNTER.

The simulator carries richer "macro-op" objects (see ``repro.compiler``); the
bit-exact encoders here exist so the ISA itself is testable and so binary
program dumps can be produced.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

INSTRUCTION_BITS = 128
_REG22_MASK = (1 << 22) - 1
_REG32_MASK = (1 << 32) - 1
_REG16_MASK = (1 << 16) - 1


class Opcode(enum.IntEnum):
    """Instruction opcodes of the extended ISA."""

    HALT = 0x00
    MMH1 = 0x10
    MMH2 = 0x11
    MMH4 = 0x12
    MMH8 = 0x13
    HACC = 0x20

    @classmethod
    def mmh_for_tile(cls, tile_size: int) -> "Opcode":
        """MMH opcode variant for a given tile size (1, 2, 4 or 8)."""
        table = {1: cls.MMH1, 2: cls.MMH2, 4: cls.MMH4, 8: cls.MMH8}
        if tile_size not in table:
            raise ValueError(f"unsupported MMH tile size {tile_size}; "
                             "must be one of 1, 2, 4, 8")
        return table[tile_size]

    @property
    def mmh_tile_size(self) -> int:
        """Tile size of an MMH opcode (raises for non-MMH opcodes)."""
        table = {Opcode.MMH1: 1, Opcode.MMH2: 2, Opcode.MMH4: 4, Opcode.MMH8: 8}
        if self not in table:
            raise ValueError(f"{self.name} is not an MMH opcode")
        return table[self]


@dataclass(frozen=True)
class MMHInstruction:
    """Decoded matrix_mult_hash instruction (address form, Figure 7)."""

    opcode: Opcode
    base_addr: int
    a_data_addr: int
    b_col_ind_addr: int
    b_data_addr: int
    roll_counter_addr: int

    @property
    def tile_size(self) -> int:
        """Rows/cols processed simultaneously (1, 2, 4, or 8)."""
        return self.opcode.mmh_tile_size

    @property
    def max_haccs(self) -> int:
        """Maximum HACC instructions this MMH can dispatch (tile_size^2)."""
        return self.tile_size * self.tile_size


@dataclass(frozen=True)
class HACCInstruction:
    """Decoded hash_accumulate instruction (Figure 9)."""

    tag: int
    data: float
    writeback_addr: int
    counter: int
    opcode: Opcode = Opcode.HACC


def _float_to_bits(value: float) -> int:
    """Reinterpret a python float as 32-bit IEEE-754 bits."""
    return struct.unpack("<I", struct.pack("<f", float(value)))[0]


def _bits_to_float(bits: int) -> float:
    """Reinterpret 32-bit IEEE-754 bits as a python float."""
    return struct.unpack("<f", struct.pack("<I", bits & _REG32_MASK))[0]


def encode_mmh(instr: MMHInstruction) -> int:
    """Encode an MMH instruction into its 128-bit integer representation."""
    for name, value in (("base_addr", instr.base_addr),):
        if not 0 <= value <= _REG32_MASK:
            raise ValueError(f"{name} must fit in 32 bits, got {value}")
    for name, value in (("a_data_addr", instr.a_data_addr),
                        ("b_col_ind_addr", instr.b_col_ind_addr),
                        ("b_data_addr", instr.b_data_addr),
                        ("roll_counter_addr", instr.roll_counter_addr)):
        if not 0 <= value <= _REG22_MASK:
            raise ValueError(f"{name} must fit in 22 bits, got {value}")
    word = int(instr.opcode) & 0xFF
    word = (word << 32) | (instr.base_addr & _REG32_MASK)
    word = (word << 22) | (instr.a_data_addr & _REG22_MASK)
    word = (word << 22) | (instr.b_col_ind_addr & _REG22_MASK)
    word = (word << 22) | (instr.b_data_addr & _REG22_MASK)
    word = (word << 22) | (instr.roll_counter_addr & _REG22_MASK)
    return word


def decode_mmh(word: int) -> MMHInstruction:
    """Decode a 128-bit integer into an MMH instruction."""
    roll_counter_addr = word & _REG22_MASK
    word >>= 22
    b_data_addr = word & _REG22_MASK
    word >>= 22
    b_col_ind_addr = word & _REG22_MASK
    word >>= 22
    a_data_addr = word & _REG22_MASK
    word >>= 22
    base_addr = word & _REG32_MASK
    word >>= 32
    opcode = Opcode(word & 0xFF)
    if opcode not in (Opcode.MMH1, Opcode.MMH2, Opcode.MMH4, Opcode.MMH8):
        raise ValueError(f"word does not encode an MMH instruction (opcode={opcode})")
    return MMHInstruction(opcode=opcode, base_addr=base_addr,
                          a_data_addr=a_data_addr, b_col_ind_addr=b_col_ind_addr,
                          b_data_addr=b_data_addr, roll_counter_addr=roll_counter_addr)


def encode_hacc(instr: HACCInstruction) -> int:
    """Encode a HACC instruction into its 128-bit integer representation."""
    if not 0 <= instr.tag <= _REG32_MASK:
        raise ValueError(f"tag must fit in 32 bits, got {instr.tag}")
    if not 0 <= instr.writeback_addr <= _REG32_MASK:
        raise ValueError(f"writeback_addr must fit in 32 bits, got {instr.writeback_addr}")
    if not 0 <= instr.counter <= _REG16_MASK:
        raise ValueError(f"counter must fit in 16 bits, got {instr.counter}")
    word = int(Opcode.HACC) & 0xFF
    word = (word << 32) | (instr.tag & _REG32_MASK)
    word = (word << 32) | _float_to_bits(instr.data)
    word = (word << 32) | (instr.writeback_addr & _REG32_MASK)
    word = (word << 16) | (instr.counter & _REG16_MASK)
    word = word << 8  # unused low byte
    return word


def decode_hacc(word: int) -> HACCInstruction:
    """Decode a 128-bit integer into a HACC instruction."""
    word >>= 8  # discard unused byte
    counter = word & _REG16_MASK
    word >>= 16
    writeback_addr = word & _REG32_MASK
    word >>= 32
    data_bits = word & _REG32_MASK
    word >>= 32
    tag = word & _REG32_MASK
    word >>= 32
    opcode = Opcode(word & 0xFF)
    if opcode is not Opcode.HACC:
        raise ValueError(f"word does not encode a HACC instruction (opcode={opcode})")
    return HACCInstruction(tag=tag, data=_bits_to_float(data_bits),
                           writeback_addr=writeback_addr, counter=counter)


def encode_to_bytes(word: int) -> bytes:
    """Serialise a 128-bit instruction word to 16 little-endian bytes."""
    return word.to_bytes(INSTRUCTION_BITS // 8, "little")


def decode_from_bytes(blob: bytes) -> int:
    """Deserialise 16 little-endian bytes to a 128-bit instruction word."""
    if len(blob) != INSTRUCTION_BITS // 8:
        raise ValueError(f"expected {INSTRUCTION_BITS // 8} bytes, got {len(blob)}")
    return int.from_bytes(blob, "little")
