"""Unit tests for sparse format conversions."""

import numpy as np
import pytest

from repro.sparse.convert import (
    coo_to_csc,
    coo_to_csr,
    csc_to_coo,
    csc_to_csr,
    csr_to_coo,
    csr_to_csc,
    dense_to_coo,
)
from repro.sparse.coo import COOMatrix


class TestCOOToCompressed:
    def test_coo_to_csr_matches_dense(self, small_coo, small_dense):
        assert np.array_equal(coo_to_csr(small_coo).to_dense(), small_dense)

    def test_coo_to_csc_matches_dense(self, small_coo, small_dense):
        assert np.array_equal(coo_to_csc(small_coo).to_dense(), small_dense)

    def test_duplicates_are_summed_in_csr(self):
        coo = COOMatrix(np.array([0, 0]), np.array([1, 1]),
                        np.array([1.5, 2.5]), (2, 2))
        csr = coo_to_csr(coo)
        assert csr.nnz == 1
        assert csr.get(0, 1) == pytest.approx(4.0)

    def test_duplicates_are_summed_in_csc(self):
        coo = COOMatrix(np.array([1, 1]), np.array([0, 0]),
                        np.array([1.0, 1.0]), (2, 2))
        csc = coo_to_csc(coo)
        assert csc.nnz == 1
        assert csc.get(1, 0) == pytest.approx(2.0)

    def test_empty_coo_conversion(self):
        coo = COOMatrix.empty((3, 4))
        assert coo_to_csr(coo).nnz == 0
        assert coo_to_csc(coo).nnz == 0

    def test_indices_sorted_within_rows(self, random_coo):
        csr = coo_to_csr(random_coo)
        for i in range(csr.shape[0]):
            cols, _ = csr.row(i)
            assert np.all(np.diff(cols) > 0)

    def test_indices_sorted_within_cols(self, random_coo):
        csc = coo_to_csc(random_coo)
        for j in range(csc.shape[1]):
            rows, _ = csc.col(j)
            assert np.all(np.diff(rows) > 0)


class TestCompressedToCOO:
    def test_csr_roundtrip(self, random_coo):
        dense = random_coo.to_dense()
        back = csr_to_coo(coo_to_csr(random_coo))
        assert np.allclose(back.to_dense(), dense)

    def test_csc_roundtrip(self, random_coo):
        dense = random_coo.to_dense()
        back = csc_to_coo(coo_to_csc(random_coo))
        assert np.allclose(back.to_dense(), dense)


class TestCrossConversions:
    def test_csr_to_csc_preserves_matrix(self, random_coo):
        csr = coo_to_csr(random_coo)
        csc = csr_to_csc(csr)
        assert np.allclose(csc.to_dense(), csr.to_dense())

    def test_csc_to_csr_preserves_matrix(self, random_coo):
        csc = coo_to_csc(random_coo)
        csr = csc_to_csr(csc)
        assert np.allclose(csr.to_dense(), csc.to_dense())

    def test_dense_to_coo(self, small_dense):
        assert np.array_equal(dense_to_coo(small_dense).to_dense(), small_dense)

    def test_rectangular_matrices(self):
        rng = np.random.default_rng(0)
        dense = (rng.random((5, 9)) < 0.3) * rng.random((5, 9))
        coo = dense_to_coo(dense)
        assert np.allclose(coo_to_csr(coo).to_dense(), dense)
        assert np.allclose(coo_to_csc(coo).to_dense(), dense)
