"""Unit tests for the COO sparse format."""

import numpy as np
import pytest

from repro.sparse.coo import COOMatrix


class TestConstruction:
    def test_from_dense_roundtrip(self, small_dense):
        coo = COOMatrix.from_dense(small_dense)
        assert np.array_equal(coo.to_dense(), small_dense)

    def test_from_dense_rejects_1d(self):
        with pytest.raises(ValueError):
            COOMatrix.from_dense(np.ones(4))

    def test_empty_matrix(self):
        coo = COOMatrix.empty((3, 5))
        assert coo.nnz == 0
        assert coo.shape == (3, 5)
        assert np.array_equal(coo.to_dense(), np.zeros((3, 5)))

    def test_from_edges_defaults_to_unit_weights(self):
        coo = COOMatrix.from_edges([(0, 1), (1, 2)], shape=(3, 3))
        assert coo.nnz == 2
        assert np.all(coo.data == 1.0)

    def test_from_edges_empty(self):
        coo = COOMatrix.from_edges([], shape=(3, 3))
        assert coo.nnz == 0

    def test_from_edges_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            COOMatrix.from_edges(np.zeros((2, 3), dtype=np.int64), shape=(3, 3))

    def test_out_of_bounds_row_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix(np.array([5]), np.array([0]), np.array([1.0]), (3, 3))

    def test_out_of_bounds_col_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix(np.array([0]), np.array([7]), np.array([1.0]), (3, 3))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix(np.array([0, 1]), np.array([0]), np.array([1.0]), (3, 3))


class TestProperties:
    def test_nnz(self, small_coo):
        assert small_coo.nnz == 7

    def test_sparsity(self, small_coo):
        assert small_coo.sparsity == pytest.approx(1.0 - 7 / 16)

    def test_sparsity_of_empty_shape(self):
        coo = COOMatrix.empty((0, 0))
        assert coo.sparsity == 0.0


class TestOperations:
    def test_sum_duplicates_merges_entries(self):
        coo = COOMatrix(np.array([0, 0, 1]), np.array([1, 1, 0]),
                        np.array([2.0, 3.0, 4.0]), (2, 2))
        merged = coo.sum_duplicates()
        assert merged.nnz == 2
        assert merged.to_dense()[0, 1] == pytest.approx(5.0)

    def test_sum_duplicates_on_empty(self):
        merged = COOMatrix.empty((2, 2)).sum_duplicates()
        assert merged.nnz == 0

    def test_prune_removes_small_entries(self):
        coo = COOMatrix(np.array([0, 1]), np.array([0, 1]),
                        np.array([1e-12, 2.0]), (2, 2))
        pruned = coo.prune(tol=1e-9)
        assert pruned.nnz == 1
        assert pruned.to_dense()[1, 1] == pytest.approx(2.0)

    def test_transpose_swaps_shape_and_values(self, small_coo, small_dense):
        transposed = small_coo.transpose()
        assert transposed.shape == (small_coo.shape[1], small_coo.shape[0])
        assert np.array_equal(transposed.to_dense(), small_dense.T)

    def test_copy_is_independent(self, small_coo):
        copy = small_coo.copy()
        copy.data[0] = 99.0
        assert small_coo.data[0] != 99.0

    def test_equality_ignores_entry_order(self):
        a = COOMatrix(np.array([0, 1]), np.array([1, 0]),
                      np.array([2.0, 3.0]), (2, 2))
        b = COOMatrix(np.array([1, 0]), np.array([0, 1]),
                      np.array([3.0, 2.0]), (2, 2))
        assert a == b

    def test_equality_shape_mismatch(self, small_coo):
        other = COOMatrix.empty((5, 5))
        assert small_coo != other

    def test_to_dense_sums_duplicates(self):
        coo = COOMatrix(np.array([0, 0]), np.array([0, 0]),
                        np.array([1.0, 2.0]), (1, 1))
        assert coo.to_dense()[0, 0] == pytest.approx(3.0)
