"""Row-shard planner: balance and the degenerate-input regressions."""

import numpy as np
import pytest

from repro.core import Session, SpGEMMSpec
from repro.sparse.convert import csr_vstack
from repro.sparse.csr import CSRMatrix
from repro.sparse.partition import (
    estimate_row_partial_products,
    plan_row_shards,
    shard_partial_products,
)


def csr_from_dense(dense):
    from repro.sparse.convert import coo_to_csr, dense_to_coo

    return coo_to_csr(dense_to_coo(np.asarray(dense, dtype=float)))


def empty_csr(n_rows, n_cols):
    return CSRMatrix(np.zeros(n_rows + 1, dtype=np.int64),
                     np.zeros(0, dtype=np.int64),
                     np.zeros(0, dtype=np.float64), (n_rows, n_cols))


class TestDegenerateShapes:
    """The three shapes from the issue: more shards than rows, all-empty
    rows, and an empty A must never produce zero-work shards."""

    def test_more_shards_than_rows_returns_fewer(self):
        matrix = csr_from_dense(np.eye(3))
        ranges = plan_row_shards(matrix, 16)
        assert len(ranges) == 3
        assert ranges[0][0] == 0 and ranges[-1][1] == 3

    def test_all_empty_rows_collapse_to_one_shard(self):
        matrix = empty_csr(5, 5)
        assert plan_row_shards(matrix, 4) == [(0, 5)]
        assert plan_row_shards(matrix, 4, matrix) == [(0, 5)]

    def test_zero_row_matrix_yields_degenerate_range(self):
        matrix = empty_csr(0, 5)
        assert plan_row_shards(matrix, 4) == [(0, 0)]

    def test_empty_product_falls_back_to_nnz_weights(self):
        # A has entries but A @ B is structurally empty: shard by nnz of A.
        a = csr_from_dense([[1.0, 0.0], [0.0, 1.0]])
        b = empty_csr(2, 3)
        ranges = plan_row_shards(a, 2, b)
        assert ranges == [(0, 1), (1, 2)]

    def test_no_zero_work_shards_with_empty_row_runs(self):
        # Rows 0-1 and 4-5 are empty; only rows 2 and 3 carry work.  The
        # old planner forced 4 shards and emitted zero-work slices.
        dense = np.zeros((6, 6))
        dense[2, 0] = dense[3, 1] = 1.0
        matrix = csr_from_dense(dense)
        ranges = plan_row_shards(matrix, 4)
        assert len(ranges) <= 2
        nnz = matrix.row_nnz_counts()
        for lo, hi in ranges:
            assert int(nnz[lo:hi].sum()) > 0
        # Coverage is still exact.
        assert ranges[0][0] == 0 and ranges[-1][1] == 6
        for (_, prev_hi), (lo, _) in zip(ranges, ranges[1:]):
            assert lo == prev_hi

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError, match="n_shards"):
            plan_row_shards(csr_from_dense(np.eye(2)), 0)

    def test_degenerate_plans_reassemble(self):
        dense = np.zeros((8, 8))
        dense[0, 1] = dense[7, 2] = 1.0
        matrix = csr_from_dense(dense)
        ranges = plan_row_shards(matrix, 5)
        stacked = csr_vstack([matrix.row_slice(lo, hi) for lo, hi in ranges])
        assert np.array_equal(stacked.to_dense(), matrix.to_dense())


class TestSessionDegenerateSharding:
    """Degenerate plans must flow through compile / csr_vstack cleanly."""

    def test_all_empty_matrix_sharded_run(self):
        matrix = empty_csr(5, 5)
        with Session("Tile-4", backend="analytic") as session:
            whole = session.run(SpGEMMSpec(a=matrix, verify=False))
            sharded = session.run(SpGEMMSpec(a=matrix, shards=3,
                                             verify=False))
        assert sharded.metrics == whole.metrics
        assert sharded.provenance.shards == 1

    def test_single_effective_shard_runs_unsharded(self):
        matrix = csr_from_dense([[1.0]])
        with Session("Tile-4", backend="analytic") as session:
            result = session.run(SpGEMMSpec(a=matrix, shards=8,
                                            verify=False))
        assert result.provenance.shards == 1
        assert result.metrics["output_nnz"] == 1

    def test_sparse_rows_sharded_matches_unsharded(self):
        dense = np.zeros((10, 10))
        dense[3, 4] = 2.0
        dense[4, 3] = 1.0
        dense[9, 0] = 5.0
        matrix = csr_from_dense(dense)
        with Session("Tile-4", backend="analytic") as session:
            whole = session.run(SpGEMMSpec(a=matrix, verify=False))
            sharded = session.run(SpGEMMSpec(a=matrix, shards=6,
                                             verify=False))
        assert np.array_equal(sharded.output.to_dense(),
                              whole.output.to_dense())
        assert sharded.metrics["partial_products"] == \
            whole.metrics["partial_products"]


class TestShardPartialProducts:
    def test_totals_match_estimate(self):
        rng = np.random.default_rng(3)
        dense = (rng.random((12, 12)) < 0.3) * rng.random((12, 12))
        matrix = csr_from_dense(dense)
        ranges = plan_row_shards(matrix, 3, matrix)
        loads = shard_partial_products(matrix, ranges, matrix)
        weights = estimate_row_partial_products(matrix, matrix)
        assert int(loads.sum()) == int(weights.sum())
        assert len(loads) == len(ranges)
