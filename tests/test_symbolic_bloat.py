"""Unit tests for symbolic SpGEMM and the memory-bloat analysis (Table 1)."""

import numpy as np
import pytest

from repro.sparse.bloat import (
    analytic_bloat_estimate,
    bloat_percent,
    bloat_report,
    partial_product_count,
)
from repro.sparse.convert import csr_to_csc
from repro.sparse.csr import CSRMatrix
from repro.sparse.spgemm import spgemm_row_wise
from repro.sparse.symbolic import symbolic_spgemm, symbolic_spgemm_from_csc


class TestSymbolic:
    def test_structure_matches_numeric_product(self, random_pair):
        a, b = random_pair
        symbolic = symbolic_spgemm(a, b)
        numeric = spgemm_row_wise(a, b)
        dense = numeric.matrix.to_dense()
        assert symbolic.nnz == numeric.output_nnz
        for (row, col) in symbolic.entries:
            assert dense[row, col] != 0.0 or True  # structural nnz may cancel numerically

    def test_total_partial_products_matches_numeric(self, random_pair):
        a, b = random_pair
        symbolic = symbolic_spgemm(a, b)
        numeric = spgemm_row_wise(a, b)
        assert symbolic.total_partial_products == numeric.partial_products

    def test_counters_sum_to_partial_products(self, random_pair):
        a, b = random_pair
        symbolic = symbolic_spgemm(a, b)
        assert sum(symbolic.entries.values()) == symbolic.total_partial_products

    def test_csc_variant_agrees_with_csr_variant(self, random_pair):
        a, b = random_pair
        from_csr = symbolic_spgemm(a, b)
        from_csc = symbolic_spgemm_from_csc(csr_to_csc(a), b)
        assert from_csr.entries == from_csc.entries
        assert from_csr.total_partial_products == from_csc.total_partial_products

    def test_counter_lookup(self, random_pair):
        a, b = random_pair
        symbolic = symbolic_spgemm(a, b)
        some_key = next(iter(symbolic.entries))
        assert symbolic.counter(*some_key) == symbolic.entries[some_key]
        assert symbolic.counter(10_000, 10_000) == 0

    def test_counters_for_row(self, random_pair):
        a, b = random_pair
        symbolic = symbolic_spgemm(a, b)
        row = next(iter(symbolic.entries))[0]
        per_row = symbolic.counters_for_row(row)
        assert per_row
        for col, count in per_row.items():
            assert symbolic.entries[(row, col)] == count

    def test_row_nnz_counts(self, random_pair):
        a, b = random_pair
        symbolic = symbolic_spgemm(a, b)
        assert int(symbolic.row_nnz_counts().sum()) == symbolic.nnz

    def test_dimension_mismatch(self):
        a = CSRMatrix.from_dense(np.ones((2, 3)))
        with pytest.raises(ValueError):
            symbolic_spgemm(a, a)


class TestBloat:
    def test_partial_product_count_identity(self):
        eye = CSRMatrix.from_dense(np.eye(5))
        assert partial_product_count(eye, eye) == 5

    def test_identity_has_zero_bloat(self):
        eye = CSRMatrix.from_dense(np.eye(5))
        assert bloat_percent(eye) == pytest.approx(0.0)

    def test_bloat_matches_dataflow_measurement(self, random_pair):
        a, b = random_pair
        numeric = spgemm_row_wise(a, b)
        assert bloat_percent(a, b) == pytest.approx(numeric.bloat_percent)

    def test_dense_square_has_positive_bloat(self):
        dense = CSRMatrix.from_dense(np.ones((6, 6)))
        # Every output element receives 6 partial products -> 500% bloat.
        assert bloat_percent(dense) == pytest.approx(500.0)

    def test_bloat_report_fields(self, random_coo):
        from repro.sparse.convert import coo_to_csr

        a = coo_to_csr(random_coo)
        report = bloat_report("probe", a)
        assert report.name == "probe"
        assert report.node_count == a.shape[0]
        assert report.edge_count == a.nnz
        assert report.partial_products >= report.output_nnz
        row = report.as_row()
        assert set(row) == {"dataset", "node_count", "edge_count",
                            "sparsity_percent", "bloat_percent"}

    def test_empty_matrix_bloat_is_zero(self):
        empty = CSRMatrix.empty((4, 4))
        assert bloat_percent(empty) == 0.0

    def test_analytic_estimate_monotone_in_density(self):
        sparse = analytic_bloat_estimate(10_000, 20_000, degree_cv=1.0)
        dense = analytic_bloat_estimate(10_000, 200_000, degree_cv=1.0)
        assert dense > sparse >= 0.0

    def test_analytic_estimate_handles_degenerate_inputs(self):
        assert analytic_bloat_estimate(0, 0) == 0.0
        assert analytic_bloat_estimate(10, 0) == 0.0
