"""Integration tests: full-chip cycle simulation of compiled programs."""

import numpy as np
import pytest

from repro.arch.config import TILE16, TILE4
from repro.compiler import compile_spgemm
from repro.datasets import load_dataset
from repro.datasets.features import feature_matrix
from repro.sim.accelerator import NeuraChipAccelerator
from repro.sim.functional import FunctionalAccelerator
from repro.sim.params import SimulationParams


@pytest.fixture(scope="module")
def small_program():
    dataset = load_dataset("wiki-Vote", max_nodes=80, seed=2)
    return compile_spgemm(dataset.adjacency_csc(), dataset.adjacency_csr(),
                          tile_size=4, source="wiki-Vote-small")


class TestCorrectness:
    def test_rolling_eviction_output_matches_reference(self, small_program):
        report = NeuraChipAccelerator(TILE4).run(small_program)
        assert report.correct is True
        assert report.max_abs_error < 1e-9

    def test_barrier_eviction_output_matches_reference(self, small_program):
        report = NeuraChipAccelerator(TILE4, eviction_mode="barrier").run(small_program)
        assert report.correct is True

    @pytest.mark.parametrize("scheme", ["ring", "modular", "random", "drhm"])
    def test_every_mapping_scheme_is_correct(self, small_program, scheme):
        report = NeuraChipAccelerator(TILE4, mapping_scheme=scheme).run(small_program)
        assert report.correct is True, scheme

    def test_tiny_hashpad_forces_spills_but_stays_correct(self, small_program):
        from dataclasses import replace

        from repro.arch.config import NeuraMemConfig

        tiny_mem = NeuraMemConfig(comparators=2, hash_engines=2, hashlines=4,
                                  accumulators=16, ports=4)
        config = replace(TILE4, mem=tiny_mem, name="Tile-4-tinypad")
        report = NeuraChipAccelerator(config).run(small_program)
        assert report.spills > 0
        assert report.correct is True

    def test_gcn_aggregation_program_is_correct(self):
        dataset = load_dataset("cora", max_nodes=96, seed=1)
        features = feature_matrix(dataset.n_nodes, 12, density=0.4)
        program = compile_spgemm(dataset.adjacency_csc(), features, tile_size=4)
        report = NeuraChipAccelerator(TILE4).run(program)
        assert report.correct is True

    def test_empty_program_completes(self):
        from repro.sparse.csr import CSRMatrix
        from repro.sparse.convert import coo_to_csc

        empty = CSRMatrix.empty((16, 16))
        program = compile_spgemm(coo_to_csc(empty.to_coo()), empty)
        report = NeuraChipAccelerator(TILE4).run(program)
        assert report.mmh_instructions == 0
        assert report.output_nnz == 0


class TestReportContents:
    def test_instruction_counts_match_program(self, small_program):
        report = NeuraChipAccelerator(TILE4).run(small_program, verify=False)
        assert report.mmh_instructions == small_program.n_instructions
        assert report.hacc_instructions == small_program.total_partial_products
        assert report.evictions >= small_program.output_nnz

    def test_throughput_metrics_are_consistent(self, small_program):
        report = NeuraChipAccelerator(TILE4).run(small_program, verify=False)
        assert report.cycles > 0
        assert report.ipc == pytest.approx(report.mmh_instructions / report.cycles)
        assert report.gflops == pytest.approx(2 * report.gops, rel=1e-6)
        assert report.memory_traffic_bytes > 0
        assert report.noc_flits >= small_program.total_partial_products

    def test_histograms_populated(self, small_program):
        report = NeuraChipAccelerator(TILE4).run(small_program, verify=False)
        assert report.mmh_cpi_histogram.total_observations == report.mmh_instructions
        assert report.hacc_cpi_histogram.total_observations == report.hacc_instructions

    def test_utilizations_in_range(self, small_program):
        report = NeuraChipAccelerator(TILE4).run(small_program, verify=False)
        assert 0.0 <= report.core_utilization <= 1.0
        assert 0.0 <= report.mem_utilization <= 1.0
        assert 0.0 <= report.hashpad_occupancy_fraction <= 1.0

    def test_speedup_over_helper(self, small_program):
        fast = NeuraChipAccelerator(TILE16).run(small_program, verify=False)
        slow = NeuraChipAccelerator(TILE4).run(small_program, verify=False)
        assert fast.speedup_over(slow) > 1.0
        assert slow.speedup_over(fast) < 1.0


class TestArchitecturalTrends:
    """The relative effects the paper reports must hold in the simulator."""

    def test_larger_tiles_are_faster(self, small_program):
        tile4 = NeuraChipAccelerator(TILE4).run(small_program, verify=False)
        tile16 = NeuraChipAccelerator(TILE16).run(small_program, verify=False)
        assert tile16.cycles < tile4.cycles

    def test_rolling_eviction_lowers_hacc_latency(self, small_program):
        rolling = NeuraChipAccelerator(TILE16).run(small_program, verify=False)
        barrier = NeuraChipAccelerator(TILE16, eviction_mode="barrier").run(
            small_program, verify=False)
        assert rolling.hacc_cpi_mean < barrier.hacc_cpi_mean

    def test_rolling_eviction_reduces_hashpad_occupancy(self, small_program):
        rolling = NeuraChipAccelerator(TILE16).run(small_program, verify=False)
        barrier = NeuraChipAccelerator(TILE16, eviction_mode="barrier").run(
            small_program, verify=False)
        assert rolling.peak_hashpad_occupancy < barrier.peak_hashpad_occupancy

    def test_mmh_cpi_grows_with_tile_size(self):
        dataset = load_dataset("wiki-Vote", max_nodes=80, seed=2)
        cpis = []
        for tile in (1, 4):
            program = compile_spgemm(dataset.adjacency_csc(),
                                     dataset.adjacency_csr(), tile_size=tile)
            report = NeuraChipAccelerator(TILE16).run(program, verify=False)
            cpis.append(report.mmh_cpi_mean)
        assert cpis[1] > cpis[0]

    def test_slower_memory_increases_stalls(self, small_program):
        fast = NeuraChipAccelerator(TILE4).run(small_program, verify=False)
        slow_params = SimulationParams().scaled(hbm_row_hit_cycles=120,
                                                hbm_row_miss_cycles=240,
                                                hbm_bytes_per_cycle_per_channel=2.0)
        slow = NeuraChipAccelerator(TILE4, params=slow_params).run(small_program,
                                                                   verify=False)
        assert slow.stall_cycles > fast.stall_cycles
        assert slow.cycles > fast.cycles


class TestFunctionalModel:
    def test_functional_matches_reference(self, small_program):
        report = FunctionalAccelerator(TILE16).run(small_program)
        assert np.allclose(report.output, small_program.reference_result())
        assert report.total_partial_products == small_program.total_partial_products

    @pytest.mark.parametrize("scheme", ["ring", "modular", "random", "drhm"])
    def test_functional_correct_for_every_mapping(self, small_program, scheme):
        report = FunctionalAccelerator(TILE16, mapping_scheme=scheme).run(small_program)
        assert np.allclose(report.output, small_program.reference_result())

    def test_functional_tracks_load_balance(self, small_program):
        report = FunctionalAccelerator(TILE16).run(small_program)
        assert report.per_mem_haccs.sum() == small_program.total_partial_products
        assert report.load_imbalance >= 1.0

    def test_functional_spills_with_tiny_pad(self, small_program):
        from dataclasses import replace

        from repro.arch.config import NeuraMemConfig

        tiny_mem = NeuraMemConfig(comparators=2, hash_engines=2, hashlines=2,
                                  accumulators=16, ports=4)
        config = replace(TILE4, mem=tiny_mem, name="Tile-4-tinypad")
        report = FunctionalAccelerator(config).run(small_program)
        assert report.spills > 0
        assert np.allclose(report.output, small_program.reference_result())

    def test_functional_agrees_with_cycle_simulator(self, small_program):
        functional = FunctionalAccelerator(TILE4).run(small_program)
        cycle = NeuraChipAccelerator(TILE4).run(small_program)
        assert cycle.correct is True
        assert np.allclose(functional.output, small_program.reference_result())
