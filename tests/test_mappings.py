"""Unit tests for the compute-mapping schemes (Sections 2.4 / 3.5)."""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.hashing.balance import (
    compare_schemes,
    load_balance_report,
    mapping_heatmap,
    summarize_counts,
)
from repro.hashing.mappings import (
    DynamicReseedHashMapping,
    ModularHashMapping,
    RandomLookupMapping,
    RingHashMapping,
    make_mapping,
)


class TestFactory:
    def test_make_mapping_by_name(self):
        for name in ("ring", "modular", "random", "drhm"):
            scheme = make_mapping(name, 16)
            assert scheme.name == name
            assert scheme.n_resources == 16

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            make_mapping("quantum", 8)

    def test_invalid_resource_count(self):
        with pytest.raises(ValueError):
            RingHashMapping(0)


class TestRing:
    def test_modulo_behaviour(self):
        scheme = RingHashMapping(8)
        assert scheme.map(0) == 0
        assert scheme.map(9) == 1
        assert scheme.map(8 * 5) == 0

    def test_strided_tags_hit_few_resources(self):
        scheme = RingHashMapping(16)
        hits = {scheme.map(tag) for tag in range(0, 1600, 16)}
        assert len(hits) == 1  # the hot-spot weakness of ring mapping

    def test_no_lookup_state(self):
        assert RingHashMapping(8).lookup_table_bytes() == 0


class TestModular:
    def test_in_range(self):
        scheme = ModularHashMapping(12)
        for tag in range(500):
            assert 0 <= scheme.map(tag) < 12

    def test_invalid_prime(self):
        with pytest.raises(ValueError):
            ModularHashMapping(8, prime=1)

    def test_consistency(self):
        scheme = ModularHashMapping(8)
        assert scheme.map(12345) == scheme.map(12345)


class TestRandomLookup:
    def test_consistency_via_table(self):
        scheme = RandomLookupMapping(8, seed=1)
        first = scheme.map(999)
        assert all(scheme.map(999) == first for _ in range(10))

    def test_table_grows_with_distinct_tags(self):
        scheme = RandomLookupMapping(8, seed=1)
        for tag in range(100):
            scheme.map(tag)
        assert scheme.lookup_table_bytes() == 100 * 8

    def test_distribution_roughly_uniform(self):
        scheme = RandomLookupMapping(4, seed=0)
        counts = np.bincount([scheme.map(t) for t in range(4000)], minlength=4)
        assert counts.min() > 800


class TestDRHM:
    def test_in_range_and_consistent_before_reseed(self):
        scheme = DynamicReseedHashMapping(16, seed=3)
        values = [scheme.map(tag) for tag in range(200)]
        assert all(0 <= v < 16 for v in values)
        assert values == [scheme.map(tag) for tag in range(200)]

    def test_reseed_changes_mapping(self):
        scheme = DynamicReseedHashMapping(64, seed=3)
        before = [scheme.map(tag) for tag in range(100)]
        scheme.reseed()
        after = [scheme.map(tag) for tag in range(100)]
        assert before != after

    def test_seed_history_grows_on_reseed(self):
        scheme = DynamicReseedHashMapping(8, seed=0)
        initial = len(scheme.seed_history())
        scheme.reseed(0)
        scheme.reseed(1)
        assert len(scheme.seed_history()) == initial + 2

    def test_group_mapping_is_consistent_across_reseeds(self):
        scheme = DynamicReseedHashMapping(32, seed=7)
        before = scheme.map(1234, group=5)
        scheme.reseed()
        scheme.reseed()
        assert scheme.map(1234, group=5) == before

    def test_different_groups_use_different_seeds(self):
        scheme = DynamicReseedHashMapping(64, seed=7)
        assignments = {scheme.map(100, group=g) for g in range(50)}
        assert len(assignments) > 5

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            DynamicReseedHashMapping(8, k=40)

    def test_lower_and_upper_bit_variants_differ(self):
        lower = DynamicReseedHashMapping(64, k=16, seed=1, use_lower_bits=True)
        upper = DynamicReseedHashMapping(64, k=16, seed=1, use_lower_bits=False)
        tags = list(range(1, 200))
        assert [lower.map(t) for t in tags] != [upper.map(t) for t in tags]

    def test_lookup_table_is_compact(self):
        scheme = DynamicReseedHashMapping(8, seed=0)
        for g in range(100):
            scheme.map(g * 17, group=g)
        # Only 4 bytes per seed, far below a full per-tag table.
        assert scheme.lookup_table_bytes() <= (100 + 1) * 4


class TestBalanceMetrics:
    def test_summarize_counts(self):
        report = summarize_counts("probe", np.array([10, 10, 10, 10]))
        assert report.max_over_mean == pytest.approx(1.0)
        assert report.gini == pytest.approx(0.0, abs=1e-9)

    def test_gini_detects_concentration(self):
        balanced = summarize_counts("a", np.array([5, 5, 5, 5]))
        skewed = summarize_counts("b", np.array([20, 0, 0, 0]))
        assert skewed.gini > balanced.gini
        assert skewed.max_over_mean > balanced.max_over_mean

    def test_load_balance_report_on_dataset(self):
        dataset = load_dataset("wiki-Vote", max_nodes=128)
        report = load_balance_report("drhm", dataset.adjacency_csc(),
                                     dataset.adjacency_csr(), n_resources=16)
        assert report.counts.sum() > 0
        assert report.n_resources == 16

    def test_scheme_name_requires_resources(self):
        dataset = load_dataset("wiki-Vote", max_nodes=64)
        with pytest.raises(ValueError):
            load_balance_report("ring", dataset.adjacency_csc(),
                                dataset.adjacency_csr())

    def test_drhm_avoids_ring_hot_spots_on_strided_pattern(self):
        """Ring mapping collapses strided output columns onto few resources
        (the Figure 12 hot spots); DRHM stays balanced."""
        n, n_resources = 64, 16
        dense_a = np.zeros((n, n))
        dense_b = np.zeros((n, n))
        rng = np.random.default_rng(0)
        dense_a[:, rng.integers(0, n, size=4 * n) % n] = 1.0
        # B only has non-zeros in columns that are multiples of n_resources.
        dense_b[:, ::n_resources] = 1.0
        from repro.sparse.convert import coo_to_csc, coo_to_csr, dense_to_coo

        a_csc = coo_to_csc(dense_to_coo(dense_a))
        b_csr = coo_to_csr(dense_to_coo(dense_b))
        reports = compare_schemes(a_csc, b_csr, n_resources=n_resources,
                                  schemes=("ring", "drhm"))
        assert reports["ring"].gini > 0.5          # severe hot spots
        assert reports["drhm"].gini < reports["ring"].gini
        assert reports["drhm"].max_over_mean < reports["ring"].max_over_mean

    def test_drhm_reasonably_balanced_on_mesh(self):
        dataset = load_dataset("mario002", max_nodes=256)
        report = load_balance_report("drhm", dataset.adjacency_csc(),
                                     dataset.adjacency_csr(), n_resources=16)
        assert report.gini < 0.2
        assert report.max_over_mean < 1.6

    def test_heatmap_shape_and_total(self):
        dataset = load_dataset("facebook", max_nodes=96)
        a_csc = dataset.adjacency_csc()
        a_csr = dataset.adjacency_csr()
        heatmap = mapping_heatmap("modular", a_csc, a_csr, n_cores=8, n_mems=16)
        assert heatmap.shape == (8, 16)
        from repro.sparse.bloat import partial_product_count

        assert heatmap.sum() == partial_product_count(a_csr, a_csr)

    def test_heatmap_scheme_instance_resource_mismatch(self):
        dataset = load_dataset("facebook", max_nodes=64)
        scheme = RingHashMapping(4)
        with pytest.raises(ValueError):
            mapping_heatmap(scheme, dataset.adjacency_csc(),
                            dataset.adjacency_csr(), n_cores=4, n_mems=8)
