"""Unit tests for the analytic baseline models (platforms, accelerators, GNN)."""

import numpy as np
import pytest

from repro.baselines.accelerators import (
    ACCEL_GAMMA,
    ACCEL_OUTERSPACE,
    ACCEL_SPARCH,
    NEURACHIP_ANALYTIC_TILE16,
    neurachip_analytic,
    speedup_table,
    spgemm_accelerators,
    table5_platforms,
)
from repro.baselines.gnn_accelerators import (
    calibrate_gnn_accelerators,
    gnn_accelerators,
    gnn_speedup_table,
    neurachip_gnn_model,
)
from repro.baselines.platforms import (
    CPU_MKL,
    GPU_CUSP,
    GPU_CUSPARSE,
    GPU_HIPSPARSE,
    calibrate_platforms,
    spgemm_platforms,
)
from repro.baselines.workload import GCNWorkloadStats, SpGEMMWorkloadStats
from repro.datasets import load_dataset
from repro.gnn.gcn import GCNWorkload
from repro.arch.config import TILE16


@pytest.fixture(scope="module")
def spgemm_workloads():
    stats = []
    for name in ("facebook", "wiki-Vote", "p2p-Gnutella31", "mario002"):
        dataset = load_dataset(name, max_nodes=192, seed=1)
        stats.append(SpGEMMWorkloadStats.from_matrices(name, dataset.adjacency_csr()))
    return stats


@pytest.fixture(scope="module")
def gcn_workloads():
    stats = []
    for name in ("cora", "citeseer", "pubmed"):
        dataset = load_dataset(name, max_nodes=192, seed=1)
        workload = GCNWorkload.build(dataset, feature_dim=32, hidden_dim=16)
        stats.append(GCNWorkloadStats.from_workload(name, workload.a_hat,
                                                    workload.features, 16))
    return stats


class TestWorkloadStats:
    def test_from_matrices_consistency(self, spgemm_workloads):
        for stats in spgemm_workloads:
            assert stats.partial_products >= stats.output_nnz > 0
            assert stats.bloat_percent >= 0.0
            assert stats.useful_flops == 2 * stats.partial_products
            assert 0.0 < stats.density_a < 1.0

    def test_gcn_stats_traffic_positive(self, gcn_workloads):
        for stats in gcn_workloads:
            assert stats.aggregation_traffic_bytes > 0
            assert stats.combination_traffic_bytes > 0
            assert stats.total_flops == (stats.aggregation_flops
                                         + stats.combination_flops)


class TestPlatformModels:
    def test_traffic_ordering_outer_worst(self, spgemm_workloads):
        """The outer-product dataflow materialises partial matrices, so its
        traffic must exceed the row-wise dataflow on the same workload."""
        stats = spgemm_workloads[0]
        row_wise = CPU_MKL.traffic_bytes(stats) / CPU_MKL.traffic_multiplier
        outer = ACCEL_OUTERSPACE.traffic_bytes(stats) / ACCEL_OUTERSPACE.traffic_multiplier
        assert outer > row_wise

    def test_execution_time_positive_and_finite(self, spgemm_workloads):
        for platform in table5_platforms():
            for stats in spgemm_workloads:
                time = platform.execution_time_s(stats)
                assert np.isfinite(time) and time > 0

    def test_sustained_gops_below_peak(self, spgemm_workloads):
        for platform in table5_platforms():
            for stats in spgemm_workloads:
                assert platform.sustained_gops(stats) <= platform.peak_gflops / 2 + 1e-9

    def test_unknown_dataflow_rejected(self, spgemm_workloads):
        from dataclasses import replace

        broken = replace(CPU_MKL, dataflow="zigzag")
        with pytest.raises(ValueError):
            broken.traffic_bytes(spgemm_workloads[0])

    def test_calibration_pins_geometric_mean(self, spgemm_workloads):
        calibrated = calibrate_platforms([CPU_MKL, GPU_CUSPARSE], spgemm_workloads)
        for platform in calibrated:
            gops = [platform.sustained_gops(s) for s in spgemm_workloads]
            gmean = float(np.exp(np.mean(np.log(gops))))
            assert gmean == pytest.approx(platform.reference_gops, rel=1e-6)

    def test_platform_listing(self):
        assert [p.name for p in spgemm_platforms()] == ["MKL", "cuSPARSE", "CUSP",
                                                        "hipSPARSE"]
        assert [a.name for a in spgemm_accelerators()] == ["OuterSPACE", "SpArch",
                                                           "Gamma"]
        assert len(table5_platforms()) == 10


class TestSpGEMMSpeedups:
    def test_figure16_average_speedups_match_paper_shape(self, spgemm_workloads):
        """Calibrated geometric-mean speedups must land on the paper's factors."""
        table = speedup_table(spgemm_workloads)
        paper = {"MKL": 22.1, "cuSPARSE": 17.1, "CUSP": 13.3, "hipSPARSE": 16.7,
                 "SpArch": 2.4, "Gamma": 1.5}
        for platform, target in paper.items():
            assert table[platform]["gmean"] == pytest.approx(target, rel=0.05), platform

    def test_neurachip_wins_on_every_dataset_against_cpu(self, spgemm_workloads):
        table = speedup_table(spgemm_workloads)
        per_dataset = {k: v for k, v in table["MKL"].items() if k != "gmean"}
        assert all(value > 1.0 for value in per_dataset.values())

    def test_prior_accelerator_ordering(self, spgemm_workloads):
        """OuterSPACE < SpArch < Gamma in throughput -> opposite in speedup."""
        table = speedup_table(spgemm_workloads)
        assert table["OuterSPACE"]["gmean"] > table["SpArch"]["gmean"] \
            > table["Gamma"]["gmean"] > 1.0

    def test_uncalibrated_table_still_orders_platforms(self, spgemm_workloads):
        table = speedup_table(spgemm_workloads, calibrate=False)
        assert table["MKL"]["gmean"] > table["Gamma"]["gmean"]

    def test_neurachip_analytic_scaling(self, spgemm_workloads):
        tile4 = neurachip_analytic(TILE16, reference_gops=5.0, efficiency=0.3)
        tile16 = NEURACHIP_ANALYTIC_TILE16
        stats = spgemm_workloads[0]
        assert tile16.sustained_gops(stats) > tile4.sustained_gops(stats)


class TestGNNAcceleratorModels:
    def test_phase_times_positive(self, gcn_workloads):
        for model in gnn_accelerators():
            for stats in gcn_workloads:
                assert model.execution_time_s(stats) > 0

    def test_figure17_average_speedups_match_paper(self, gcn_workloads):
        table = gnn_speedup_table(gcn_workloads)
        paper = {"EnGN": 1.29, "GROW": 1.58, "HyGCN": 1.69, "FlowGNN": 1.30}
        for name, target in paper.items():
            assert table[name]["gmean"] == pytest.approx(target, rel=0.05), name

    def test_neurachip_faster_than_every_gnn_accelerator(self, gcn_workloads):
        table = gnn_speedup_table(gcn_workloads)
        for name, row in table.items():
            per_dataset = [v for k, v in row.items() if k != "gmean"]
            assert min(per_dataset) > 0.8, name
            assert row["gmean"] > 1.0, name

    def test_hygcn_penalised_by_phase_imbalance(self, gcn_workloads):
        from repro.baselines.gnn_accelerators import HYGCN
        from dataclasses import replace

        balanced = replace(HYGCN, pipeline_stall_penalty=0.0)
        stats = gcn_workloads[0]
        assert HYGCN.execution_time_s(stats) >= balanced.execution_time_s(stats)

    def test_calibration_is_stable_under_recalibration(self, gcn_workloads):
        once = calibrate_gnn_accelerators(gnn_accelerators(), gcn_workloads)
        twice = calibrate_gnn_accelerators(once, gcn_workloads)
        for a, b in zip(once, twice):
            assert a.calibration_scale == pytest.approx(b.calibration_scale, rel=1e-6)

    def test_neurachip_gnn_model_sustained_below_peak(self, gcn_workloads):
        model = neurachip_gnn_model()
        for stats in gcn_workloads:
            assert model.sustained_gflops(stats) <= model.peak_gflops
